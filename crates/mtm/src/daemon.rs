//! The MTM daemon: the user-space service gluing profiling, policy, and
//! migration together (Sec. 8).
//!
//! In the paper the kernel module scans PTEs while a user-space daemon
//! reads the shared profiling table, makes migration decisions, and calls
//! `move_memory_regions()`. Here [`MtmManager`] plays both roles behind
//! the [`tiersim::sim::MemoryManager`] interface: sub-interval hooks run
//! the kernel module's scan passes, the interval hook runs the daemon's
//! decide-and-migrate step.

use tiersim::addr::VirtAddr;
use tiersim::machine::Machine;
use tiersim::sim::{MemoryManager, RegionStats};
use tiersim::tier::ComponentId;

use crate::admission::{AdmissionKind, AdmissionPolicy};
use crate::config::{InitialPlacement, MtmConfig};
use crate::migration::{MigrationEngine, MigrationStats};
use crate::policy::{promote_and_demote, slow_first_order, PolicyStats};
use crate::profiler::AdaptiveProfiler;

/// The complete MTM page-management system.
pub struct MtmManager {
    cfg: MtmConfig,
    profiler: AdaptiveProfiler,
    engine: MigrationEngine,
    admission: Box<dyn AdmissionPolicy>,
    policy_totals: PolicyStats,
}

impl MtmManager {
    /// Creates an MTM manager for a machine with `nodes` CPU nodes.
    pub fn new(cfg: MtmConfig, nodes: usize) -> MtmManager {
        let profiler = AdaptiveProfiler::new(cfg.clone(), nodes);
        let engine = MigrationEngine::new(cfg.copy_threads, cfg.async_migration);
        let admission = cfg.admission.build(&cfg);
        MtmManager { cfg, profiler, engine, admission, policy_totals: PolicyStats::default() }
    }

    /// The profiler (for experiment probes).
    pub fn profiler(&self) -> &AdaptiveProfiler {
        &self.profiler
    }

    /// Mutable profiler access for tests that seed region state.
    #[doc(hidden)]
    pub fn profiler_mut_for_test(&mut self) -> &mut AdaptiveProfiler {
        &mut self.profiler
    }

    /// Cumulative policy statistics.
    pub fn policy_totals(&self) -> PolicyStats {
        self.policy_totals
    }

    /// Migration-mechanism statistics.
    pub fn migration_stats(&self) -> MigrationStats {
        self.engine.stats()
    }

    /// The configuration in use.
    pub fn config(&self) -> &MtmConfig {
        &self.cfg
    }
}

impl MemoryManager for MtmManager {
    fn name(&self) -> String {
        let mut name = "MTM".to_string();
        if !self.cfg.overhead_control {
            // The OC ablation also disables region adaptation (the paper
            // sets tau_m = tau_s = 0 there); report it as one knob.
            name.push_str("-w/o-OC");
        } else if !self.cfg.adaptive_regions {
            name.push_str("-w/o-AMR");
        }
        if !self.cfg.adaptive_sampling {
            name.push_str("-w/o-APS");
        }
        if !self.cfg.pebs_assist {
            name.push_str("-w/o-PEBS");
        }
        if !self.cfg.async_migration {
            name.push_str("-w/o-async");
        }
        name
    }

    fn init(&mut self, m: &mut Machine) {
        if self.cfg.shadow {
            m.set_shadow_mode(true);
        }
        self.profiler.init(m);
    }

    fn placement(&mut self, m: &Machine, tid: usize, _va: VirtAddr) -> Vec<ComponentId> {
        let node = m.node_of(tid);
        match self.cfg.initial_placement {
            InitialPlacement::SlowLocalFirst => slow_first_order(m, node),
            InitialPlacement::FastLocalFirst => m.topology().view(node).to_vec(),
        }
    }

    fn sub_intervals(&self) -> u32 {
        // Eight slots per scan: the priming clear lands one slot before
        // each counted check, giving a short (interval/8/num_scans-wide)
        // observation window per check.
        self.cfg.num_scans.max(1) * 8
    }

    fn on_subinterval(&mut self, m: &mut Machine, _interval: u64, k: u32) {
        // Commit last interval's asynchronous copies early: the in-flight
        // window approximates the real copy duration (a fraction of the
        // interval), not a whole interval — otherwise every region looks
        // write-dirtied by the time it commits.
        if k == 1 {
            self.engine.resolve_pending(m);
        }
        // The scan passes below fan their accessed-bit reads out as work
        // packets over `MTM_RUN_WORKERS` (see `AdaptiveProfiler::scan_pass`
        // and `tiersim::engine`); bit clears and clock charges stay serial
        // in plan order, so the daemon's decisions — and the run's output —
        // do not depend on the worker count.
        let group = 8;
        if k % group == group - 1 {
            self.profiler.prime_pass(m);
        } else if k % group == 0 {
            self.profiler.scan_pass(m);
        }
    }

    fn on_interval(&mut self, m: &mut Machine, interval: u64) {
        self.engine.note_interval(interval);
        self.admission.note_interval(interval);
        // Commit asynchronous migrations started last interval first, so
        // residency is current when the profiler re-plans.
        let mig_span = obs::SpanTimer::start(m.elapsed_ns());
        self.engine.resolve_pending(m);
        let now = m.elapsed_ns();
        mig_span.stop(&mut m.obs_mut().reg, obs::names::SPAN_MIGRATE_NS, now);
        let prof_span = obs::SpanTimer::start(m.elapsed_ns());
        self.profiler.finish_interval(m);
        let now = m.elapsed_ns();
        prof_span.stop(&mut m.obs_mut().reg, obs::names::SPAN_PROFILE_NS, now);
        let stats = promote_and_demote(
            m,
            &mut self.profiler,
            &mut self.engine,
            self.admission.as_mut(),
            &self.cfg,
        );
        self.policy_totals.promoted += stats.promoted;
        self.policy_totals.promoted_bytes += stats.promoted_bytes;
        self.policy_totals.demoted += stats.demoted;
        self.policy_totals.demoted_bytes += stats.demoted_bytes;
    }

    fn hot_bytes_identified(&self) -> u64 {
        let s = self.profiler.stats();
        s.hot_bytes_sum / s.intervals.max(1)
    }

    fn metadata_bytes(&self) -> u64 {
        self.profiler.metadata_bytes()
    }

    fn region_stats(&self) -> Option<RegionStats> {
        let s = self.profiler.stats();
        let n = s.intervals.max(1) as f64;
        Some(RegionStats {
            intervals: s.intervals,
            avg_merged: s.merged as f64 / n,
            avg_split: s.split as f64 / n,
            avg_regions: s.region_count_sum as f64 / n,
        })
    }

    fn set_share(&mut self, share: tiersim::Share) {
        // The promotion budget is the tenant's slice of the machine-wide
        // migration bandwidth; the profile share scales the Eq. 1 budget.
        // Fast-tier capacity is enforced through allocator quotas, not
        // here. A solo share (the full budget, profile_share == 1.0) is
        // bit-exact with the untouched configuration.
        self.cfg.promote_bytes = share.promote_bytes;
        self.cfg.profile_share = share.profile_share.clamp(0.0, 1.0);
        self.profiler.set_profile_share(share.profile_share);
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        // Stateful admission policies (ping-pong filter, rate limiter)
        // hold private history that is not serialized; a manager using
        // one is not checkpointable.
        match self.cfg.admission {
            AdmissionKind::Always | AdmissionKind::HotnessDelta => {}
            AdmissionKind::PingPong | AdmissionKind::RateLimit => return None,
        }
        let mut w = obs::wire::Writer::new();
        w.str(&self.admission.name());
        // The two config fields mutated at runtime by tenant arbitration
        // (`set_share`); the rest of the config is supplied at rebuild.
        w.u64(self.cfg.promote_bytes);
        w.f64(self.cfg.profile_share);
        self.profiler.save(&mut w);
        self.engine.save(&mut w);
        let t = &self.policy_totals;
        for v in [t.promoted, t.promoted_bytes, t.demoted, t.demoted_bytes] {
            w.varint(v);
        }
        Some(w.into_bytes())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = obs::wire::Reader::new(bytes);
        let admission = r.str()?;
        if admission != self.admission.name() {
            return Err(format!(
                "checkpoint admission policy {:?} does not match this manager's {:?}",
                admission,
                self.admission.name()
            ));
        }
        self.cfg.promote_bytes = r.u64()?;
        self.cfg.profile_share = r.f64()?;
        self.profiler.load(&mut r)?;
        self.engine.load(&mut r)?;
        self.policy_totals = PolicyStats {
            promoted: r.varint()?,
            promoted_bytes: r.varint()?,
            demoted: r.varint()?,
            demoted_bytes: r.varint()?,
        };
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim::addr::{VaRange, PAGE_SIZE_2M};
    use tiersim::machine::MachineConfig;
    use tiersim::sim::{drive_interval, run_scenario, MemEnv, ScenarioProgress, Workload};
    use tiersim::tier::tiny_two_tier;

    /// A workload hammering the first quarter of its footprint.
    struct HotQuarter {
        range: VaRange,
        rng: tiersim::rng::SplitMix64,
        ops: u64,
    }

    impl Workload for HotQuarter {
        fn name(&self) -> String {
            "hot-quarter".into()
        }

        fn setup(&mut self, env: &mut dyn MemEnv) {
            env.machine().mmap("hq", self.range, false);
            for page in self.range.iter_pages_4k() {
                env.write(0, page);
            }
        }

        fn tick(&mut self, env: &mut dyn MemEnv, tid: usize) {
            let len = self.range.len();
            let target = if self.rng.unit_f64() < 0.9 {
                self.rng.below(len / 4)
            } else {
                len / 4 + self.rng.below(3 * len / 4)
            };
            env.read(tid, VirtAddr(self.range.start.0 + target));
            self.ops += 1;
        }

        fn footprint(&self) -> u64 {
            self.range.len()
        }

        fn ops_completed(&self) -> u64 {
            self.ops
        }
    }

    fn workload() -> HotQuarter {
        HotQuarter {
            range: VaRange::from_len(VirtAddr(0), 16 * PAGE_SIZE_2M),
            rng: tiersim::rng::SplitMix64::new(77),
            ops: 0,
        }
    }

    fn machine() -> Machine {
        let topo = tiny_two_tier(6 * PAGE_SIZE_2M, 64 * PAGE_SIZE_2M);
        let mut cfg = MachineConfig::new(topo, 2);
        cfg.interval_ns = 0.5e6;
        Machine::new(cfg)
    }

    #[test]
    fn mtm_places_new_pages_slow_first() {
        let mut m = machine();
        let mut mgr = MtmManager::new(MtmConfig::default(), 1);
        let mut wl = workload();
        let report = run_scenario(&mut m, &mut mgr, &mut wl, 1);
        // All pages were first-touched into the slow component (modulo
        // later promotions of at most the per-interval budget).
        assert!(report.residency[1] > report.residency[0]);
    }

    #[test]
    fn mtm_promotes_hot_quarter_over_time() {
        let mut m = machine();
        let mut cfg = MtmConfig::default();
        cfg.promote_bytes = 2 * PAGE_SIZE_2M;
        let mut mgr = MtmManager::new(cfg, 1);
        let mut wl = workload();
        let report = run_scenario(&mut m, &mut mgr, &mut wl, 20);
        // The hot quarter (4 chunks) migrated toward the fast component.
        assert!(
            report.residency[0] >= 3 * PAGE_SIZE_2M,
            "fast residency = {} bytes",
            report.residency[0]
        );
        assert!(mgr.policy_totals().promoted >= 2);
        // Fast-component accesses dominate by the end.
        let last = report.window_counts.last().unwrap();
        assert!(
            last[0].total() > last[1].total(),
            "fast tier serves most accesses at the end: {last:?}"
        );
    }

    #[test]
    fn mtm_beats_no_migration_on_skewed_workload() {
        let mut m1 = machine();
        let mut mgr1 = MtmManager::new(MtmConfig::default(), 1);
        let mut wl1 = workload();
        let with_mtm = run_scenario(&mut m1, &mut mgr1, &mut wl1, 20);

        // Same accesses, placement fixed in the slow tier (no migration).
        struct SlowOnly;
        impl MemoryManager for SlowOnly {
            fn name(&self) -> String {
                "slow-only".into()
            }
            fn placement(&mut self, _m: &Machine, _tid: usize, _va: VirtAddr) -> Vec<ComponentId> {
                vec![1]
            }
            fn on_interval(&mut self, _m: &mut Machine, _i: u64) {}
        }
        let mut m2 = machine();
        let mut wl2 = workload();
        let static_slow = run_scenario(&mut m2, &mut SlowOnly, &mut wl2, 20);

        let mtm_rate = with_mtm.ops_per_second();
        let slow_rate = static_slow.ops_per_second();
        assert!(
            mtm_rate > slow_rate * 1.2,
            "MTM {mtm_rate:.0} ops/s vs slow-only {slow_rate:.0} ops/s"
        );
    }

    #[test]
    fn num_ps_matches_eq1_closed_form() {
        let m = machine();
        let cfg = MtmConfig::default();
        let mgr = MtmManager::new(cfg.clone(), 1);
        // Eq. 1: num_ps = interval_ns * target / (eff_scan * num_scans),
        // eff_scan = 2*one_scan + hint_fault/hint_fault_every.
        let eff_scan = 2.0 * m.cfg.costs.one_scan_ns
            + m.cfg.costs.hint_fault_ns() / cfg.hint_fault_every as f64;
        let want = ((m.cfg.interval_ns * cfg.overhead_target)
            / (eff_scan * cfg.num_scans as f64)) as u64;
        assert_eq!(mgr.profiler().num_ps(&m), want.max(1));
    }

    /// A machine/workload wide enough that the initial one-region-per-PDE
    /// count exceeds the Eq. 1 sample budget, forcing tau_m escalation.
    fn wide_setup() -> (Machine, HotQuarter) {
        let topo = tiny_two_tier(8 * PAGE_SIZE_2M, 160 * PAGE_SIZE_2M);
        let mut cfg = MachineConfig::new(topo, 2);
        cfg.interval_ns = 0.5e6;
        let m = Machine::new(cfg);
        let wl = HotQuarter {
            range: VaRange::from_len(VirtAddr(0), 128 * PAGE_SIZE_2M),
            rng: tiersim::rng::SplitMix64::new(99),
            ops: 0,
        };
        (m, wl)
    }

    /// A machine with 128 one-PDE regions and an alternating hot/cold
    /// access pattern applied through real prime/scan passes, so adjacent
    /// regions end the interval with scan counts 3 vs 0 — too far apart
    /// to merge at the default tau_m.
    fn wide_profiled_interval() -> (Machine, MtmManager) {
        use tiersim::machine::AccessKind;
        let topo = tiny_two_tier(8 * PAGE_SIZE_2M, 160 * PAGE_SIZE_2M);
        let mut mcfg = MachineConfig::new(topo, 2);
        mcfg.interval_ns = 0.5e6;
        let mut m = Machine::new(mcfg);
        let r = VaRange::from_len(VirtAddr(0), 128 * PAGE_SIZE_2M);
        m.mmap("wide", r, false);
        m.prefault_range(r, &[1]).unwrap();
        // Disable the PEBS assist so every region is scanned uncondition-
        // ally (with it on, slowest-tier scans are counter-gated and the
        // unaccessed regions would be classified cold and merge away).
        let mut cfg = MtmConfig::default();
        cfg.pebs_assist = false;
        let mut mgr = MtmManager::new(cfg, 1);
        MemoryManager::init(&mut mgr, &mut m);
        assert_eq!(mgr.profiler().regions().len(), 128);
        let num_scans = mgr.config().num_scans;
        for _ in 0..num_scans {
            mgr.profiler_mut_for_test().prime_pass(&mut m);
            // Touch every page of every even chunk so whichever page the
            // plan sampled in those regions sees its accessed bit set.
            for chunk in (0..128u64).step_by(2) {
                let base = chunk * PAGE_SIZE_2M;
                for page in 0..(PAGE_SIZE_2M / tiersim::addr::PAGE_SIZE_4K) {
                    m.access(
                        0,
                        VirtAddr(base + page * tiersim::addr::PAGE_SIZE_4K),
                        AccessKind::Read,
                    );
                }
            }
            mgr.profiler_mut_for_test().scan_pass(&mut m);
        }
        (m, mgr)
    }

    #[test]
    fn escalation_engages_when_regions_exceed_budget() {
        let (mut m, mut mgr) = wide_profiled_interval();
        let tau_m_default = MtmConfig::default().tau_m;
        let num_ps = mgr.profiler().num_ps(&m);
        assert!(num_ps < 128, "128 regions exceed the Eq. 1 budget ({num_ps})");
        mgr.profiler_mut_for_test().finish_interval(&mut m);
        // The alternating hotness blocks merging, so the control loop
        // must escalate tau_m and record the decision.
        assert!(mgr.profiler().tau_m_now() > tau_m_default, "tau_m escalated");
        assert_eq!(m.obs().reg.counter(obs::names::TAU_M_ESCALATIONS), 1);
        let escalations: Vec<_> = m
            .obs()
            .ring
            .iter()
            .filter_map(|e| match e.kind {
                obs::EventKind::TauMEscalated { tau_m, regions, budget } => {
                    Some((tau_m, regions, budget))
                }
                _ => None,
            })
            .collect();
        assert_eq!(escalations.len(), 1);
        let (tau_m, regions, budget) = escalations[0];
        assert!(tau_m > tau_m_default);
        assert_eq!(budget, num_ps);
        assert!(regions > budget, "escalated only while over budget");
    }

    #[test]
    fn per_interval_overhead_respects_target_after_escalation() {
        let (mut m, mut wl) = wide_setup();
        let cfg = MtmConfig::default();
        let target = cfg.overhead_target;
        let mut mgr = MtmManager::new(cfg, 1);
        let report = run_scenario(&mut m, &mut mgr, &mut wl, 12);
        // The 128 initial regions exceed the budget, so region merging
        // must have engaged and brought the count down.
        assert!(report.telemetry.registry.counter(obs::names::REGIONS_MERGED) > 0);
        let num_ps = mgr.profiler().stats().last_num_ps;
        assert!((mgr.profiler().regions().len() as u64) <= num_ps);
        // Once the control loop converged, per-interval profiling time
        // must track the 5% target; allow 1.5x slack for quantization
        // (whole scan passes) and the amortized hint-fault cost.
        let bt = &report.breakdown_trace;
        assert!(bt.len() >= 8);
        for w in bt.windows(2).skip(bt.len() - 5) {
            let prof = w[1].profiling_ns - w[0].profiling_ns;
            let wall = w[1].total_ns() - w[0].total_ns();
            assert!(wall > 0.0);
            let frac = prof / wall;
            assert!(
                frac <= 1.5 * target,
                "late-interval profiling fraction {frac:.4} exceeds 1.5x target {target}"
            );
        }
        // The per-interval overhead series in the telemetry snapshot
        // agrees with the breakdown trace.
        let series = &report.telemetry.series;
        assert_eq!(series.overhead_pct.len(), bt.len());
        let last = *series.overhead_pct.last().unwrap();
        assert!(last <= 150.0 * target, "series overhead {last:.2}% within bound");
    }

    #[test]
    fn tau_m_resets_once_region_count_fits() {
        // A small footprint (16 regions < num_ps ~ 46) never escalates:
        // tau_m stays at its configured value the whole run.
        let mut m = machine();
        let cfg = MtmConfig::default();
        let tau_m = cfg.tau_m;
        let mut mgr = MtmManager::new(cfg, 1);
        let mut wl = workload();
        let report = run_scenario(&mut m, &mut mgr, &mut wl, 8);
        assert_eq!(report.telemetry.registry.counter(obs::names::TAU_M_ESCALATIONS), 0);
        assert_eq!(mgr.profiler().tau_m_now(), tau_m);

        // After an escalation, bringing the region count back under the
        // budget snaps tau_m back to the configured value rather than
        // leaving it escalated.
        let (mut m, mut mgr) = wide_profiled_interval();
        mgr.profiler_mut_for_test().finish_interval(&mut m);
        assert!(mgr.profiler().tau_m_now() > tau_m);
        mgr.profiler_mut_for_test().merge_all_for_test();
        mgr.profiler_mut_for_test().finish_interval(&mut m);
        assert_eq!(mgr.profiler().tau_m_now(), tau_m, "tau_m reset after convergence");
    }

    #[test]
    fn ablation_names_are_distinct() {
        let mut cfg = MtmConfig::default();
        cfg.adaptive_regions = false;
        assert_eq!(MtmManager::new(cfg, 1).name(), "MTM-w/o-AMR");
        let mut cfg = MtmConfig::default();
        cfg.async_migration = false;
        assert_eq!(MtmManager::new(cfg, 1).name(), "MTM-w/o-async");
        let mut cfg = MtmConfig::default();
        cfg.overhead_control = false;
        cfg.adaptive_regions = false;
        assert_eq!(MtmManager::new(cfg, 1).name(), "MTM-w/o-OC");
        assert_eq!(MtmManager::new(MtmConfig::default(), 1).name(), "MTM");
    }

    #[test]
    fn region_stats_reported() {
        let mut m = machine();
        let mut mgr = MtmManager::new(MtmConfig::default(), 1);
        let mut wl = workload();
        run_scenario(&mut m, &mut mgr, &mut wl, 5);
        let rs = mgr.region_stats().unwrap();
        assert_eq!(rs.intervals, 5);
        assert!(rs.avg_regions >= 1.0);
        assert!(mgr.metadata_bytes() > 0);
    }

    #[test]
    fn manager_checkpoint_round_trips_and_resumes_identically() {
        // Run a scenario mid-way, checkpoint manager + machine, restore
        // into fresh objects, then continue both sides in lockstep: every
        // interval and the final serialized states must agree bit-for-bit.
        let mut m_a = machine();
        let mut mgr_a = MtmManager::new(MtmConfig::default(), 1);
        let mut wl_a = workload();
        let mut prog = ScenarioProgress::start(&mut m_a, &mut mgr_a, &mut wl_a);
        for ivl in 0..8 {
            prog.step_interval(&mut m_a, &mut mgr_a, &mut wl_a, ivl);
        }
        let mgr_blob = mgr_a.save_state().expect("default MTM config is checkpointable");
        let machine_blob = m_a.save_state().expect("machine is checkpointable");

        let mut m_b = machine();
        m_b.load_state(&machine_blob).expect("machine restores");
        let mut mgr_b = MtmManager::new(MtmConfig::default(), 1);
        mgr_b.load_state(&mgr_blob).expect("manager restores");
        assert_eq!(mgr_b.save_state().unwrap(), mgr_blob, "re-save is byte-identical");
        let mut wl_b = HotQuarter {
            range: wl_a.range,
            rng: tiersim::rng::SplitMix64::from_state(wl_a.rng.state()),
            ops: wl_a.ops,
        };

        for ivl in 8..16 {
            let wall_a = drive_interval(&mut m_a, &mut mgr_a, &mut wl_a, ivl);
            let wall_b = drive_interval(&mut m_b, &mut mgr_b, &mut wl_b, ivl);
            mgr_a.on_interval(&mut m_a, ivl);
            mgr_b.on_interval(&mut m_b, ivl);
            assert_eq!(wall_a.to_bits(), wall_b.to_bits(), "interval {ivl} wall time");
        }
        assert_eq!(wl_a.ops, wl_b.ops);
        assert_eq!(mgr_a.save_state().unwrap(), mgr_b.save_state().unwrap());
        assert_eq!(m_a.save_state().unwrap(), m_b.save_state().unwrap());
    }

    #[test]
    fn stateful_admission_refuses_checkpoint() {
        let mut cfg = MtmConfig::default();
        cfg.admission = crate::admission::AdmissionKind::PingPong;
        let mgr = MtmManager::new(cfg, 1);
        assert!(mgr.save_state().is_none());
    }

    #[test]
    fn load_state_rejects_admission_mismatch() {
        let mut cfg = MtmConfig::default();
        cfg.admission = crate::admission::AdmissionKind::HotnessDelta;
        let donor = MtmManager::new(cfg, 1);
        let blob = donor.save_state().unwrap();
        let mut mgr = MtmManager::new(MtmConfig::default(), 1);
        let err = mgr.load_state(&blob).unwrap_err();
        assert!(err.contains("admission"), "unexpected error: {err}");
    }
}

