//! `move_memory_regions()`: the adaptive (async/sync hybrid) migration
//! mechanism of Sec. 7.
//!
//! The asynchronous path arms write tracking over the region (reserved PTE
//! bit + one TLB flush), lets helper threads copy pages while the
//! application keeps running, and commits the remap at the next interval.
//! Only unmap/remap/page-table moves — and the write-tracking overhead —
//! land on the critical path. If any page of the region is written while
//! the copy is in flight, the mechanism switches to a synchronous copy:
//! the copy cost is paid once more, on the critical path, exactly like the
//! paper's re-copy on dirtiness.

use tiersim::addr::VaRange;
use tiersim::machine::Machine;
use tiersim::migrate::{
    best_copy_node, copy_cost_ns, relocate_range, relocate_with_retry, MigrateError,
    MigrateOutcome, RetryPolicy,
};
use tiersim::tier::{ComponentId, NodeId};

/// How many intervals a migrated range is left alone.
const COOLDOWN_INTERVALS: u64 = 6;

/// Total tries an async migration gets across commit attempts: a commit
/// that keeps failing transiently is aborted and re-enqueued (Nomad-style
/// transactional copy) at most this many times before being dropped.
const MAX_ASYNC_ATTEMPTS: u32 = 3;

/// A migration started asynchronously, awaiting commit.
#[derive(Clone, Copy, Debug)]
struct PendingAsync {
    range: VaRange,
    src: Option<ComponentId>,
    dst: ComponentId,
    node: NodeId,
    watch_id: u64,
    /// Commit attempts so far (0 for a freshly queued migration).
    attempts: u32,
    /// Exact bytes this migration will land on `dst` — pages of the range
    /// not already resident there, from a residency walk at enqueue time.
    /// `range.len()` over-counts whenever the range straddles components
    /// or partially sits on the destination already.
    inbound: u64,
    /// Bytes charged to the enqueue ledger for this entry. Carried
    /// unchanged across abort re-enqueues so the conservation invariant
    /// (enqueued == pending + committed + dropped) holds by construction
    /// instead of double-counting across the abort boundary.
    ledger: u64,
    /// The range overlapped a recently migrated range when it was
    /// requested: committing this entry is ping-pong traffic.
    bounce: bool,
}

/// Mechanism statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct MigrationStats {
    /// Regions migrated asynchronously without a dirty write.
    pub async_clean: u64,
    /// Async migrations that switched to a synchronous copy on a write.
    pub switched_sync: u64,
    /// Migrations run synchronously from the start.
    pub sync_direct: u64,
    /// Migrations dropped because the destination filled meanwhile.
    pub dropped: u64,
    /// Drops due to a full destination.
    pub dropped_nospace: u64,
    /// Drops because no page in the range still needed moving.
    pub dropped_empty: u64,
    /// Drops after exhausting retry, deferral and re-enqueue budgets.
    pub dropped_transient: u64,
    /// Attempts re-issued after a transient failure (retry/backoff).
    pub retried: u64,
    /// Async commits aborted transactionally and re-enqueued.
    pub aborted: u64,
    /// Sync migrations downgraded to async after retry exhaustion.
    pub deferred: u64,
    /// Total bytes migrated by this engine.
    pub bytes: u64,
    /// Ledger: exact bytes charged when entries joined the async queue.
    pub enqueued_bytes: u64,
    /// Ledger: bytes settled as committed when their entry left the queue.
    pub committed_bytes: u64,
    /// Ledger: bytes settled as dropped when their entry left the queue.
    pub dropped_bytes: u64,
}

/// The migration engine owned by the MTM daemon.
#[derive(Debug)]
pub struct MigrationEngine {
    copy_threads: u32,
    async_enabled: bool,
    pending: Vec<PendingAsync>,
    stats: MigrationStats,
    retry: RetryPolicy,
    /// Recently migrated ranges with the interval they were queued in.
    history: std::collections::VecDeque<(u64, VaRange)>,
    now_interval: u64,
}

impl MigrationEngine {
    /// Creates an engine with the default retry/backoff policy.
    pub fn new(copy_threads: u32, async_enabled: bool) -> MigrationEngine {
        MigrationEngine {
            copy_threads,
            async_enabled,
            pending: Vec::new(),
            stats: MigrationStats::default(),
            retry: RetryPolicy::default(),
            history: std::collections::VecDeque::new(),
            now_interval: 0,
        }
    }

    /// Replaces the retry/backoff policy (tests and sweeps).
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> MigrationEngine {
        self.retry = policy;
        self
    }

    /// Advances the engine's interval clock and expires old history.
    pub fn note_interval(&mut self, interval: u64) {
        self.now_interval = interval;
        while let Some(&(at, _)) = self.history.front() {
            if at + COOLDOWN_INTERVALS < interval {
                self.history.pop_front();
            } else {
                break;
            }
        }
    }

    /// True if `range` overlaps a migration from the last few intervals —
    /// the policy leaves such ranges alone (cooldown against ping-pong).
    pub fn recently_migrated(&self, range: VaRange) -> bool {
        self.history.iter().any(|&(_, r)| r.overlaps(range))
    }

    /// Statistics so far.
    pub fn stats(&self) -> MigrationStats {
        self.stats
    }

    /// Bytes already committed (by pending migrations) against `component`
    /// — space the policy must treat as reserved. Deliberately the whole
    /// range length, an upper bound: capacity decisions stay conservative
    /// (a page that turns out to be resident already simply frees slack at
    /// commit time). The *exact* figures from the enqueue-time residency
    /// walk live in the byte ledger ([`MigrationStats::enqueued_bytes`]),
    /// which has to balance, not bound.
    pub fn reserved_bytes(&self, component: ComponentId) -> u64 {
        self.pending.iter().filter(|p| p.dst == component).map(|p| p.range.len()).sum()
    }

    /// Bytes that pending migrations will free on `component` (their
    /// majority source). Pending demotions make room for promotions queued
    /// after them, since the queue commits in order. Range-length based,
    /// like [`MigrationEngine::reserved_bytes`].
    pub fn outgoing_bytes(&self, component: ComponentId) -> u64 {
        self.pending
            .iter()
            .filter(|p| p.src == Some(component))
            .map(|p| p.range.len())
            .sum()
    }

    /// Ledger bytes still sitting in the queue. The engine maintains
    /// `enqueued_bytes == pending_ledger_bytes() + committed_bytes +
    /// dropped_bytes` across arbitrary enqueue/abort/commit/drop
    /// sequences.
    pub fn pending_ledger_bytes(&self) -> u64 {
        self.pending.iter().map(|p| p.ledger).sum()
    }

    /// Number of in-flight asynchronous migrations.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// True if `range` overlaps a migration that is already in flight —
    /// the policy must not select it again (its residency still shows the
    /// source until the commit).
    pub fn is_pending(&self, range: VaRange) -> bool {
        self.pending.iter().any(|p| p.range.overlaps(range))
    }

    /// Serializes the engine's dynamic state (checkpoint support). The
    /// retry policy and the copy-thread/async configuration are not
    /// saved: they come from [`crate::MtmConfig`] when the engine is
    /// rebuilt at restore time.
    pub fn save(&self, w: &mut obs::wire::Writer) {
        w.varint(self.pending.len() as u64);
        for p in &self.pending {
            w.u64(p.range.start.0);
            w.u64(p.range.end.0);
            match p.src {
                Some(c) => {
                    w.bool(true);
                    w.u16(c);
                }
                None => w.bool(false),
            }
            w.u16(p.dst);
            w.u16(p.node);
            w.u64(p.watch_id);
            w.u32(p.attempts);
            w.varint(p.inbound);
            w.varint(p.ledger);
            w.bool(p.bounce);
        }
        let s = &self.stats;
        for v in [
            s.async_clean,
            s.switched_sync,
            s.sync_direct,
            s.dropped,
            s.dropped_nospace,
            s.dropped_empty,
            s.dropped_transient,
            s.retried,
            s.aborted,
            s.deferred,
            s.bytes,
            s.enqueued_bytes,
            s.committed_bytes,
            s.dropped_bytes,
        ] {
            w.varint(v);
        }
        w.varint(self.history.len() as u64);
        for &(at, range) in &self.history {
            w.varint(at);
            w.u64(range.start.0);
            w.u64(range.end.0);
        }
        w.varint(self.now_interval);
    }

    /// Restores the dynamic state saved with [`MigrationEngine::save`]
    /// into an engine freshly built from the same configuration.
    pub fn load(&mut self, r: &mut obs::wire::Reader) -> Result<(), String> {
        use tiersim::addr::VirtAddr;
        let count = r.varint()? as usize;
        let mut pending = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let range = VaRange::new(VirtAddr(r.u64()?), VirtAddr(r.u64()?));
            let src = if r.bool()? { Some(r.u16()?) } else { None };
            pending.push(PendingAsync {
                range,
                src,
                dst: r.u16()?,
                node: r.u16()?,
                watch_id: r.u64()?,
                attempts: r.u32()?,
                inbound: r.varint()?,
                ledger: r.varint()?,
                bounce: r.bool()?,
            });
        }
        self.pending = pending;
        self.stats = MigrationStats {
            async_clean: r.varint()?,
            switched_sync: r.varint()?,
            sync_direct: r.varint()?,
            dropped: r.varint()?,
            dropped_nospace: r.varint()?,
            dropped_empty: r.varint()?,
            dropped_transient: r.varint()?,
            retried: r.varint()?,
            aborted: r.varint()?,
            deferred: r.varint()?,
            bytes: r.varint()?,
            enqueued_bytes: r.varint()?,
            committed_bytes: r.varint()?,
            dropped_bytes: r.varint()?,
        };
        self.history.clear();
        for _ in 0..r.varint()? {
            let at = r.varint()?;
            let range = VaRange::new(VirtAddr(r.u64()?), VirtAddr(r.u64()?));
            self.history.push_back((at, range));
        }
        self.now_interval = r.varint()?;
        Ok(())
    }

    /// Starts migrating `range` to `dst`.
    ///
    /// With async enabled this arms write tracking and defers the move to
    /// the next [`MigrationEngine::resolve_pending`]; otherwise the region
    /// moves immediately with the full cost on the critical path.
    pub fn migrate(&mut self, m: &mut Machine, range: VaRange, dst: ComponentId, node: NodeId) {
        // Ping-pong detection must run before this request joins the
        // history, or every migration would trivially "bounce" off itself.
        let bounce = self.recently_migrated(range);
        self.history.push_back((self.now_interval, range));
        if self.async_enabled {
            self.enqueue_async(m, range, dst, node, 0, bounce, None);
        } else {
            let (res, report) =
                relocate_with_retry(m, range, dst, node, self.copy_threads, false, self.retry);
            self.stats.retried += report.retries as u64;
            match res {
                Ok(out) => {
                    m.charge_migration(out.breakdown.total_ns() + report.backoff_ns);
                    self.stats.sync_direct += 1;
                    self.stats.bytes += out.bytes;
                    m.obs_mut().reg.counter_add(obs::names::SYNC_DIRECT, 1);
                    m.record_event(obs::EventKind::SyncDirect { bytes: out.bytes, dst });
                    if bounce {
                        m.obs_mut().reg.counter_add(
                            obs::names::WASTED_MIGRATION_BYTES,
                            out.bytes - out.shadow_hit_bytes,
                        );
                    }
                }
                Err(e) if e.is_transient() => {
                    // Graceful degradation: the retry budget is spent, so
                    // instead of dropping the work, downgrade to an
                    // asynchronous attempt committed at a later interval.
                    m.charge_migration(report.backoff_ns);
                    self.stats.deferred += 1;
                    m.obs_mut().reg.counter_add(obs::names::MIGRATION_DEFERRALS, 1);
                    m.record_event(obs::EventKind::MigrationDeferred { bytes: range.len(), dst });
                    self.enqueue_async(m, range, dst, node, 1, bounce, None);
                }
                Err(e) => {
                    m.charge_migration(report.backoff_ns);
                    self.drop_migration(m, e, 0);
                }
            }
        }
    }

    /// Arms write tracking and queues an asynchronous migration.
    ///
    /// `carried_ledger` is `None` for a migration entering the queue for
    /// the first time (its exact inbound bytes are charged to the enqueue
    /// ledger) and `Some` for an abort re-enqueue, which carries its
    /// original charge forward instead of charging again.
    fn enqueue_async(
        &mut self,
        m: &mut Machine,
        range: VaRange,
        dst: ComponentId,
        node: NodeId,
        attempts: u32,
        bounce: bool,
        carried_ledger: Option<u64>,
    ) {
        let src = crate::residency::majority_component(m, range);
        let inbound: u64 = crate::residency::residency_exact(m, range)
            .into_iter()
            .filter(|&(c, _)| c != dst)
            .map(|(_, b)| b)
            .sum();
        let ledger = carried_ledger.unwrap_or(inbound);
        if carried_ledger.is_none() {
            self.stats.enqueued_bytes += ledger;
        }
        let watch_id = m.arm_write_watch(range);
        self.pending.push(PendingAsync {
            range,
            src,
            dst,
            node,
            watch_id,
            attempts,
            inbound,
            ledger,
            bounce,
        });
    }

    /// Records a permanently dropped migration. `ledger_bytes` settles the
    /// queue ledger for entries that were pending (0 for sync-path drops,
    /// which never joined the queue).
    fn drop_migration(&mut self, m: &mut Machine, e: MigrateError, ledger_bytes: u64) {
        self.stats.dropped += 1;
        self.stats.dropped_bytes += ledger_bytes;
        match e {
            MigrateError::NoSpace(_) => self.stats.dropped_nospace += 1,
            MigrateError::NothingMapped => self.stats.dropped_empty += 1,
            _ if e.is_transient() => self.stats.dropped_transient += 1,
            _ => {}
        }
        m.obs_mut().reg.counter_add(obs::names::MIGRATIONS_DROPPED, 1);
        if e.is_transient() {
            m.obs_mut().reg.counter_add(obs::names::MIGRATIONS_DROPPED_TRANSIENT, 1);
        }
        m.record_event(obs::EventKind::MigrationDropped { reason: drop_reason(e) });
    }

    /// Commits every pending asynchronous migration (call at the start of
    /// each interval hook). Clean regions pay only unmap/remap/page-table
    /// cost; dirtied regions additionally pay one synchronous copy.
    pub fn resolve_pending(&mut self, m: &mut Machine) {
        for p in std::mem::take(&mut self.pending) {
            let dirty = m.take_watch(p.watch_id);
            let (res, report) =
                relocate_with_retry(m, p.range, p.dst, p.node, self.copy_threads, false, self.retry);
            self.stats.retried += report.retries as u64;
            m.charge_migration(report.backoff_ns);
            match res {
                Ok(out) => {
                    let b = out.breakdown;
                    let mut critical = b.unmap_ns + b.remap_ns + b.pt_ns;
                    if dirty {
                        // Switched to the synchronous copy: the exposed
                        // re-copy runs with minimal parallelism (the main
                        // thread plus one helper; the wp-fault cost was
                        // already charged).
                        let src = p.src.unwrap_or(p.dst);
                        let n = best_copy_node(m, src, p.dst);
                        critical += copy_cost_ns(m, n, src, p.dst, out.bytes, 2);
                        self.stats.switched_sync += 1;
                        m.obs_mut().reg.counter_add(obs::names::SWITCHED_SYNC, 1);
                        m.record_event(obs::EventKind::SwitchedSync { bytes: out.bytes, dst: p.dst });
                    } else {
                        self.stats.async_clean += 1;
                        m.obs_mut().reg.counter_add(obs::names::ASYNC_CLEAN, 1);
                        m.record_event(obs::EventKind::AsyncClean { bytes: out.bytes, dst: p.dst });
                    }
                    m.charge_migration(critical);
                    self.stats.bytes += out.bytes;
                    self.stats.committed_bytes += p.ledger;
                    if p.bounce {
                        m.obs_mut().reg.counter_add(
                            obs::names::WASTED_MIGRATION_BYTES,
                            out.bytes - out.shadow_hit_bytes,
                        );
                    }
                }
                Err(e) if e.is_transient() && p.attempts + 1 < MAX_ASYNC_ATTEMPTS => {
                    // Nomad-style transactional abort: nothing moved (the
                    // fault gate fires before any mutation), so the copy
                    // is simply abandoned and the migration re-enqueued
                    // for the next commit point with fresh write tracking.
                    // The re-enqueue carries the entry's original ledger
                    // charge so bytes are not double-counted across the
                    // abort boundary.
                    self.stats.aborted += 1;
                    m.obs_mut().reg.counter_add(obs::names::MIGRATION_ABORTS, 1);
                    m.record_event(obs::EventKind::MigrationAborted {
                        bytes: p.inbound,
                        dst: p.dst,
                    });
                    self.enqueue_async(
                        m,
                        p.range,
                        p.dst,
                        p.node,
                        p.attempts + 1,
                        p.bounce,
                        Some(p.ledger),
                    );
                }
                Err(e) => self.drop_migration(m, e, p.ledger),
            }
        }
        // With the sanitizer armed, every commit point re-verifies the
        // whole machine: the async queue is the one place where watches,
        // retries, aborts and deferrals interleave.
        if m.checking() {
            m.verify_consistency("resolve_pending commit");
        }
    }
}

/// Telemetry label for a migration drop cause.
fn drop_reason(e: MigrateError) -> &'static str {
    match e {
        MigrateError::NoSpace(_) => "nospace",
        MigrateError::NothingMapped => "empty",
        MigrateError::PageBusy => "page-busy",
        MigrateError::TransientAllocFail => "alloc-fail",
        _ => "other",
    }
}

/// One-shot `move_memory_regions()` for micro-benchmarks (Figs. 3 and 11):
/// migrates `range` to `dst` and reports the full step breakdown plus the
/// critical-path portion, under an access pattern that did (or did not)
/// write the region during the asynchronous copy.
pub fn move_memory_regions_once(
    m: &mut Machine,
    range: VaRange,
    dst: ComponentId,
    node: NodeId,
    copy_threads: u32,
    written_during_copy: bool,
) -> Result<(MigrateOutcome, f64), MigrateError> {
    let watch_id = m.arm_write_watch(range);
    let src = crate::residency::majority_component(m, range);
    let mut out = match relocate_range(m, range, dst, node, copy_threads, false) {
        Ok(out) => out,
        Err(e) => {
            let _ = m.take_watch(watch_id);
            return Err(e);
        }
    };
    let dirty_cost = if written_during_copy { m.cfg.costs.wp_fault_ns } else { 0.0 };
    out.breakdown.track_ns += m.cfg.costs.tlb_flush_ns + dirty_cost;
    let _ = m.take_watch(watch_id);
    let b = out.breakdown;
    let mut critical = b.unmap_ns + b.remap_ns + b.pt_ns + b.track_ns;
    if written_during_copy {
        // The exposed synchronous re-copy runs with minimal parallelism.
        let src = src.unwrap_or(dst);
        let n = best_copy_node(m, src, dst);
        critical += copy_cost_ns(m, n, src, dst, out.bytes, 2);
    }
    m.charge_migration(critical);
    Ok((out, critical))
}

/// The Nimble baseline mechanism: fully synchronous like `move_pages()`
/// but with multi-threaded parallel copy and no THP splitting.
pub fn nimble_move(
    m: &mut Machine,
    range: VaRange,
    dst: ComponentId,
    node: NodeId,
    copy_threads: u32,
) -> Result<MigrateOutcome, MigrateError> {
    let out = relocate_range(m, range, dst, node, copy_threads, false)?;
    m.charge_migration(out.breakdown.total_ns());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim::addr::{VirtAddr, PAGE_SIZE_2M};
    use tiersim::machine::{AccessKind, MachineConfig};
    use tiersim::tier::tiny_two_tier;

    fn machine() -> Machine {
        let topo = tiny_two_tier(16 * PAGE_SIZE_2M, 16 * PAGE_SIZE_2M);
        let mut m = Machine::new(MachineConfig::new(topo, 1));
        let r = VaRange::from_len(VirtAddr(0), 4 * PAGE_SIZE_2M);
        m.mmap("a", r, false);
        m.prefault_range(r, &[0]).unwrap();
        m
    }

    #[test]
    fn async_clean_path_defers_and_commits() {
        let mut m = machine();
        let mut e = MigrationEngine::new(4, true);
        let range = VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M);
        e.migrate(&mut m, range, 1, 0);
        assert_eq!(e.in_flight(), 1);
        assert_eq!(e.reserved_bytes(1), PAGE_SIZE_2M);
        // Page still on the source while the copy is in flight.
        assert_eq!(m.component_of(VirtAddr(0)), Some(0));
        let migration_before = m.breakdown().migration_ns;
        e.resolve_pending(&mut m);
        assert_eq!(m.component_of(VirtAddr(0)), Some(1));
        assert_eq!(e.stats().async_clean, 1);
        assert_eq!(e.stats().switched_sync, 0);
        let exposed = m.breakdown().migration_ns - migration_before;
        // The exposed cost excludes the copy: it must be far below a full
        // synchronous move of 2 MB over a 5 GB/s link (> 400 us).
        assert!(exposed < 200_000.0, "exposed = {exposed}");
    }

    #[test]
    fn write_during_flight_switches_to_sync() {
        let mut m = machine();
        let mut e = MigrationEngine::new(4, true);
        let range = VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M);
        e.migrate(&mut m, range, 1, 0);
        // The application writes the region while the copy is in flight.
        m.access(0, VirtAddr(0x3000), AccessKind::Write);
        e.resolve_pending(&mut m);
        assert_eq!(e.stats().switched_sync, 1);
        assert_eq!(e.stats().async_clean, 0);
        // The copy cost landed on the critical path.
        assert!(m.breakdown().migration_ns > 300_000.0);
    }

    #[test]
    fn sync_mode_moves_immediately() {
        let mut m = machine();
        let mut e = MigrationEngine::new(4, false);
        let range = VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M);
        e.migrate(&mut m, range, 1, 0);
        assert_eq!(m.component_of(VirtAddr(0)), Some(1));
        assert_eq!(e.stats().sync_direct, 1);
        assert_eq!(e.in_flight(), 0);
    }

    #[test]
    fn full_destination_drops_pending() {
        let topo = tiny_two_tier(16 * PAGE_SIZE_2M, 4 * PAGE_SIZE_2M);
        let mut m = Machine::new(MachineConfig::new(topo, 1));
        let r = VaRange::from_len(VirtAddr(0), 6 * PAGE_SIZE_2M);
        m.mmap("a", r, false);
        m.prefault_range(r, &[0]).unwrap();
        let mut e = MigrationEngine::new(4, true);
        e.migrate(&mut m, VaRange::from_len(VirtAddr(0), 2 * PAGE_SIZE_2M), 1, 0);
        e.migrate(&mut m, VaRange::from_len(VirtAddr(2 * PAGE_SIZE_2M), 2 * PAGE_SIZE_2M), 1, 0);
        e.migrate(&mut m, VaRange::from_len(VirtAddr(4 * PAGE_SIZE_2M), 2 * PAGE_SIZE_2M), 1, 0);
        e.resolve_pending(&mut m);
        assert_eq!(e.stats().dropped, 1, "third region cannot fit");
        assert_eq!(e.stats().async_clean, 2);
        // Every drop path disarms its write watch: a leaked watch would
        // keep taxing writes (and pin tracking bits) for the whole run.
        assert_eq!(m.active_watches(), 0, "no watch survives the commit point");
        // The queue ledger settled every entry exactly once.
        let s = e.stats();
        assert_eq!(s.enqueued_bytes, 6 * PAGE_SIZE_2M);
        assert_eq!(s.committed_bytes, 4 * PAGE_SIZE_2M);
        assert_eq!(s.dropped_bytes, 2 * PAGE_SIZE_2M);
        assert_eq!(e.pending_ledger_bytes(), 0);
    }

    #[test]
    fn ledger_is_exact_while_capacity_reservation_stays_an_upper_bound() {
        let mut m = machine();
        // Second half of the range is already resident on the destination:
        // only the first half will actually land there.
        let lo = VaRange::from_len(VirtAddr(4 * PAGE_SIZE_2M), PAGE_SIZE_2M);
        let hi = VaRange::from_len(VirtAddr(5 * PAGE_SIZE_2M), PAGE_SIZE_2M);
        m.mmap("b", VaRange { start: lo.start, end: hi.end }, false);
        m.prefault_range(lo, &[0]).unwrap();
        m.prefault_range(hi, &[1]).unwrap();
        let mut e = MigrationEngine::new(4, true);
        e.migrate(&mut m, VaRange { start: lo.start, end: hi.end }, 1, 0);
        // Capacity reservation is deliberately the whole range length (a
        // conservative upper bound for admission decisions)...
        assert_eq!(e.reserved_bytes(1), 2 * PAGE_SIZE_2M);
        // ...while the byte ledger charges exactly what will move.
        assert_eq!(e.stats().enqueued_bytes, PAGE_SIZE_2M, "only the half not already there");
        assert_eq!(e.pending_ledger_bytes(), PAGE_SIZE_2M);
        e.resolve_pending(&mut m);
        assert_eq!(e.stats().committed_bytes, PAGE_SIZE_2M);
        assert_eq!(e.stats().bytes, PAGE_SIZE_2M);
        assert_eq!(e.pending_ledger_bytes(), 0);
    }

    #[test]
    fn abort_reenqueue_does_not_double_count_the_ledger() {
        let plan = faultsim::FaultPlan::parse("busy=1").unwrap();
        let mut m = machine();
        let mut e = MigrationEngine::new(4, true);
        let range = VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M);
        e.migrate(&mut m, range, 1, 0);
        assert_eq!(e.stats().enqueued_bytes, PAGE_SIZE_2M);
        m.install_faults(plan, 7);
        // Every commit attempt fails: abort + re-enqueue, then a final
        // transient drop once MAX_ASYNC_ATTEMPTS is exhausted.
        for _ in 0..4 {
            e.resolve_pending(&mut m);
            let s = e.stats();
            assert_eq!(
                s.enqueued_bytes,
                e.pending_ledger_bytes() + s.committed_bytes + s.dropped_bytes,
                "conservation must hold across every abort boundary"
            );
        }
        let s = e.stats();
        assert_eq!(s.enqueued_bytes, PAGE_SIZE_2M, "charged once, not per attempt");
        assert_eq!(s.dropped_bytes, PAGE_SIZE_2M);
        assert_eq!(s.committed_bytes, 0);
        assert!(s.aborted >= 1);
        assert_eq!(e.in_flight(), 0);
        assert_eq!(m.active_watches(), 0, "aborts and drops both disarm watches");
    }

    #[test]
    fn microbench_breakdown_async_vs_dirty() {
        let mut m = machine();
        let (clean, crit_clean) = move_memory_regions_once(
            &mut m,
            VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M),
            1,
            0,
            4,
            false,
        )
        .unwrap();
        let (dirty, crit_dirty) = move_memory_regions_once(
            &mut m,
            VaRange::from_len(VirtAddr(PAGE_SIZE_2M), PAGE_SIZE_2M),
            1,
            0,
            4,
            true,
        )
        .unwrap();
        assert!(crit_clean < clean.breakdown.total_ns(), "async hides copy+alloc");
        assert!(crit_dirty > crit_clean, "dirty path pays the copy");
        assert!(dirty.breakdown.track_ns > clean.breakdown.track_ns);
    }

    #[test]
    fn nimble_charges_everything() {
        let mut m = machine();
        let out =
            nimble_move(&mut m, VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M), 1, 0, 4).unwrap();
        assert_eq!(m.breakdown().migration_ns, out.breakdown.total_ns());
    }
}
