//! The "fast promotion, slow demotion" migration policy (Sec. 6).
//!
//! Using the global view the profiler builds over *all* regions in *all*
//! tiers, the policy promotes the hottest regions (highest EMA-histogram
//! buckets) directly to the fastest tier — no tier-by-tier stepping — up
//! to a fixed byte budget per interval. When the destination lacks space,
//! the coldest regions resident there are demoted one tier down (to the
//! next lower tier with capacity), and never past a region hotter than
//! the newcomer. The destination tier is chosen from the view of the node
//! that accesses the region most (multi-view, Sec. 6.2). Regions larger
//! than the budget are split at the budget boundary and promoted a slice
//! at a time, which also keeps regions aligned with their residency.

use tiersim::addr::{VaRange, VirtAddr, PAGE_SIZE_2M};
use tiersim::machine::Machine;
use tiersim::tier::{ComponentId, NodeId};

use crate::admission::{AdmissionPolicy, Candidate, MigrationKind, Verdict};
use crate::config::MtmConfig;
use crate::histogram::HotnessHistogram;
use crate::migration::MigrationEngine;
use crate::profiler::AdaptiveProfiler;
use crate::residency::majority_component;

/// Per-interval policy outcome.
#[derive(Clone, Copy, Debug, Default)]
pub struct PolicyStats {
    /// Regions selected for promotion this interval.
    pub promoted: u64,
    /// Bytes selected for promotion this interval.
    pub promoted_bytes: u64,
    /// Regions demoted to make space.
    pub demoted: u64,
    /// Bytes demoted.
    pub demoted_bytes: u64,
}

/// A snapshot of one region's policy-relevant state.
#[derive(Clone, Copy, Debug)]
struct Snapshot {
    range: VaRange,
    whi: f64,
    node: NodeId,
    node_confidence: f64,
}

/// Effective free bytes on a component, accounting for space already
/// claimed by in-flight asynchronous migrations (incoming) and space they
/// will release (outgoing; the queue commits in order, so a demotion
/// queued first frees its space before the promotion behind it commits).
fn effective_free(m: &Machine, engine: &MigrationEngine, c: ComponentId) -> u64 {
    (m.allocator(c).free() + engine.outgoing_bytes(c)).saturating_sub(engine.reserved_bytes(c))
}

/// Books an admission veto: counters and ring event move together so the
/// sanitizer's counter/event pairing holds.
fn note_rejected(m: &mut Machine, bytes: u64, dst: ComponentId, reason: &'static str) {
    m.obs_mut().reg.counter_add(obs::names::ADMIT_REJECTED, 1);
    m.obs_mut().reg.counter_add(obs::names::ADMIT_REJECTED_BYTES, bytes);
    m.record_event(obs::EventKind::AdmissionRejected { bytes, dst, reason });
}

/// Demotes coldest-first regions resident on `target` until it has `need`
/// effective free bytes, moving each to the next lower tier (from `node`'s
/// view) with capacity. Never demotes a region at least as hot as the
/// newcomer. Returns whether the space was freed.
fn make_space(
    m: &mut Machine,
    engine: &mut MigrationEngine,
    admission: &mut dyn AdmissionPolicy,
    cold_order: &[Snapshot],
    target: ComponentId,
    node: NodeId,
    need: u64,
    incoming_whi: f64,
    hysteresis: f64,
    demote_budget: &mut u64,
    stats: &mut PolicyStats,
    tenant: tiersim::TenantId,
) -> bool {
    if effective_free(m, engine, target) >= need {
        return true;
    }
    let topo = m.topology().clone();
    let target_rank = topo.tier_rank(node, target);
    for victim in cold_order {
        if effective_free(m, engine, target) >= need {
            return true;
        }
        // Hysteresis: only demote victims clearly colder than the
        // newcomer, so sampling noise between equally-warm regions does
        // not turn into permanent swap churn.
        if *demote_budget == 0 || victim.whi >= incoming_whi - hysteresis {
            return false;
        }
        if victim.range.len() > *demote_budget {
            continue; // Slow demotion: stay within the per-interval budget.
        }
        if engine.is_pending(victim.range) || engine.recently_migrated(victim.range) {
            continue;
        }
        let Some(cur) = majority_component(m, victim.range) else { continue };
        if cur != target {
            continue;
        }
        // Slow demotion: one tier down, to the next lower tier with
        // enough capacity — never straight to the bottom. Demotions use
        // the same adaptive mechanism as promotions: cold pages are
        // rarely written in flight, so the copy stays off the critical
        // path.
        let view = topo.view(node);
        for rank in (target_rank + 1)..view.len() {
            let down = view[rank];
            if effective_free(m, engine, down) >= victim.range.len() {
                let verdict = admission.admit(
                    m,
                    &Candidate {
                        range: victim.range,
                        src: target,
                        dst: down,
                        node,
                        kind: MigrationKind::Demotion,
                        whi: victim.whi,
                        victim_whi: None,
                        tenant,
                    },
                );
                if let Verdict::Reject(reason) = verdict {
                    note_rejected(m, victim.range.len(), down, reason);
                    break; // Victim vetoed: leave it resident, try the next.
                }
                engine.migrate(m, victim.range, down, node);
                stats.demoted += 1;
                stats.demoted_bytes += victim.range.len();
                m.obs_mut().reg.counter_add(obs::names::DEMOTIONS, 1);
                m.obs_mut().reg.counter_add(obs::names::DEMOTED_BYTES, victim.range.len());
                m.record_event(obs::EventKind::Demotion {
                    bytes: victim.range.len(),
                    src: target,
                    dst: down,
                });
                *demote_budget = demote_budget.saturating_sub(victim.range.len());
                break;
            }
        }
    }
    effective_free(m, engine, target) >= need
}

/// Runs one interval of the promotion/demotion policy. Every candidate
/// batch passes through `admission` before it reaches the engine; a
/// rejected batch is skipped without charging the migration budget.
pub fn promote_and_demote(
    m: &mut Machine,
    profiler: &mut AdaptiveProfiler,
    engine: &mut MigrationEngine,
    admission: &mut dyn AdmissionPolicy,
    cfg: &MtmConfig,
) -> PolicyStats {
    let mut stats = PolicyStats::default();
    let regions = profiler.regions();
    if regions.is_empty() {
        return stats;
    }
    let histogram = HotnessHistogram::build(regions, cfg.histogram_buckets, cfg.num_scans as f64);
    let snap = |i: usize| Snapshot {
        range: regions[i].range,
        whi: regions[i].whi,
        node: regions[i].home_node,
        node_confidence: regions[i].home_confidence(),
    };
    let hot_order: Vec<Snapshot> = histogram.hottest_first(regions).into_iter().map(snap).collect();
    let cold_order: Vec<Snapshot> = histogram.coldest_first(regions).into_iter().map(snap).collect();
    let topo = m.topology().clone();
    let mut budget = cfg.promote_bytes;
    let mut demote_budget = cfg.promote_bytes * 2;
    // The promotion floor is relative to the observed hotness range so
    // sparse-density regimes (time compression) still promote; in the
    // saturated regime it equals 10% of num_scans as before.
    let max_whi = regions.iter().map(|r| r.whi).fold(0.0_f64, f64::max);
    // Eviction hysteresis: a quarter of the observed hotness range.
    let hysteresis = 0.25 * max_whi;

    for cand in hot_order {
        if budget == 0 {
            break;
        }
        // Best effort: any region with observed activity may move into
        // *free* fast memory; only solidly hot regions (>= 0.5 max_whi,
        // gated at the make_space call) may evict residents. Entirely
        // dead regions end the hotness-ordered pass.
        if cand.whi <= 0.0 {
            break;
        }
        let node = cand.node.min(topo.nodes - 1);
        if engine.is_pending(cand.range) {
            continue; // Already on its way; residency still shows the source.
        }
        let Some(cur) = majority_component(m, cand.range) else { continue };
        let cur_rank = topo.tier_rank(node, cur);
        if cur_rank == 0 {
            continue; // Already in the fastest tier from its users' view.
        }
        // Oversized regions are split at the budget boundary and promoted
        // a slice per interval.
        let mut mig_range = cand.range;
        if mig_range.len() > budget {
            let cut = VirtAddr(mig_range.start.0 + budget.max(PAGE_SIZE_2M));
            if profiler.split_region_for_migration(m, cut) {
                let idx = profiler
                    .region_list()
                    .covering_index(mig_range.start)
                    .expect("left slice exists");
                mig_range = profiler.regions()[idx].range;
            } else if mig_range.len() > 2 * cfg.promote_bytes {
                continue;
            }
        }
        // Fast promotion: the fastest tier first; fall toward the current
        // tier only if space truly cannot be made.
        let cur_kind = topo.components[cur as usize].kind;
        for dest_rank in 0..cur_rank {
            let dest = topo.component_at_rank(node, dest_rank);
            // A same-kind move (e.g. remote PM -> local PM) is a NUMA
            // locality optimization, not a tier promotion: it only pays
            // off for solidly hot regions whose accessing node is known
            // with confidence — otherwise attribution noise turns it into
            // endless lateral shuffling.
            if topo.components[dest as usize].kind == cur_kind
                && (cand.node_confidence < 0.7 || cand.whi < 0.5 * max_whi)
            {
                continue;
            }
            // Filling free space is always fine; evicting residents is
            // reserved for solidly hot regions (top half of the observed
            // range) so warm-region sampling spikes do not cause churn.
            let may_evict = cand.whi >= 0.5 * max_whi;
            let free_enough = effective_free(m, engine, dest) >= mig_range.len();
            // Consult admission before any space is made: a veto must not
            // leave speculative demotions behind. When the move would
            // displace residents, the coldest region's hotness is the
            // eviction bar the candidate has to clear.
            let victim_whi =
                if free_enough { None } else { cold_order.first().map(|s| s.whi) };
            let verdict = admission.admit(
                m,
                &Candidate {
                    range: mig_range,
                    src: cur,
                    dst: dest,
                    node,
                    kind: MigrationKind::Promotion,
                    whi: cand.whi,
                    victim_whi,
                    tenant: cfg.tenant,
                },
            );
            if let Verdict::Reject(reason) = verdict {
                note_rejected(m, mig_range.len(), dest, reason);
                break; // Candidate vetoed outright: on to the next region.
            }
            let fits = free_enough
                || may_evict && make_space(
                    m,
                    engine,
                    admission,
                    &cold_order,
                    dest,
                    node,
                    mig_range.len(),
                    cand.whi,
                    hysteresis,
                    &mut demote_budget,
                    &mut stats,
                    cfg.tenant,
                );
            if fits {
                engine.migrate(m, mig_range, dest, node);
                stats.promoted += 1;
                stats.promoted_bytes += mig_range.len();
                m.obs_mut().reg.counter_add(obs::names::PROMOTIONS, 1);
                m.obs_mut().reg.counter_add(obs::names::PROMOTED_BYTES, mig_range.len());
                m.record_event(obs::EventKind::Promotion {
                    bytes: mig_range.len(),
                    src: cur,
                    dst: dest,
                });
                budget = budget.saturating_sub(mig_range.len());
                break;
            }
        }
    }
    stats
}

/// Returns the placement order for a new page under MTM's initial
/// placement policy: local slow tier first (Table 4), falling back to
/// other slow tiers, then fast tiers.
pub fn slow_first_order(m: &Machine, node: NodeId) -> Vec<ComponentId> {
    let topo = m.topology();
    let view = topo.view(node);
    let mut slow: Vec<ComponentId> = Vec::new();
    let mut fast: Vec<ComponentId> = Vec::new();
    for &c in view {
        if topo.components[c as usize].kind == tiersim::tier::MemKind::Pm {
            slow.push(c);
        } else {
            fast.push(c);
        }
    }
    slow.into_iter().chain(fast).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim::machine::MachineConfig;
    use tiersim::tier::tiny_two_tier;

    fn setup() -> (Machine, AdaptiveProfiler, MigrationEngine, MtmConfig) {
        let topo = tiny_two_tier(4 * PAGE_SIZE_2M, 32 * PAGE_SIZE_2M);
        let mut mc = MachineConfig::new(topo, 1);
        mc.interval_ns = 1.0e6;
        let mut m = Machine::new(mc);
        let r = VaRange::from_len(VirtAddr(0), 8 * PAGE_SIZE_2M);
        m.mmap("a", r, false);
        m.prefault_range(r, &[1]).unwrap(); // Everything starts slow.
        let mut cfg = MtmConfig::default();
        cfg.promote_bytes = 2 * PAGE_SIZE_2M;
        cfg.pebs_assist = false;
        let mut p = AdaptiveProfiler::new(cfg.clone(), 1);
        p.init(&mut m);
        let e = MigrationEngine::new(4, false); // Sync for determinism.
        (m, p, e, cfg)
    }

    fn set_whi(p: &mut AdaptiveProfiler, idx: usize, whi: f64) {
        p.regions_mut_for_test()[idx].whi = whi;
    }

    #[test]
    fn hottest_regions_promoted_to_fastest() {
        let (mut m, mut p, mut e, cfg) = setup();
        set_whi(&mut p, 3, 2.9);
        set_whi(&mut p, 5, 2.5);
        let stats = promote_and_demote(&mut m, &mut p, &mut e, &mut crate::admission::AlwaysAdmit, &cfg);
        assert_eq!(stats.promoted, 2);
        assert_eq!(stats.promoted_bytes, 2 * PAGE_SIZE_2M);
        // Regions 3 and 5 now live on the fast component.
        assert_eq!(m.component_of(VirtAddr(3 * PAGE_SIZE_2M)), Some(0));
        assert_eq!(m.component_of(VirtAddr(5 * PAGE_SIZE_2M)), Some(0));
        // A cold region stayed slow.
        assert_eq!(m.component_of(VirtAddr(0)), Some(1));
    }

    #[test]
    fn promotion_respects_budget() {
        let (mut m, mut p, mut e, cfg) = setup();
        for i in 0..8 {
            set_whi(&mut p, i, 2.0 + i as f64 * 0.1);
        }
        let stats = promote_and_demote(&mut m, &mut p, &mut e, &mut crate::admission::AlwaysAdmit, &cfg);
        assert_eq!(stats.promoted_bytes, cfg.promote_bytes);
    }

    #[test]
    fn cold_everything_promotes_nothing() {
        let (mut m, mut p, mut e, cfg) = setup();
        let stats = promote_and_demote(&mut m, &mut p, &mut e, &mut crate::admission::AlwaysAdmit, &cfg);
        assert_eq!(stats.promoted, 0);
        assert_eq!(stats.demoted, 0);
    }

    #[test]
    fn oversized_region_is_split_and_sliced() {
        let (mut m, mut p, mut e, cfg) = setup();
        // Merge everything into one big region, then make it hot.
        for r in p.regions_mut_for_test() {
            r.evidence = 1;
        }
        let merged = {
            // Force-merge by setting all hotness equal and running a pass.
            for i in 0..p.regions().len() {
                set_whi(&mut p, i, 0.0);
            }
            p.merge_all_for_test();
            p.regions().len()
        };
        assert_eq!(merged, 1);
        set_whi(&mut p, 0, 2.9);
        let stats = promote_and_demote(&mut m, &mut p, &mut e, &mut crate::admission::AlwaysAdmit, &cfg);
        assert_eq!(stats.promoted, 1);
        assert_eq!(stats.promoted_bytes, cfg.promote_bytes, "one budget-sized slice");
        assert!(p.regions().len() >= 2, "region split at the budget boundary");
        assert_eq!(m.component_of(VirtAddr(0)), Some(0));
        assert_eq!(m.component_of(VirtAddr(4 * PAGE_SIZE_2M)), Some(1));
    }

    #[test]
    fn full_fast_tier_triggers_demotion_of_colder_only() {
        let topo = tiny_two_tier(2 * PAGE_SIZE_2M, 32 * PAGE_SIZE_2M);
        let mut mc = MachineConfig::new(topo, 1);
        mc.interval_ns = 1.0e6;
        let mut m = Machine::new(mc);
        let r = VaRange::from_len(VirtAddr(0), 8 * PAGE_SIZE_2M);
        m.mmap("a", r, false);
        m.prefault_range(VaRange::from_len(VirtAddr(0), 2 * PAGE_SIZE_2M), &[0]).unwrap();
        m.prefault_range(VaRange::new(VirtAddr(2 * PAGE_SIZE_2M), r.end), &[1]).unwrap();
        let mut cfg = MtmConfig::default();
        cfg.promote_bytes = PAGE_SIZE_2M;
        cfg.pebs_assist = false;
        let mut p = AdaptiveProfiler::new(cfg.clone(), 1);
        p.init(&mut m);
        // Chunk 4 (slow) is hot; chunk 0 (fast) is cold, chunk 1 (fast) is
        // hotter than the candidate and must not be demoted.
        p.regions_mut_for_test()[4].whi = 2.5;
        p.regions_mut_for_test()[0].whi = 0.0;
        p.regions_mut_for_test()[1].whi = 2.9;
        let mut e = MigrationEngine::new(4, false);
        let stats = promote_and_demote(&mut m, &mut p, &mut e, &mut crate::admission::AlwaysAdmit, &cfg);
        assert_eq!(stats.promoted, 1);
        assert_eq!(stats.demoted, 1);
        assert_eq!(m.component_of(VirtAddr(4 * PAGE_SIZE_2M)), Some(0), "hot promoted");
        assert_eq!(m.component_of(VirtAddr(PAGE_SIZE_2M)), Some(0), "hotter resident kept");
        assert_eq!(m.component_of(VirtAddr(0)), Some(1), "cold resident demoted");
    }

    #[test]
    fn slow_first_order_places_pm_before_dram() {
        let (m, _p, _e, _cfg) = setup();
        let order = slow_first_order(&m, 0);
        assert_eq!(order, vec![1, 0], "PM first, DRAM as fallback");
    }
}
