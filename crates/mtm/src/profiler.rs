//! The adaptive memory profiler (Sec. 5).
//!
//! Each profiling interval the profiler scans a *planned* set of sampled
//! pages `num_scans` times (once per sub-interval), so a sample's count in
//! `[0, num_scans]` approximates its access frequency instead of a binary
//! accessed bit. At interval end it aggregates counts into per-region
//! hotness, merges/splits regions, enforces the profiling-overhead
//! constraint of Eq. 1 by rebalancing sample quotas (freed quota goes to
//! the top-variance regions), and plans the next interval's samples. On
//! the slowest tier, PEBS samples gate which regions are scanned at all
//! (Sec. 5.5). Every twelfth scanned page is additionally hint-poisoned so
//! faults attribute accesses to a CPU node (multi-view, Sec. 6.2).

use tiersim::addr::{VaRange, VirtAddr, PAGE_SIZE_4K};
use tiersim::frame::FrameSize;
use tiersim::machine::Machine;
use tiersim::rng::SplitMix64;

use crate::config::MtmConfig;
use crate::region::{Region, RegionList};
use crate::residency::majority_component;

/// One planned page sample.
#[derive(Clone, Copy, Debug)]
struct PlannedSample {
    page: VirtAddr,
    count: u32,
}

/// Per-interval profiler statistics (feeding Tables 3, 5, 7).
#[derive(Clone, Copy, Debug, Default)]
pub struct ProfilerStats {
    /// Profiling intervals completed.
    pub intervals: u64,
    /// Cumulative regions merged.
    pub merged: u64,
    /// Cumulative regions split.
    pub split: u64,
    /// Sum over intervals of the live region count (for averaging).
    pub region_count_sum: u64,
    /// Sum over intervals of bytes classified hot (for averaging).
    pub hot_bytes_sum: u64,
    /// Total planned page samples over the run.
    pub samples_planned: u64,
    /// The most recent Eq. 1 sample budget.
    pub last_num_ps: u64,
}

/// The adaptive profiler.
pub struct AdaptiveProfiler {
    cfg: MtmConfig,
    regions: RegionList,
    plan: Vec<PlannedSample>,
    tau_m_now: f64,
    scan_tick: u64,
    rng: SplitMix64,
    stats: ProfilerStats,
}

impl AdaptiveProfiler {
    /// Creates a profiler for a machine with `nodes` CPU nodes.
    pub fn new(cfg: MtmConfig, nodes: usize) -> AdaptiveProfiler {
        let tau_m = cfg.tau_m;
        let seed = cfg.seed;
        AdaptiveProfiler {
            cfg,
            regions: RegionList::new(nodes),
            plan: Vec::new(),
            tau_m_now: tau_m,
            scan_tick: 0,
            rng: SplitMix64::new(seed),
            stats: ProfilerStats::default(),
        }
    }

    /// The profiler's regions.
    pub fn regions(&self) -> &[Region] {
        self.regions.regions()
    }

    /// The underlying region list (for policy modules).
    pub fn region_list(&self) -> &RegionList {
        &self.regions
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> ProfilerStats {
        self.stats
    }

    /// The configuration in use.
    pub fn config(&self) -> &MtmConfig {
        &self.cfg
    }

    /// Currently escalated merge threshold (Sec. 5.3).
    pub fn tau_m_now(&self) -> f64 {
        self.tau_m_now
    }

    /// Test/harness access to mutate region state directly.
    #[doc(hidden)]
    pub fn regions_mut_for_test(&mut self) -> &mut [Region] {
        self.regions.regions_mut()
    }

    /// Test helper: merges every adjacent pair regardless of hotness.
    #[doc(hidden)]
    pub fn merge_all_for_test(&mut self) {
        self.regions.merge_pass(f64::INFINITY, self.cfg.num_scans, |_, _| true);
    }

    /// Splits the region covering `at` at that address (huge-page
    /// aligned), for migration-driven splitting by the policy (Sec. 5.2:
    /// smaller regions avoid unnecessary data movement).
    pub fn split_region_for_migration(&mut self, m: &Machine, at: VirtAddr) -> bool {
        let mut mid = at.page_4k();
        if matches!(m.page_table().translate(mid), Some(t) if t.size == FrameSize::Huge2M) {
            mid = mid.page_2m();
        }
        let Some(idx) = self.regions.covering_index(mid) else { return false };
        self.regions.split_at(idx, mid)
    }

    /// Bootstraps regions from the page table (call once VMAs exist) and
    /// plans the first interval's samples.
    pub fn init(&mut self, m: &mut Machine) {
        self.regions.sync_pde_bases(&m.page_table().valid_pde_bases());
        self.seed_initial_quotas();
        self.rebalance_quotas(self.num_ps(m));
        self.plan_next(m);
    }

    fn seed_initial_quotas(&mut self) {
        for r in self.regions.regions_mut() {
            r.quota = 1;
        }
    }

    /// Priming pass: clears the accessed bit of every planned sample a
    /// short window before the counted scan, so the counted scan answers
    /// "accessed within the last window" instead of "accessed since the
    /// distant past". This bounds the staleness of the accessed-bit signal
    /// the same way DAMON's check-then-reset sampling does, and is what
    /// lets a multi-scan count in `[0, num_scans]` resolve hotness instead
    /// of saturating (see DESIGN.md on time compression).
    pub fn prime_pass(&mut self, m: &mut Machine) {
        for s in &self.plan {
            // Priming only needs the clear; the accessed bit is not read.
            let _ = m.scan_page_clear(s.page);
        }
    }

    /// Performs one counted scan pass over the planned samples (one of
    /// the `num_scans` checks per interval).
    ///
    /// Split into a parallel read phase and a serial apply phase. The
    /// read phase samples each planned slot's accessed bit from the page
    /// table's packed side metadata — pure reads, fanned out as work
    /// packets ([`tiersim::engine`]) and reduced in plan order. The apply
    /// phase then walks the plan serially in its original order, clearing
    /// bits, bumping counts, and charging scan costs — so clock charges
    /// accumulate in exactly the serial order and the result is
    /// byte-identical for any `MTM_RUN_WORKERS`.
    ///
    /// Two plan slots can alias one mapping (samples land in the same
    /// huge page, or a region boundary repeats a page): serially, the
    /// first scan of a mapping takes the accessed bit and later scans of
    /// the same mapping read it cleared. The apply phase reproduces that
    /// with a seen-set keyed by mapping identity.
    pub fn scan_pass(&mut self, m: &mut Machine) {
        let every = self.cfg.hint_fault_every.max(1) as u64;
        let pre = {
            let pt = m.page_table();
            tiersim::engine::map_items(m.run_workers(), &self.plan, 256, |s| pt.accessed_at(s.page))
        };
        let mut seen = std::collections::BTreeSet::new();
        for (s, pre) in self.plan.iter_mut().zip(pre) {
            if let Some((accessed, size)) = pre {
                if m.scan_page_clear(s.page) {
                    let key = match size {
                        FrameSize::Huge2M => s.page.page_2m().0,
                        FrameSize::Base4K => s.page.page_4k().0,
                    };
                    // `insert` must run unconditionally: even a
                    // not-accessed first scan claims the mapping.
                    if seen.insert(key) && accessed {
                        s.count += 1;
                    }
                }
            }
            self.scan_tick += 1;
            if self.scan_tick % every == 0 {
                m.poison_page(s.page);
            }
        }
    }

    /// Eq. 1: the total page-sample budget for one interval.
    pub fn num_ps(&self, m: &Machine) -> u64 {
        // The amortized hint-fault cost is folded into the per-scan cost:
        // one fault (12x a scan) every `hint_fault_every` scans.
        let costs = &m.cfg.costs;
        // Each counted check costs two PTE scans (priming clear + read).
        let eff_scan = 2.0 * costs.one_scan_ns
            + costs.hint_fault_ns() / self.cfg.hint_fault_every.max(1) as f64;
        // Under multi-tenancy a global arbiter hands this instance a
        // fraction of the machine-wide overhead budget; the solo default
        // of 1.0 leaves the paper's Eq. 1 value bit-exact.
        let budget = m.cfg.interval_ns * self.cfg.overhead_target * self.cfg.profile_share;
        ((budget / (eff_scan * self.cfg.num_scans as f64)) as u64).max(1)
    }

    /// Installs this tenant's fraction of the machine-wide profiling
    /// budget (clamped to `[0, 1]`), effective from the next Eq. 1
    /// evaluation.
    pub fn set_profile_share(&mut self, share: f64) {
        self.cfg.profile_share = share.clamp(0.0, 1.0);
    }

    /// Serializes the profiler's dynamic state (checkpoint support). Of
    /// the configuration only `profile_share` is saved — it is the one
    /// field mutated at runtime (tenant arbitration via
    /// [`AdaptiveProfiler::set_profile_share`]); everything else comes
    /// from the [`MtmConfig`] the profiler is rebuilt with.
    pub fn save(&self, w: &mut obs::wire::Writer) {
        w.f64(self.cfg.profile_share);
        self.regions.save(w);
        w.varint(self.plan.len() as u64);
        for p in &self.plan {
            w.u64(p.page.0);
            w.varint(p.count as u64);
        }
        w.f64(self.tau_m_now);
        w.varint(self.scan_tick);
        w.u64(self.rng.state());
        let s = &self.stats;
        for v in [
            s.intervals,
            s.merged,
            s.split,
            s.region_count_sum,
            s.hot_bytes_sum,
            s.samples_planned,
            s.last_num_ps,
        ] {
            w.varint(v);
        }
    }

    /// Restores the dynamic state saved with [`AdaptiveProfiler::save`]
    /// into a profiler freshly built from the same configuration.
    pub fn load(&mut self, r: &mut obs::wire::Reader) -> Result<(), String> {
        self.cfg.profile_share = r.f64()?;
        self.regions = RegionList::load(r)?;
        let count = r.varint()? as usize;
        let mut plan = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let page = VirtAddr(r.u64()?);
            let count = r.varint()? as u32;
            plan.push(PlannedSample { page, count });
        }
        self.plan = plan;
        self.tau_m_now = r.f64()?;
        self.scan_tick = r.varint()?;
        self.rng = SplitMix64::from_state(r.u64()?);
        self.stats = ProfilerStats {
            intervals: r.varint()?,
            merged: r.varint()?,
            split: r.varint()?,
            region_count_sum: r.varint()?,
            hot_bytes_sum: r.varint()?,
            samples_planned: r.varint()?,
            last_num_ps: r.varint()?,
        };
        Ok(())
    }

    /// Finishes the interval: aggregates counts, reforms regions, enforces
    /// the overhead constraint, and plans the next interval.
    pub fn finish_interval(&mut self, m: &mut Machine) {
        self.stats.intervals += 1;
        self.attribute_hint_faults(m);
        self.mark_pebs_activity(m);
        let observed = self.aggregate_counts();
        self.classify_inactive_slowest(m, &observed);
        let zoom_splits = self.zoom_on_counter_hits();
        if zoom_splits > 0 {
            m.obs_mut().reg.counter_add(obs::names::PEBS_ZOOM_SPLITS, zoom_splits);
            m.record_event(obs::EventKind::PebsZoomSplit { splits: zoom_splits });
        }
        let num_ps = self.num_ps(m);
        self.stats.last_num_ps = num_ps;
        let formation_before = self.regions.stats();
        if self.cfg.adaptive_regions {
            let num_scans = self.cfg.num_scans;
            // Never merge regions living on different memory *kinds*
            // (DRAM vs PM): that would break the region <-> residency
            // alignment the policy relies on (a half-promoted area would
            // be re-selected). Same-kind components (e.g. the two PMs
            // under interleaved placement) may merge freely — migration
            // moves pages from any source.
            let topo = m.topology();
            let kind_of = |range: tiersim::addr::VaRange| {
                majority_component(m, range).map(|c| topo.components[c as usize].kind)
            };
            let freed = self.regions.merge_pass(self.tau_m_now, num_scans, |a, b| {
                kind_of(a.range) == kind_of(b.range)
            });
            let merged = self.regions.stats().merged - formation_before.merged;
            if merged > 0 {
                m.obs_mut().reg.counter_add(obs::names::REGIONS_MERGED, merged);
                m.record_event(obs::EventKind::RegionMerge { merged, freed_quota: freed });
            }
            if freed > 0 {
                m.obs_mut().reg.counter_add(obs::names::QUOTA_REDISTRIBUTIONS, 1);
                m.record_event(obs::EventKind::QuotaRedistributed { freed });
            }
            self.redistribute(freed);
            let pt = m.page_table();
            let tau_s = self.cfg.tau_s;
            self.regions.split_pass(tau_s, num_scans, |va| {
                matches!(pt.translate(va), Some(t) if t.size == FrameSize::Huge2M)
            });
            let split = self.regions.stats().split - formation_before.split;
            if split > 0 {
                m.obs_mut().reg.counter_add(obs::names::REGIONS_SPLIT, split);
                m.record_event(obs::EventKind::RegionSplit { split });
            }
        }
        self.regions.sync_pde_bases(&m.page_table().valid_pde_bases());
        // Escalate tau_m while the region count exceeds the budget.
        if self.cfg.overhead_control && self.cfg.adaptive_regions {
            if self.regions.len() as u64 > num_ps {
                let step = (self.cfg.num_scans as f64 / 6.0).max(0.25);
                self.tau_m_now = (self.tau_m_now + step).min(self.cfg.num_scans as f64);
                m.obs_mut().reg.counter_add(obs::names::TAU_M_ESCALATIONS, 1);
                m.record_event(obs::EventKind::TauMEscalated {
                    tau_m: self.tau_m_now,
                    regions: self.regions.len() as u64,
                    budget: num_ps,
                });
            } else {
                self.tau_m_now = self.cfg.tau_m;
            }
        }
        self.rebalance_quotas(num_ps);
        self.plan_next(m);
        m.obs_mut().reg.gauge_set(obs::names::TAU_M_NOW, self.tau_m_now);
        m.obs_mut().reg.gauge_set(obs::names::REGION_COUNT, self.regions.len() as f64);
        m.obs_mut().reg.gauge_set(obs::names::LAST_NUM_PS, num_ps as f64);
        // Bookkeeping for Tables 3/7.
        let fs = self.regions.stats();
        self.stats.merged = fs.merged;
        self.stats.split = fs.split;
        self.stats.region_count_sum += self.regions.len() as u64;
        self.stats.hot_bytes_sum += self.hot_bytes();
    }

    fn attribute_hint_faults(&mut self, m: &mut Machine) {
        for fault in m.drain_hint_faults() {
            if let Some(i) = self.regions.covering_index(fault.page) {
                let votes = &mut self.regions.regions_mut()[i].node_votes;
                let n = fault.node as usize;
                if n < votes.len() {
                    votes[n] += 1;
                }
            }
        }
        for r in self.regions.regions_mut() {
            r.refresh_home();
        }
    }

    fn mark_pebs_activity(&mut self, m: &mut Machine) {
        let samples = m.drain_pebs();
        if !self.cfg.pebs_assist {
            return;
        }
        // Counters run for the first 10 % of the interval (Sec. 5.5).
        let window = 0.1 * m.cfg.interval_ns;
        for s in samples {
            if s.t_ns > window {
                continue;
            }
            if let Some(i) = self.regions.covering_index(s.va) {
                let r = &mut self.regions.regions_mut()[i];
                r.pebs_active = true;
                r.pebs_page = Some(s.va.page_4k());
            }
        }
    }

    /// Event-driven zooming (Sec. 5.5: "once a region is accessed, it is
    /// immediately subject to high-quality profiling"): a counter sample
    /// landing in a large, not-yet-hot region isolates the sampled 2 MB
    /// chunk as its own region so its hotness is measured undiluted —
    /// this is how sparse hot structures (a visited bitmap inside
    /// gigabytes of cold graph data) are found quickly.
    fn zoom_on_counter_hits(&mut self) -> u64 {
        if !self.cfg.pebs_assist || !self.cfg.adaptive_regions {
            return 0;
        }
        let hot_threshold = 0.5 * self.cfg.num_scans as f64;
        let mut splits = 0;
        let candidates: Vec<VirtAddr> = self
            .regions
            .regions()
            .iter()
            .filter(|r| {
                r.pebs_active && r.len() > 2 * tiersim::addr::PAGE_SIZE_2M && r.whi < hot_threshold
            })
            .filter_map(|r| r.pebs_page)
            .collect();
        for page in candidates {
            if splits >= 32 {
                break;
            }
            if self.regions.isolate_chunk(page) {
                splits += 1;
            }
        }
        splits
    }

    /// Event-driven cold classification (Sec. 5.5): a slowest-tier region
    /// the counters saw no access to during the whole interval is cold.
    fn classify_inactive_slowest(&mut self, m: &Machine, observed: &[bool]) {
        if !self.cfg.pebs_assist {
            return;
        }
        let topo = m.topology().clone();
        let alpha = self.cfg.alpha;
        for i in 0..self.regions.len() {
            let (range, node, active) = {
                let r = &self.regions.regions()[i];
                (r.range, r.home_node, r.pebs_active)
            };
            // A region the scans actually measured this interval keeps
            // that observation; counter silence only classifies regions
            // we have no better evidence about.
            if active || observed.get(i).copied().unwrap_or(false) {
                continue;
            }
            let node = node.min(topo.nodes - 1);
            let is_slowest = majority_component(m, range)
                .map(|c| topo.tier_rank(node, c) == topo.num_components() - 1)
                .unwrap_or(false);
            if is_slowest {
                let r = &mut self.regions.regions_mut()[i];
                r.observe(0.0, alpha);
                r.spread = 0.0;
                r.evidence = r.evidence.saturating_add(1);
            }
        }
    }

    /// Aggregates the interval's sample counts into per-region hotness.
    /// Returns, per region index, whether it was observed by scans.
    fn aggregate_counts(&mut self) -> Vec<bool> {
        // Group planned samples by covering region.
        #[derive(Clone, Copy)]
        struct Agg {
            sum: u64,
            n: u32,
            min: u32,
            max: u32,
        }
        let mut agg: Vec<Option<Agg>> = vec![None; self.regions.len()];
        for s in &self.plan {
            let Some(i) = self.regions.covering_index(s.page) else { continue };
            let e = agg[i].get_or_insert(Agg { sum: 0, n: 0, min: u32::MAX, max: 0 });
            e.sum += s.count as u64;
            e.n += 1;
            e.min = e.min.min(s.count);
            e.max = e.max.max(s.count);
        }
        let alpha = self.cfg.alpha;
        let mut observed = vec![false; self.regions.len()];
        for (i, a) in agg.into_iter().enumerate() {
            if let Some(a) = a {
                let hi = a.sum as f64 / a.n as f64;
                let r = &mut self.regions.regions_mut()[i];
                r.observe(hi, alpha);
                r.spread = (a.max - a.min) as f64;
                r.sample_max = a.max as f64;
                r.evidence = r.evidence.saturating_add(1);
                observed[i] = true;
            }
        }
        self.plan.clear();
        observed
    }

    fn redistribute(&mut self, freed: u64) {
        if freed == 0 || self.regions.is_empty() {
            return;
        }
        if self.cfg.adaptive_sampling {
            // Give the freed quota to the regions with the largest hotness
            // variance over the last two intervals (top five, Sec. 5.2).
            let slots = self.cfg.top_variance_slots.max(1);
            let mut idx: Vec<usize> = (0..self.regions.len()).collect();
            idx.sort_by(|&a, &b| {
                let ra = &self.regions.regions()[a];
                let rb = &self.regions.regions()[b];
                rb.variance.partial_cmp(&ra.variance).expect("variance is finite")
            });
            let top = &idx[..slots.min(idx.len())];
            let share = (freed / top.len() as u64).max(1);
            let mut left = freed;
            for &i in top {
                let take = share.min(left);
                self.regions.regions_mut()[i].quota += take as u32;
                left -= take;
                if left == 0 {
                    break;
                }
            }
        } else {
            // Ablation: spread freed quota uniformly at random.
            let n = self.regions.len() as u64;
            for _ in 0..freed {
                let i = self.rng.below(n) as usize;
                self.regions.regions_mut()[i].quota += 1;
            }
        }
    }

    /// Rebalances quotas so the total equals the Eq. 1 budget (when
    /// overhead control is on) while every region keeps at least one.
    fn rebalance_quotas(&mut self, num_ps: u64) {
        let n = self.regions.len() as u64;
        if n == 0 {
            return;
        }
        if !self.cfg.overhead_control {
            // Ablation "w/o OC": every region keeps at least one sample and
            // nothing is trimmed, so the scan count tracks the region count
            // instead of the Eq. 1 budget.
            return;
        }
        let target = num_ps.max(n);
        let total = self.regions.total_quota();
        if total > target {
            // Trim from the lowest-variance regions first.
            let mut idx: Vec<usize> = (0..self.regions.len()).collect();
            idx.sort_by(|&a, &b| {
                let ra = &self.regions.regions()[a];
                let rb = &self.regions.regions()[b];
                ra.variance.partial_cmp(&rb.variance).expect("variance is finite")
            });
            let mut excess = total - target;
            for &i in &idx {
                if excess == 0 {
                    break;
                }
                let q = self.regions.regions()[i].quota;
                if q > 1 {
                    let take = (q as u64 - 1).min(excess);
                    self.regions.regions_mut()[i].quota = q - take as u32;
                    excess -= take;
                }
            }
        } else if total < target {
            self.redistribute(target - total);
        }
    }

    /// Chooses the sampled pages for the next interval.
    fn plan_next(&mut self, m: &mut Machine) {
        let topo = m.topology().clone();
        let pebs_assist = self.cfg.pebs_assist;
        let mut plan = Vec::new();
        for i in 0..self.regions.len() {
            let (range, quota, node, active, pebs_page) = {
                let r = &self.regions.regions()[i];
                (r.range, r.quota, r.home_node, r.pebs_active, r.pebs_page)
            };
            let comp = majority_component(m, range);
            let is_slowest = comp
                .map(|c| topo.tier_rank(node.min(topo.nodes - 1), c) == topo.num_components() - 1)
                .unwrap_or(false);
            if pebs_assist && is_slowest {
                // Counter-gated: regions the counters saw accesses in are
                // "subject to high-quality profiling" (Sec. 5.5) — the
                // captured page plus the region's quota of samples; silent
                // regions are not scanned at all.
                if active {
                    // Normalize the captured address to its mapping base
                    // so a huge PTE is scanned once, not twice.
                    let captured = pebs_page.map(|p| match m.page_table().translate(p) {
                        Some(t) if t.size == FrameSize::Huge2M => p.page_2m(),
                        _ => p.page_4k(),
                    });
                    if let Some(page) = captured {
                        plan.push(PlannedSample { page, count: 0 });
                    }
                    for page in self.pick_pages(m, range, quota) {
                        if Some(page) != captured {
                            plan.push(PlannedSample { page, count: 0 });
                        }
                    }
                }
            } else {
                for page in self.pick_pages(m, range, quota) {
                    plan.push(PlannedSample { page, count: 0 });
                }
            }
            let r = &mut self.regions.regions_mut()[i];
            r.pebs_active = false;
        }
        self.stats.samples_planned += plan.len() as u64;
        self.plan = plan;
    }

    /// Picks up to `quota` distinct mapped page bases within `range` by
    /// random probing; a probe landing in a huge mapping samples the huge
    /// page itself (Sec. 5.4).
    fn pick_pages(&mut self, m: &Machine, range: VaRange, quota: u32) -> Vec<VirtAddr> {
        let pages_in_range = range.len() / PAGE_SIZE_4K;
        if pages_in_range == 0 || quota == 0 {
            return Vec::new();
        }
        let want = quota.min(pages_in_range as u32) as usize;
        let mut out: Vec<VirtAddr> = Vec::with_capacity(want);
        let mut attempts = 0;
        while out.len() < want && attempts < want * 4 {
            attempts += 1;
            let off = self.rng.below(pages_in_range) * PAGE_SIZE_4K;
            let va = VirtAddr(range.start.0 + off);
            let Some(t) = m.page_table().translate(va) else { continue };
            let page = match t.size {
                FrameSize::Huge2M => va.page_2m(),
                FrameSize::Base4K => va.page_4k(),
            };
            if !out.contains(&page) {
                out.push(page);
            }
        }
        out
    }

    /// Bytes covered by regions currently classified hot (EMA at or above
    /// half the maximum hotness).
    pub fn hot_bytes(&self) -> u64 {
        let threshold = self.cfg.num_scans as f64 / 2.0;
        self.regions
            .regions()
            .iter()
            .filter(|r| r.whi >= threshold)
            .map(|r| r.len())
            .sum()
    }

    /// Ranges currently classified at least `threshold` hot (for recall /
    /// accuracy studies, Fig. 1).
    pub fn hot_ranges_above(&self, threshold: f64) -> Vec<VaRange> {
        self.regions
            .regions()
            .iter()
            .filter(|r| r.whi >= threshold)
            .map(|r| r.range)
            .collect()
    }

    /// The hottest regions adding up to at most `bytes` (ties broken by
    /// address order).
    pub fn top_ranges_by_bytes(&self, bytes: u64) -> Vec<VaRange> {
        let mut idx: Vec<usize> = (0..self.regions.len()).collect();
        idx.sort_by(|&a, &b| {
            let ra = &self.regions.regions()[a];
            let rb = &self.regions.regions()[b];
            rb.whi.partial_cmp(&ra.whi).expect("whi is finite")
        });
        let mut out = Vec::new();
        let mut acc = 0;
        for i in idx {
            let r = &self.regions.regions()[i];
            if acc + r.len() > bytes && !out.is_empty() {
                break;
            }
            acc += r.len();
            out.push(r.range);
            if acc >= bytes {
                break;
            }
        }
        out
    }

    /// Metadata footprint estimate in bytes (Table 5): region records plus
    /// the sample plan and histogram bookkeeping.
    pub fn metadata_bytes(&self) -> u64 {
        const REGION_RECORD: u64 = 144;
        const PLAN_RECORD: u64 = 24;
        self.regions.len() as u64 * REGION_RECORD + self.plan.len() as u64 * PLAN_RECORD
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim::addr::PAGE_SIZE_2M;
    use tiersim::machine::{AccessKind, MachineConfig};
    use tiersim::tier::tiny_two_tier;

    fn machine_with_mapping(chunks: u64) -> Machine {
        let topo = tiny_two_tier(64 * PAGE_SIZE_2M, 64 * PAGE_SIZE_2M);
        let mut cfg = MachineConfig::new(topo, 1);
        cfg.interval_ns = 1.0e6;
        let mut m = Machine::new(cfg);
        let range = VaRange::from_len(VirtAddr(0), chunks * PAGE_SIZE_2M);
        m.mmap("a", range, false);
        m.prefault_range(range, &[0]).unwrap();
        m
    }

    fn profiler(m: &mut Machine) -> AdaptiveProfiler {
        let mut cfg = MtmConfig::default();
        cfg.pebs_assist = false;
        let mut p = AdaptiveProfiler::new(cfg, 1);
        p.init(m);
        p
    }

    #[test]
    fn init_forms_one_region_per_chunk() {
        let mut m = machine_with_mapping(8);
        let p = profiler(&mut m);
        assert_eq!(p.regions().len(), 8);
        assert!(p.regions().iter().all(|r| r.len() == PAGE_SIZE_2M));
    }

    #[test]
    fn hot_region_gains_hotness_over_intervals() {
        let mut m = machine_with_mapping(4);
        let mut p = profiler(&mut m);
        // Interval loop: touch chunk 0 heavily before every scan pass.
        for _ in 0..4 {
            for _k in 0..p.cfg.num_scans {
                for page in 0..512u64 {
                    m.access(0, VirtAddr(page * PAGE_SIZE_4K), AccessKind::Read);
                }
                p.scan_pass(&mut m);
            }
            p.finish_interval(&mut m);
        }
        let hot = p
            .regions()
            .iter()
            .find(|r| r.range.contains(VirtAddr(0)))
            .expect("region covering chunk 0");
        assert!(hot.whi > 1.0, "hot chunk whi = {}", hot.whi);
        // An untouched chunk stays cold.
        let cold = p
            .regions()
            .iter()
            .find(|r| r.range.contains(VirtAddr(3 * PAGE_SIZE_2M)))
            .expect("cold region");
        assert!(cold.whi < 0.5, "cold chunk whi = {}", cold.whi);
    }

    #[test]
    fn quota_total_tracks_eq1_budget() {
        let mut m = machine_with_mapping(8);
        let mut p = profiler(&mut m);
        for _ in 0..3 {
            for _k in 0..p.cfg.num_scans {
                p.scan_pass(&mut m);
            }
            p.finish_interval(&mut m);
        }
        let num_ps = p.num_ps(&m);
        let total = p.region_list().total_quota();
        assert_eq!(total, num_ps.max(p.regions().len() as u64), "budget respected");
    }

    #[test]
    fn profiling_cost_respects_overhead_target() {
        let mut m = machine_with_mapping(8);
        let mut p = profiler(&mut m);
        // Two intervals of pure profiling.
        for _ in 0..2 {
            for _k in 0..p.cfg.num_scans {
                p.scan_pass(&mut m);
            }
            p.finish_interval(&mut m);
        }
        let profiling = m.breakdown().profiling_ns;
        let budget = 2.0 * m.cfg.interval_ns * p.cfg.overhead_target;
        assert!(
            profiling <= budget * 1.5,
            "profiling {profiling} within ~1.5x of budget {budget}"
        );
    }

    #[test]
    fn similar_neighbours_merge() {
        let mut m = machine_with_mapping(8);
        let mut p = profiler(&mut m);
        // No accesses at all: all regions equally cold, so they merge.
        for _ in 0..3 {
            for _k in 0..p.cfg.num_scans {
                p.scan_pass(&mut m);
            }
            p.finish_interval(&mut m);
        }
        assert!(p.regions().len() < 8, "cold regions merged ({} left)", p.regions().len());
        assert!(p.stats().merged > 0);
    }

    #[test]
    fn divergent_region_splits() {
        let mut m = machine_with_mapping(2);
        let mut p = profiler(&mut m);
        // First merge the two chunks into one region (both cold).
        for _ in 0..2 {
            for _k in 0..p.cfg.num_scans {
                p.scan_pass(&mut m);
            }
            p.finish_interval(&mut m);
        }
        assert_eq!(p.regions().len(), 1);
        // Give the merged region a large quota so samples land on both
        // sides, then heat only the first half before every scan.
        p.regions.regions_mut()[0].quota = 64;
        p.plan_next_public_for_test(&mut m);
        for _ in 0..3 {
            for _k in 0..p.cfg.num_scans {
                for page in 0..256u64 {
                    m.access(0, VirtAddr(page * PAGE_SIZE_4K), AccessKind::Read);
                }
                p.scan_pass(&mut m);
            }
            p.finish_interval(&mut m);
            if p.regions().len() > 1 {
                break;
            }
            // Keep quota high for the next try.
            for r in p.regions.regions_mut() {
                r.quota = r.quota.max(32);
            }
            p.plan_next_public_for_test(&mut m);
        }
        assert!(p.regions().len() >= 2, "hot/cold split happened");
        assert!(p.stats().split > 0);
    }

    #[test]
    fn hot_ranges_reflect_threshold() {
        let mut m = machine_with_mapping(2);
        let mut p = profiler(&mut m);
        p.regions.regions_mut()[0].whi = 2.5;
        p.regions.regions_mut()[1].whi = 0.1;
        assert_eq!(p.hot_ranges_above(1.5).len(), 1);
        assert_eq!(p.hot_bytes(), PAGE_SIZE_2M);
        let top = p.top_ranges_by_bytes(PAGE_SIZE_2M);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0], p.regions()[0].range);
    }

    #[test]
    fn metadata_footprint_is_small() {
        let mut m = machine_with_mapping(16);
        let p = profiler(&mut m);
        // 16 regions of metadata against 32 MB mapped: well under 0.1 %.
        assert!(p.metadata_bytes() < 16 * 1024);
    }

    impl AdaptiveProfiler {
        /// Test-only: re-plan with current quotas.
        pub fn plan_next_public_for_test(&mut self, m: &mut Machine) {
            self.plan_next(m);
        }
    }
}
