//! `mtm` — reproduction of MTM: Rethinking Memory Profiling and Migration
//! for Multi-Tiered Large Memory (EuroSys '24).
//!
//! The crate implements the paper's three contributions over the
//! [`tiersim`] substrate:
//!
//! 1. **Adaptive memory profiling** (Sec. 5): multi-scan PTE sampling with
//!    the overhead constraint of Eq. 1, variance-guided sample-quota
//!    redistribution, huge-page-aware region merge/split, and
//!    performance-counter-assisted scanning of the slowest tier.
//! 2. **Fast promotion / slow demotion** (Sec. 6): a global EMA histogram
//!    over all regions in all tiers promotes the hottest regions directly
//!    to the fastest tier and demotes step-by-step, with multi-view-aware
//!    destinations.
//! 3. **Adaptive migration** (Sec. 7): `move_memory_regions()`, an
//!    asynchronous helper-thread page copy with write tracking that
//!    switches to a synchronous copy on the first write.
//!
//! [`MtmManager`] packages all three behind [`tiersim::sim::MemoryManager`].
//!
//! # Examples
//!
//! ```
//! use mtm::{MtmConfig, MtmManager};
//! use tiersim::machine::{Machine, MachineConfig};
//! use tiersim::tier::optane_four_tier;
//!
//! let topo = optane_four_tier(1024);
//! let nodes = topo.nodes as usize;
//! let machine = Machine::new(MachineConfig::new(topo, 8));
//! let manager = MtmManager::new(MtmConfig::default(), nodes);
//! # let _ = (machine, manager);
//! ```

pub mod admission;
pub mod arbiter;
pub mod config;
pub mod daemon;
pub mod histogram;
pub mod migration;
pub mod policy;
pub mod profiler;
pub mod region;
pub mod residency;

pub use admission::{AdmissionKind, AdmissionPolicy, Candidate, MigrationKind, Verdict};
pub use arbiter::{ArbiterKind, ArbiterPolicy, TenantDemand};
pub use config::{InitialPlacement, MtmConfig};
pub use daemon::MtmManager;
pub use histogram::HotnessHistogram;
pub use migration::{move_memory_regions_once, nimble_move, MigrationEngine};
pub use profiler::AdaptiveProfiler;
pub use region::{Region, RegionList};
