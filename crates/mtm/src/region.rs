//! Memory regions: formation, merging, and splitting (Sec. 5.1, 5.4).
//!
//! A region is a contiguous virtual range profiled as a unit. Regions start
//! as one per valid last-level PDE (2 MB), then merge when adjacent regions
//! show similar hotness (difference below `tau_m`) and split when the
//! samples inside one region disagree (spread above `tau_s`). Splits are
//! huge-page-aware: a split point falling inside a huge mapping is moved to
//! the huge-page boundary so one huge page is never profiled by two regions.

use tiersim::addr::{VaRange, VirtAddr, PAGE_SIZE_2M, PAGE_SIZE_4K};

/// One profiled memory region.
#[derive(Clone, Debug)]
pub struct Region {
    /// Virtual range covered.
    pub range: VaRange,
    /// Page-sample quota for the next profiling interval.
    pub quota: u32,
    /// Hotness indication of the most recent interval (average scan count
    /// over sampled pages, in `[0, num_scans]`).
    pub hi: f64,
    /// Hotness indication of the interval before.
    pub prev_hi: f64,
    /// Exponential moving average of hotness (Eq. 2).
    pub whi: f64,
    /// `|hi - prev_hi|`: the variance signal driving quota redistribution.
    pub variance: f64,
    /// Max-min scan-count spread across this region's samples in the most
    /// recent interval (the split signal).
    pub spread: f64,
    /// Largest single-sample scan count in the most recent interval.
    pub sample_max: f64,
    /// Per-node access attribution votes from hint faults (multi-view).
    pub node_votes: Vec<u32>,
    /// Sticky home-node assignment derived from the votes: reassigned
    /// only when another node clearly dominates (2x the votes), so
    /// near-50/50 shared regions do not ping-pong between per-socket
    /// destinations on sampling noise.
    pub home_node: u16,
    /// Whether PEBS saw an access in this region in the current interval.
    pub pebs_active: bool,
    /// Most recent PEBS-captured page in this region, used as the sample
    /// page for slowest-tier profiling (Sec. 5.5).
    pub pebs_page: Option<VirtAddr>,
    /// Number of intervals that produced direct evidence about this
    /// region (scan samples, or counters confirming inactivity). Regions
    /// without evidence are never merged away.
    pub evidence: u32,
}

impl Region {
    /// Creates a cold region over `range` with one sample of quota.
    pub fn new(range: VaRange, nodes: usize) -> Region {
        Region {
            range,
            quota: 1,
            hi: 0.0,
            prev_hi: 0.0,
            whi: 0.0,
            variance: 0.0,
            spread: 0.0,
            sample_max: 0.0,
            node_votes: vec![0; nodes],
            home_node: 0,
            pebs_active: false,
            pebs_page: None,
            evidence: 0,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.range.len()
    }

    /// True if the region covers no bytes (never constructed normally).
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// The node with the most attributed accesses (lowest index wins
    /// ties, so an unknown region defaults to node 0).
    pub fn dominant_node(&self) -> u16 {
        let mut best = 0usize;
        for (i, &v) in self.node_votes.iter().enumerate() {
            if v > self.node_votes[best] {
                best = i;
            }
        }
        best as u16
    }

    /// Fraction of attribution votes belonging to the home node (0 when
    /// nothing is known).
    pub fn home_confidence(&self) -> f64 {
        let total: u32 = self.node_votes.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.node_votes[self.home_node as usize] as f64 / total as f64
    }

    /// Updates the sticky home node: switch only on a clear (2x) majority.
    pub fn refresh_home(&mut self) {
        let best = self.dominant_node() as usize;
        let cur = self.home_node as usize;
        if best != cur && self.node_votes[best] > 2 * self.node_votes[cur].max(1) {
            self.home_node = best as u16;
        }
    }

    /// Updates the EMA after a new `hi` observation (Eq. 2).
    pub fn observe(&mut self, hi: f64, alpha: f64) {
        self.prev_hi = self.hi;
        self.hi = hi;
        self.variance = (self.hi - self.prev_hi).abs();
        self.whi = alpha * hi + (1.0 - alpha) * self.whi;
    }
}

/// Counters for Table 7.
#[derive(Clone, Copy, Debug, Default)]
pub struct FormationStats {
    /// Regions merged over the lifetime.
    pub merged: u64,
    /// Regions split over the lifetime.
    pub split: u64,
}

/// The ordered, disjoint set of regions.
#[derive(Debug, Default)]
pub struct RegionList {
    regions: Vec<Region>,
    stats: FormationStats,
    nodes: usize,
}

impl RegionList {
    /// Creates an empty list for a machine with `nodes` CPU nodes.
    pub fn new(nodes: usize) -> RegionList {
        RegionList { regions: Vec::new(), stats: FormationStats::default(), nodes: nodes.max(1) }
    }

    /// The regions in address order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Mutable access to the regions (kept address-ordered by callers).
    pub fn regions_mut(&mut self) -> &mut [Region] {
        &mut self.regions
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True if no regions exist yet.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Lifetime merge/split counters.
    pub fn stats(&self) -> FormationStats {
        self.stats
    }

    /// Sum of sample quotas.
    pub fn total_quota(&self) -> u64 {
        self.regions.iter().map(|r| r.quota as u64).sum()
    }

    /// Incorporates newly valid 2 MB PDE bases: any base not covered by an
    /// existing region becomes a new region ("whenever a last-level PDE is
    /// set as valid, the corresponding memory region is subject to
    /// profiling"). Returns how many regions were added.
    pub fn sync_pde_bases(&mut self, bases: &[VirtAddr]) -> usize {
        let mut added = 0;
        for &base in bases {
            if self.covering_index(base).is_none() {
                let range = VaRange::from_len(base, PAGE_SIZE_2M);
                let at = self.regions.partition_point(|r| r.range.start < base);
                self.regions.insert(at, Region::new(range, self.nodes));
                added += 1;
            }
        }
        debug_assert!(self.is_well_formed());
        added
    }

    /// Index of the region containing `va`, if any.
    pub fn covering_index(&self, va: VirtAddr) -> Option<usize> {
        let idx = self.regions.partition_point(|r| r.range.end.0 <= va.0);
        (idx < self.regions.len() && self.regions[idx].range.contains(va)).then_some(idx)
    }

    /// Merges adjacent region pairs whose most-recent hotness differs by
    /// less than the effective merge threshold. Returns the freed sample
    /// quota (to be redistributed by the caller).
    ///
    /// The effective threshold is `tau_m` rescaled to the pair's observed
    /// hotness range: `max(tau_m * pair_max / num_scans, 0.15 * tau_m)`.
    /// When scan counts saturate toward `num_scans` (the regime the
    /// paper's absolute `tau_m` assumes) this reduces to plain `tau_m`;
    /// under time compression, where hot counts stay below saturation,
    /// the threshold shrinks proportionally so hot and cold regions do
    /// not merge (see DESIGN.md).
    pub fn merge_pass(
        &mut self,
        tau_m: f64,
        num_scans: u32,
        mut can_merge: impl FnMut(&Region, &Region) -> bool,
    ) -> u64 {
        let mut freed = 0u64;
        let mut out: Vec<Region> = Vec::with_capacity(self.regions.len());
        for region in self.regions.drain(..) {
            match out.last_mut() {
                Some(prev)
                    if prev.range.end == region.range.start
                        && prev.evidence > 0
                        && region.evidence > 0
                        && (prev.hi - region.hi).abs()
                            < (tau_m * prev.hi.max(region.hi) / num_scans.max(1) as f64)
                                .max(0.15 * tau_m)
                        && can_merge(prev, &region) =>
                {
                    // Merge `region` into `prev`.
                    let a_len = prev.len() as f64;
                    let b_len = region.len() as f64;
                    let w = a_len / (a_len + b_len);
                    prev.hi = prev.hi * w + region.hi * (1.0 - w);
                    prev.prev_hi = prev.prev_hi * w + region.prev_hi * (1.0 - w);
                    prev.whi = prev.whi * w + region.whi * (1.0 - w);
                    prev.variance = prev.variance.max(region.variance);
                    prev.spread = prev.spread.max(region.spread);
                    prev.sample_max = prev.sample_max.max(region.sample_max);
                    prev.pebs_active |= region.pebs_active;
                    prev.pebs_page = prev.pebs_page.or(region.pebs_page);
                    prev.evidence = prev.evidence.min(region.evidence);
                    for (a, b) in prev.node_votes.iter_mut().zip(&region.node_votes) {
                        *a += b;
                    }
                    // The home of the larger constituent wins.
                    if region.len() > prev.len() {
                        prev.home_node = region.home_node;
                    }
                    // "The combined total of page samples from both regions
                    // is halved, under the constraint that the new region
                    // has at least one sample."
                    let combined = prev.quota + region.quota;
                    let kept = (combined / 2).max(1);
                    freed += (combined - kept) as u64;
                    prev.quota = kept;
                    prev.range = VaRange::new(prev.range.start, region.range.end);
                    self.stats.merged += 1;
                }
                _ => out.push(region),
            }
        }
        self.regions = out;
        debug_assert!(self.is_well_formed());
        freed
    }

    /// Splits every region whose sample spread exceeds the effective split
    /// threshold into two halves, keeping the split point off huge-page
    /// interiors via `is_huge_at`. Quotas split evenly (minimum one each
    /// side). Like [`RegionList::merge_pass`], the threshold is `tau_s`
    /// rescaled to the region's observed scan-count range.
    pub fn split_pass(
        &mut self,
        tau_s: f64,
        num_scans: u32,
        mut is_huge_at: impl FnMut(VirtAddr) -> bool,
    ) -> u64 {
        let mut added_quota = 0u64;
        let mut out: Vec<Region> = Vec::with_capacity(self.regions.len());
        for region in self.regions.drain(..) {
            let tau_s_eff = (tau_s * region.sample_max / num_scans.max(1) as f64).max(0.15 * tau_s);
            if region.spread <= tau_s_eff || region.len() < 2 * PAGE_SIZE_4K {
                out.push(region);
                continue;
            }
            // Candidate midpoint, page-aligned.
            let mut mid = VirtAddr((region.range.start.0 + region.len() / 2) & !(PAGE_SIZE_4K - 1));
            if is_huge_at(mid) {
                // Move to the huge-page boundary (Sec. 5.4).
                mid = mid.page_2m();
            }
            if mid <= region.range.start || mid >= region.range.end {
                out.push(region);
                continue;
            }
            let q_left = (region.quota / 2).max(1);
            let q_right = (region.quota - region.quota / 2).max(1);
            added_quota += (q_left + q_right).saturating_sub(region.quota) as u64;
            let mut left = region.clone();
            left.range = VaRange::new(region.range.start, mid);
            left.quota = q_left;
            left.spread = 0.0;
            let mut right = region;
            right.range = VaRange::new(mid, right.range.end);
            right.quota = q_right;
            right.spread = 0.0;
            out.push(left);
            out.push(right);
            self.stats.split += 1;
        }
        self.regions = out;
        debug_assert!(self.is_well_formed());
        added_quota
    }

    /// Splits the region at `idx` at address `mid` (exclusive end of the
    /// left half), cloning metadata and dividing the quota. Returns
    /// `false` (and does nothing) if `mid` does not fall strictly inside
    /// the region. Used by the policy for migration-driven splits of
    /// regions larger than the per-interval budget.
    pub fn split_at(&mut self, idx: usize, mid: VirtAddr) -> bool {
        let region = &self.regions[idx];
        if mid <= region.range.start || mid >= region.range.end {
            return false;
        }
        let mut left = region.clone();
        let mut right = region.clone();
        left.range = VaRange::new(region.range.start, mid);
        right.range = VaRange::new(mid, region.range.end);
        left.quota = (region.quota / 2).max(1);
        right.quota = (region.quota - region.quota / 2).max(1);
        self.regions[idx] = left;
        self.regions.insert(idx + 1, right);
        self.stats.split += 1;
        debug_assert!(self.is_well_formed());
        true
    }

    /// Isolates the 2 MB-aligned chunk containing `page` as its own
    /// region (splitting its container once or twice). Returns `true` if
    /// any split happened. Used for event-driven zooming: a counter
    /// sample inside a large cold region pinpoints where profiling
    /// should focus (Sec. 5.5).
    pub fn isolate_chunk(&mut self, page: VirtAddr) -> bool {
        let Some(idx) = self.covering_index(page) else { return false };
        let chunk_start = page.page_2m().max(self.regions[idx].range.start);
        let chunk_end =
            VirtAddr(page.page_2m().0 + PAGE_SIZE_2M).min(self.regions[idx].range.end);
        let mut split_any = false;
        if self.split_at(idx, chunk_start) {
            split_any = true;
        }
        if let Some(i2) = self.covering_index(page) {
            if self.split_at(i2, chunk_end) {
                split_any = true;
            }
        }
        if split_any {
            if let Some(i3) = self.covering_index(page) {
                // The isolated chunk is a fresh hypothesis: strip its
                // inherited evidence so it cannot merge away before being
                // profiled once.
                self.regions[i3].evidence = 0;
                self.regions[i3].quota = self.regions[i3].quota.max(1);
            }
        }
        split_any
    }

    /// Checks ordering and disjointness (debug assertions and tests).
    pub fn is_well_formed(&self) -> bool {
        self.regions.windows(2).all(|w| w[0].range.end <= w[1].range.start)
            && self.regions.iter().all(|r| !r.is_empty() && r.quota >= 1)
    }

    /// Serializes the region set and formation counters (checkpoint
    /// support).
    pub fn save(&self, w: &mut obs::wire::Writer) {
        w.varint(self.nodes as u64);
        w.varint(self.stats.merged);
        w.varint(self.stats.split);
        w.varint(self.regions.len() as u64);
        for r in &self.regions {
            w.u64(r.range.start.0);
            w.u64(r.range.end.0);
            w.u32(r.quota);
            w.f64(r.hi);
            w.f64(r.prev_hi);
            w.f64(r.whi);
            w.f64(r.variance);
            w.f64(r.spread);
            w.f64(r.sample_max);
            w.varint(r.node_votes.len() as u64);
            for &v in &r.node_votes {
                w.u32(v);
            }
            w.u16(r.home_node);
            w.bool(r.pebs_active);
            match r.pebs_page {
                Some(p) => {
                    w.bool(true);
                    w.u64(p.0);
                }
                None => w.bool(false),
            }
            w.u32(r.evidence);
        }
    }

    /// Restores a list saved with [`RegionList::save`].
    pub fn load(r: &mut obs::wire::Reader) -> Result<RegionList, String> {
        let nodes = r.varint()? as usize;
        let stats = FormationStats { merged: r.varint()?, split: r.varint()? };
        let count = r.varint()? as usize;
        let mut regions = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let range = VaRange::new(VirtAddr(r.u64()?), VirtAddr(r.u64()?));
            let quota = r.u32()?;
            let hi = r.f64()?;
            let prev_hi = r.f64()?;
            let whi = r.f64()?;
            let variance = r.f64()?;
            let spread = r.f64()?;
            let sample_max = r.f64()?;
            let votes = r.varint()? as usize;
            let mut node_votes = Vec::with_capacity(votes.min(1024));
            for _ in 0..votes {
                node_votes.push(r.u32()?);
            }
            let home_node = r.u16()?;
            let pebs_active = r.bool()?;
            let pebs_page = if r.bool()? { Some(VirtAddr(r.u64()?)) } else { None };
            let evidence = r.u32()?;
            regions.push(Region {
                range,
                quota,
                hi,
                prev_hi,
                whi,
                variance,
                spread,
                sample_max,
                node_votes,
                home_node,
                pebs_active,
                pebs_page,
                evidence,
            });
        }
        let list = RegionList { regions, stats, nodes };
        if !list.is_well_formed() {
            return Err("restored region list is malformed".to_string());
        }
        Ok(list)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bases(chunks: &[u64]) -> Vec<VirtAddr> {
        chunks.iter().map(|&c| VirtAddr(c * PAGE_SIZE_2M)).collect()
    }

    fn evidence_all(list: &mut RegionList) {
        for r in list.regions_mut() {
            r.evidence = 1;
        }
    }

    #[test]
    fn sync_creates_one_region_per_pde() {
        let mut list = RegionList::new(2);
        assert_eq!(list.sync_pde_bases(&bases(&[0, 1, 5])), 3);
        assert_eq!(list.len(), 3);
        assert_eq!(list.sync_pde_bases(&bases(&[0, 1, 5])), 0, "idempotent");
        assert_eq!(list.sync_pde_bases(&bases(&[2])), 1);
        assert!(list.is_well_formed());
    }

    #[test]
    fn covering_index_finds_region() {
        let mut list = RegionList::new(1);
        list.sync_pde_bases(&bases(&[0, 4]));
        assert_eq!(list.covering_index(VirtAddr(100)), Some(0));
        assert_eq!(list.covering_index(VirtAddr(4 * PAGE_SIZE_2M + 5)), Some(1));
        assert_eq!(list.covering_index(VirtAddr(2 * PAGE_SIZE_2M)), None);
    }

    #[test]
    fn merge_requires_adjacency_and_similarity() {
        let mut list = RegionList::new(1);
        list.sync_pde_bases(&bases(&[0, 1, 3]));
        list.regions_mut()[0].hi = 1.0;
        list.regions_mut()[1].hi = 1.2;
        list.regions_mut()[2].hi = 1.0;
        evidence_all(&mut list);
        let freed = list.merge_pass(0.5, 3, |_, _| true);
        // Regions 0 and 1 merge (adjacent, similar); region at chunk 3 is
        // not adjacent and stays.
        assert_eq!(list.len(), 2);
        assert_eq!(list.regions()[0].len(), 2 * PAGE_SIZE_2M);
        assert_eq!(freed, 1, "two quotas of 1 halve to 1, freeing 1");
        assert_eq!(list.stats().merged, 1);
    }

    #[test]
    fn merge_respects_tau_m() {
        let mut list = RegionList::new(1);
        list.sync_pde_bases(&bases(&[0, 1]));
        list.regions_mut()[0].hi = 0.0;
        list.regions_mut()[1].hi = 2.0;
        evidence_all(&mut list);
        list.merge_pass(1.0, 3, |_, _| true);
        assert_eq!(list.len(), 2, "hotness gap above tau_m blocks the merge");
    }

    #[test]
    fn merged_hotness_is_size_weighted() {
        let mut list = RegionList::new(1);
        list.sync_pde_bases(&bases(&[0, 1, 2]));
        list.regions_mut()[0].hi = 3.0;
        list.regions_mut()[1].hi = 3.0;
        evidence_all(&mut list);
        list.merge_pass(0.5, 3, |_, _| true);
        // First two merged into a 4 MB region with hi = 3.
        list.regions_mut()[1].hi = 3.0; // chunk 2 (unchanged size 2 MB).
        list.regions_mut()[0].whi = 2.0;
        list.regions_mut()[1].whi = 0.5;
        evidence_all(&mut list);
        list.merge_pass(0.5, 3, |_, _| true);
        assert_eq!(list.len(), 1);
        let whi = list.regions()[0].whi;
        assert!((whi - (2.0 * 2.0 / 3.0 + 0.5 / 3.0)).abs() < 1e-9, "whi = {whi}");
    }

    #[test]
    fn split_halves_region_and_quota() {
        let mut list = RegionList::new(1);
        list.sync_pde_bases(&bases(&[0, 1]));
        evidence_all(&mut list);
        list.merge_pass(10.0, 3, |_, _| true); // Force one 4 MB region.
        list.regions_mut()[0].spread = 3.0;
        list.regions_mut()[0].quota = 4;
        let added = list.split_pass(2.0, 3, |_| false);
        assert_eq!(added, 0);
        assert_eq!(list.len(), 2);
        assert_eq!(list.regions()[0].len(), PAGE_SIZE_2M);
        assert_eq!(list.regions()[0].quota, 2);
        assert_eq!(list.regions()[1].quota, 2);
        assert_eq!(list.stats().split, 1);
    }

    #[test]
    fn split_point_avoids_huge_interior() {
        let mut list = RegionList::new(1);
        list.sync_pde_bases(&bases(&[0, 1, 2]));
        evidence_all(&mut list);
        list.merge_pass(10.0, 3, |_, _| true); // One 6 MB region.
        assert_eq!(list.len(), 1);
        list.regions_mut()[0].spread = 3.0;
        // Claim everything is huge-mapped: midpoint (3 MB) moves down to
        // the 2 MB boundary.
        list.split_pass(1.0, 3, |_| true);
        assert_eq!(list.len(), 2);
        assert_eq!(list.regions()[0].len(), PAGE_SIZE_2M);
        assert_eq!(list.regions()[1].len(), 2 * PAGE_SIZE_2M);
        assert!(list.regions()[0].range.end.is_2m_aligned());
    }

    #[test]
    fn split_skips_tiny_or_degenerate() {
        let mut list = RegionList::new(1);
        list.sync_pde_bases(&bases(&[0]));
        list.regions_mut()[0].range = VaRange::from_len(VirtAddr(0), PAGE_SIZE_4K);
        list.regions_mut()[0].spread = 5.0;
        list.split_pass(1.0, 3, |_| false);
        assert_eq!(list.len(), 1, "single page cannot split");
        // Degenerate: huge adjustment pushes mid to region start.
        let mut list = RegionList::new(1);
        list.sync_pde_bases(&bases(&[4]));
        list.regions_mut()[0].spread = 5.0;
        list.split_pass(1.0, 3, |_| true);
        assert_eq!(list.len(), 1, "huge-aligned mid at start blocks split");
    }

    #[test]
    fn observe_updates_ema_and_variance() {
        let mut r = Region::new(VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M), 2);
        r.observe(2.0, 0.5);
        assert!((r.whi - 1.0).abs() < 1e-9);
        assert!((r.variance - 2.0).abs() < 1e-9);
        r.observe(1.0, 0.5);
        assert!((r.whi - 1.0).abs() < 1e-9);
        assert!((r.variance - 1.0).abs() < 1e-9);
        assert_eq!(r.prev_hi, 2.0);
    }

    #[test]
    fn dominant_node_breaks_toward_first() {
        let mut r = Region::new(VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M), 2);
        assert_eq!(r.dominant_node(), 0);
        r.node_votes[1] = 5;
        assert_eq!(r.dominant_node(), 1);
        r.node_votes[0] = 9;
        assert_eq!(r.dominant_node(), 0);
    }
}
