//! Admission control for candidate migrations (ROADMAP item 3).
//!
//! The migration layer decides *how* to move pages (sync/async hybrid);
//! the policies here decide *whether* a candidate batch is worth admitting
//! at all, in the spirit of TierBPF's in-kernel policy hooks. Each policy
//! is consulted once per candidate batch right before
//! [`MigrationEngine::migrate`](crate::migration::MigrationEngine::migrate)
//! and must be fully deterministic: verdicts may depend only on the
//! candidate stream and the machine's virtual state, never on wall-clock
//! time, entropy or worker count.

use tiersim::addr::VaRange;
use tiersim::machine::Machine;
use tiersim::migrate::copy_bandwidth;
use tiersim::tier::{ComponentId, NodeId};

use crate::config::MtmConfig;

/// Which direction a candidate moves in the requesting node's tier view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigrationKind {
    /// Toward a faster tier.
    Promotion,
    /// Toward a slower tier (eviction to make space).
    Demotion,
}

/// One candidate batch, as the policy layer sees it before admission.
#[derive(Clone, Copy, Debug)]
pub struct Candidate {
    /// The virtual range to move.
    pub range: VaRange,
    /// Majority source component.
    pub src: ComponentId,
    /// Destination component.
    pub dst: ComponentId,
    /// Requesting node (its view classified the move).
    pub node: NodeId,
    /// Promotion or demotion.
    pub kind: MigrationKind,
    /// The candidate's weighted hotness index.
    pub whi: f64,
    /// Hotness of the coldest resident that would be evicted to make
    /// space, when admission would trigger an eviction (`None` when the
    /// destination has free space).
    pub victim_whi: Option<f64>,
    /// Tenant whose manager proposed this migration (0 = legacy single
    /// tenant). Lets admission logs and per-tenant bandwidth ledgers
    /// attribute traffic on a shared machine.
    pub tenant: tiersim::TenantId,
}

/// An admission decision. A rejection carries a stable reason label used
/// in counters and ring events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Let the migration through.
    Admit,
    /// Veto it (label names the vetoing policy).
    Reject(&'static str),
}

/// A pluggable admission policy. Implementations keep all state in
/// deterministic containers (`BTreeMap`, `Vec`) keyed on virtual
/// addresses and intervals.
pub trait AdmissionPolicy {
    /// Stable policy name (matches the `MTM_ADMIT` selector).
    fn name(&self) -> &'static str;

    /// Advances the policy's interval clock (called once per profiling
    /// interval, before any candidate of that interval).
    fn note_interval(&mut self, _interval: u64) {}

    /// Decides whether `c` may reach the migration engine.
    fn admit(&mut self, m: &Machine, c: &Candidate) -> Verdict;
}

/// The legacy default: every candidate is admitted. With this policy the
/// pipeline is byte-identical to a build without the admission plane.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlwaysAdmit;

impl AdmissionPolicy for AlwaysAdmit {
    fn name(&self) -> &'static str {
        "always"
    }

    fn admit(&mut self, _m: &Machine, _c: &Candidate) -> Verdict {
        Verdict::Admit
    }
}

/// Reject ranges that already migrated [`PINGPONG_MAX_BOUNCES`] or more
/// times within the last [`PINGPONG_WINDOW`] intervals. Catches pages
/// bouncing between tiers faster than they earn their keep — the dominant
/// waste under bandwidth-degradation fault windows.
#[derive(Clone, Debug, Default)]
pub struct PingPongFilter {
    /// Admitted migrations keyed by range start: (range end, interval).
    seen: std::collections::BTreeMap<u64, Vec<(u64, u64)>>,
    now: u64,
}

/// Admissions overlapping a candidate within the window before it counts
/// as ping-pong.
pub const PINGPONG_MAX_BOUNCES: u64 = 2;

/// How many intervals of history the ping-pong filter considers. Matches
/// the migration engine's cooldown horizon: long enough to catch a
/// demote-promote-demote cycle, short enough that a range whose hotness
/// genuinely changed earns a fresh start within a quick run.
pub const PINGPONG_WINDOW: u64 = 4;

impl AdmissionPolicy for PingPongFilter {
    fn name(&self) -> &'static str {
        "pingpong"
    }

    fn note_interval(&mut self, interval: u64) {
        self.now = interval;
        // Prune entries that fell out of the window so the ring stays
        // bounded by the migration rate, not the run length.
        self.seen.retain(|_, hits| {
            hits.retain(|&(_, at)| at + PINGPONG_WINDOW > interval);
            !hits.is_empty()
        });
    }

    fn admit(&mut self, _m: &Machine, c: &Candidate) -> Verdict {
        // Demotions are recorded (they are half of every bounce cycle)
        // but never vetoed: blocking an eviction would starve the
        // capacity management promotions depend on. Only the re-promotion
        // side of a bounce is cut off.
        let bounces: u64 = self
            .seen
            .range(..c.range.end.0)
            .flat_map(|(_, hits)| hits.iter())
            .filter(|&&(end, at)| end > c.range.start.0 && at + PINGPONG_WINDOW > self.now)
            .count() as u64;
        if c.kind == MigrationKind::Promotion && bounces >= PINGPONG_MAX_BOUNCES {
            return Verdict::Reject("pingpong");
        }
        self.seen
            .entry(c.range.start.0)
            .or_default()
            .push((c.range.end.0, self.now));
        Verdict::Admit
    }
}

/// Burst allowance of the rate limiter, in intervals worth of measured
/// copy bandwidth. Generous on purpose: the startup placement burst (one
/// large wave of promotions while the working set sorts itself into
/// tiers) must pass, while a sustained migration storm — or a
/// fault-window bandwidth collapse shrinking the refill — still binds.
pub const RATELIMIT_BURST_INTERVALS: f64 = 16.0;

/// Per-destination token bucket fed by the *measured* copy bandwidth
/// between the candidate's source and destination. When a faultsim
/// bandwidth-degradation window throttles `copy_bandwidth`, the refill
/// rate drops with it and admission backs off instead of queueing copies
/// the interconnect cannot absorb.
#[derive(Clone, Debug)]
pub struct RateLimiter {
    copy_threads: u32,
    /// Bucket per destination component: (tokens in bytes, last refill
    /// interval). Buckets start full on first use.
    buckets: std::collections::BTreeMap<ComponentId, (f64, u64)>,
    now: u64,
}

impl RateLimiter {
    /// Creates a limiter refilling at the bandwidth `copy_threads` helper
    /// threads achieve.
    pub fn new(copy_threads: u32) -> RateLimiter {
        RateLimiter { copy_threads, buckets: std::collections::BTreeMap::new(), now: 0 }
    }
}

impl AdmissionPolicy for RateLimiter {
    fn name(&self) -> &'static str {
        "ratelimit"
    }

    fn note_interval(&mut self, interval: u64) {
        self.now = interval;
    }

    fn admit(&mut self, m: &Machine, c: &Candidate) -> Verdict {
        // Demotions pass freely: they free the contended fast tier, their
        // destination link is rarely the bottleneck, and vetoing an
        // eviction would starve the capacity management that promotions
        // depend on. Only promotions consume tokens.
        if c.kind == MigrationKind::Demotion {
            return Verdict::Admit;
        }
        // GB/s equals bytes/ns, so one interval refills bw * interval_ns
        // bytes. The measurement already reflects any active fault window.
        let bw = copy_bandwidth(m, c.node, c.src, c.dst, self.copy_threads);
        let per_interval = bw * m.cfg.interval_ns;
        let cap = RATELIMIT_BURST_INTERVALS * per_interval;
        let (tokens, last) = self.buckets.entry(c.dst).or_insert((cap, self.now));
        if self.now > *last {
            *tokens = (*tokens + (self.now - *last) as f64 * per_interval).min(cap);
            *last = self.now;
        }
        // Charge what will actually cross the link: pages of the range
        // already resident on the destination cost nothing, so a
        // partially promoted range is not over-billed its full length.
        let need: u64 = crate::residency::residency_exact(m, c.range)
            .into_iter()
            .filter(|&(comp, _)| comp != c.dst)
            .map(|(_, b)| b)
            .sum();
        if *tokens < need as f64 {
            // Free-space fills drain the bucket but are never vetoed:
            // they displace nobody, so deferring them saves no demotion
            // traffic — the copy itself is the only cost, and a dry
            // bucket then gates the displacement promotions that would
            // each drag an eviction copy along.
            if c.victim_whi.is_none() {
                *tokens = 0.0;
                return Verdict::Admit;
            }
            return Verdict::Reject("ratelimit");
        }
        *tokens -= need as f64;
        Verdict::Admit
    }
}

/// A promotion must be hotter than the victim it evicts by this factor.
pub const HOTNESS_DELTA_RATIO: f64 = 1.5;

/// Admit promotions only when the candidate is clearly hotter than the
/// eviction victim. Filling free space and demotions always pass: only
/// displacement has to justify itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct HotnessDelta;

impl AdmissionPolicy for HotnessDelta {
    fn name(&self) -> &'static str {
        "hotness-delta"
    }

    fn admit(&mut self, _m: &Machine, c: &Candidate) -> Verdict {
        if c.kind == MigrationKind::Demotion {
            return Verdict::Admit;
        }
        match c.victim_whi {
            None => Verdict::Admit,
            Some(v) if c.whi > v * HOTNESS_DELTA_RATIO => Verdict::Admit,
            Some(_) => Verdict::Reject("hotness-delta"),
        }
    }
}

/// Which built-in policy to construct (the `MTM_ADMIT` selector).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AdmissionKind {
    /// [`AlwaysAdmit`] — the legacy pipeline, byte-identical results.
    #[default]
    Always,
    /// [`PingPongFilter`].
    PingPong,
    /// [`RateLimiter`].
    RateLimit,
    /// [`HotnessDelta`].
    HotnessDelta,
}

impl AdmissionKind {
    /// Parses an `MTM_ADMIT` value.
    pub fn parse(s: &str) -> Option<AdmissionKind> {
        match s {
            "always" => Some(AdmissionKind::Always),
            "pingpong" => Some(AdmissionKind::PingPong),
            "ratelimit" => Some(AdmissionKind::RateLimit),
            "hotness-delta" => Some(AdmissionKind::HotnessDelta),
            _ => None,
        }
    }

    /// The selector string this kind parses from.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionKind::Always => "always",
            AdmissionKind::PingPong => "pingpong",
            AdmissionKind::RateLimit => "ratelimit",
            AdmissionKind::HotnessDelta => "hotness-delta",
        }
    }

    /// Constructs the policy (the rate limiter reads `cfg.copy_threads`).
    pub fn build(&self, cfg: &MtmConfig) -> Box<dyn AdmissionPolicy> {
        match self {
            AdmissionKind::Always => Box::new(AlwaysAdmit),
            AdmissionKind::PingPong => Box::new(PingPongFilter::default()),
            AdmissionKind::RateLimit => Box::new(RateLimiter::new(cfg.copy_threads)),
            AdmissionKind::HotnessDelta => Box::new(HotnessDelta),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim::addr::{VirtAddr, PAGE_SIZE_2M};
    use tiersim::machine::MachineConfig;
    use tiersim::tier::tiny_two_tier;

    fn machine() -> Machine {
        let topo = tiny_two_tier(8 * PAGE_SIZE_2M, 8 * PAGE_SIZE_2M);
        let mut mc = MachineConfig::new(topo, 1);
        mc.interval_ns = 1.0e6;
        Machine::new(mc)
    }

    fn cand(start: u64, kind: MigrationKind) -> Candidate {
        Candidate {
            range: VaRange::from_len(VirtAddr(start), PAGE_SIZE_2M),
            src: if kind == MigrationKind::Promotion { 1 } else { 0 },
            dst: if kind == MigrationKind::Promotion { 0 } else { 1 },
            node: 0,
            kind,
            whi: 2.0,
            victim_whi: None,
            tenant: 0,
        }
    }

    #[test]
    fn always_admits_everything() {
        let m = machine();
        let mut p = AlwaysAdmit;
        for i in 0..10 {
            let c = cand(i * PAGE_SIZE_2M, MigrationKind::Promotion);
            assert_eq!(p.admit(&m, &c), Verdict::Admit);
        }
    }

    #[test]
    fn pingpong_rejects_bouncing_range_then_forgets() {
        let m = machine();
        let mut p = PingPongFilter::default();
        p.note_interval(1);
        let c = cand(0, MigrationKind::Promotion);
        assert_eq!(p.admit(&m, &c), Verdict::Admit);
        let back = cand(0, MigrationKind::Demotion);
        assert_eq!(p.admit(&m, &back), Verdict::Admit);
        // Third move of the same range inside the window: ping-pong.
        assert_eq!(p.admit(&m, &c), Verdict::Reject("pingpong"));
        // The demotion side is recorded but never vetoed — blocking an
        // eviction would starve capacity management.
        assert_eq!(p.admit(&m, &back), Verdict::Admit);
        // A disjoint range is unaffected.
        let other = cand(4 * PAGE_SIZE_2M, MigrationKind::Promotion);
        assert_eq!(p.admit(&m, &other), Verdict::Admit);
        // Once the window passes, the range earns a fresh start.
        p.note_interval(1 + PINGPONG_WINDOW);
        assert_eq!(p.admit(&m, &c), Verdict::Admit);
    }

    #[test]
    fn pingpong_counts_overlaps_not_exact_matches() {
        let m = machine();
        let mut p = PingPongFilter::default();
        p.note_interval(1);
        // Two admitted moves of halves overlapping the big range — a
        // re-split region's halves count against the merged whole.
        let lo = Candidate {
            range: VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M),
            ..cand(0, MigrationKind::Promotion)
        };
        let hi = Candidate {
            range: VaRange::from_len(VirtAddr(PAGE_SIZE_2M), PAGE_SIZE_2M),
            ..cand(0, MigrationKind::Promotion)
        };
        assert_eq!(p.admit(&m, &lo), Verdict::Admit);
        assert_eq!(p.admit(&m, &hi), Verdict::Admit);
        let big = Candidate {
            range: VaRange::from_len(VirtAddr(0), 2 * PAGE_SIZE_2M),
            ..cand(0, MigrationKind::Promotion)
        };
        assert_eq!(p.admit(&m, &big), Verdict::Reject("pingpong"));
    }

    #[test]
    fn ratelimit_throttles_to_measured_bandwidth() {
        // The limiter charges resident bytes (residency_exact), so the
        // candidate ranges must actually live on the slow tier: map and
        // prefault 44 pages on component 1 (the promotion source).
        let topo = tiny_two_tier(8 * PAGE_SIZE_2M, 64 * PAGE_SIZE_2M);
        let mut mc = MachineConfig::new(topo, 1);
        mc.interval_ns = 1.0e6;
        let mut m = Machine::new(mc);
        let all = VaRange::from_len(VirtAddr(0), 44 * PAGE_SIZE_2M);
        m.mmap("r", all, false);
        m.prefault_range(all, &[1]).unwrap();
        let mut p = RateLimiter::new(4);
        p.note_interval(0);
        // Only displacement promotions (a victim to evict) can be vetoed.
        let disp = |i: u64| Candidate {
            range: VaRange::from_len(VirtAddr(i * PAGE_SIZE_2M), PAGE_SIZE_2M),
            victim_whi: Some(0.5),
            ..cand(0, MigrationKind::Promotion)
        };
        // Slow link: 5 GB/s * 1 ms interval = 5 MB/interval, 80 MB burst
        // (16 intervals). Thirty-eight 2 MiB promotions (79.7 MB) drain
        // the bucket below one page; the thirty-ninth must wait.
        for i in 0..38 {
            assert_eq!(p.admit(&m, &disp(i)), Verdict::Admit, "burst capacity admits #{i}");
        }
        assert_eq!(p.admit(&m, &disp(38)), Verdict::Reject("ratelimit"));
        // Demotions never consume tokens, even with the bucket drained.
        assert_eq!(p.admit(&m, &cand(0, MigrationKind::Demotion)), Verdict::Admit);
        // A free-space fill is admitted on a dry bucket — it displaces
        // nobody — but it zeroes the remaining tokens.
        assert_eq!(p.admit(&m, &cand(39 * PAGE_SIZE_2M, MigrationKind::Promotion)), Verdict::Admit);
        // One interval refills one interval's worth (5 MB): two more fit.
        p.note_interval(1);
        for i in [38, 40] {
            assert_eq!(p.admit(&m, &disp(i)), Verdict::Admit, "refilled bucket admits #{i}");
        }
        assert_eq!(p.admit(&m, &disp(41)), Verdict::Reject("ratelimit"));
    }

    #[test]
    fn hotness_delta_gates_displacement_only() {
        let m = machine();
        let mut p = HotnessDelta;
        // Free-space fill: no victim, always admitted.
        assert_eq!(p.admit(&m, &cand(0, MigrationKind::Promotion)), Verdict::Admit);
        // Demotions always pass.
        assert_eq!(p.admit(&m, &cand(0, MigrationKind::Demotion)), Verdict::Admit);
        // Displacing a victim requires a clear hotness margin.
        let mut c = cand(0, MigrationKind::Promotion);
        c.whi = 2.0;
        c.victim_whi = Some(1.5);
        assert_eq!(p.admit(&m, &c), Verdict::Reject("hotness-delta"), "2.0 < 1.5 * 1.5");
        c.victim_whi = Some(1.0);
        assert_eq!(p.admit(&m, &c), Verdict::Admit, "2.0 > 1.0 * 1.5");
    }

    #[test]
    fn kind_roundtrips_through_parse_and_label() {
        for kind in [
            AdmissionKind::Always,
            AdmissionKind::PingPong,
            AdmissionKind::RateLimit,
            AdmissionKind::HotnessDelta,
        ] {
            assert_eq!(AdmissionKind::parse(kind.label()), Some(kind));
            let built = kind.build(&MtmConfig::default());
            assert_eq!(built.name(), kind.label());
        }
        assert_eq!(AdmissionKind::parse("bogus"), None);
        assert_eq!(AdmissionKind::default(), AdmissionKind::Always);
    }
}
