//! The EMA-hotness histogram driving migration selection (Sec. 6.1).
//!
//! MTM buckets the exponential moving average (`WHI`) of every region and
//! promotes regions from the highest buckets / demotes from the lowest.
//! The histogram is cheap to rebuild each interval (a few thousand
//! regions) and keeps selection O(regions log regions).

use crate::region::Region;

/// A bucketed view over region hotness.
#[derive(Debug)]
pub struct HotnessHistogram {
    /// `buckets[b]` holds region indices whose WHI falls in bucket `b`
    /// (bucket 0 = coldest).
    buckets: Vec<Vec<usize>>,
    max_value: f64,
}

impl HotnessHistogram {
    /// Builds a histogram of `regions` with `n_buckets` buckets over
    /// `[0, max_value]` (`max_value` is `num_scans`, the largest possible
    /// hotness indication).
    pub fn build(regions: &[Region], n_buckets: usize, max_value: f64) -> HotnessHistogram {
        assert!(n_buckets >= 2);
        assert!(max_value > 0.0);
        let mut buckets = vec![Vec::new(); n_buckets];
        for (i, r) in regions.iter().enumerate() {
            let b = Self::bucket_for(r.whi, n_buckets, max_value);
            buckets[b].push(i);
        }
        HotnessHistogram { buckets, max_value }
    }

    fn bucket_for(whi: f64, n_buckets: usize, max_value: f64) -> usize {
        let frac = (whi / max_value).clamp(0.0, 1.0);
        ((frac * n_buckets as f64) as usize).min(n_buckets - 1)
    }

    /// The bucket index a WHI value falls into.
    pub fn bucket_of(&self, whi: f64) -> usize {
        Self::bucket_for(whi, self.buckets.len(), self.max_value)
    }

    /// Number of buckets.
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Region count per bucket (coldest first).
    pub fn counts(&self) -> Vec<usize> {
        self.buckets.iter().map(Vec::len).collect()
    }

    /// Region indices from the hottest bucket downwards, sorted by WHI
    /// descending within each bucket.
    pub fn hottest_first(&self, regions: &[Region]) -> Vec<usize> {
        let mut out = Vec::new();
        for bucket in self.buckets.iter().rev() {
            let mut b = bucket.clone();
            b.sort_by(|&a, &c| {
                regions[c].whi.partial_cmp(&regions[a].whi).expect("whi is finite")
            });
            out.extend(b);
        }
        out
    }

    /// Region indices from the coldest bucket upwards, sorted by WHI
    /// ascending within each bucket.
    pub fn coldest_first(&self, regions: &[Region]) -> Vec<usize> {
        let mut out = Vec::new();
        for bucket in &self.buckets {
            let mut b = bucket.clone();
            b.sort_by(|&a, &c| {
                regions[a].whi.partial_cmp(&regions[c].whi).expect("whi is finite")
            });
            out.extend(b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim::addr::{VaRange, VirtAddr, PAGE_SIZE_2M};

    fn regions(whis: &[f64]) -> Vec<Region> {
        whis.iter()
            .enumerate()
            .map(|(i, &w)| {
                let mut r = Region::new(
                    VaRange::from_len(VirtAddr(i as u64 * PAGE_SIZE_2M), PAGE_SIZE_2M),
                    1,
                );
                r.whi = w;
                r
            })
            .collect()
    }

    #[test]
    fn bucketing_covers_range() {
        let rs = regions(&[0.0, 1.4, 2.9, 3.0]);
        let h = HotnessHistogram::build(&rs, 3, 3.0);
        assert_eq!(h.counts(), vec![1, 1, 2]);
        assert_eq!(h.bucket_of(0.0), 0);
        assert_eq!(h.bucket_of(3.0), 2, "max value clamps into the top bucket");
        assert_eq!(h.bucket_of(99.0), 2);
    }

    #[test]
    fn hottest_first_orders_globally() {
        let rs = regions(&[0.1, 2.8, 1.5, 2.9, 0.2]);
        let h = HotnessHistogram::build(&rs, 4, 3.0);
        let order = h.hottest_first(&rs);
        assert_eq!(order, vec![3, 1, 2, 4, 0]);
        let cold = h.coldest_first(&rs);
        assert_eq!(cold, vec![0, 4, 2, 1, 3]);
    }

    #[test]
    fn empty_region_set_is_fine() {
        let h = HotnessHistogram::build(&[], 4, 3.0);
        assert!(h.hottest_first(&[]).is_empty());
        assert_eq!(h.counts(), vec![0, 0, 0, 0]);
    }
}
