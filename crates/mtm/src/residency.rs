//! Helpers for asking where a region currently lives.

use tiersim::addr::{VaRange, PAGE_SIZE_4K};
use tiersim::machine::Machine;
use tiersim::tier::ComponentId;

/// Component backing the majority of a region, probed cheaply.
///
/// Regions are migrated wholesale, so their pages are almost always
/// co-resident; probing a few positions is enough. Returns `None` when no
/// probe hits a mapped page.
pub fn majority_component(m: &Machine, range: VaRange) -> Option<ComponentId> {
    let len = range.len();
    let probes = [0u64, len / 2, len.saturating_sub(PAGE_SIZE_4K)];
    // BTreeMap keeps the tie-break deterministic (lowest component id
    // wins), so runs stay byte-for-byte reproducible.
    let mut votes = std::collections::BTreeMap::new();
    for &off in &probes {
        if let Some(c) = m.component_of(tiersim::VirtAddr(range.start.0 + off)) {
            *votes.entry(c).or_insert(0u32) += 1;
        }
    }
    votes.into_iter().max_by_key(|&(c, v)| (v, std::cmp::Reverse(c))).map(|(c, _)| c)
}

/// Bytes of the region resident on each component (exact; walks the page
/// table). Used by tests and reports rather than the hot path.
pub fn residency_exact(m: &Machine, range: VaRange) -> Vec<(ComponentId, u64)> {
    let mut map = std::collections::BTreeMap::new();
    for (va, size) in m.page_table().mapped_pages(range) {
        // lint:allow(panic-path): mapped_pages only yields mapped VAs; skipping a miss would silently under-report residency
        let c = m.component_of(va).expect("page mapped");
        *map.entry(c).or_insert(0u64) += size.bytes();
    }
    map.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim::addr::{VirtAddr, PAGE_SIZE_2M};
    use tiersim::machine::MachineConfig;
    use tiersim::tier::tiny_two_tier;

    #[test]
    fn majority_follows_placement() {
        let topo = tiny_two_tier(8 * PAGE_SIZE_2M, 8 * PAGE_SIZE_2M);
        let mut m = Machine::new(MachineConfig::new(topo, 1));
        let range = VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M);
        m.mmap("a", range, false);
        assert_eq!(majority_component(&m, range), None);
        m.prefault_range(range, &[1]).unwrap();
        assert_eq!(majority_component(&m, range), Some(1));
        let exact = residency_exact(&m, range);
        assert_eq!(exact, vec![(1, PAGE_SIZE_2M)]);
    }
}
