//! MTM configuration (Secs. 5-7 of the paper) including ablation switches.

/// Initial page-placement policy (Table 4 studies both).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InitialPlacement {
    /// Allocate new pages in the local *slow* tier first (MTM's default:
    /// "MTM initially allocates pages in a local slow memory tier").
    SlowLocalFirst,
    /// First-touch: allocate in the local fast tier first.
    FastLocalFirst,
}

/// Full MTM configuration.
#[derive(Clone, Debug)]
pub struct MtmConfig {
    /// Profiling-overhead constraint as a fraction of execution time
    /// (paper default 5 %).
    pub overhead_target: f64,
    /// PTE scans per sampled page per profiling interval (paper: 3).
    pub num_scans: u32,
    /// Merge threshold `tau_m`; regions whose hotness differs by less
    /// merge (paper default `num_scans / 3`).
    pub tau_m: f64,
    /// Split threshold `tau_s`; regions whose in-region sample spread
    /// exceeds it split (paper default `2 * num_scans / 3`).
    pub tau_s: f64,
    /// EMA weight `alpha` of Eq. 2 (paper default 0.5).
    pub alpha: f64,
    /// Bytes promoted per migration interval (paper: 200 MB; scale it
    /// with the footprint scale).
    pub promote_bytes: u64,
    /// Number of histogram buckets over the EMA range.
    pub histogram_buckets: usize,
    /// Number of highest-variance regions receiving freed sample quota
    /// (paper: 5).
    pub top_variance_slots: usize,
    /// Turn on a hint fault once every this many PTE scans to attribute
    /// accesses to a node (paper: 12).
    pub hint_fault_every: u32,
    /// Helper threads for asynchronous page copy.
    pub copy_threads: u32,
    /// Initial placement policy.
    pub initial_placement: InitialPlacement,
    /// Ablation: adaptive memory regions (merge/split). Fig. 7 "w/o AMR".
    pub adaptive_regions: bool,
    /// Ablation: adaptive page sampling (variance-guided quota
    /// redistribution). Fig. 7 "w/o APS" distributes randomly.
    pub adaptive_sampling: bool,
    /// Ablation: profiling overhead control (Eq. 1 cap). Fig. 7 "w/o OC"
    /// samples every region regardless of the constraint.
    pub overhead_control: bool,
    /// Ablation: performance-counter-assisted scan on the slowest tier.
    /// Fig. 7 "w/o PEBS".
    pub pebs_assist: bool,
    /// Ablation: asynchronous page copy. Fig. 7 "w/o async migration"
    /// charges the full copy on the critical path.
    pub async_migration: bool,
    /// Admission policy consulted before every candidate migration
    /// (`MTM_ADMIT`; `Always` reproduces the legacy pipeline exactly).
    pub admission: crate::admission::AdmissionKind,
    /// Nomad-style non-exclusive migration (`MTM_SHADOW=1`): demotions
    /// retain a shadow copy in the fast tier's free space so a clean
    /// rehit repromotes with zero copy bytes.
    pub shadow: bool,
    /// RNG seed for page sampling.
    pub seed: u64,
    /// Fraction of the machine-wide Eq. 1 profiling budget this manager
    /// instance holds, in `[0, 1]`. `1.0` (the single-tenant default) is
    /// bit-exact with the pre-tenant budget: `x * 1.0 == x`. A global
    /// arbiter lowers it when several tenants share the profiling plane.
    pub profile_share: f64,
    /// Tenant this manager instance serves (0 = legacy single tenant).
    /// Stamped onto every migration [`Candidate`](crate::admission::Candidate)
    /// so admission logs and ledgers attribute traffic per tenant.
    pub tenant: tiersim::TenantId,
}

impl Default for MtmConfig {
    fn default() -> MtmConfig {
        let num_scans = 3;
        MtmConfig {
            overhead_target: 0.05,
            num_scans,
            tau_m: num_scans as f64 / 3.0,
            tau_s: 2.0 * num_scans as f64 / 3.0,
            alpha: 0.5,
            promote_bytes: 16 << 20,
            histogram_buckets: 16,
            top_variance_slots: 5,
            hint_fault_every: 12,
            copy_threads: 4,
            initial_placement: InitialPlacement::SlowLocalFirst,
            adaptive_regions: true,
            adaptive_sampling: true,
            overhead_control: true,
            pebs_assist: true,
            async_migration: true,
            admission: crate::admission::AdmissionKind::Always,
            shadow: false,
            seed: 0x171717,
            profile_share: 1.0,
            tenant: 0,
        }
    }
}

impl MtmConfig {
    /// Sets `num_scans` and rederives the default `tau_m`/`tau_s`.
    pub fn with_num_scans(mut self, num_scans: u32) -> MtmConfig {
        self.num_scans = num_scans;
        self.tau_m = num_scans as f64 / 3.0;
        self.tau_s = 2.0 * num_scans as f64 / 3.0;
        self
    }

    /// Scales the paper's 200 MB/interval promotion budget by `scale`.
    ///
    /// The budget is additionally inflated 16x because simulated runs
    /// last ~120 intervals instead of the paper's ~1000 — this keeps the
    /// ratio of promotion budget to DRAM fill time intact (see DESIGN.md
    /// §6) — with a floor of four 2 MB regions per interval.
    pub fn with_paper_promote_budget(mut self, scale: u64) -> MtmConfig {
        self.promote_bytes = ((200u64 << 20) * 16 / scale).max(4 << 21);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MtmConfig::default();
        assert_eq!(c.overhead_target, 0.05);
        assert_eq!(c.num_scans, 3);
        assert!((c.tau_m - 1.0).abs() < 1e-9);
        assert!((c.tau_s - 2.0).abs() < 1e-9);
        assert_eq!(c.alpha, 0.5);
        assert_eq!(c.top_variance_slots, 5);
        assert_eq!(c.hint_fault_every, 12);
        assert_eq!(c.initial_placement, InitialPlacement::SlowLocalFirst);
        assert!(c.adaptive_regions && c.adaptive_sampling && c.overhead_control);
    }

    #[test]
    fn num_scans_rederives_thresholds() {
        let c = MtmConfig::default().with_num_scans(6);
        assert!((c.tau_m - 2.0).abs() < 1e-9);
        assert!((c.tau_s - 4.0).abs() < 1e-9);
    }

    #[test]
    fn promote_budget_scales_with_floor() {
        let c = MtmConfig::default().with_paper_promote_budget(1);
        assert_eq!(c.promote_bytes, (200u64 << 20) * 16);
        let tiny = MtmConfig::default().with_paper_promote_budget(1 << 30);
        assert_eq!(tiny.promote_bytes, 4 << 21);
    }
}
