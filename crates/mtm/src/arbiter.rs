//! Global multi-tenant arbitration (the HM-Keeper direction).
//!
//! On a machine hosting many address spaces, tiered-memory management is
//! a *global* problem: the fast tier, the migration bandwidth and the
//! Eq. 1 profiling budget are machine-wide resources that some layer
//! above the per-tenant managers must divide. An [`ArbiterPolicy`] turns
//! per-tenant demand observations into proportional weights once per
//! profiling interval; the exact integer split of each resource is done
//! by [`tiersim::tenant::apportion`]/[`split_component_capacity`], so no rounding
//! ever creates or destroys a byte.
//!
//! Three built-ins ship behind the `MTM_ARBITER` env:
//!
//! * `static-equal` — every tenant weighs the same, demand is ignored.
//! * `footprint-proportional` — weight = mapped footprint, the
//!   proportional-share baseline.
//! * `hotness-weighted` — weight = an EMA of the tenant's access rate,
//!   so actively hot tenants win fast-tier capacity from idle ones.
//!
//! All built-ins are pure functions of the demand sequence (the
//! hotness EMA keeps per-tenant state in a `BTreeMap`, per lint D2), so
//! arbitration is deterministic for any worker count.

use std::collections::BTreeMap;

use tiersim::tenant::{apportion, Share, TenantId};

/// One tenant's demand observation, as sampled at an interval boundary.
#[derive(Clone, Copy, Debug)]
pub struct TenantDemand {
    /// The tenant this row describes.
    pub tenant: TenantId,
    /// Mapped footprint in bytes.
    pub footprint: u64,
    /// Bytes currently resident in fast-tier (DRAM) components.
    pub fast_resident: u64,
    /// Application accesses issued since the previous arbitration.
    pub accesses: u64,
}

/// A global arbitration policy: observes every tenant's demand and
/// returns one non-negative weight per tenant (same order as the input).
/// Weights are relative — the caller normalizes them into resource
/// splits — and degenerate outputs (all zero) fall back to equal shares.
pub trait ArbiterPolicy {
    /// Stable selector name (the `MTM_ARBITER` value).
    fn name(&self) -> &'static str;

    /// Produces the per-tenant weights for the coming interval.
    fn weights(&mut self, demands: &[TenantDemand]) -> Vec<f64>;
}

/// Equal shares regardless of demand — the static baseline.
pub struct StaticEqual;

impl ArbiterPolicy for StaticEqual {
    fn name(&self) -> &'static str {
        "static-equal"
    }

    fn weights(&mut self, demands: &[TenantDemand]) -> Vec<f64> {
        vec![1.0; demands.len()]
    }
}

/// Weight proportional to mapped footprint: a tenant twice as large gets
/// twice the fast tier, bandwidth and profiling budget.
pub struct FootprintProportional;

impl ArbiterPolicy for FootprintProportional {
    fn name(&self) -> &'static str {
        "footprint-proportional"
    }

    fn weights(&mut self, demands: &[TenantDemand]) -> Vec<f64> {
        demands.iter().map(|d| d.footprint as f64).collect()
    }
}

/// EMA weight of the hotness-weighted arbiter (mirrors the paper's Eq. 2
/// region EMA weight).
const HOTNESS_ALPHA: f64 = 0.5;

/// Weight proportional to an exponential moving average of each tenant's
/// access rate: tenants in a hot phase win resources from idle ones, and
/// the EMA damps interval-to-interval churn. Per-tenant state lives in a
/// `BTreeMap` so iteration order — and therefore any float accumulation —
/// is deterministic (lint D2).
#[derive(Default)]
pub struct HotnessWeighted {
    ema: BTreeMap<TenantId, f64>,
}

impl ArbiterPolicy for HotnessWeighted {
    fn name(&self) -> &'static str {
        "hotness-weighted"
    }

    fn weights(&mut self, demands: &[TenantDemand]) -> Vec<f64> {
        let mut out = Vec::with_capacity(demands.len());
        for d in demands {
            let prev = self.ema.get(&d.tenant).copied().unwrap_or(0.0);
            let ema = HOTNESS_ALPHA * d.accesses as f64 + (1.0 - HOTNESS_ALPHA) * prev;
            self.ema.insert(d.tenant, ema);
            // An idle tenant keeps a floor of one access so it can ramp
            // back up (a zero weight would starve its profiler forever).
            out.push(ema.max(1.0));
        }
        // Forget departed tenants so the map cannot grow without bound
        // under arrive/depart churn.
        let live: std::collections::BTreeSet<TenantId> =
            demands.iter().map(|d| d.tenant).collect();
        self.ema.retain(|t, _| live.contains(t));
        out
    }
}

/// Which built-in arbiter to construct (the `MTM_ARBITER` selector).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ArbiterKind {
    /// [`StaticEqual`].
    #[default]
    StaticEqual,
    /// [`FootprintProportional`].
    FootprintProportional,
    /// [`HotnessWeighted`].
    HotnessWeighted,
}

impl ArbiterKind {
    /// Parses an `MTM_ARBITER` value.
    pub fn parse(s: &str) -> Option<ArbiterKind> {
        match s {
            "static-equal" => Some(ArbiterKind::StaticEqual),
            "footprint-proportional" => Some(ArbiterKind::FootprintProportional),
            "hotness-weighted" => Some(ArbiterKind::HotnessWeighted),
            _ => None,
        }
    }

    /// The selector string this kind parses from.
    pub fn label(&self) -> &'static str {
        match self {
            ArbiterKind::StaticEqual => "static-equal",
            ArbiterKind::FootprintProportional => "footprint-proportional",
            ArbiterKind::HotnessWeighted => "hotness-weighted",
        }
    }

    /// Constructs the policy.
    pub fn build(&self) -> Box<dyn ArbiterPolicy> {
        match self {
            ArbiterKind::StaticEqual => Box::new(StaticEqual),
            ArbiterKind::FootprintProportional => Box::new(FootprintProportional),
            ArbiterKind::HotnessWeighted => Box::new(HotnessWeighted::default()),
        }
    }
}

/// Turns arbitration weights into per-tenant [`Share`]s: the promotion
/// budget pool is apportioned exactly, and each tenant's profiling
/// fraction is `w / Σw`. Fast-tier quotas are split per *component* with
/// [`split_component_capacity`] (they need residency floors), so they are not part
/// of the `Share` — see the harness's arbitration step.
///
/// With a single tenant the share is exact: the whole pool and a
/// profile fraction of `w / w == 1.0`, keeping the solo pipeline
/// bit-identical.
pub fn shares(weights: &[f64], promote_pool: u64) -> Vec<Share> {
    let promote = apportion(promote_pool, weights);
    let cleaned: Vec<f64> =
        weights.iter().map(|&w| if w.is_finite() && w > 0.0 { w } else { 0.0 }).collect();
    let sum: f64 = cleaned.iter().sum();
    (0..weights.len())
        .map(|i| Share {
            // Filled in by the per-component capacity split.
            fast_bytes: 0,
            promote_bytes: promote[i],
            profile_share: if sum > 0.0 {
                cleaned[i] / sum
            } else {
                1.0 / weights.len().max(1) as f64
            },
        })
        .collect()
}

/// Re-exported for arbitration call sites that split capacity directly.
pub use tiersim::tenant::split_capacity as split_component_capacity;

/// Headroom added to every tenant's footprint floor: covers 2 MB block
/// rounding across components plus transient shadow copies, so the floor
/// guarantees an allocatable block somewhere in the placement order.
const FLOOR_HEADROOM: u64 = 8 * tiersim::PAGE_SIZE_2M;

/// Floors each tenant's arbitration share at its declared footprint's
/// fraction of machine capacity (plus [`FLOOR_HEADROOM`]), so a cold or
/// cool tenant under a skewed arbiter can still page its working set in
/// — a starved tenant would otherwise hit a fatal placement failure on
/// its first demand fault past the quota.
///
/// When every raw share already clears its floor the input is returned
/// *untouched* (same `Vec` contents, no re-normalization), so a solo
/// tenant's weight — and everything downstream of it — stays bit-exact.
/// Otherwise under-floor tenants are pinned at their floor and the
/// remaining capacity fraction is re-split among the rest by weight
/// (waterfilling). If the floors themselves overcommit the machine they
/// are first scaled back proportionally: an allocation failure is then a
/// genuine capacity fault, not an arbitration artifact.
pub fn floor_shares(weights: &[f64], demands: &[TenantDemand], total_capacity: u64) -> Vec<f64> {
    let n = weights.len();
    assert_eq!(n, demands.len(), "one weight per demand row");
    if n == 0 || total_capacity == 0 {
        return weights.to_vec();
    }
    let clean: Vec<f64> =
        weights.iter().map(|&w| if w.is_finite() && w > 0.0 { w } else { 0.0 }).collect();
    let sum: f64 = clean.iter().sum();
    if sum <= 0.0 {
        return weights.to_vec();
    }
    let mut mins: Vec<f64> = demands
        .iter()
        .map(|d| (d.footprint.saturating_add(FLOOR_HEADROOM)) as f64 / total_capacity as f64)
        .collect();
    let mins_sum: f64 = mins.iter().sum();
    if mins_sum > 1.0 {
        for m in &mut mins {
            *m /= mins_sum;
        }
    }
    if clean.iter().zip(&mins).all(|(&w, &m)| w / sum >= m) {
        return weights.to_vec();
    }
    let mut share = vec![0.0; n];
    let mut pinned = vec![false; n];
    loop {
        let pinned_total: f64 = (0..n).filter(|&i| pinned[i]).map(|i| mins[i]).sum();
        let free_weight: f64 = (0..n).filter(|&i| !pinned[i]).map(|i| clean[i]).sum();
        let mut changed = false;
        for i in 0..n {
            share[i] = if pinned[i] {
                mins[i]
            } else if free_weight > 0.0 {
                clean[i] / free_weight * (1.0 - pinned_total)
            } else {
                0.0
            };
            if !pinned[i] && share[i] < mins[i] {
                pinned[i] = true;
                changed = true;
            }
        }
        if !changed {
            return share;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(tenant: TenantId, footprint: u64, accesses: u64) -> TenantDemand {
        TenantDemand { tenant, footprint, fast_resident: 0, accesses }
    }

    #[test]
    fn static_equal_ignores_demand() {
        let mut p = StaticEqual;
        let w = p.weights(&[demand(0, 1 << 30, 999), demand(1, 1 << 10, 0)]);
        assert_eq!(w, vec![1.0, 1.0]);
    }

    #[test]
    fn footprint_proportional_tracks_size() {
        let mut p = FootprintProportional;
        let w = p.weights(&[demand(0, 100, 0), demand(1, 300, 0)]);
        assert_eq!(w, vec![100.0, 300.0]);
    }

    #[test]
    fn hotness_ema_converges_and_floors_idle_tenants() {
        let mut p = HotnessWeighted::default();
        // Repeated identical demand converges the EMA toward the rate.
        let mut last = 0.0;
        for _ in 0..10 {
            last = p.weights(&[demand(0, 0, 1000), demand(1, 0, 0)])[0];
        }
        assert!((last - 1000.0).abs() < 2.0, "EMA near 1000, got {last}");
        // The idle tenant keeps the ramp-up floor, not zero.
        let w = p.weights(&[demand(0, 0, 1000), demand(1, 0, 0)]);
        assert_eq!(w[1], 1.0);
    }

    #[test]
    fn hotness_state_is_dropped_for_departed_tenants() {
        let mut p = HotnessWeighted::default();
        p.weights(&[demand(0, 0, 100), demand(7, 0, 100)]);
        p.weights(&[demand(0, 0, 100)]);
        assert_eq!(p.ema.len(), 1, "departed tenant 7 forgotten");
        // Tenant 7 re-arriving starts from a cold EMA, exactly as a
        // brand-new tenant would.
        let w = p.weights(&[demand(0, 0, 0), demand(7, 0, 0)]);
        assert!(w[0] > w[1], "returning tenant restarts cold: {w:?}");
    }

    #[test]
    fn kind_roundtrips_through_parse_and_label() {
        for kind in [
            ArbiterKind::StaticEqual,
            ArbiterKind::FootprintProportional,
            ArbiterKind::HotnessWeighted,
        ] {
            assert_eq!(ArbiterKind::parse(kind.label()), Some(kind));
            assert_eq!(kind.build().name(), kind.label());
        }
        assert_eq!(ArbiterKind::parse("nope"), None);
        assert_eq!(ArbiterKind::default(), ArbiterKind::StaticEqual);
    }

    #[test]
    fn shares_are_exact_and_solo_is_identity() {
        let s = shares(&[1.0, 1.0, 1.0], 10 << 20);
        assert_eq!(s.iter().map(|x| x.promote_bytes).sum::<u64>(), 10 << 20);
        let total: f64 = s.iter().map(|x| x.profile_share).sum();
        assert!((total - 1.0).abs() < 1e-12);

        // One tenant: the whole pool, profile share exactly 1.0 — the
        // bit-exactness hook the N=1 differential test relies on.
        let solo = shares(&[0.37], 16 << 20);
        assert_eq!(solo[0].promote_bytes, 16 << 20);
        assert_eq!(solo[0].profile_share, 1.0);
    }

    #[test]
    fn floor_shares_leaves_clearing_weights_untouched() {
        let total = 1 << 30;
        let demands = [demand(0, 64 << 20, 0), demand(1, 64 << 20, 0)];
        // Both raw shares (0.5) clear their ~0.08 floors: exact
        // passthrough, including the solo case.
        let w = floor_shares(&[3.0, 3.0], &demands, total);
        assert_eq!(w, vec![3.0, 3.0]);
        let solo = floor_shares(&[0.37], &demands[..1], total);
        assert_eq!(solo, vec![0.37], "solo weight is bit-exact");
        // Even a solo tenant whose footprint exceeds the machine stays
        // untouched (its share, 1.0, is already maximal).
        let big = floor_shares(&[2.0], &[demand(0, 4 << 30, 0)], total);
        assert_eq!(big, vec![2.0]);
    }

    #[test]
    fn floor_shares_rescues_starved_tenants() {
        let total: u64 = 256 << 20;
        // Tenant 1 needs ~25% of the machine but a 99:1 hotness skew
        // would grant it ~1%.
        let demands = [demand(0, 32 << 20, 0), demand(1, 48 << 20, 0)];
        let s = floor_shares(&[99.0, 1.0], &demands, total);
        assert!(
            s[1] * total as f64 >= (48 << 20) as f64,
            "floored share covers the footprint: {s:?}"
        );
        assert!(s[0] > s[1], "the hot tenant still wins the remainder");
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12, "shares partition the machine");
    }

    #[test]
    fn floor_shares_scales_back_overcommitted_floors() {
        let total: u64 = 64 << 20;
        // Footprints sum past the machine: floors are scaled down
        // proportionally instead of panicking, and still partition 1.0.
        let demands = [demand(0, 48 << 20, 0), demand(1, 48 << 20, 0)];
        let s = floor_shares(&[1.0, 1000.0], &demands, total);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[0] > 0.3, "overcommit still leaves a near-proportional share: {s:?}");
    }

    #[test]
    fn shares_survive_degenerate_weights() {
        let s = shares(&[0.0, 0.0], 4 << 20);
        assert_eq!(s.iter().map(|x| x.promote_bytes).sum::<u64>(), 4 << 20);
        assert_eq!(s[0].profile_share, 0.5);
    }
}
