//! Simulator hot-path microbenchmarks: per-access cost, PTE scanning and
//! region relocation throughput of the `tiersim` substrate itself.

use mtm_bench::Bench;
use tiersim::addr::{VaRange, VirtAddr, PAGE_SIZE_2M, PAGE_SIZE_4K};
use tiersim::machine::{AccessKind, Machine, MachineConfig};
use tiersim::tier::optane_four_tier;

fn machine() -> Machine {
    let mut m = Machine::new(MachineConfig::new(optane_four_tier(1 << 12), 4));
    let r = VaRange::from_len(VirtAddr(0), 64 * PAGE_SIZE_2M);
    m.mmap("bench", r, true);
    m.prefault_range(r, &[0, 1, 2, 3]).unwrap();
    m
}

fn main() {
    let mut b = Bench::new("substrate");

    let mut m = machine();
    let mut i = 0u64;
    b.iter_throughput("substrate/access_read", 1, || {
        i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
        let va = VirtAddr((i >> 33) % (64 * PAGE_SIZE_2M) & !63);
        m.access(0, va, AccessKind::Read)
    });

    let mut m = machine();
    let mut i = 0u64;
    b.iter("substrate/pte_scan", || {
        i += PAGE_SIZE_4K;
        m.scan_page(VirtAddr(i % (64 * PAGE_SIZE_2M)))
    });

    b.iter_batched("substrate/relocate_2mb", machine, |mut m| {
        let r = VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M);
        tiersim::migrate::relocate_range(&mut m, r, 3, 0, 4, false)
    });

    b.finish();
}
