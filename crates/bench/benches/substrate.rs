//! Simulator hot-path microbenchmarks: per-access cost, PTE scanning and
//! region relocation throughput of the `tiersim` substrate itself.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tiersim::addr::{VaRange, VirtAddr, PAGE_SIZE_2M, PAGE_SIZE_4K};
use tiersim::machine::{AccessKind, Machine, MachineConfig};
use tiersim::tier::optane_four_tier;

fn machine() -> Machine {
    let mut m = Machine::new(MachineConfig::new(optane_four_tier(1 << 12), 4));
    let r = VaRange::from_len(VirtAddr(0), 64 * PAGE_SIZE_2M);
    m.mmap("bench", r, true);
    m.prefault_range(r, &[0, 1, 2, 3]).unwrap();
    m
}

fn access_path(c: &mut Criterion) {
    let mut m = machine();
    let mut g = c.benchmark_group("substrate");
    g.throughput(Throughput::Elements(1));
    let mut i = 0u64;
    g.bench_function("access_read", |b| {
        b.iter(|| {
            i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
            let va = VirtAddr((i >> 33) % (64 * PAGE_SIZE_2M) & !63);
            std::hint::black_box(m.access(0, va, AccessKind::Read))
        })
    });
    g.finish();
}

fn pte_scan(c: &mut Criterion) {
    let mut m = machine();
    let mut i = 0u64;
    c.bench_function("substrate_pte_scan", |b| {
        b.iter(|| {
            i += PAGE_SIZE_4K;
            std::hint::black_box(m.scan_page(VirtAddr(i % (64 * PAGE_SIZE_2M))))
        })
    });
}

fn relocation(c: &mut Criterion) {
    c.bench_function("substrate_relocate_2mb", |b| {
        b.iter_batched(
            machine,
            |mut m| {
                let r = VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M);
                std::hint::black_box(tiersim::migrate::relocate_range(&mut m, r, 3, 0, 4, false))
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = access_path, pte_scan, relocation
}
criterion_main!(benches);
