//! Overall-evaluation benchmarks: one scenario run per manager on GUPS
//! (the Fig. 4 / Fig. 5 / Tables 3-6 machinery) plus the MTM runs across
//! the remaining Table 2 workloads.

use mtm_bench::{bench_opts, Bench};
use mtm_harness::runs::run_pair;

fn main() {
    let mut b = Bench::new("overall");
    let opts = bench_opts();

    for mgr in ["first-touch", "hmc", "autonuma", "autotiering", "hemem", "MTM"] {
        b.iter(&format!("fig4_gups/{mgr}"), || run_pair(mgr, "GUPS", &opts));
    }

    for wl in ["VoltDB", "Cassandra", "BFS", "SSSP", "Spark"] {
        b.iter(&format!("fig4_mtm/{wl}"), || run_pair("MTM", wl, &opts));
    }

    b.finish();
}
