//! Overall-evaluation benchmarks: one scenario run per manager on GUPS
//! (the Fig. 4 / Fig. 5 / Tables 3-6 machinery) plus the two-tier HeMem
//! comparison of Fig. 12.

use criterion::{criterion_group, criterion_main, Criterion};
use mtm_bench::bench_opts;
use mtm_harness::runs::run_pair;

fn fig4_managers_on_gups(c: &mut Criterion) {
    let opts = bench_opts();
    let mut g = c.benchmark_group("fig4_gups");
    g.sample_size(10);
    for mgr in ["first-touch", "hmc", "autonuma", "autotiering", "hemem", "MTM"] {
        g.bench_function(mgr, |b| {
            b.iter(|| std::hint::black_box(run_pair(mgr, "GUPS", &opts)))
        });
    }
    g.finish();
}

fn fig4_mtm_across_workloads(c: &mut Criterion) {
    let opts = bench_opts();
    let mut g = c.benchmark_group("fig4_mtm");
    g.sample_size(10);
    for wl in ["VoltDB", "Cassandra", "BFS", "SSSP", "Spark"] {
        g.bench_function(wl, |b| b.iter(|| std::hint::black_box(run_pair("MTM", wl, &opts))));
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig4_managers_on_gups, fig4_mtm_across_workloads
}
criterion_main!(benches);
