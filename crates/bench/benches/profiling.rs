//! Profiling-quality benchmarks: the work behind Fig. 1 (recall/accuracy
//! series), Fig. 6 (hot-object detection), Fig. 8 (overhead-target sweep)
//! and Table 7 (region formation).

use criterion::{criterion_group, criterion_main, Criterion};
use mtm_bench::bench_opts;

fn fig1_profiling_quality(c: &mut Criterion) {
    let opts = bench_opts();
    c.bench_function("fig1_profiler_quality_series", |b| {
        b.iter(|| std::hint::black_box(mtm_harness::fig1::all_series(&opts)))
    });
}

fn fig6_hot_object_detection(c: &mut Criterion) {
    let mut opts = bench_opts();
    opts.intervals = 6;
    c.bench_function("fig6_damon_vs_mtm_heatmap", |b| {
        b.iter(|| std::hint::black_box(mtm_harness::fig6::run(&opts)))
    });
}

fn fig8_overhead_targets(c: &mut Criterion) {
    let mut opts = bench_opts();
    opts.intervals = 4;
    c.bench_function("fig8_overhead_target_sweep", |b| {
        b.iter(|| std::hint::black_box(mtm_harness::fig8::measure(&opts)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig1_profiling_quality, fig6_hot_object_detection, fig8_overhead_targets
}
criterion_main!(benches);
