//! Profiling-quality benchmarks: the work behind Fig. 1 (recall/accuracy
//! series), Fig. 6 (hot-object detection), Fig. 8 (overhead-target sweep)
//! and Table 7 (region formation).

use mtm_bench::{bench_opts, Bench};

fn main() {
    let mut b = Bench::new("profiling");

    let opts = bench_opts();
    b.iter("fig1_profiler_quality_series", || mtm_harness::fig1::all_series(&opts));

    let mut opts = bench_opts();
    opts.intervals = 6;
    b.iter("fig6_damon_vs_mtm_heatmap", || mtm_harness::fig6::run(&opts));

    let mut opts = bench_opts();
    opts.intervals = 4;
    b.iter("fig8_overhead_target_sweep", || mtm_harness::fig8::measure(&opts));

    b.finish();
}
