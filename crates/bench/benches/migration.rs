//! Migration-mechanism benchmarks: Fig. 3 (move_pages vs
//! move_memory_regions breakdown) and Fig. 11 (R / R-W / W patterns per
//! destination tier).

use criterion::{criterion_group, criterion_main, Criterion};
use mtm_bench::bench_opts;
use mtm_harness::fig11::Pattern;

fn fig3_mechanism_breakdown(c: &mut Criterion) {
    let opts = bench_opts();
    c.bench_function("fig3_move_pages_vs_mmr", |b| {
        b.iter(|| std::hint::black_box(mtm_harness::fig3::measure(&opts)))
    });
}

fn fig11_patterns(c: &mut Criterion) {
    let opts = bench_opts();
    let mut g = c.benchmark_group("fig11");
    for (mech, pattern, label) in [
        ("move_pages", Pattern::R, "move_pages_R"),
        ("nimble", Pattern::R, "nimble_R"),
        ("mtm", Pattern::R, "mtm_R"),
        ("mtm", Pattern::RW, "mtm_RW"),
        ("mtm", Pattern::W, "mtm_W"),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| std::hint::black_box(mtm_harness::fig11::measure_one(&opts, mech, 3, pattern)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig3_mechanism_breakdown, fig11_patterns
}
criterion_main!(benches);
