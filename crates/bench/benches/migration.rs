//! Migration-mechanism benchmarks: Fig. 3 (move_pages vs
//! move_memory_regions breakdown) and Fig. 11 (R / R-W / W patterns per
//! destination tier).

use mtm_bench::{bench_opts, Bench};
use mtm_harness::fig11::Pattern;

fn main() {
    let mut b = Bench::new("migration");
    let opts = bench_opts();

    b.iter("fig3_move_pages_vs_mmr", || mtm_harness::fig3::measure(&opts));

    for (mech, pattern, label) in [
        ("move_pages", Pattern::R, "fig11/move_pages_R"),
        ("nimble", Pattern::R, "fig11/nimble_R"),
        ("mtm", Pattern::R, "fig11/mtm_R"),
        ("mtm", Pattern::RW, "fig11/mtm_RW"),
        ("mtm", Pattern::W, "fig11/mtm_W"),
    ] {
        b.iter(label, || mtm_harness::fig11::measure_one(&opts, mech, 3, pattern));
    }

    b.finish();
}
