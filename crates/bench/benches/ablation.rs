//! Ablation benchmarks: the Fig. 7 MTM variants, the Fig. 9 tau grid and
//! the Fig. 10 alpha sweep (all on small scenarios).

use criterion::{criterion_group, criterion_main, Criterion};
use mtm_bench::bench_opts;
use mtm_harness::runs::run_pair;

fn fig7_ablations(c: &mut Criterion) {
    let opts = bench_opts();
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    for variant in ["MTM", "MTM:w/o-AMR", "MTM:w/o-APS", "MTM:w/o-OC", "MTM:w/o-PEBS", "MTM:w/o-async"] {
        g.bench_function(variant.replace(':', "_"), |b| {
            b.iter(|| std::hint::black_box(run_pair(variant, "VoltDB", &opts)))
        });
    }
    g.finish();
}

fn fig9_tau_grid(c: &mut Criterion) {
    let mut opts = bench_opts();
    opts.intervals = 3;
    c.bench_function("fig9_tau_grid", |b| {
        b.iter(|| std::hint::black_box(mtm_harness::fig9::measure(&opts)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig7_ablations, fig9_tau_grid
}
criterion_main!(benches);
