//! Ablation benchmarks: the Fig. 7 MTM variants, the Fig. 9 tau grid and
//! the Fig. 10 alpha sweep (all on small scenarios).

use mtm_bench::{bench_opts, Bench};
use mtm_harness::runs::run_pair;

fn main() {
    let mut b = Bench::new("ablation");

    let opts = bench_opts();
    for variant in ["MTM", "MTM:w/o-AMR", "MTM:w/o-APS", "MTM:w/o-OC", "MTM:w/o-PEBS", "MTM:w/o-async"] {
        let label = format!("fig7/{}", variant.replace(':', "_"));
        b.iter(&label, || run_pair(variant, "VoltDB", &opts));
    }

    let mut opts = bench_opts();
    opts.intervals = 3;
    b.iter("fig9_tau_grid", || mtm_harness::fig9::measure(&opts));

    b.finish();
}
