//! JSON report emission, so BENCH trajectories can be compared across
//! PRs without parsing console output.
//!
//! No serde in a hermetic workspace: the schema is flat and the writer
//! is ~40 lines of `format!`. One file per suite at
//! `results/bench_<suite>.json`, overwritten on every run.

use std::io::Write;
use std::path::PathBuf;

use crate::runner::{BenchConfig, BenchResult};

/// Workspace-root `results/` directory (benches run with the package
/// directory as cwd, so relative paths would land in `crates/bench`).
pub fn results_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"))
}

/// Writes `results/bench_<suite>.json`; returns the path written.
pub fn write_json(
    suite: &str,
    config: &BenchConfig,
    results: &[BenchResult],
) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let dir = dir.canonicalize().unwrap_or(dir);
    let path = dir.join(format!("bench_{suite}.json"));
    let mut out = std::fs::File::create(&path)?;
    writeln!(out, "{{")?;
    writeln!(out, "  \"suite\": {},", json_str(suite))?;
    writeln!(out, "  \"quick\": {},", config.quick)?;
    writeln!(out, "  \"warmup\": {},", config.warmup)?;
    writeln!(out, "  \"samples_per_bench\": {},", config.samples)?;
    writeln!(out, "  \"benches\": [")?;
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let s = &r.stats;
        let throughput = match (r.elems_per_iter, r.elems_per_sec()) {
            (Some(elems), Some(eps)) => {
                format!(", \"elems_per_iter\": {}, \"elems_per_sec\": {}", elems, json_num(eps))
            }
            _ => String::new(),
        };
        writeln!(
            out,
            "    {{\"name\": {}, \"batch\": {}, \"samples\": {}, \
             \"mean_ns\": {}, \"p50_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
             \"stddev_ns\": {}{}}}{comma}",
            json_str(&r.name),
            r.batch,
            s.samples,
            json_num(s.mean_ns),
            json_num(s.p50_ns),
            json_num(s.min_ns),
            json_num(s.max_ns),
            json_num(s.stddev_ns),
            throughput,
        )?;
    }
    writeln!(out, "  ]")?;
    writeln!(out, "}}")?;
    Ok(path)
}

/// Escapes a string for JSON embedding.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a finite JSON number.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Stats;

    #[test]
    fn escapes_strings() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn non_finite_numbers_are_sanitized() {
        assert_eq!(json_num(f64::NAN), "0.0");
        assert_eq!(json_num(f64::INFINITY), "0.0");
        assert_eq!(json_num(1.5), "1.500");
    }

    #[test]
    fn report_round_trips_structurally() {
        let config = BenchConfig { warmup: 0, samples: 2, quick: true };
        let results = vec![
            BenchResult {
                name: "fast".into(),
                batch: 1024,
                elems_per_iter: Some(1),
                stats: Stats::from_ns(&[10.0, 12.0]),
            },
            BenchResult {
                name: "slow/variant".into(),
                batch: 1,
                elems_per_iter: None,
                stats: Stats::from_ns(&[2.0e6, 2.1e6]),
            },
        ];
        let path = write_json("selftest", &config, &results).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"suite\": \"selftest\""));
        assert!(text.contains("\"name\": \"fast\""));
        assert!(text.contains("\"elems_per_sec\""));
        assert!(text.contains("\"name\": \"slow/variant\""));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
        std::fs::remove_file(path).unwrap();
    }
}
