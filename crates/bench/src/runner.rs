//! The bench runner: warmup, auto-batched timing, and sample collection.
//!
//! Replaces the external `criterion` harness with the minimal loop the
//! repo needs: each bench runs `warmup` untimed batches followed by
//! `samples` timed batches on `std::time::Instant`, where the batch
//! size is auto-calibrated so one batch runs long enough to be timeable
//! (cheap simulator hot-paths get large batches, multi-second figure
//! reproductions run one iteration per sample). `finish()` prints a
//! summary table and writes `results/bench_<suite>.json`.

use std::hint::black_box;
use std::time::Instant;

use crate::report;
use crate::stats::{fmt_ns, Stats};

/// A batch must run at least this long for `Instant` noise to vanish.
const TARGET_BATCH_NS: f64 = 2.0e6;

/// Cap on auto-calibrated batch size.
const MAX_BATCH: u64 = 1 << 24;

/// Runner configuration, derived from the environment and argv.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Untimed warmup batches per bench.
    pub warmup: u32,
    /// Timed batches (samples) per bench.
    pub samples: u32,
    /// Quick mode: single sample, no warmup — catches bit-rot in CI
    /// without paying for statistics.
    pub quick: bool,
}

impl BenchConfig {
    /// Reads configuration from argv and the environment.
    ///
    /// `--quick` (after `cargo bench -p mtm-bench --`) or
    /// `MTM_BENCH_QUICK=1` selects quick mode; `MTM_BENCH_SAMPLES=<n>`
    /// overrides the sample count either way. Unknown arguments (such
    /// as the filters cargo forwards) are ignored.
    pub fn from_env() -> BenchConfig {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("MTM_BENCH_QUICK").map(|v| v == "1").unwrap_or(false);
        let samples = std::env::var("MTM_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if quick { 1 } else { 10 });
        BenchConfig { warmup: if quick { 0 } else { 2 }, samples: samples.max(1), quick }
    }
}

/// One measured bench within a suite.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Bench name (criterion-style `group/name` labels welcome).
    pub name: String,
    /// Iterations per timed sample (1 unless auto-batching kicked in).
    pub batch: u64,
    /// Elements processed per iteration, when throughput is meaningful.
    pub elems_per_iter: Option<u64>,
    /// Per-iteration timing statistics.
    pub stats: Stats,
}

impl BenchResult {
    /// Elements per second at the mean iteration time, if declared.
    pub fn elems_per_sec(&self) -> Option<f64> {
        self.elems_per_iter.map(|e| e as f64 * 1e9 / self.stats.mean_ns)
    }
}

/// A bench suite: accumulates results and writes one JSON report.
pub struct Bench {
    suite: String,
    config: BenchConfig,
    results: Vec<BenchResult>,
}

impl Bench {
    /// Starts a suite named after the bench target (e.g. `"profiling"`).
    pub fn new(suite: &str) -> Bench {
        Bench::with_config(suite, BenchConfig::from_env())
    }

    /// Starts a suite with an explicit configuration (used by tests).
    pub fn with_config(suite: &str, config: BenchConfig) -> Bench {
        println!(
            "bench suite '{suite}': {} sample(s), {} warmup batch(es){}",
            config.samples,
            config.warmup,
            if config.quick { " [quick]" } else { "" },
        );
        Bench { suite: suite.to_string(), config, results: Vec::new() }
    }

    /// Times `f`, auto-batching cheap routines up to `MAX_BATCH`
    /// iterations per sample.
    pub fn iter<T, F: FnMut() -> T>(&mut self, name: &str, f: F) {
        self.run(name, None, f)
    }

    /// Like [`Bench::iter`], declaring `elems` processed per iteration
    /// so the report can show throughput.
    pub fn iter_throughput<T, F: FnMut() -> T>(&mut self, name: &str, elems: u64, f: F) {
        self.run(name, Some(elems), f)
    }

    /// Times `routine` against a fresh untimed `setup()` product per
    /// sample — for routines that consume or mutate their input (the
    /// criterion `iter_batched` pattern). Never batched.
    pub fn iter_batched<S, T>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        for _ in 0..self.config.warmup.min(1) {
            black_box(routine(setup()));
        }
        let mut samples = Vec::with_capacity(self.config.samples as usize);
        for _ in 0..self.config.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed().as_secs_f64() * 1e9);
        }
        self.record(name, 1, None, &samples);
    }

    fn run<T, F: FnMut() -> T>(&mut self, name: &str, elems: Option<u64>, mut f: F) {
        // Calibrate: one untimed-in-spirit invocation tells us whether
        // the routine needs batching to outlast timer noise.
        let start = Instant::now();
        black_box(f());
        let once_ns = (start.elapsed().as_secs_f64() * 1e9).max(1.0);
        let mut batch = if once_ns >= TARGET_BATCH_NS {
            1
        } else {
            ((TARGET_BATCH_NS / once_ns) as u64).clamp(1, MAX_BATCH)
        };
        if batch > 1 {
            // Second calibration round: the first call is cold (page
            // faults, icache) and understates the routine's speed.
            let per_iter = (Self::time_batch(&mut f, batch) / batch as f64).max(0.1);
            batch = ((TARGET_BATCH_NS / per_iter) as u64).clamp(1, MAX_BATCH);
        }
        for _ in 0..self.config.warmup {
            Self::time_batch(&mut f, batch);
        }
        let mut samples = Vec::with_capacity(self.config.samples as usize);
        for _ in 0..self.config.samples {
            samples.push(Self::time_batch(&mut f, batch) / batch as f64);
        }
        self.record(name, batch, elems, &samples);
    }

    fn time_batch<T, F: FnMut() -> T>(f: &mut F, batch: u64) -> f64 {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        start.elapsed().as_secs_f64() * 1e9
    }

    fn record(&mut self, name: &str, batch: u64, elems_per_iter: Option<u64>, samples: &[f64]) {
        let result = BenchResult {
            name: name.to_string(),
            batch,
            elems_per_iter,
            stats: Stats::from_ns(samples),
        };
        let s = &result.stats;
        let throughput = result
            .elems_per_sec()
            .map(|eps| format!("  ({:.2} M elem/s)", eps / 1e6))
            .unwrap_or_default();
        println!(
            "  {name:<40} mean {:>10}  p50 {:>10}  min {:>10}  ±{}{throughput}",
            fmt_ns(s.mean_ns),
            fmt_ns(s.p50_ns),
            fmt_ns(s.min_ns),
            fmt_ns(s.stddev_ns),
        );
        self.results.push(result);
    }

    /// Accumulated results (mainly for tests).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the suite footer and writes `results/bench_<suite>.json`.
    pub fn finish(self) {
        let path = report::write_json(&self.suite, &self.config, &self.results)
            .expect("bench report is writable");
        println!("bench suite '{}': {} benches -> {}", self.suite, self.results.len(), path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> BenchConfig {
        BenchConfig { warmup: 0, samples: 3, quick: true }
    }

    #[test]
    fn cheap_routines_get_batched() {
        let mut b = Bench::with_config("test", test_config());
        let mut x = 0u64;
        b.iter("spin", || {
            x = x.wrapping_add(1);
            x
        });
        let r = &b.results()[0];
        assert!(r.batch > 1, "ns-scale routine batched (batch={})", r.batch);
        assert_eq!(r.stats.samples, 3);
    }

    #[test]
    fn slow_routines_run_unbatched() {
        let mut b = Bench::with_config("test", test_config());
        b.iter("sleep", || std::thread::sleep(std::time::Duration::from_millis(3)));
        let r = &b.results()[0];
        assert_eq!(r.batch, 1);
        assert!(r.stats.min_ns >= 3.0e6, "sleep shows up in timing");
    }

    #[test]
    fn batched_setup_is_not_timed() {
        let mut b = Bench::with_config("test", test_config());
        b.iter_batched(
            "consume",
            || vec![1u8; 1024],
            |v| v.into_iter().map(u64::from).sum::<u64>(),
        );
        assert_eq!(b.results()[0].batch, 1);
    }

    #[test]
    fn throughput_is_derived_from_mean() {
        let mut b = Bench::with_config("test", test_config());
        b.iter_throughput("elems", 4, || std::hint::black_box(2u64 + 2));
        let r = &b.results()[0];
        let eps = r.elems_per_sec().unwrap();
        assert!((eps - 4.0 * 1e9 / r.stats.mean_ns).abs() < 1e-6);
    }
}
