//! `mtm-bench` — Criterion benchmarks regenerating the paper's tables and
//! figures at a reduced (CI-sized) scale.
//!
//! Each bench target maps to evaluation artifacts (see `DESIGN.md`):
//!
//! | bench | paper artifacts |
//! |-------|-----------------|
//! | `profiling` | Fig. 1, Fig. 6, Fig. 8, Table 7 |
//! | `migration` | Fig. 3, Fig. 11 |
//! | `overall` | Fig. 4, Fig. 5, Tables 3-6, Fig. 12 |
//! | `ablation` | Fig. 7, Fig. 9, Fig. 10 |
//! | `substrate` | simulator hot paths (access, scan, migrate) |

use mtm_harness::Opts;

/// Bench-sized options: small, fast, deterministic.
pub fn bench_opts() -> Opts {
    let mut o = Opts::quick();
    o.scale = 1 << 13;
    o.intervals = 8;
    o.threads = 4;
    o
}
