//! `mtm-bench` — in-repo benchmark harness plus benches regenerating
//! the paper's tables and figures at a reduced (CI-sized) scale.
//!
//! The harness (see [`runner`], [`stats`], [`report`]) replaces
//! `criterion` so the workspace builds with zero external dependencies:
//! warmup + N timed samples over `std::time::Instant`, auto-batching
//! for nanosecond-scale routines, mean/p50/min/stddev summaries, and a
//! JSON report per suite under `results/bench_<suite>.json` so BENCH
//! trajectories can be tracked across PRs.
//!
//! Run everything with `cargo bench -p mtm-bench`; add `-- --quick`
//! (or `MTM_BENCH_QUICK=1`) for a single-sample bit-rot check.
//!
//! Each bench target maps to evaluation artifacts (see `DESIGN.md`):
//!
//! | bench | paper artifacts |
//! |-------|-----------------|
//! | `profiling` | Fig. 1, Fig. 6, Fig. 8, Table 7 |
//! | `migration` | Fig. 3, Fig. 11 |
//! | `overall` | Fig. 4, Fig. 5, Tables 3-6, Fig. 12 |
//! | `ablation` | Fig. 7, Fig. 9, Fig. 10 |
//! | `substrate` | simulator hot paths (access, scan, migrate) |

pub mod report;
pub mod runner;
pub mod stats;

pub use runner::{Bench, BenchConfig, BenchResult};
pub use stats::Stats;

use mtm_harness::Opts;

/// Bench-sized options: small, fast, deterministic.
pub fn bench_opts() -> Opts {
    let mut o = Opts::quick();
    o.scale = 1 << 13;
    o.intervals = 8;
    o.threads = 4;
    o
}
