//! Summary statistics over timed samples.

/// Summary of a bench's per-iteration sample times, in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stats {
    /// Number of timed samples.
    pub samples: usize,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Median (lower-middle for even counts, so it is a real sample).
    pub p50_ns: f64,
    /// Fastest sample — the least-noise estimate on a busy machine.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Sample standard deviation (0 for a single sample).
    pub stddev_ns: f64,
}

impl Stats {
    /// Computes statistics from raw per-iteration times.
    pub fn from_ns(samples: &[f64]) -> Stats {
        assert!(!samples.is_empty(), "stats need at least one sample");
        let n = samples.len();
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let stddev = if n > 1 {
            let var = sorted.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        } else {
            0.0
        };
        Stats {
            samples: n,
            mean_ns: mean,
            p50_ns: sorted[(n - 1) / 2],
            min_ns: sorted[0],
            max_ns: sorted[n - 1],
            stddev_ns: stddev,
        }
    }
}

/// Formats a nanosecond quantity with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_samples() {
        let s = Stats::from_ns(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.samples, 4);
        assert_eq!(s.mean_ns, 2.5);
        assert_eq!(s.p50_ns, 2.0);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.max_ns, 4.0);
        assert!((s.stddev_ns - 1.2909944487358056).abs() < 1e-12);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let s = Stats::from_ns(&[7.5]);
        assert_eq!(s.mean_ns, 7.5);
        assert_eq!(s.p50_ns, 7.5);
        assert_eq!(s.stddev_ns, 0.0);
    }

    #[test]
    fn unit_formatting_scales() {
        assert_eq!(fmt_ns(512.0), "512.0 ns");
        assert_eq!(fmt_ns(2_500.0), "2.50 µs");
        assert_eq!(fmt_ns(3_100_000.0), "3.10 ms");
        assert_eq!(fmt_ns(2.5e9), "2.500 s");
    }
}
