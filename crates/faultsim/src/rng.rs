//! Local SplitMix64 stream.
//!
//! `faultsim` is dependency-free (it sits *below* `tiersim` in the crate
//! graph, so it cannot borrow the simulator's RNG), hence this small copy
//! of the same SplitMix64 everything else in the workspace uses. Keeping
//! the generator identical means a fault schedule is fully described by
//! `(plan, seed)` — nothing about the host, thread or build enters it.

/// A SplitMix64 generator dedicated to fault-injection decisions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed.wrapping_add(0x9e3779b97f4a7c15) }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Derives a per-run seed from a base seed and a label (manager, fault
/// level, ...), so a sweep can give every run its own reproducible stream
/// regardless of the order runs execute in.
pub fn derive_seed(base: u64, label: &str) -> u64 {
    // FNV-1a over the label folded into a SplitMix64 scramble: cheap,
    // stable, and label order independent.
    let mut h = 0xcbf29ce484222325u64 ^ base;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    SplitMix64::new(h).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(SplitMix64::new(1).next_u64(), SplitMix64::new(2).next_u64());
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = SplitMix64::new(3);
        for _ in 0..256 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn derived_seeds_differ_by_label_and_base() {
        assert_eq!(derive_seed(7, "MTM/heavy"), derive_seed(7, "MTM/heavy"));
        assert_ne!(derive_seed(7, "MTM/heavy"), derive_seed(7, "MTM/light"));
        assert_ne!(derive_seed(7, "MTM/heavy"), derive_seed(8, "MTM/heavy"));
    }
}
