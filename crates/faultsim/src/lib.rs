//! Deterministic fault-injection plane for the simulated tiered-memory
//! machine.
//!
//! Real tiered-memory stacks lose migrations to pinned/busy pages,
//! transient allocation failure, and bandwidth collapse, and lose
//! profiling samples to ring-buffer overruns. This crate models those
//! failure classes as a seed-driven *plan* the simulator consults on
//! every migration attempt, PEBS/hint drain, and bandwidth computation:
//!
//! - [`FaultPlan`] — what to inject (parsed from `MTM_FAULTS`, see
//!   [`plan`] for the spec grammar).
//! - [`FaultState`] — a plan bound to a SplitMix64 stream plus injection
//!   counters. All randomness comes from this one stream, so a run is
//!   byte-reproducible from `(plan, seed)` alone, independent of how many
//!   harness jobs execute concurrently.
//!
//! The disabled state ([`FaultState::disabled`]) answers every query
//! with "no fault" **without consuming random numbers or doing float
//! math**, so a healthy run with this crate wired in is bit-identical to
//! one without it.
//!
//! The crate is intentionally dependency-free: it sits below `tiersim`
//! in the workspace graph so the machine itself can own a `FaultState`.

pub mod plan;
pub mod rng;

pub use plan::{BwWindow, FaultPlan, DEFAULT_SEED, ENV_FAULTS, ENV_FAULT_SEED};
pub use rng::{derive_seed, SplitMix64};

/// Counters of what was actually injected, for reports and telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Migration attempts failed with `PageBusy`.
    pub page_busy: u64,
    /// Migration attempts failed with `TransientAllocFail`.
    pub alloc_fail: u64,
    /// PEBS samples dropped on drain.
    pub pebs_dropped: u64,
    /// Hint-fault records dropped on drain.
    pub hints_dropped: u64,
}

impl FaultStats {
    /// Total injections of any kind.
    pub fn total(&self) -> u64 {
        self.page_busy + self.alloc_fail + self.pebs_dropped + self.hints_dropped
    }
}

/// A fault plan bound to its random stream and injection counters.
///
/// One `FaultState` belongs to one simulated machine; queries mutate the
/// stream, so the order of queries (which is deterministic inside a run)
/// fully determines the schedule.
#[derive(Clone, Debug)]
pub struct FaultState {
    plan: FaultPlan,
    seed: u64,
    rng: SplitMix64,
    stats: FaultStats,
}

impl Default for FaultState {
    fn default() -> Self {
        FaultState::disabled()
    }
}

impl FaultState {
    /// A state that never injects anything and never consumes randomness.
    pub fn disabled() -> FaultState {
        FaultState::new(FaultPlan::default(), DEFAULT_SEED)
    }

    /// Binds `plan` to a fresh SplitMix64 stream seeded with `seed`.
    pub fn new(plan: FaultPlan, seed: u64) -> FaultState {
        FaultState { plan, seed, rng: SplitMix64::new(seed), stats: FaultStats::default() }
    }

    /// True when at least one fault class can fire.
    pub fn is_active(&self) -> bool {
        !self.plan.is_disabled()
    }

    /// The plan this state draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The seed the stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Rewinds the stream to its initial position and clears the
    /// counters (used when a machine resets its measurement epoch so the
    /// measured run sees the same schedule as a fresh machine would).
    pub fn reset(&mut self) {
        self.rng = SplitMix64::new(self.seed);
        self.stats = FaultStats::default();
    }

    #[inline]
    fn roll(&mut self, p: f64) -> bool {
        // p == 0 must not consume randomness: the healthy path has to be
        // byte-identical whether or not a (partially) disabled plan is
        // installed.
        p > 0.0 && self.rng.unit_f64() < p
    }

    /// Should this migration attempt fail with a transient page-busy?
    pub fn page_busy(&mut self) -> bool {
        let hit = self.roll(self.plan.page_busy);
        self.stats.page_busy += hit as u64;
        hit
    }

    /// Should this migration attempt fail with a transient allocation
    /// failure on the destination component?
    pub fn alloc_fail(&mut self) -> bool {
        let hit = self.roll(self.plan.alloc_fail);
        self.stats.alloc_fail += hit as u64;
        hit
    }

    /// Should this drained PEBS sample be lost?
    pub fn drop_pebs(&mut self) -> bool {
        let hit = self.roll(self.plan.drop_pebs);
        self.stats.pebs_dropped += hit as u64;
        hit
    }

    /// Should this drained hint-fault record be lost?
    pub fn drop_hint(&mut self) -> bool {
        let hit = self.roll(self.plan.drop_hint);
        self.stats.hints_dropped += hit as u64;
        hit
    }

    /// Copy-bandwidth multiplier at `interval` (pure; consumes nothing).
    /// Exactly 1.0 when no window covers the interval.
    pub fn bw_factor(&self, interval: u64) -> f64 {
        if self.plan.bw_windows.is_empty() {
            1.0
        } else {
            self.plan.bw_factor(interval)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heavy_plan() -> FaultPlan {
        FaultPlan::parse("busy=0.5,allocfail=0.3,droppebs=0.4,drophint=0.2,bw=0.25@2..5").unwrap()
    }

    /// Replays `n` mixed queries and returns the outcome schedule.
    fn schedule(state: &mut FaultState, n: usize) -> Vec<(bool, bool, bool, bool)> {
        (0..n)
            .map(|_| (state.page_busy(), state.alloc_fail(), state.drop_pebs(), state.drop_hint()))
            .collect()
    }

    #[test]
    fn disabled_state_never_fires_and_never_consumes() {
        let mut s = FaultState::disabled();
        let rng_before = s.rng.clone();
        for _ in 0..64 {
            assert!(!s.page_busy());
            assert!(!s.alloc_fail());
            assert!(!s.drop_pebs());
            assert!(!s.drop_hint());
            assert_eq!(s.bw_factor(3), 1.0);
        }
        assert_eq!(s.rng, rng_before, "disabled queries must not advance the stream");
        assert_eq!(s.stats(), FaultStats::default());
        assert!(!s.is_active());
    }

    #[test]
    fn partially_disabled_classes_do_not_consume() {
        // With only `busy` active, the busy schedule must be identical to
        // a plan that *also* enables droppebs=0 etc. — i.e. zero-p rolls
        // must not advance the stream.
        let mut only_busy = FaultState::new(FaultPlan::parse("busy=0.5").unwrap(), 42);
        let mut mixed = FaultState::new(FaultPlan::parse("busy=0.5").unwrap(), 42);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..128 {
            a.push(only_busy.page_busy());
            b.push(mixed.page_busy());
            // These are all p=0 on this plan and must be free.
            assert!(!mixed.alloc_fail() && !mixed.drop_pebs() && !mixed.drop_hint());
        }
        assert_eq!(a, b);
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FaultState::new(heavy_plan(), 7);
        let mut b = FaultState::new(heavy_plan(), 7);
        assert_eq!(schedule(&mut a, 256), schedule(&mut b, 256));
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().total() > 0, "heavy plan should inject something in 256 rolls");
    }

    #[test]
    fn different_seed_different_schedule() {
        let mut a = FaultState::new(heavy_plan(), 7);
        let mut b = FaultState::new(heavy_plan(), 8);
        assert_ne!(schedule(&mut a, 256), schedule(&mut b, 256));
    }

    #[test]
    fn reset_rewinds_the_stream() {
        let mut s = FaultState::new(heavy_plan(), 11);
        let first = schedule(&mut s, 64);
        s.reset();
        assert_eq!(s.stats(), FaultStats::default());
        assert_eq!(schedule(&mut s, 64), first);
    }

    #[test]
    fn bw_factor_follows_windows() {
        let s = FaultState::new(heavy_plan(), 1);
        assert_eq!(s.bw_factor(0), 1.0);
        assert_eq!(s.bw_factor(2), 0.25);
        assert_eq!(s.bw_factor(4), 0.25);
        assert_eq!(s.bw_factor(5), 1.0);
    }

    #[test]
    fn stats_count_each_class() {
        let mut s = FaultState::new(FaultPlan::parse("busy=1,droppebs=1").unwrap(), 3);
        for _ in 0..5 {
            assert!(s.page_busy());
            assert!(s.drop_pebs());
            assert!(!s.alloc_fail());
        }
        let st = s.stats();
        assert_eq!(st.page_busy, 5);
        assert_eq!(st.pebs_dropped, 5);
        assert_eq!(st.alloc_fail, 0);
        assert_eq!(st.total(), 10);
    }
}
