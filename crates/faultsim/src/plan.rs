//! The fault-plan DSL: what to inject, how often, and when.
//!
//! A [`FaultPlan`] is parsed from a compact spec string (the value of the
//! `MTM_FAULTS` environment variable) of comma-separated clauses:
//!
//! ```text
//! busy=0.2            fail a migration attempt with PageBusy, p = 0.2
//! allocfail=0.1       fail a migration attempt with TransientAllocFail
//! droppebs=0.5        drop each drained PEBS sample with p = 0.5
//! drophint=0.5        drop each drained hint-fault record with p = 0.5
//! bw=0.25@3..9        scale copy bandwidth by 0.25 during intervals [3, 9)
//! bw=0.5              scale copy bandwidth by 0.5 for the whole run
//! ```
//!
//! Example: `MTM_FAULTS="busy=0.2,allocfail=0.05,bw=0.25@3..9"`.
//!
//! Probabilities are clamped to `[0, 1]`; bandwidth factors to
//! `[0.01, 1]` (a zero factor would make copies take forever and hang a
//! run, which is a different experiment). An empty spec parses to the
//! disabled plan.

/// One bandwidth-degradation window: copy bandwidth between components is
/// multiplied by `factor` while the machine is inside interval
/// `[from, until)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BwWindow {
    /// Multiplier applied to copy bandwidth (clamped to `[0.01, 1]`).
    pub factor: f64,
    /// First profiling interval the window covers.
    pub from: u64,
    /// First profiling interval after the window (`u64::MAX` = open).
    pub until: u64,
}

/// A complete fault plan. The default plan injects nothing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Probability a migration attempt fails with `PageBusy`.
    pub page_busy: f64,
    /// Probability a migration attempt fails with `TransientAllocFail`.
    pub alloc_fail: f64,
    /// Probability each drained PEBS sample is lost.
    pub drop_pebs: f64,
    /// Probability each drained hint-fault record is lost.
    pub drop_hint: f64,
    /// Bandwidth-degradation windows (may overlap; factors multiply).
    pub bw_windows: Vec<BwWindow>,
}

/// Environment variable holding the fault spec.
pub const ENV_FAULTS: &str = "MTM_FAULTS";

/// Environment variable holding the injection seed.
pub const ENV_FAULT_SEED: &str = "MTM_FAULT_SEED";

/// Seed used when `MTM_FAULT_SEED` is unset.
pub const DEFAULT_SEED: u64 = 0x4d54_4d00; // "MTM\0"

fn clamp01(v: f64) -> f64 {
    v.clamp(0.0, 1.0)
}

fn parse_prob(key: &str, value: &str) -> Result<f64, String> {
    let p: f64 =
        value.parse().map_err(|_| format!("fault clause {key}={value:?}: not a number"))?;
    if !p.is_finite() || p < 0.0 {
        return Err(format!("fault clause {key}={value:?}: probability must be >= 0"));
    }
    Ok(clamp01(p))
}

impl FaultPlan {
    /// Parses a spec string; the empty (or all-whitespace) spec is the
    /// disabled plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause {clause:?}: expected key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "busy" => plan.page_busy = parse_prob(key, value)?,
                "allocfail" => plan.alloc_fail = parse_prob(key, value)?,
                "droppebs" => plan.drop_pebs = parse_prob(key, value)?,
                "drophint" => plan.drop_hint = parse_prob(key, value)?,
                "bw" => plan.bw_windows.push(parse_bw(value)?),
                _ => {
                    return Err(format!(
                        "fault clause {clause:?}: unknown key {key:?} \
                         (expected busy, allocfail, droppebs, drophint or bw)"
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// Reads the plan from `MTM_FAULTS`. Returns `Ok(None)` when the
    /// variable is unset or empty, `Err` with a human-readable message on
    /// a malformed spec (the caller decides whether that is fatal).
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var(ENV_FAULTS) {
            Ok(spec) if !spec.trim().is_empty() => {
                let plan = FaultPlan::parse(&spec)
                    .map_err(|e| format!("ignoring {ENV_FAULTS}={spec:?}: {e}"))?;
                Ok(if plan.is_disabled() { None } else { Some(plan) })
            }
            _ => Ok(None),
        }
    }

    /// True when this plan can never inject anything.
    pub fn is_disabled(&self) -> bool {
        self.page_busy == 0.0
            && self.alloc_fail == 0.0
            && self.drop_pebs == 0.0
            && self.drop_hint == 0.0
            && self.bw_windows.is_empty()
    }

    /// The combined bandwidth factor at profiling interval `interval`
    /// (overlapping windows multiply; 1.0 outside every window).
    pub fn bw_factor(&self, interval: u64) -> f64 {
        let mut f = 1.0;
        for w in &self.bw_windows {
            if interval >= w.from && interval < w.until {
                f *= w.factor;
            }
        }
        f.max(0.01)
    }
}

/// Reads the injection seed from `MTM_FAULT_SEED` (decimal), falling back
/// to [`DEFAULT_SEED`] when unset or unparsable (a bad seed still yields a
/// deterministic run, just not the one the user asked for — the caller
/// may surface the parse error from the returned tuple).
pub fn seed_from_env() -> (u64, Option<String>) {
    match std::env::var(ENV_FAULT_SEED) {
        Ok(raw) => match raw.parse() {
            Ok(s) => (s, None),
            Err(_) => (
                DEFAULT_SEED,
                Some(format!("ignoring {ENV_FAULT_SEED}={raw:?} (not a u64); using default")),
            ),
        },
        Err(_) => (DEFAULT_SEED, None),
    }
}

fn parse_bw(value: &str) -> Result<BwWindow, String> {
    let (factor_str, window) = match value.split_once('@') {
        Some((f, w)) => (f.trim(), Some(w.trim())),
        None => (value, None),
    };
    let factor: f64 =
        factor_str.parse().map_err(|_| format!("fault clause bw={value:?}: not a number"))?;
    if !factor.is_finite() || factor <= 0.0 {
        return Err(format!("fault clause bw={value:?}: factor must be > 0"));
    }
    let factor = factor.clamp(0.01, 1.0);
    let (from, until) = match window {
        None => (0, u64::MAX),
        Some(w) => {
            let (lo, hi) = w
                .split_once("..")
                .ok_or_else(|| format!("fault clause bw={value:?}: window must be from..until"))?;
            let from: u64 = lo
                .trim()
                .parse()
                .map_err(|_| format!("fault clause bw={value:?}: bad window start"))?;
            let until: u64 = if hi.trim().is_empty() {
                u64::MAX
            } else {
                hi.trim()
                    .parse()
                    .map_err(|_| format!("fault clause bw={value:?}: bad window end"))?
            };
            if until <= from {
                return Err(format!("fault clause bw={value:?}: empty window"));
            }
            (from, until)
        }
    };
    Ok(BwWindow { factor, from, until })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_disabled() {
        assert!(FaultPlan::parse("").unwrap().is_disabled());
        assert!(FaultPlan::parse("  , ,").unwrap().is_disabled());
        assert!(FaultPlan::default().is_disabled());
    }

    #[test]
    fn full_spec_round_trips() {
        let p = FaultPlan::parse("busy=0.2, allocfail=0.05, droppebs=0.5, drophint=0.1, bw=0.25@3..9")
            .unwrap();
        assert_eq!(p.page_busy, 0.2);
        assert_eq!(p.alloc_fail, 0.05);
        assert_eq!(p.drop_pebs, 0.5);
        assert_eq!(p.drop_hint, 0.1);
        assert_eq!(p.bw_windows, vec![BwWindow { factor: 0.25, from: 3, until: 9 }]);
        assert!(!p.is_disabled());
    }

    #[test]
    fn probabilities_clamp_to_unit_interval() {
        let p = FaultPlan::parse("busy=7.5").unwrap();
        assert_eq!(p.page_busy, 1.0);
        assert!(FaultPlan::parse("busy=-0.5").is_err());
        assert!(FaultPlan::parse("busy=nanobot").is_err());
    }

    #[test]
    fn bw_windows_parse_and_combine() {
        let p = FaultPlan::parse("bw=0.5,bw=0.5@4..8,bw=0.25@6..").unwrap();
        assert_eq!(p.bw_windows.len(), 3);
        assert_eq!(p.bw_factor(0), 0.5, "whole-run window only");
        assert_eq!(p.bw_factor(4), 0.25, "two windows multiply");
        assert_eq!(p.bw_factor(7), 0.5 * 0.5 * 0.25, "all three overlap");
        assert_eq!(p.bw_factor(100), 0.5 * 0.25, "open window never ends");
        // The factor floor keeps copies finite.
        let p = FaultPlan::parse("bw=0.001").unwrap();
        assert_eq!(p.bw_factor(0), 0.01);
    }

    #[test]
    fn malformed_clauses_are_loud() {
        for bad in ["busy", "busy:0.5", "turbo=1", "bw=0@1..2", "bw=0.5@5..5", "bw=0.5@a..b"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }
}
