//! Clean twin of the corpus helper crate: the jitter is a pure
//! function of the caller's seed, so no rule has anything to say.

/// Deterministic "jitter" derived from the seed (SplitMix64 finalizer).
pub fn jitter(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
