//! Clean twin tiersim crate root.

pub mod engine;
pub mod machine;
