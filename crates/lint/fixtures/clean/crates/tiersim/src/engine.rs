//! Clean twin relocation engine: the closure below the root is total.

/// Transactional relocation root; panic-free transitively.
pub fn relocate_range(n: u64) -> u64 {
    copy_step(n)
}

/// Saturates instead of unwrapping.
fn copy_step(n: u64) -> u64 {
    n.checked_add(1).unwrap_or(u64::MAX)
}
