//! Clean twin machine: both functions take the locks in the same order,
//! so the acquisition-order graph is acyclic.

use std::sync::Mutex;

/// Two locks, always taken table-then-stats.
pub struct Machine {
    /// Page-table lock.
    pub table: Mutex<u64>,
    /// Statistics lock.
    pub stats: Mutex<u64>,
}

/// Takes `table` then `stats`.
pub fn step(m: &Machine) -> u64 {
    let t = m.table.lock().expect("table lock");
    let s = m.stats.lock().expect("stats lock");
    *t + *s
}

/// Also takes `table` then `stats` — the consistent twin of the
/// corpus inversion.
pub fn report(m: &Machine) -> u64 {
    let t = m.table.lock().expect("table lock");
    let s = m.stats.lock().expect("stats lock");
    *t - *s
}
