//! Clean twin obs crate root.

pub mod metrics;
