//! Clean twin metric names: unique, well-formed, all booked via consts.

pub mod names {
    /// Runs completed.
    pub const RUNS_TOTAL: &str = "runs_total";
    /// Pages migrated.
    pub const PAGES_MOVED: &str = "pages_moved";
}

/// Minimal booking surface standing in for the real registry.
pub fn counter_add(_name: &str, _v: u64) {}

/// Books every declared name through its const.
pub fn book() {
    counter_add(names::RUNS_TOTAL, 1);
    counter_add(names::PAGES_MOVED, 1);
}
