//! Clean twin decision crate: seeds flow in, nothing ambient flows out.

/// Decision entry point over the deterministic helper.
pub fn run_cell(seed: u64) -> u64 {
    seed ^ mtm_util::jitter(seed)
}
