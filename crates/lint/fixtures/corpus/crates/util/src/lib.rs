//! Corpus helper crate: not an ordered crate itself, so only the
//! semantic rules can see what decision paths launder through it.

/// Draws "jitter" from ambient entropy. The textual D3 finding on the
/// draw is suppressed by the `lint.toml` path allow, so only D6 can
/// catch the decision paths that call this.
pub fn jitter() -> u64 {
    let r = rand::random::<u64>();
    r ^ 1
}

/// Carries a misspelled allow slug that L1 must reject.
pub fn quiet() -> u64 {
    7 // lint:allow(wall-clok): misspelled slug for the L1 fixture
}
