//! Corpus decision crate: every fn here is a D6 entry point.

/// Decision entry point that launders entropy through the helper crate.
pub fn run_cell(seed: u64) -> u64 {
    seed ^ mtm_util::jitter()
}
