//! Corpus metric names: seeded O1 violations.

pub mod names {
    /// Booked and clean.
    pub const RUNS_TOTAL: &str = "runs_total";
    /// Violates the `[a-z0-9_]+` charset.
    pub const BAD_CHARSET: &str = "Runs-Total";
    /// Duplicates RUNS_TOTAL's value.
    pub const RUNS_DUP: &str = "runs_total";
    /// Declared but never booked anywhere.
    pub const DEAD_NAME: &str = "dead_name";
}

/// Minimal booking surface standing in for the real registry.
pub fn counter_add(_name: &str, _v: u64) {}

/// Books the declared names (so only DEAD_NAME stays dead) plus one raw
/// literal that must be flagged.
pub fn book() {
    counter_add(names::RUNS_TOTAL, 1);
    counter_add(names::BAD_CHARSET, 1);
    counter_add(names::RUNS_DUP, 1);
    counter_add("raw_booked_name", 1);
}
