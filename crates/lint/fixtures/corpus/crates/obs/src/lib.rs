//! Corpus obs crate root.

pub mod metrics;
