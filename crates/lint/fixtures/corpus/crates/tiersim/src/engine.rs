//! Corpus relocation engine: the D8 closure root.

/// Transactional relocation root; must be panic-free transitively.
pub fn relocate_range(n: u64) -> u64 {
    copy_step(n)
}

/// One hop below the root, hiding an unwrap from the textual rules
/// (this file is outside the D5 scope).
fn copy_step(n: u64) -> u64 {
    n.checked_add(1).unwrap()
}
