//! Corpus machine: a seeded lock-order inversion for D7.

use std::sync::Mutex;

/// Two locks that the functions below take in opposite orders.
pub struct Machine {
    /// Page-table lock.
    pub table: Mutex<u64>,
    /// Statistics lock.
    pub stats: Mutex<u64>,
}

/// Takes `table` then `stats`.
pub fn step(m: &Machine) -> u64 {
    let t = m.table.lock().expect("table lock");
    let s = m.stats.lock().expect("stats lock");
    *t + *s
}

/// Takes `stats` then `table` — the inversion D7 must flag.
pub fn report(m: &Machine) -> u64 {
    let s = m.stats.lock().expect("stats lock");
    let t = m.table.lock().expect("table lock");
    *t - *s
}
