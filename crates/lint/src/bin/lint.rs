//! Workspace determinism lint driver.
//!
//! Usage: `cargo run -p mtm-lint --bin lint [-- <root>]`
//!
//! Scans every workspace `.rs` file and Cargo manifest against the
//! repo-specific rules (D1–D5, H1; see the crate docs), prints findings
//! as `file:line: rule: message`, and exits nonzero if any survive the
//! `lint.toml` allowlist. `scripts/verify.sh` gates on a clean run.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).map(PathBuf::from).unwrap_or_else(|| {
        // crates/lint -> crates -> workspace root
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .map(|p| p.to_path_buf())
            .unwrap_or_else(|| PathBuf::from("."))
    });
    match mtm_lint::run(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("lint: OK ({} sources scanned)", mtm_lint::workspace_sources(&root).len());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("lint: error: {e}");
            ExitCode::FAILURE
        }
    }
}
