//! Workspace determinism lint driver.
//!
//! Usage: `cargo run -p mtm-lint --bin lint [-- [--json|--graph] [<root>]]`
//!
//! Scans every workspace `.rs` file and Cargo manifest against the
//! textual rules (D1–D5, H1) and the semantic rules (D6 determinism
//! taint, D7 lock order, D8 panic paths, O1 obs names, L1 bad allows;
//! see the crate docs), prints findings as `file:line: rule: message`,
//! and exits nonzero if any survive the `lint.toml` allowlist.
//! `scripts/verify.sh` gates on a clean run.
//!
//! Flags:
//! - `--json`: machine-readable output — a JSON array with one object
//!   per finding, stable field order (`path`, `line`, `code`, `slug`,
//!   `message`). The exit code is unchanged.
//! - `--graph`: dump the resolved call graph and lock-order edge set to
//!   stdout for triage, instead of linting.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut graph = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--graph" => graph = true,
            other if other.starts_with("--") => {
                eprintln!("lint: unknown flag {other} (known: --json, --graph)");
                return ExitCode::FAILURE;
            }
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = root.unwrap_or_else(|| {
        // crates/lint -> crates -> workspace root
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .map(|p| p.to_path_buf())
            .unwrap_or_else(|| PathBuf::from("."))
    });
    match mtm_lint::run_with_graph(&root) {
        Ok((_, ws)) if graph => {
            print!("{}", ws.dump());
            ExitCode::SUCCESS
        }
        Ok((findings, _)) if json => {
            println!("[");
            for (i, f) in findings.iter().enumerate() {
                let sep = if i + 1 < findings.len() { "," } else { "" };
                println!("  {}{sep}", f.to_json());
            }
            println!("]");
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                eprintln!("lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Ok(findings) if findings.0.is_empty() => {
            println!("lint: OK ({} sources scanned)", mtm_lint::workspace_sources(&root).len());
            ExitCode::SUCCESS
        }
        Ok((findings, _)) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("lint: error: {e}");
            ExitCode::FAILURE
        }
    }
}
