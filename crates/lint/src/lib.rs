//! Repo-specific determinism lint.
//!
//! rustc and clippy cannot know that this workspace's value rests on
//! byte-reproducible reports: no wall-clock reads in decision paths, no
//! hasher-seed-dependent iteration in anything that prints, no entropy,
//! no panicking shortcuts inside the transactional migration paths, and
//! no dependency the offline build cannot resolve. This crate enforces
//! those policies at the token level — a lightweight scanner (no
//! syn/proc-macro) that is string-safe and comment-safe, so `"HashMap"`
//! in a string literal or `Instant::now` in a doc comment never trips a
//! rule.
//!
//! Rules:
//! - **D1 wall-clock** — `Instant::now`/`SystemTime::now` outside
//!   `crates/bench`.
//! - **D2 unordered-map** — `HashMap`/`HashSet` in report/decision
//!   crates (`mtm`, `baselines`, `harness`, `tiersim`, `obs`) without a
//!   justified `// lint:allow(unordered-map): <reason>` annotation.
//! - **D3 entropy** — `rand`-style entropy sources anywhere.
//! - **D4 non-exhaustive-error** — public `*Error` enums must carry
//!   `#[non_exhaustive]`.
//! - **D5 no-unwrap** — `.unwrap()`/`.expect(` in the transactional
//!   migration paths (`tiersim::migrate`, `mtm::migration`).
//! - **H1 hermetic-dep** — every manifest dependency must resolve
//!   inside the workspace (see [`hermetic`]).
//!
//! Test code is exempt: files under `tests/`/`benches/` and `#[cfg(test)]`
//! regions. Line-level exceptions use `// lint:allow(<slug>): <reason>`
//! (same line or the comment line directly above); repo-wide exceptions
//! live in `lint.toml` (`allow <slug> <path-substring>` lines).

use std::fmt;
use std::path::{Path, PathBuf};

pub mod hermetic;

/// The lint rules, in reporting order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// D1: wall-clock time outside `crates/bench`.
    WallClock,
    /// D2: iteration-order-unstable collections in report/decision crates.
    UnorderedMap,
    /// D3: entropy sources anywhere.
    Entropy,
    /// D4: public error enums must be `#[non_exhaustive]`.
    NonExhaustiveError,
    /// D5: panicking shortcuts in transactional migration paths.
    NoUnwrap,
    /// H1: non-hermetic manifest dependency.
    HermeticDep,
}

impl Rule {
    /// Short rule code (`D1`..`D5`, `H1`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::WallClock => "D1",
            Rule::UnorderedMap => "D2",
            Rule::Entropy => "D3",
            Rule::NonExhaustiveError => "D4",
            Rule::NoUnwrap => "D5",
            Rule::HermeticDep => "H1",
        }
    }

    /// Stable slug used in `lint:allow(...)` annotations and `lint.toml`.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::UnorderedMap => "unordered-map",
            Rule::Entropy => "entropy",
            Rule::NonExhaustiveError => "non-exhaustive-error",
            Rule::NoUnwrap => "no-unwrap",
            Rule::HermeticDep => "hermetic-dep",
        }
    }
}

/// One lint finding, displayed as `file:line: CODE/slug: message`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Path relative to the workspace root (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}/{}: {}",
            self.path,
            self.line,
            self.rule.code(),
            self.rule.slug(),
            self.message
        )
    }
}

/// One `lint.toml` allowlist entry: suppress `slug` findings in any file
/// whose relative path contains `path_substr`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allow {
    /// Rule slug the entry suppresses.
    pub slug: String,
    /// Substring matched against the finding's relative path.
    pub path_substr: String,
}

/// Parses the plain-text allowlist: `#` comment lines, blank lines, and
/// `allow <slug> <path-substring>` entries (trailing `# reason` ignored).
pub fn parse_allowlist(text: &str) -> Result<Vec<Allow>, String> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut toks = line.split_whitespace();
        let (verb, slug, path) = (toks.next(), toks.next(), toks.next());
        match (verb, slug, path) {
            (Some("allow"), Some(slug), Some(path)) => {
                let rest = toks.next();
                if let Some(r) = rest {
                    if !r.starts_with('#') {
                        return Err(format!(
                            "lint.toml:{}: trailing token `{r}` (use `# reason` for comments)",
                            i + 1
                        ));
                    }
                }
                out.push(Allow { slug: slug.to_string(), path_substr: path.to_string() });
            }
            _ => {
                return Err(format!(
                    "lint.toml:{}: expected `allow <slug> <path-substring>`, got `{line}`",
                    i + 1
                ));
            }
        }
    }
    Ok(out)
}

/// Returns `src` with comments and string/char-literal *contents* blanked
/// to spaces (newlines preserved, so line numbers survive). Handles line
/// and nested block comments, escapes, raw strings (`r"..."`,
/// `r#"..."#`), byte strings, and tells lifetimes (`'a`) apart from char
/// literals (`'x'`, `'\n'`).
pub fn strip_code(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = String::with_capacity(src.len());
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    let mut i = 0;
    while i < n {
        let c = b[i];
        let prev_ident = out.chars().last().is_some_and(|p| p.is_alphanumeric() || p == '_');
        match c {
            '/' if i + 1 < n && b[i + 1] == '/' => {
                while i < n && b[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let mut depth = 1;
                out.push_str("  ");
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                    } else {
                        out.push(blank(b[i]));
                        i += 1;
                    }
                }
            }
            '"' => {
                out.push('"');
                i += 1;
                while i < n {
                    if b[i] == '\\' && i + 1 < n {
                        out.push_str("  ");
                        i += 2;
                    } else if b[i] == '"' {
                        out.push('"');
                        i += 1;
                        break;
                    } else {
                        out.push(blank(b[i]));
                        i += 1;
                    }
                }
            }
            'r' | 'b' if !prev_ident => {
                // Possible raw/byte string prefix: r" r#" b" br" br#".
                let mut j = i;
                let mut is_raw = false;
                if b[j] == 'b' {
                    j += 1;
                }
                if j < n && b[j] == 'r' {
                    is_raw = true;
                    j += 1;
                }
                let mut hashes = 0;
                if is_raw {
                    while j < n && b[j] == '#' {
                        hashes += 1;
                        j += 1;
                    }
                }
                let is_literal = j < n && b[j] == '"' && (is_raw || b[i] == 'b');
                if is_literal {
                    for _ in i..=j {
                        out.push(' ');
                    }
                    i = j + 1;
                    while i < n {
                        if !is_raw && b[i] == '\\' && i + 1 < n {
                            // Plain byte string: honor escapes.
                            out.push_str("  ");
                            i += 2;
                        } else if b[i] == '"' {
                            // Close only on `"` followed by `hashes` #s.
                            let have =
                                (0..hashes).take_while(|&k| b.get(i + 1 + k) == Some(&'#')).count();
                            if have == hashes {
                                for _ in 0..=hashes {
                                    out.push(' ');
                                }
                                i += 1 + hashes;
                                break;
                            }
                            out.push(' ');
                            i += 1;
                        } else {
                            out.push(blank(b[i]));
                            i += 1;
                        }
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            '\'' => {
                if i + 1 < n && b[i + 1] == '\\' {
                    // Escaped char literal: '\n', '\'', '\u{...}'.
                    out.push_str("'  ");
                    i += 3;
                    while i < n && b[i] != '\'' {
                        out.push(blank(b[i]));
                        i += 1;
                    }
                    if i < n {
                        out.push('\'');
                        i += 1;
                    }
                } else if i + 2 < n && b[i + 2] == '\'' {
                    // Simple char literal 'x' (including 'a' — a lifetime
                    // is never followed by a closing quote).
                    out.push_str("' '");
                    i += 3;
                } else {
                    // Lifetime tick.
                    out.push('\'');
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// True when `word` occurs in `line` delimited by non-identifier chars.
fn has_ident(line: &str, word: &str) -> bool {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !line[..at].chars().next_back().is_some_and(is_ident);
        let after_ok = !line[at + word.len()..].chars().next().is_some_and(is_ident);
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// Marks every line inside a `#[cfg(test)]`-gated item (brace-matched
/// from the attribute), so unit-test modules are rule-exempt.
fn test_mask(stripped_lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; stripped_lines.len()];
    let mut i = 0;
    while i < stripped_lines.len() {
        if stripped_lines[i].contains("cfg(test)") {
            let mut depth: i64 = 0;
            let mut opened = false;
            let mut j = i;
            while j < stripped_lines.len() {
                mask[j] = true;
                for ch in stripped_lines[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// If line `idx` (or the comment-only line directly above it) carries a
/// `lint:allow(<slug>)` annotation, returns its trimmed reason text
/// (possibly empty — the caller turns an empty reason into a finding).
fn annotation_reason<'a>(raw_lines: &'a [&'a str], idx: usize, slug: &str) -> Option<&'a str> {
    let needle = format!("lint:allow({slug})");
    let extract = |line: &'a str| -> Option<&'a str> {
        let pos = line.find(&needle)?;
        let rest = &line[pos + needle.len()..];
        Some(rest.strip_prefix(':').unwrap_or("").trim())
    };
    if let Some(r) = extract(raw_lines[idx]) {
        return Some(r);
    }
    if idx > 0 {
        let above = raw_lines[idx - 1].trim_start();
        if above.starts_with("//") {
            return extract(raw_lines[idx - 1]);
        }
    }
    None
}

/// Crates whose output feeds reports or policy decisions (D2 scope).
const ORDERED_CRATES: &[&str] = &[
    "crates/mtm/",
    "crates/baselines/",
    "crates/harness/",
    "crates/tiersim/",
    "crates/obs/",
    "crates/scenario/",
];

/// Entropy-source identifiers rejected everywhere (D3).
const ENTROPY_IDENTS: &[&str] =
    &["thread_rng", "OsRng", "getrandom", "from_entropy", "StdRng", "SmallRng", "RandomState"];

/// Files holding the transactional migration paths (D5 scope).
const NO_UNWRAP_FILES: &[&str] = &["crates/tiersim/src/migrate.rs", "crates/mtm/src/migration.rs"];

/// True when the path is wholly test code (integration tests, benches).
fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.starts_with("benches/")
        || rel.contains("/benches/")
}

/// Scans one source file (before allowlist filtering). `rel` is the
/// workspace-relative path with forward slashes.
pub fn scan_source(rel: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    if is_test_path(rel) {
        return findings;
    }
    let stripped = strip_code(src);
    let stripped_lines: Vec<&str> = stripped.lines().collect();
    let raw_lines: Vec<&str> = src.lines().collect();
    let mask = test_mask(&stripped_lines);

    let d1_scope = !rel.starts_with("crates/bench/");
    let d2_scope = ORDERED_CRATES.iter().any(|p| rel.starts_with(p));
    let d5_scope = NO_UNWRAP_FILES.iter().any(|f| rel == *f || rel.ends_with(f));

    let emit = |line_idx: usize, rule: Rule, message: String, findings: &mut Vec<Finding>| {
        match annotation_reason(&raw_lines, line_idx, rule.slug()) {
            Some(reason) if !reason.is_empty() => {}
            Some(_) => findings.push(Finding {
                path: rel.to_string(),
                line: line_idx + 1,
                rule,
                message: format!(
                    "lint:allow({}) annotation is missing its justification",
                    rule.slug()
                ),
            }),
            None => findings.push(Finding { path: rel.to_string(), line: line_idx + 1, rule, message }),
        }
    };

    for (idx, line) in stripped_lines.iter().enumerate() {
        if mask[idx] {
            continue;
        }
        let collapsed: String = line.chars().filter(|c| !c.is_whitespace()).collect();

        if d1_scope
            && (collapsed.contains("Instant::now(") || collapsed.contains("SystemTime::now("))
        {
            emit(
                idx,
                Rule::WallClock,
                "wall-clock read outside crates/bench; decision paths must use the virtual clock"
                    .to_string(),
                &mut findings,
            );
        }

        if d2_scope && (has_ident(line, "HashMap") || has_ident(line, "HashSet")) {
            let which = if has_ident(line, "HashMap") { "HashMap" } else { "HashSet" };
            emit(
                idx,
                Rule::UnorderedMap,
                format!(
                    "{which} in a report/decision crate; use BTreeMap/BTreeSet or justify with lint:allow(unordered-map)"
                ),
                &mut findings,
            );
        }

        for ident in ENTROPY_IDENTS {
            if has_ident(line, ident) {
                emit(
                    idx,
                    Rule::Entropy,
                    format!("entropy source `{ident}`; all randomness must come from seeded in-repo PRNGs"),
                    &mut findings,
                );
                break;
            }
        }
        if has_ident(line, "rand") && line.contains("rand::") {
            emit(
                idx,
                Rule::Entropy,
                "`rand::` path; the external rand crate is neither hermetic nor deterministic"
                    .to_string(),
                &mut findings,
            );
        }

        // D4: `pub enum FooError` must carry #[non_exhaustive] within the
        // preceding attribute block (look back up to 8 lines).
        if let Some(rest) = line.trim_start().strip_prefix("pub enum ") {
            let ident: String =
                rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if ident.ends_with("Error") {
                let lo = idx.saturating_sub(8);
                let attributed =
                    stripped_lines[lo..idx].iter().any(|l| l.contains("non_exhaustive"));
                if !attributed {
                    emit(
                        idx,
                        Rule::NonExhaustiveError,
                        format!("public error enum `{ident}` is not #[non_exhaustive]"),
                        &mut findings,
                    );
                }
            }
        }

        if d5_scope && (collapsed.contains(".unwrap()") || collapsed.contains(".expect(")) {
            emit(
                idx,
                Rule::NoUnwrap,
                "panicking shortcut in a transactional migration path; handle the None/Err arm"
                    .to_string(),
                &mut findings,
            );
        }
    }
    findings
}

/// Recursively collects every `.rs` file under `root`, skipping build
/// output and VCS/artifact directories. Sorted for deterministic output.
pub fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(name.as_ref(), "target" | ".git" | "results" | ".claude") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Relative path with forward slashes, for findings and scope checks.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Applies the allowlist: drops findings whose slug matches an entry and
/// whose path contains the entry's substring.
pub fn apply_allowlist(findings: Vec<Finding>, allows: &[Allow]) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| {
            !allows
                .iter()
                .any(|a| a.slug == f.rule.slug() && f.path.contains(&a.path_substr))
        })
        .collect()
}

/// Full lint run: every workspace `.rs` file through the source rules,
/// every manifest through the hermeticity rules, allowlist applied,
/// findings sorted. This is what `bin/lint` and `tests/hermetic.rs` call.
pub fn run(root: &Path) -> Result<Vec<Finding>, String> {
    let allows = match std::fs::read_to_string(root.join("lint.toml")) {
        Ok(text) => parse_allowlist(&text)?,
        Err(_) => Vec::new(),
    };
    let mut findings = Vec::new();
    for path in workspace_sources(root) {
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        findings.extend(scan_source(&rel_path(root, &path), &src));
    }
    findings.extend(hermetic::scan_manifests(root)?);
    let mut findings = apply_allowlist(findings, &allows);
    findings.sort();
    Ok(findings)
}

#[cfg(test)]
mod tests;
