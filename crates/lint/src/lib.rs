//! Repo-specific determinism lint.
//!
//! rustc and clippy cannot know that this workspace's value rests on
//! byte-reproducible reports: no wall-clock reads in decision paths, no
//! hasher-seed-dependent iteration in anything that prints, no entropy,
//! no panicking shortcuts inside the transactional migration paths, and
//! no dependency the offline build cannot resolve. This crate enforces
//! those policies at the token level — a lightweight scanner (no
//! syn/proc-macro) that is string-safe and comment-safe, so `"HashMap"`
//! in a string literal or `Instant::now` in a doc comment never trips a
//! rule.
//!
//! Textual rules (one line at a time):
//! - **D1 wall-clock** — `Instant::now`/`SystemTime::now` outside
//!   `crates/bench`.
//! - **D2 unordered-map** — `HashMap`/`HashSet` in report/decision
//!   crates (`mtm`, `baselines`, `harness`, `tiersim`, `obs`,
//!   `scenario`) without a justified
//!   `// lint:allow(unordered-map): <reason>` annotation.
//! - **D3 entropy** — `rand`-style entropy sources anywhere.
//! - **D4 non-exhaustive-error** — public `*Error` enums must carry
//!   `#[non_exhaustive]`.
//! - **D5 no-unwrap** — `.unwrap()`/`.expect(` in the transactional
//!   migration paths (`tiersim::migrate`, `mtm::migration`).
//! - **H1 hermetic-dep** — every manifest dependency must resolve
//!   inside the workspace (see [`hermetic`]).
//!
//! Semantic rules (whole-workspace, over the call graph built by
//! [`parse`] + [`graph`]):
//! - **D6 determinism-taint** — no function transitively reachable from
//!   a decision/report entry point may reach a D1/D2/D3 source, even
//!   across crates the textual scopes don't cover.
//! - **D7 lock-order** — the lock-acquisition order graph must be
//!   acyclic (a real deadlock detector for the worker-pool code).
//! - **D8 panic-path** — the transitive closure of the migration /
//!   checkpoint roots must be unwrap-free (D5 generalized to the call
//!   tree).
//! - **O1 obs-name** — metric names are declared once in `obs::names`,
//!   unique, `[a-z0-9_]+`, booked via the consts, and never dead
//!   (see [`obsnames`]).
//! - **L1 bad-allow** — a `lint:allow(<slug>)` annotation or `lint.toml`
//!   entry naming no existing rule is itself a finding (a misspelled
//!   slug must not be silently inert).
//!
//! Test code is exempt: files under `tests/`/`benches/` and `#[cfg(test)]`
//! regions. Line-level exceptions use `// lint:allow(<slug>): <reason>`
//! (same line or the comment line directly above); repo-wide exceptions
//! live in `lint.toml` (`allow <slug> <path-substring>` lines). A
//! justified line-level allow also suppresses the semantic rule riding on
//! the same fact (the author looked at that exact line); a `lint.toml`
//! path-level allow does **not** stop D6/D8 from auditing the allowed
//! code's *callers* — that asymmetry is what catches cross-crate
//! laundering.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod graph;
pub mod hermetic;
pub mod obsnames;
pub mod parse;

/// The lint rules, in reporting order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// D1: wall-clock time outside `crates/bench`.
    WallClock,
    /// D2: iteration-order-unstable collections in report/decision crates.
    UnorderedMap,
    /// D3: entropy sources anywhere.
    Entropy,
    /// D4: public error enums must be `#[non_exhaustive]`.
    NonExhaustiveError,
    /// D5: panicking shortcuts in transactional migration paths.
    NoUnwrap,
    /// H1: non-hermetic manifest dependency.
    HermeticDep,
    /// D6: D1/D2/D3 source reachable from a decision/report entry point.
    DeterminismTaint,
    /// D7: cycle in the lock-acquisition order graph.
    LockOrder,
    /// D8: panicking shortcut reachable from a migration/checkpoint root.
    PanicPath,
    /// O1: metric-name audit violation (duplicate, bad charset, raw
    /// literal booking, or a declared-but-never-booked name).
    ObsName,
    /// L1: `lint:allow`/`lint.toml` slug naming no existing rule.
    BadAllow,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: &'static [Rule] = &[
        Rule::WallClock,
        Rule::UnorderedMap,
        Rule::Entropy,
        Rule::NonExhaustiveError,
        Rule::NoUnwrap,
        Rule::HermeticDep,
        Rule::DeterminismTaint,
        Rule::LockOrder,
        Rule::PanicPath,
        Rule::ObsName,
        Rule::BadAllow,
    ];

    /// Short rule code (`D1`..`D8`, `H1`, `O1`, `L1`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::WallClock => "D1",
            Rule::UnorderedMap => "D2",
            Rule::Entropy => "D3",
            Rule::NonExhaustiveError => "D4",
            Rule::NoUnwrap => "D5",
            Rule::HermeticDep => "H1",
            Rule::DeterminismTaint => "D6",
            Rule::LockOrder => "D7",
            Rule::PanicPath => "D8",
            Rule::ObsName => "O1",
            Rule::BadAllow => "L1",
        }
    }

    /// Stable slug used in `lint:allow(...)` annotations and `lint.toml`.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::UnorderedMap => "unordered-map",
            Rule::Entropy => "entropy",
            Rule::NonExhaustiveError => "non-exhaustive-error",
            Rule::NoUnwrap => "no-unwrap",
            Rule::HermeticDep => "hermetic-dep",
            Rule::DeterminismTaint => "determinism-taint",
            Rule::LockOrder => "lock-order",
            Rule::PanicPath => "panic-path",
            Rule::ObsName => "obs-name",
            Rule::BadAllow => "bad-allow",
        }
    }

    /// The rule a slug names, if any (used to reject misspelled slugs).
    pub fn from_slug(slug: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.slug() == slug)
    }
}

/// One lint finding, displayed as `file:line: CODE/slug: message`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Path relative to the workspace root (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}/{}: {}",
            self.path,
            self.line,
            self.rule.code(),
            self.rule.slug(),
            self.message
        )
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Finding {
    /// One JSON object per finding, with a stable field order
    /// (`path`, `line`, `code`, `slug`, `message`) so downstream tooling
    /// can diff outputs byte-for-byte.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"path\":\"{}\",\"line\":{},\"code\":\"{}\",\"slug\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&self.path),
            self.line,
            self.rule.code(),
            self.rule.slug(),
            json_escape(&self.message)
        )
    }
}

/// One `lint.toml` allowlist entry: suppress `slug` findings in any file
/// whose relative path contains `path_substr`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allow {
    /// Rule slug the entry suppresses.
    pub slug: String,
    /// Substring matched against the finding's relative path.
    pub path_substr: String,
    /// 1-based `lint.toml` line, for slug-validation findings.
    pub line: usize,
}

/// Parses the plain-text allowlist: `#` comment lines, blank lines, and
/// `allow <slug> <path-substring>` entries (trailing `# reason` ignored).
pub fn parse_allowlist(text: &str) -> Result<Vec<Allow>, String> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut toks = line.split_whitespace();
        let (verb, slug, path) = (toks.next(), toks.next(), toks.next());
        match (verb, slug, path) {
            (Some("allow"), Some(slug), Some(path)) => {
                let rest = toks.next();
                if let Some(r) = rest {
                    if !r.starts_with('#') {
                        return Err(format!(
                            "lint.toml:{}: trailing token `{r}` (use `# reason` for comments)",
                            i + 1
                        ));
                    }
                }
                out.push(Allow {
                    slug: slug.to_string(),
                    path_substr: path.to_string(),
                    line: i + 1,
                });
            }
            _ => {
                return Err(format!(
                    "lint.toml:{}: expected `allow <slug> <path-substring>`, got `{line}`",
                    i + 1
                ));
            }
        }
    }
    Ok(out)
}

/// Returns `src` with comments and string/char-literal *contents* blanked
/// to spaces (newlines preserved, so line numbers survive). Handles line
/// and nested block comments, escapes, raw strings (`r"..."`,
/// `r#"..."#`), byte strings, and tells lifetimes (`'a`) apart from char
/// literals (`'x'`, `'\n'`).
pub fn strip_code(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = String::with_capacity(src.len());
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    let mut i = 0;
    while i < n {
        let c = b[i];
        let prev_ident = out.chars().last().is_some_and(|p| p.is_alphanumeric() || p == '_');
        match c {
            '/' if i + 1 < n && b[i + 1] == '/' => {
                while i < n && b[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let mut depth = 1;
                out.push_str("  ");
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                    } else {
                        out.push(blank(b[i]));
                        i += 1;
                    }
                }
            }
            '"' => {
                out.push('"');
                i += 1;
                while i < n {
                    if b[i] == '\\' && i + 1 < n {
                        out.push_str("  ");
                        i += 2;
                    } else if b[i] == '"' {
                        out.push('"');
                        i += 1;
                        break;
                    } else {
                        out.push(blank(b[i]));
                        i += 1;
                    }
                }
            }
            'r' | 'b' if !prev_ident => {
                // Possible raw/byte string prefix: r" r#" b" br" br#".
                let mut j = i;
                let mut is_raw = false;
                if b[j] == 'b' {
                    j += 1;
                }
                if j < n && b[j] == 'r' {
                    is_raw = true;
                    j += 1;
                }
                let mut hashes = 0;
                if is_raw {
                    while j < n && b[j] == '#' {
                        hashes += 1;
                        j += 1;
                    }
                }
                let is_literal = j < n && b[j] == '"' && (is_raw || b[i] == 'b');
                if is_literal {
                    for _ in i..=j {
                        out.push(' ');
                    }
                    i = j + 1;
                    while i < n {
                        if !is_raw && b[i] == '\\' && i + 1 < n {
                            // Plain byte string: honor escapes.
                            out.push_str("  ");
                            i += 2;
                        } else if b[i] == '"' {
                            // Close only on `"` followed by `hashes` #s.
                            let have =
                                (0..hashes).take_while(|&k| b.get(i + 1 + k) == Some(&'#')).count();
                            if have == hashes {
                                for _ in 0..=hashes {
                                    out.push(' ');
                                }
                                i += 1 + hashes;
                                break;
                            }
                            out.push(' ');
                            i += 1;
                        } else {
                            out.push(blank(b[i]));
                            i += 1;
                        }
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            '\'' => {
                if i + 1 < n && b[i + 1] == '\\' {
                    // Escaped char literal: '\n', '\'', '\u{...}'.
                    out.push_str("'  ");
                    i += 3;
                    while i < n && b[i] != '\'' {
                        out.push(blank(b[i]));
                        i += 1;
                    }
                    if i < n {
                        out.push('\'');
                        i += 1;
                    }
                } else if i + 2 < n && b[i + 2] == '\'' {
                    // Simple char literal 'x' (including 'a' — a lifetime
                    // is never followed by a closing quote).
                    out.push_str("' '");
                    i += 3;
                } else {
                    // Lifetime tick.
                    out.push('\'');
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// True when `word` occurs in `line` delimited by non-identifier chars.
pub(crate) fn has_ident(line: &str, word: &str) -> bool {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !line[..at].chars().next_back().is_some_and(is_ident);
        let after_ok = !line[at + word.len()..].chars().next().is_some_and(is_ident);
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// Marks every line inside a `#[cfg(test)]`-gated item (brace-matched
/// from the attribute), so unit-test modules are rule-exempt.
pub(crate) fn test_mask(stripped_lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; stripped_lines.len()];
    let mut i = 0;
    while i < stripped_lines.len() {
        if stripped_lines[i].contains("cfg(test)") {
            let mut depth: i64 = 0;
            let mut opened = false;
            let mut j = i;
            while j < stripped_lines.len() {
                mask[j] = true;
                for ch in stripped_lines[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// If line `idx` (or the comment-only line directly above it) carries a
/// `lint:allow(<slug>)` annotation, returns its trimmed reason text
/// (possibly empty — the caller turns an empty reason into a finding).
pub(crate) fn annotation_reason<'a>(
    raw_lines: &'a [&'a str],
    idx: usize,
    slug: &str,
) -> Option<&'a str> {
    let needle = format!("lint:allow({slug})");
    let extract = |line: &'a str| -> Option<&'a str> {
        let pos = line.find(&needle)?;
        let rest = &line[pos + needle.len()..];
        Some(rest.strip_prefix(':').unwrap_or("").trim())
    };
    if let Some(r) = extract(raw_lines[idx]) {
        return Some(r);
    }
    if idx > 0 {
        let above = raw_lines[idx - 1].trim_start();
        if above.starts_with("//") {
            return extract(raw_lines[idx - 1]);
        }
    }
    None
}

/// Crates whose output feeds reports or policy decisions (D2 scope, and
/// the D6 entry-point set: every non-test fn in these crates is treated
/// as a decision/report entry).
pub(crate) const ORDERED_CRATES: &[&str] = &[
    "crates/mtm/",
    "crates/baselines/",
    "crates/harness/",
    "crates/tiersim/",
    "crates/obs/",
    "crates/scenario/",
];

/// Entropy-source identifiers rejected everywhere (D3).
pub(crate) const ENTROPY_IDENTS: &[&str] =
    &["thread_rng", "OsRng", "getrandom", "from_entropy", "StdRng", "SmallRng", "RandomState"];

/// Files holding the transactional migration paths (D5 scope).
const NO_UNWRAP_FILES: &[&str] = &["crates/tiersim/src/migrate.rs", "crates/mtm/src/migration.rs"];

/// True when the path is wholly test code (integration tests, benches).
pub(crate) fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.starts_with("benches/")
        || rel.contains("/benches/")
}

/// Scans one source file (before allowlist filtering). `rel` is the
/// workspace-relative path with forward slashes.
pub fn scan_source(rel: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    if is_test_path(rel) {
        return findings;
    }
    let stripped = strip_code(src);
    let stripped_lines: Vec<&str> = stripped.lines().collect();
    let raw_lines: Vec<&str> = src.lines().collect();
    let mask = test_mask(&stripped_lines);

    let d1_scope = !rel.starts_with("crates/bench/");
    let d2_scope = ORDERED_CRATES.iter().any(|p| rel.starts_with(p));
    let d5_scope = NO_UNWRAP_FILES.iter().any(|f| rel == *f || rel.ends_with(f));

    let emit = |line_idx: usize, rule: Rule, message: String, findings: &mut Vec<Finding>| {
        match annotation_reason(&raw_lines, line_idx, rule.slug()) {
            Some(reason) if !reason.is_empty() => {}
            Some(_) => findings.push(Finding {
                path: rel.to_string(),
                line: line_idx + 1,
                rule,
                message: format!(
                    "lint:allow({}) annotation is missing its justification",
                    rule.slug()
                ),
            }),
            None => findings.push(Finding { path: rel.to_string(), line: line_idx + 1, rule, message }),
        }
    };

    for (idx, line) in stripped_lines.iter().enumerate() {
        if mask[idx] {
            continue;
        }
        let collapsed: String = line.chars().filter(|c| !c.is_whitespace()).collect();

        if d1_scope
            && (collapsed.contains("Instant::now(") || collapsed.contains("SystemTime::now("))
        {
            emit(
                idx,
                Rule::WallClock,
                "wall-clock read outside crates/bench; decision paths must use the virtual clock"
                    .to_string(),
                &mut findings,
            );
        }

        if d2_scope && (has_ident(line, "HashMap") || has_ident(line, "HashSet")) {
            let which = if has_ident(line, "HashMap") { "HashMap" } else { "HashSet" };
            emit(
                idx,
                Rule::UnorderedMap,
                format!(
                    "{which} in a report/decision crate; use BTreeMap/BTreeSet or justify with lint:allow(unordered-map)"
                ),
                &mut findings,
            );
        }

        for ident in ENTROPY_IDENTS {
            if has_ident(line, ident) {
                emit(
                    idx,
                    Rule::Entropy,
                    format!("entropy source `{ident}`; all randomness must come from seeded in-repo PRNGs"),
                    &mut findings,
                );
                break;
            }
        }
        if has_ident(line, "rand") && line.contains("rand::") {
            emit(
                idx,
                Rule::Entropy,
                "`rand::` path; the external rand crate is neither hermetic nor deterministic"
                    .to_string(),
                &mut findings,
            );
        }

        // D4: `pub enum FooError` must carry #[non_exhaustive] within the
        // preceding attribute block (look back up to 8 lines).
        if let Some(rest) = line.trim_start().strip_prefix("pub enum ") {
            let ident: String =
                rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if ident.ends_with("Error") {
                let lo = idx.saturating_sub(8);
                let attributed =
                    stripped_lines[lo..idx].iter().any(|l| l.contains("non_exhaustive"));
                if !attributed {
                    emit(
                        idx,
                        Rule::NonExhaustiveError,
                        format!("public error enum `{ident}` is not #[non_exhaustive]"),
                        &mut findings,
                    );
                }
            }
        }

        if d5_scope && (collapsed.contains(".unwrap()") || collapsed.contains(".expect(")) {
            emit(
                idx,
                Rule::NoUnwrap,
                "panicking shortcut in a transactional migration path; handle the None/Err arm"
                    .to_string(),
                &mut findings,
            );
        }
    }
    findings
}

/// Recursively collects every `.rs` file under `root`, skipping build
/// output and VCS/artifact directories. Sorted for deterministic output.
pub fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                // `fixtures` holds the lint crate's seeded-violation
                // corpus — scanned by its own tests, never by self-scan.
                if matches!(name.as_ref(), "target" | ".git" | "results" | ".claude" | "fixtures") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Relative path with forward slashes, for findings and scope checks.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// L1: flags `lint:allow(<slug>)` annotations whose slug names no
/// existing rule — a misspelled slug must fail loudly, not silently
/// leave the violation unexempted (or worse, look exempted in review).
/// Only slugs drawn from the annotation charset `[a-z0-9-]+` are
/// checked, so prose like `lint:allow(<slug>)` in docs stays inert.
pub fn scan_bad_allows(rel: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    if is_test_path(rel) {
        return findings;
    }
    for (idx, line) in src.lines().enumerate() {
        let mut start = 0;
        while let Some(pos) = line[start..].find("lint:allow(") {
            let at = start + pos + "lint:allow(".len();
            let rest = &line[at..];
            let slug: String = rest
                .chars()
                .take_while(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '-')
                .collect();
            start = at;
            if slug.is_empty() || !rest[slug.len()..].starts_with(')') {
                continue;
            }
            if Rule::from_slug(&slug).is_none() {
                findings.push(Finding {
                    path: rel.to_string(),
                    line: idx + 1,
                    rule: Rule::BadAllow,
                    message: format!(
                        "lint:allow({slug}) names no rule; known slugs: {}",
                        Rule::ALL.iter().map(|r| r.slug()).collect::<Vec<_>>().join(", ")
                    ),
                });
            }
        }
    }
    findings
}

/// L1 for the repo-wide allowlist: every `lint.toml` entry must name an
/// existing rule slug.
pub fn validate_allowlist(allows: &[Allow]) -> Vec<Finding> {
    allows
        .iter()
        .filter(|a| Rule::from_slug(&a.slug).is_none())
        .map(|a| Finding {
            path: "lint.toml".to_string(),
            line: a.line,
            rule: Rule::BadAllow,
            message: format!(
                "allow entry names unknown rule slug `{}`; known slugs: {}",
                a.slug,
                Rule::ALL.iter().map(|r| r.slug()).collect::<Vec<_>>().join(", ")
            ),
        })
        .collect()
}

/// Applies the allowlist: drops findings whose slug matches an entry and
/// whose path contains the entry's substring.
pub fn apply_allowlist(findings: Vec<Finding>, allows: &[Allow]) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| {
            !allows
                .iter()
                .any(|a| a.slug == f.rule.slug() && f.path.contains(&a.path_substr))
        })
        .collect()
}

/// Full lint run: every workspace `.rs` file through the textual rules,
/// every manifest through the hermeticity rules, then the semantic
/// passes (call-graph D6/D7/D8, obs-name O1) over the same sources,
/// allowlist applied, findings sorted. This is what `bin/lint` and
/// `tests/hermetic.rs` call.
pub fn run(root: &Path) -> Result<Vec<Finding>, String> {
    Ok(run_with_graph(root)?.0)
}

/// [`run`], but also returning the call-graph workspace so `bin/lint
/// --graph` can dump it without re-reading the tree.
pub fn run_with_graph(root: &Path) -> Result<(Vec<Finding>, graph::Workspace), String> {
    let allows = match std::fs::read_to_string(root.join("lint.toml")) {
        Ok(text) => parse_allowlist(&text)?,
        Err(_) => Vec::new(),
    };
    let mut files: Vec<(String, String)> = Vec::new();
    for path in workspace_sources(root) {
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        files.push((rel_path(root, &path), src));
    }
    let (findings, ws) = run_on_files(&files, &allows, hermetic::scan_manifests(root)?);
    Ok((findings, ws))
}

/// The pure core of [`run`]: textual + semantic rules over in-memory
/// sources. Separated so the fixture-corpus tests can drive the whole
/// pipeline without touching the real tree.
pub fn run_on_files(
    files: &[(String, String)],
    allows: &[Allow],
    manifest_findings: Vec<Finding>,
) -> (Vec<Finding>, graph::Workspace) {
    let mut findings = validate_allowlist(allows);
    for (rel, src) in files {
        findings.extend(scan_source(rel, src));
        findings.extend(scan_bad_allows(rel, src));
    }
    findings.extend(manifest_findings);
    let mut findings = apply_allowlist(findings, allows);

    // The semantic passes dedup against textual findings that *survived*
    // the allowlist: a base finding still on the report means the site
    // is already visible, so D6/D8 stay quiet there; a base finding
    // suppressed only by a path-level `lint.toml` entry leaves the site
    // auditable from its callers (the laundering catch).
    let base: BTreeSet<(String, usize, Rule)> =
        findings.iter().map(|f| (f.path.clone(), f.line, f.rule)).collect();
    let ws = graph::Workspace::build(files);
    let mut semantic = ws.check_taint(&base);
    semantic.extend(ws.check_lock_order());
    semantic.extend(ws.check_panic_paths(&base));
    semantic.extend(obsnames::audit(files));
    findings.extend(apply_allowlist(semantic, allows));
    findings.sort();
    (findings, ws)
}

#[cfg(test)]
mod tests;
