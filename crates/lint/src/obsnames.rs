//! O1: the obs metric-name audit.
//!
//! Every counter/gauge/histogram name must be declared exactly once in
//! `obs::names` (`crates/obs/src/metrics.rs`), be unique, and match
//! `[a-z0-9_]+`; every booking call (`counter_add`, `gauge_set`,
//! `observe`, and `shared().add`) must go through a declared const, not
//! a raw string literal — a typo'd literal silently forks a new series —
//! and every declared const must actually be booked somewhere, or the
//! dashboardable surface drifts from the code.

use crate::{annotation_reason, has_ident, is_test_path, strip_code, test_mask, Finding, Rule};
use std::collections::BTreeMap;

/// Where the metric-name constants live.
const NAMES_FILE: &str = "crates/obs/src/metrics.rs";

/// One `pub const NAME: &str = "value";` declaration in `obs::names`.
#[derive(Clone, Debug)]
pub struct NameDecl {
    /// Const identifier (`RUN_CACHE_MISSES`).
    pub ident: String,
    /// The metric name string (`run_cache_misses`).
    pub value: String,
    /// 1-based declaration line.
    pub line: usize,
}

/// Parses the `pub mod names { ... }` block of the metrics file into its
/// const declarations, returning the declarations and the 1-based line
/// span of the block (for excluding it from usage counting).
pub fn parse_names(src: &str) -> (Vec<NameDecl>, std::ops::Range<usize>) {
    let stripped = strip_code(src);
    let mut decls = Vec::new();
    let mut region = 0..0;
    let mut depth = 0i64;
    let mut inside = false;
    for (idx, (raw, strip)) in src.lines().zip(stripped.lines()).enumerate() {
        if !inside && strip.contains("pub mod names") {
            inside = true;
            region.start = idx + 1;
        }
        if inside {
            for c in strip.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            let t = raw.trim_start();
            if let Some(rest) = t.strip_prefix("pub const ") {
                if let Some((ident, tail)) = rest.split_once(':') {
                    if tail.contains("&str") {
                        if let Some(open) = raw.find('"') {
                            if let Some(len) = raw[open + 1..].find('"') {
                                decls.push(NameDecl {
                                    ident: ident.trim().to_string(),
                                    value: raw[open + 1..open + 1 + len].to_string(),
                                    line: idx + 1,
                                });
                            }
                        }
                    }
                }
            }
            if depth <= 0 && idx + 1 > region.start {
                region.end = idx + 1;
                break;
            }
        }
    }
    (decls, region)
}

/// Booking calls whose first argument must be a declared const.
const BOOKING_CALLS: &[&str] = &["counter_add(", "gauge_set(", ".observe("];

/// Runs the audit over the whole workspace's sources.
pub fn audit(files: &[(String, String)]) -> Vec<Finding> {
    let Some((_, metrics_src)) = files.iter().find(|(rel, _)| rel == NAMES_FILE) else {
        return Vec::new();
    };
    let (decls, region) = parse_names(metrics_src);
    let mut findings = Vec::new();

    // Declarations: unique values, closed charset.
    let mut first_by_value: BTreeMap<&str, &NameDecl> = BTreeMap::new();
    for d in &decls {
        if d.value.is_empty()
            || !d.value.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            findings.push(Finding {
                path: NAMES_FILE.to_string(),
                line: d.line,
                rule: Rule::ObsName,
                message: format!("metric name \"{}\" must match [a-z0-9_]+", d.value),
            });
        }
        if let Some(prev) = first_by_value.get(d.value.as_str()) {
            findings.push(Finding {
                path: NAMES_FILE.to_string(),
                line: d.line,
                rule: Rule::ObsName,
                message: format!(
                    "duplicate metric name \"{}\" (first declared as {} at line {})",
                    d.value, prev.ident, prev.line
                ),
            });
        } else {
            first_by_value.insert(&d.value, d);
        }
    }

    // Usage sweep + raw-literal bookings.
    let mut used: BTreeMap<&str, bool> = decls.iter().map(|d| (d.ident.as_str(), false)).collect();
    for (rel, src) in files {
        if is_test_path(rel) || !rel.ends_with(".rs") {
            continue;
        }
        let stripped = strip_code(src);
        let stripped_lines: Vec<&str> = stripped.lines().collect();
        let raw_lines: Vec<&str> = src.lines().collect();
        let mask = test_mask(&stripped_lines);
        let names_decl_region = if rel == NAMES_FILE { region.clone() } else { 0..0 };
        for (idx, line) in stripped_lines.iter().enumerate() {
            let in_decls = names_decl_region.contains(&(idx + 1));
            // Const usages count anywhere outside the declaration block
            // (tests included: a name booked only from tests is still a
            // deliberate registration).
            if !in_decls {
                for d in &decls {
                    if has_ident(line, &d.ident) {
                        used.insert(d.ident.as_str(), true);
                    }
                }
            }
            if mask[idx] || in_decls {
                continue;
            }
            // Raw string literals at booking call sites. strip_code is
            // 1:1 on byte positions, so an index found in the stripped
            // line addresses the same spot in the raw line.
            let mut sites: Vec<usize> = Vec::new();
            for pat in BOOKING_CALLS {
                let mut start = 0;
                while let Some(p) = line[start..].find(pat) {
                    sites.push(start + p + pat.len());
                    start += p + pat.len();
                }
            }
            if line.contains("shared") {
                let mut start = 0;
                while let Some(p) = line[start..].find(".add(") {
                    sites.push(start + p + ".add(".len());
                    start += p + ".add(".len();
                }
            }
            for at in sites {
                let raw = raw_lines.get(idx).copied().unwrap_or("");
                // On lines holding multi-byte chars (math in comments)
                // the stripped offset may not be a raw char boundary;
                // those lines cannot host a literal booking anyway.
                let Some(rest) = raw.get(at..) else { continue };
                let rest = rest.trim_start();
                if let Some(lit) = rest.strip_prefix('"') {
                    let name: String = lit.chars().take_while(|&c| c != '"').collect();
                    if matches!(
                        annotation_reason(&raw_lines, idx, Rule::ObsName.slug()),
                        Some(r) if !r.is_empty()
                    ) {
                        continue;
                    }
                    findings.push(Finding {
                        path: rel.clone(),
                        line: idx + 1,
                        rule: Rule::ObsName,
                        message: format!(
                            "metric booked with raw literal \"{name}\"; declare it in obs::names so a typo cannot fork a new series"
                        ),
                    });
                }
            }
        }
    }

    // Dead names.
    for d in &decls {
        if !used.get(d.ident.as_str()).copied().unwrap_or(true) {
            findings.push(Finding {
                path: NAMES_FILE.to_string(),
                line: d.line,
                rule: Rule::ObsName,
                message: format!(
                    "metric {} (\"{}\") is declared but never booked anywhere",
                    d.ident, d.value
                ),
            });
        }
    }

    findings
}
