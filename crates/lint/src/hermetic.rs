//! Rule H1: hermetic-build policy over Cargo manifests.
//!
//! The build environment has no registry access, so every dependency in
//! the workspace must be an in-workspace `path` dependency (directly or
//! via `workspace = true` indirection into `[workspace.dependencies]`,
//! which is itself checked). A `rand = "0.8"`-style registry entry
//! anywhere would kill every build, test and bench — the lint makes that
//! a loud, local finding instead of a resolver error. Ported from the
//! original `tests/hermetic.rs` (now a thin wrapper over this module),
//! with line numbers attached so findings render like the source rules.

use crate::{Finding, Rule};
use std::path::{Path, PathBuf};

/// Section headers whose entries declare dependencies.
fn is_dependency_section(header: &str) -> bool {
    let h = header.trim_matches(|c| c == '[' || c == ']');
    h == "dependencies"
        || h == "dev-dependencies"
        || h == "build-dependencies"
        || h == "workspace.dependencies"
        || (h.starts_with("target.") && h.ends_with("dependencies"))
        || h.starts_with("dependencies.")
        || h.starts_with("dev-dependencies.")
        || h.starts_with("build-dependencies.")
        || h.starts_with("workspace.dependencies.")
}

/// A single declared dependency: name, accumulated spec text, and the
/// 1-based line the declaration starts on.
#[derive(Debug)]
pub struct Dep {
    /// Dependency name as written in the manifest.
    pub name: String,
    /// Spec text (inline value, or the flattened `[dependencies.x]` table).
    pub spec: String,
    /// 1-based line of the declaration.
    pub line: usize,
}

impl Dep {
    /// A dependency is hermetic when it resolves inside the workspace:
    /// an inline `path = ...` table, or `workspace = true` indirection
    /// (the `[workspace.dependencies]` entries are themselves checked).
    pub fn is_hermetic(&self) -> bool {
        self.spec.contains("path =")
            || self.spec.contains("path=")
            || self.spec.contains("workspace = true")
            || self.spec.contains("workspace=true")
            || self.spec.trim_end().ends_with(".workspace = true")
    }
}

/// Minimal line-oriented scan of manifest text: tracks `[section]`
/// headers and collects `name = spec` lines inside dependency sections,
/// plus `[dependencies.<name>]` table-style declarations.
pub fn collect_deps(text: &str) -> Vec<Dep> {
    let mut deps = Vec::new();
    let mut in_dep_section = false;
    let mut table_dep: Option<Dep> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            if let Some(dep) = table_dep.take() {
                deps.push(dep);
            }
            in_dep_section = is_dependency_section(line);
            // `[dependencies.foo]` style: the whole table is one spec.
            if in_dep_section {
                let h = line.trim_matches(|c| c == '[' || c == ']');
                if let Some(name) = h
                    .strip_prefix("dependencies.")
                    .or_else(|| h.strip_prefix("dev-dependencies."))
                    .or_else(|| h.strip_prefix("build-dependencies."))
                    .or_else(|| h.strip_prefix("workspace.dependencies."))
                {
                    table_dep = Some(Dep { name: name.to_string(), spec: String::new(), line: idx + 1 });
                }
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        if let Some(dep) = table_dep.as_mut() {
            dep.spec.push_str(line);
            dep.spec.push(' ');
        } else if let Some((name, spec)) = line.split_once('=') {
            deps.push(Dep {
                name: name.trim().to_string(),
                spec: format!("{} = {}", name.trim(), spec.trim()),
                line: idx + 1,
            });
        }
    }
    if let Some(dep) = table_dep.take() {
        deps.push(dep);
    }
    deps
}

/// Scans one manifest's text for H1 findings: non-path/workspace
/// dependencies, `[patch]` sections, and git sources. `rel` is the
/// workspace-relative manifest path used in findings.
pub fn check_manifest_text(rel: &str, text: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    for dep in collect_deps(text) {
        if !dep.is_hermetic() {
            out.push(Finding {
                path: rel.to_string(),
                line: dep.line,
                rule: Rule::HermeticDep,
                message: format!(
                    "`{}` is not a path/workspace dependency ({}); registry deps break the offline build",
                    dep.name,
                    dep.spec.trim()
                ),
            });
        }
    }
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("");
        if line.contains("[patch") {
            out.push(Finding {
                path: rel.to_string(),
                line: idx + 1,
                rule: Rule::HermeticDep,
                message: "[patch] sections are registry/git indirection".to_string(),
            });
        }
        if line.contains("git =") || line.contains("git=\"") {
            out.push(Finding {
                path: rel.to_string(),
                line: idx + 1,
                rule: Rule::HermeticDep,
                message: format!("git dependencies are not fetchable offline: {}", line.trim()),
            });
        }
    }
    out
}

/// Root manifest plus every `crates/*/Cargo.toml` (the workspace member
/// glob), discovered from the filesystem so a new crate is covered
/// automatically. Sorted for deterministic output.
pub fn workspace_manifests(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut manifests = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    let entries =
        std::fs::read_dir(&crates).map_err(|e| format!("read {}: {e}", crates.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read {}: {e}", crates.display()))?;
        let manifest = entry.path().join("Cargo.toml");
        if manifest.is_file() {
            manifests.push(manifest);
        }
    }
    manifests.sort();
    Ok(manifests)
}

/// Full H1 pass over the workspace: per-manifest text checks plus the
/// filesystem check that every `path = "..."` stays inside the repo.
pub fn scan_manifests(root: &Path) -> Result<Vec<Finding>, String> {
    let mut out = Vec::new();
    let canonical_root = root
        .canonicalize()
        .map_err(|e| format!("canonicalize {}: {e}", root.display()))?;
    for manifest in workspace_manifests(root)? {
        let rel = manifest
            .strip_prefix(root)
            .unwrap_or(&manifest)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let text = std::fs::read_to_string(&manifest)
            .map_err(|e| format!("read {}: {e}", manifest.display()))?;
        out.extend(check_manifest_text(&rel, &text));
        // Path escape check needs the filesystem, so it lives here rather
        // than in check_manifest_text.
        for dep in collect_deps(&text) {
            let Some(path_part) = dep.spec.split("path").nth(1) else { continue };
            let Some(value) = path_part.split('"').nth(1) else { continue };
            let resolved = manifest.parent().unwrap_or(root).join(value);
            match resolved.canonicalize() {
                Ok(canonical) if canonical.starts_with(&canonical_root) => {}
                Ok(canonical) => out.push(Finding {
                    path: rel.clone(),
                    line: dep.line,
                    rule: Rule::HermeticDep,
                    message: format!(
                        "`{}` escapes the workspace: {}",
                        dep.name,
                        canonical.display()
                    ),
                }),
                Err(e) => out.push(Finding {
                    path: rel.clone(),
                    line: dep.line,
                    rule: Rule::HermeticDep,
                    message: format!("`{}` path {value}: {e}", dep.name),
                }),
            }
        }
    }
    Ok(out)
}
