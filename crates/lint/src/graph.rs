//! Workspace call graph, per-function fact extraction, and the semantic
//! rules that run over it: D6 determinism-taint reachability, D7
//! lock-order analysis, and D8 panic-path closure.
//!
//! The graph is deliberately *may-call* conservative (see DESIGN.md §5i):
//! a call site resolves to **every** workspace function its name could
//! plausibly mean, so dyn-trait dispatch (`Box<dyn Workload>` ticking a
//! workloads impl from tiersim) is covered without type analysis. Calls
//! that resolve to nothing are external (std or a dependency we cannot
//! audit): they introduce no taint, no panics and no locks of their own —
//! every fact the rules care about is *textual* inside workspace bodies,
//! so an external callee cannot smuggle one past extraction. The two
//! directions are therefore both safe: over-resolution can only add
//! paths (more audit, never less), and external calls carry no facts to
//! miss.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::parse::{self, parse_file, ParsedFile, Tok, TokKind};
use crate::{annotation_reason, Finding, Rule, ENTROPY_IDENTS, ORDERED_CRATES};

/// Crates excluded from the graph: tooling that never links into the
/// simulation binaries (`bench` reads wall clocks by design; `lint` and
/// `proptest-lite` are build-time dev tools).
const EXCLUDED_CRATES: &[&str] = &["bench", "lint", "proptest-lite"];

/// Method names from std's container/iterator/formatting vocabulary.
/// A `.get(` or `.len(` call resolves to a std type in virtually every
/// call site; resolving it to the handful of workspace methods that
/// happen to share the name (e.g. `PageTable::entry`, `EventRing::push`)
/// manufactures cross-crate paths that do not exist. These names are
/// treated as external at *method* call sites only — qualified calls
/// (`SharedRegistry::get`) still resolve, and the sources/panics inside
/// such workspace methods are still audited from their own crate's
/// entry points (every ordered-crate fn is a D6 root) and from callers
/// that use distinctive names.
const STD_VOCAB_METHODS: &[&str] = &[
    "all", "any", "as_mut", "as_ref", "as_slice", "as_str", "chain", "clear", "clone", "cloned",
    "cmp", "collect", "contains", "contains_key", "copied", "count", "default", "dedup", "drain",
    "entry", "enumerate", "eq", "extend", "filter", "find", "first", "flat_map", "flatten",
    "flush", "fmt", "fold", "from", "get", "get_mut", "hash", "insert", "into", "into_iter",
    "is_empty", "iter", "iter_mut", "join", "last", "len", "map", "max", "min", "ne", "next",
    "parse", "pop", "position", "push", "read", "remove", "replace", "retain", "rev", "sort",
    "sort_by", "sort_unstable", "split", "sum", "take", "to_owned", "to_string", "to_vec",
    "trim", "write", "zip",
];

/// Roots of the D8 panic-free closure: the transactional relocation
/// primitives, the async-migration commit/abort engine, and checkpoint
/// save/restore. `owner` narrows a common name to one impl.
const PANIC_ROOTS: &[(&str, Option<&str>)] = &[
    ("relocate_range", None),
    ("relocate_with_retry", None),
    ("migrate", Some("MigrationEngine")),
    ("enqueue_async", Some("MigrationEngine")),
    ("resolve_pending", Some("MigrationEngine")),
    ("drop_migration", Some("MigrationEngine")),
    ("save_checkpoint", None),
    ("restore_checkpoint", None),
];

/// A lock's identity: `(file, variable)` — the last identifier in the
/// receiver chain of `.lock()`. Coarse, but every Mutex in this
/// workspace is reached through a stable field or static accessor name,
/// so the pair is unique in practice and, crucially, *stable* across the
/// functions that lock the same Mutex.
pub type LockId = (String, String);

fn lock_name(l: &LockId) -> String {
    format!("{}::{}", l.0, l.1)
}

/// A D1/D2/D3 source occurrence inside a function body.
#[derive(Clone, Debug)]
pub struct SourceFact {
    /// 1-based line.
    pub line: u32,
    /// The textual rule this source belongs to (D1/D2/D3).
    pub base: Rule,
    /// The offending token, for messages.
    pub what: String,
}

/// A panicking shortcut inside a function body.
#[derive(Clone, Debug)]
pub struct PanicFact {
    /// 1-based line.
    pub line: u32,
    /// The offending token, for messages.
    pub what: String,
}

/// One lock acquisition, with the locks already held at that point.
#[derive(Clone, Debug)]
pub struct Acquire {
    /// 1-based line.
    pub line: u32,
    /// The lock being acquired.
    pub lock: LockId,
    /// Locks held when acquiring (order edges `held -> lock`).
    pub held: Vec<LockId>,
}

/// How a call site names its callee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `f(...)` — a bare path call.
    Bare,
    /// `.f(...)` — a method call.
    Method,
    /// `Hint::f(...)` — qualified; the hint filters candidates.
    Qual(String),
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// 1-based line.
    pub line: u32,
    /// Callee name after `use ... as ...` rename substitution.
    pub name: String,
    /// Qualification of the call.
    pub kind: CallKind,
    /// Locks held across the call (for D7 propagation).
    pub held: Vec<LockId>,
    /// Resolved candidate callees (indices into [`Workspace::fns`]).
    pub callees: Vec<usize>,
}

/// One non-test workspace function with its extracted facts.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Workspace-relative file path.
    pub rel: String,
    /// Crate directory name (`tiersim`, `mtm`, ...).
    pub crate_name: String,
    /// Bare function name.
    pub name: String,
    /// `impl`/`trait` owner type, if a method.
    pub owner: Option<String>,
    /// 1-based declaration line.
    pub line: u32,
    /// Call sites, in body order.
    pub calls: Vec<CallSite>,
    /// D1/D2/D3 source touches.
    pub sources: Vec<SourceFact>,
    /// Panicking shortcuts.
    pub panics: Vec<PanicFact>,
    /// Lock acquisitions.
    pub acquires: Vec<Acquire>,
}

impl FnNode {
    /// Display name: `Owner::name` for methods.
    pub fn qual(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The whole-workspace call graph plus per-file context for emission.
pub struct Workspace {
    /// Every non-test function in graph scope.
    pub fns: Vec<FnNode>,
    by_name: BTreeMap<String, Vec<usize>>,
    /// Known `impl`/`trait` owner type names (qualified-call hints).
    type_names: BTreeSet<String>,
    /// Known module-ish names: crate dirs, file stems, inline mods.
    module_names: BTreeSet<String>,
    /// Raw lines per file, for annotation checks at emission time.
    raw: BTreeMap<String, Vec<String>>,
}

/// `crates/<name>/src/...` -> `<name>`; None for out-of-tree layouts.
fn crate_of(rel: &str) -> Option<&str> {
    let rest = rel.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    tail.starts_with("src/").then_some(name)
}

/// File stem of a relative path (`.../migrate.rs` -> `migrate`).
fn file_stem(rel: &str) -> &str {
    rel.rsplit('/').next().unwrap_or(rel).trim_end_matches(".rs")
}

/// A guard held on the simulated lock stack during body extraction.
struct Guard {
    /// Binding name for `drop(name)` release; None for temporaries.
    name: Option<String>,
    lock: LockId,
    /// Brace depth the guard dies at (scope close).
    depth: i64,
    /// Temporaries also die at the next `;` at their depth.
    temp: bool,
}

/// Per-file extraction context shared across that file's functions.
struct FileCtx<'a> {
    parsed: &'a ParsedFile,
    raw_lines: Vec<&'a str>,
    renames: BTreeMap<String, String>,
}

impl FileCtx<'_> {
    /// True when the 1-based line carries a justified (non-empty-reason)
    /// `lint:allow` for any of `slugs` — the author looked at this exact
    /// line, so the semantic rule riding on the same fact trusts it.
    fn line_allowed(&self, line: u32, slugs: &[&str]) -> bool {
        let idx = line as usize - 1;
        if idx >= self.raw_lines.len() {
            return false;
        }
        slugs.iter().any(|s| {
            matches!(annotation_reason(&self.raw_lines, idx, s), Some(r) if !r.is_empty())
        })
    }

    fn rename(&self, name: &str) -> String {
        self.renames.get(name).cloned().unwrap_or_else(|| name.to_string())
    }
}

/// Walks one function body extracting calls, sources, panics and lock
/// acquisitions with held-set tracking.
fn extract_facts(ctx: &FileCtx<'_>, f: &parse::FnItem, node: &mut FnNode) {
    let toks = &ctx.parsed.toks;
    let has_rwlock = ctx.parsed.has_rwlock;
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i64 = 0;
    let mut pending_let: Option<String> = None;
    let mut pending_cond_let: Option<String> = None;
    let held_now = |guards: &[Guard]| -> Vec<LockId> {
        let mut h: Vec<LockId> = guards.iter().map(|g| g.lock.clone()).collect();
        h.sort();
        h.dedup();
        h
    };

    let mut k = f.body.start;
    while k < f.body.end {
        if let Some(r) = f.nested.iter().find(|r| r.contains(&k)) {
            k = r.end;
            continue;
        }
        let t = &toks[k];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") => {
                depth += 1;
                if let Some(name) = pending_cond_let.take() {
                    // An `if let Ok(g) = x.lock()` guard binds into the
                    // block we just opened — but only if an acquisition
                    // actually claimed it (flagged by a sentinel below).
                    if let Some(g) = guards.iter_mut().rev().find(|g| g.depth == i64::MAX) {
                        g.depth = depth;
                        g.name = Some(name);
                    }
                }
            }
            (TokKind::Punct, "}") => {
                guards.retain(|g| g.depth != depth && g.depth != i64::MAX);
                depth -= 1;
                pending_let = None;
                pending_cond_let = None;
            }
            (TokKind::Punct, ";") => {
                guards.retain(|g| !(g.temp && g.depth == depth));
                pending_let = None;
                pending_cond_let = None;
            }
            (TokKind::Ident, "let") => {
                let cond = k > f.body.start
                    && matches!(toks.get(k - 1), Some(p) if p.is_ident("if") || p.is_ident("while"));
                // `let [mut] name =` / `if let Ok(name) =`.
                let mut j = k + 1;
                if cond {
                    if toks.get(j).is_some_and(|t| t.is_ident("Ok") || t.is_ident("Some"))
                        && toks.get(j + 1).is_some_and(|t| t.is_punct('('))
                        && toks.get(j + 2).is_some_and(|t| t.kind == TokKind::Ident)
                        && toks.get(j + 3).is_some_and(|t| t.is_punct(')'))
                    {
                        pending_cond_let = Some(toks[j + 2].text.clone());
                    }
                } else {
                    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                        j += 1;
                    }
                    if let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) {
                        pending_let = Some(name.text.clone());
                    }
                }
            }
            (TokKind::Ident, "drop")
                if toks.get(k + 1).is_some_and(|t| t.is_punct('('))
                    && toks.get(k + 2).is_some_and(|t| t.kind == TokKind::Ident)
                    && toks.get(k + 3).is_some_and(|t| t.is_punct(')')) =>
            {
                let victim = &toks[k + 2].text;
                if let Some(pos) =
                    guards.iter().rposition(|g| g.name.as_deref() == Some(victim.as_str()))
                {
                    guards.remove(pos);
                }
                k += 4;
                continue;
            }
            _ => {}
        }

        // Lock acquisition (handled outside the match so we can fall
        // through to panic-fact detection for the same tokens).
        let is_acquire = t.kind == TokKind::Ident
            && (t.text == "lock" || (has_rwlock && (t.text == "read" || t.text == "write")))
            && k > f.body.start
            && toks[k - 1].is_punct('.')
            && toks.get(k + 1).is_some_and(|tt| tt.is_punct('('));
        if is_acquire {
            if let Some(var) = receiver_name(toks, f.body.start, k - 1) {
                let lock: LockId = (node.rel.clone(), var);
                let held = held_now(&guards);
                node.acquires.push(Acquire { line: t.line, lock: lock.clone(), held });
                // Classify the guard: chain must end (modulo a single
                // .unwrap()/.expect(...)) at `;` (let-bound) or `{`
                // (if/while-let) to outlive the statement.
                let close = skip_call(toks, k + 1, f.body.end);
                let mut m = close;
                if toks.get(m).is_some_and(|tt| tt.is_punct('.'))
                    && toks
                        .get(m + 1)
                        .is_some_and(|tt| tt.is_ident("unwrap") || tt.is_ident("expect"))
                    && toks.get(m + 2).is_some_and(|tt| tt.is_punct('('))
                {
                    m = skip_call(toks, m + 2, f.body.end);
                }
                match toks.get(m) {
                    Some(tt) if tt.is_punct(';') && pending_let.is_some() => {
                        guards.push(Guard {
                            name: pending_let.take(),
                            lock,
                            depth,
                            temp: false,
                        });
                    }
                    Some(tt) if tt.is_punct('{') && pending_cond_let.is_some() => {
                        // Sentinel depth: bound into the block when its
                        // `{` is processed above.
                        guards.push(Guard { name: None, lock, depth: i64::MAX, temp: false });
                    }
                    _ => {
                        // Temporary: held to the end of this statement.
                        guards.push(Guard { name: None, lock, depth, temp: true });
                    }
                }
            }
            k += 1;
            continue;
        }

        // Panic facts: `.unwrap()`, `.expect(`, `panic!`, etc.
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && k > f.body.start
            && toks[k - 1].is_punct('.')
            && toks.get(k + 1).is_some_and(|tt| tt.is_punct('('))
        {
            if !ctx.line_allowed(t.line, &["no-unwrap", "panic-path"]) {
                node.panics.push(PanicFact { line: t.line, what: format!(".{}(", t.text) });
            }
            k += 1;
            continue;
        }
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
            && toks.get(k + 1).is_some_and(|tt| tt.is_punct('!'))
        {
            if !ctx.line_allowed(t.line, &["no-unwrap", "panic-path"]) {
                node.panics.push(PanicFact { line: t.line, what: format!("{}!", t.text) });
            }
            k += 1;
            continue;
        }

        // Source facts (D1/D2/D3).
        if t.kind == TokKind::Ident {
            let fact = if (t.text == "Instant" || t.text == "SystemTime")
                && toks.get(k + 1).is_some_and(|tt| tt.is_punct(':'))
                && toks.get(k + 2).is_some_and(|tt| tt.is_punct(':'))
                && toks.get(k + 3).is_some_and(|tt| tt.is_ident("now"))
            {
                Some((Rule::WallClock, format!("{}::now", t.text), "wall-clock"))
            } else if t.text == "HashMap" || t.text == "HashSet" {
                Some((Rule::UnorderedMap, t.text.clone(), "unordered-map"))
            } else if ENTROPY_IDENTS.contains(&t.text.as_str()) {
                Some((Rule::Entropy, t.text.clone(), "entropy"))
            } else if t.text == "rand"
                && toks.get(k + 1).is_some_and(|tt| tt.is_punct(':'))
                && toks.get(k + 2).is_some_and(|tt| tt.is_punct(':'))
            {
                Some((Rule::Entropy, "rand::".to_string(), "entropy"))
            } else {
                None
            };
            if let Some((base, what, slug)) = fact {
                if !ctx.line_allowed(t.line, &[slug, "determinism-taint"]) {
                    node.sources.push(SourceFact { line: t.line, base, what });
                }
            }
        }

        // Call sites: ident followed by `(`, not a macro, not a keyword,
        // not one of the specials handled above.
        if t.kind == TokKind::Ident
            && !parse::is_keyword(&t.text)
            && toks.get(k + 1).is_some_and(|tt| tt.is_punct('('))
            && !matches!(t.text.as_str(), "lock" | "unwrap" | "expect" | "drop")
        {
            let kind = if k > f.body.start && toks[k - 1].is_punct('.') {
                CallKind::Method
            } else if k >= f.body.start + 2
                && toks[k - 1].is_punct(':')
                && toks[k - 2].is_punct(':')
            {
                match toks.get(k.wrapping_sub(3)) {
                    Some(h) if k >= f.body.start + 3 && h.kind == TokKind::Ident => {
                        CallKind::Qual(ctx.rename(&h.text))
                    }
                    // `>::f(` / `)::f(` — unresolvable path head.
                    _ => CallKind::Qual(String::new()),
                }
            } else {
                CallKind::Bare
            };
            let name = match kind {
                CallKind::Bare => ctx.rename(&t.text),
                _ => t.text.clone(),
            };
            node.calls.push(CallSite {
                line: t.line,
                name,
                kind,
                held: held_now(&guards),
                callees: Vec::new(),
            });
        }

        k += 1;
    }
}

/// Index one past the closing paren of the call whose `(` sits at `open`.
fn skip_call(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < end {
        if toks[j].is_punct('(') {
            depth += 1;
        } else if toks[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    end
}

/// The receiver variable of a `.lock()` chain: walking left from the
/// dot at `dot`, skip balanced `(...)`/`[...]` groups and `.` links and
/// return the first identifier — `self.counters.lock()` -> `counters`,
/// `cache().lock()` -> `cache`, `slots[i].lock()` -> `slots`.
fn receiver_name(toks: &[Tok], start: usize, dot: usize) -> Option<String> {
    let mut j = dot.checked_sub(1)?;
    loop {
        let t = &toks[j];
        if t.is_punct(')') || t.is_punct(']') {
            let (open, close) = if t.is_punct(')') { ('(', ')') } else { ('[', ']') };
            let mut depth = 0i64;
            while j > start {
                if toks[j].is_punct(close) {
                    depth += 1;
                } else if toks[j].is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j -= 1;
            }
            if j == start {
                return None;
            }
            j -= 1;
        } else if t.kind == TokKind::Ident {
            if parse::is_keyword(&t.text) && t.text != "self" {
                return None;
            }
            return Some(t.text.clone());
        } else if t.is_punct('.') {
            if j == start {
                return None;
            }
            j -= 1;
        } else {
            return None;
        }
    }
}

impl Workspace {
    /// Parses every in-scope source and builds the resolved call graph.
    pub fn build(files: &[(String, String)]) -> Workspace {
        let mut parsed: Vec<(String, ParsedFile)> = Vec::new();
        for (rel, src) in files {
            let Some(c) = crate_of(rel) else { continue };
            if EXCLUDED_CRATES.contains(&c) || crate::is_test_path(rel) {
                continue;
            }
            parsed.push((c.to_string(), parse_file(rel, src)));
        }

        let mut ws = Workspace {
            fns: Vec::new(),
            by_name: BTreeMap::new(),
            type_names: BTreeSet::new(),
            module_names: BTreeSet::new(),
            raw: BTreeMap::new(),
        };
        for (c, pf) in &parsed {
            ws.module_names.insert(c.clone());
            // Workspace lib names: a crate dir `workloads` is imported as
            // `mtm_workloads` (and some simply by dir name).
            ws.module_names.insert(format!("mtm_{c}"));
            ws.module_names.insert(file_stem(&pf.rel).to_string());
            for f in &pf.fns {
                if let Some(o) = &f.owner {
                    ws.type_names.insert(o.clone());
                }
                for m in &f.module {
                    ws.module_names.insert(m.clone());
                }
            }
        }
        for (rel, src) in files {
            ws.raw.insert(rel.clone(), src.lines().map(str::to_string).collect());
        }

        for (c, pf) in &parsed {
            let src = &files.iter().find(|(r, _)| r == &pf.rel).expect("parsed from files").1;
            let ctx = FileCtx {
                parsed: pf,
                raw_lines: src.lines().collect(),
                renames: pf
                    .renames
                    .iter()
                    .map(|r| (r.alias.clone(), r.target.clone()))
                    .collect(),
            };
            for f in &pf.fns {
                if f.is_test {
                    continue;
                }
                let mut node = FnNode {
                    rel: pf.rel.clone(),
                    crate_name: c.clone(),
                    name: f.name.clone(),
                    owner: f.owner.clone(),
                    line: f.line,
                    calls: Vec::new(),
                    sources: Vec::new(),
                    panics: Vec::new(),
                    acquires: Vec::new(),
                };
                extract_facts(&ctx, f, &mut node);
                ws.fns.push(node);
            }
        }

        for (i, f) in ws.fns.iter().enumerate() {
            ws.by_name.entry(f.name.clone()).or_default().push(i);
        }
        ws.resolve();
        ws
    }

    /// Fills every call site's candidate list (see module docs for the
    /// conservative-resolution rationale).
    fn resolve(&mut self) {
        let mut resolved: Vec<Vec<Vec<usize>>> = Vec::with_capacity(self.fns.len());
        for f in &self.fns {
            let mut per_fn = Vec::with_capacity(f.calls.len());
            for c in &f.calls {
                per_fn.push(self.candidates(f, c));
            }
            resolved.push(per_fn);
        }
        for (f, per_fn) in self.fns.iter_mut().zip(resolved) {
            for (c, cand) in f.calls.iter_mut().zip(per_fn) {
                c.callees = cand;
            }
        }
    }

    fn candidates(&self, caller: &FnNode, call: &CallSite) -> Vec<usize> {
        let all = match self.by_name.get(&call.name) {
            Some(v) => v.as_slice(),
            None => return Vec::new(),
        };
        let pick = |pred: &dyn Fn(&FnNode) -> bool| -> Vec<usize> {
            all.iter().copied().filter(|&i| pred(&self.fns[i])).collect()
        };
        match &call.kind {
            CallKind::Method => {
                if STD_VOCAB_METHODS.contains(&call.name.as_str()) {
                    Vec::new()
                } else {
                    pick(&|f| f.owner.is_some())
                }
            }
            CallKind::Bare => {
                let local = pick(&|f| f.owner.is_none() && f.crate_name == caller.crate_name);
                if !local.is_empty() {
                    local
                } else {
                    pick(&|f| f.owner.is_none())
                }
            }
            CallKind::Qual(hint) => {
                if hint.is_empty() {
                    return Vec::new();
                }
                match hint.as_str() {
                    "crate" | "self" | "super" => {
                        let local =
                            pick(&|f| f.owner.is_none() && f.crate_name == caller.crate_name);
                        if !local.is_empty() {
                            local
                        } else {
                            pick(&|f| f.owner.is_none())
                        }
                    }
                    "Self" => pick(&|f| f.rel == caller.rel),
                    h if self.type_names.contains(h) => pick(&|f| f.owner.as_deref() == Some(h)),
                    h if self.module_names.contains(h) => {
                        let bare = h.strip_prefix("mtm_").unwrap_or(h);
                        pick(&|f| {
                            f.owner.is_none()
                                && (f.crate_name == bare || file_stem(&f.rel) == h)
                        })
                    }
                    // Unknown hint (Box, Arc, Vec, Instant, ...): an
                    // external type — no workspace candidates.
                    _ => Vec::new(),
                }
            }
        }
    }

    /// True when the 1-based line in `rel` carries a justified
    /// `lint:allow` for `slug`.
    fn emission_allowed(&self, rel: &str, line: u32, slug: &str) -> bool {
        let Some(lines) = self.raw.get(rel) else { return false };
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let idx = line as usize - 1;
        idx < refs.len()
            && matches!(annotation_reason(&refs, idx, slug), Some(r) if !r.is_empty())
    }

    /// Multi-source BFS over resolved calls; returns the parent map
    /// (`parent[i] == usize::MAX` marks a root).
    fn bfs(&self, roots: &[usize]) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut q: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if !parent.contains_key(&r) {
                parent.insert(r, usize::MAX);
                q.push_back(r);
            }
        }
        while let Some(i) = q.pop_front() {
            for c in &self.fns[i].calls {
                for &g in &c.callees {
                    if !parent.contains_key(&g) {
                        parent.insert(g, i);
                        q.push_back(g);
                    }
                }
            }
        }
        parent
    }

    /// Witness chain `root -> ... -> i`, capped for readability.
    fn chain(&self, parent: &BTreeMap<usize, usize>, mut i: usize) -> String {
        let mut names = vec![self.fns[i].qual()];
        while let Some(&p) = parent.get(&i) {
            if p == usize::MAX {
                break;
            }
            names.push(self.fns[p].qual());
            i = p;
        }
        names.reverse();
        if names.len() > 6 {
            let skipped = names.len() - 6;
            let head = names[..3].join(" -> ");
            let tail = names[names.len() - 3..].join(" -> ");
            format!("{head} -> [{skipped} more] -> {tail}")
        } else {
            names.join(" -> ")
        }
    }

    /// D6: no function reachable from a decision/report entry point (any
    /// non-test fn in the ordered crates) may reach a D1/D2/D3 source.
    /// `base` holds the textual findings that survived the allowlist, so
    /// already-visible sites are not double-reported.
    pub fn check_taint(&self, base: &BTreeSet<(String, usize, Rule)>) -> Vec<Finding> {
        let ordered: BTreeSet<&str> = ORDERED_CRATES
            .iter()
            .map(|p| p.trim_start_matches("crates/").trim_end_matches('/'))
            .collect();
        let roots: Vec<usize> = (0..self.fns.len())
            .filter(|&i| ordered.contains(self.fns[i].crate_name.as_str()))
            .collect();
        let parent = self.bfs(&roots);
        let mut out = Vec::new();
        let mut seen: BTreeSet<(String, u32)> = BTreeSet::new();
        for (&i, _) in &parent {
            let f = &self.fns[i];
            for s in &f.sources {
                if base.contains(&(f.rel.clone(), s.line as usize, s.base)) {
                    continue; // the textual rule already reports it
                }
                if !seen.insert((f.rel.clone(), s.line)) {
                    continue;
                }
                if self.emission_allowed(&f.rel, s.line, "determinism-taint") {
                    continue;
                }
                out.push(Finding {
                    path: f.rel.clone(),
                    line: s.line as usize,
                    rule: Rule::DeterminismTaint,
                    message: format!(
                        "`{}` reachable from decision path: {}",
                        s.what,
                        self.chain(&parent, i)
                    ),
                });
            }
        }
        out
    }

    /// D8: the transitive closure of the migration/checkpoint roots must
    /// be free of panicking shortcuts.
    pub fn check_panic_paths(&self, base: &BTreeSet<(String, usize, Rule)>) -> Vec<Finding> {
        let roots: Vec<usize> = (0..self.fns.len())
            .filter(|&i| {
                let f = &self.fns[i];
                PANIC_ROOTS.iter().any(|(n, o)| {
                    f.name == *n && o.map_or(true, |o| f.owner.as_deref() == Some(o))
                })
            })
            .collect();
        let parent = self.bfs(&roots);
        let mut out = Vec::new();
        let mut seen: BTreeSet<(String, u32)> = BTreeSet::new();
        for (&i, _) in &parent {
            let f = &self.fns[i];
            for p in &f.panics {
                if base.contains(&(f.rel.clone(), p.line as usize, Rule::NoUnwrap)) {
                    continue;
                }
                if !seen.insert((f.rel.clone(), p.line)) {
                    continue;
                }
                out.push(Finding {
                    path: f.rel.clone(),
                    line: p.line as usize,
                    rule: Rule::PanicPath,
                    message: format!(
                        "`{}` reachable from transactional path: {}",
                        p.what,
                        self.chain(&parent, i)
                    ),
                });
            }
        }
        out
    }

    /// Every lock a function may acquire, transitively through its
    /// resolved callees (fixpoint over the call graph).
    fn acquired_star(&self) -> Vec<BTreeSet<LockId>> {
        let mut acq: Vec<BTreeSet<LockId>> = self
            .fns
            .iter()
            .map(|f| f.acquires.iter().map(|a| a.lock.clone()).collect())
            .collect();
        loop {
            let mut changed = false;
            for i in 0..self.fns.len() {
                let mut add: BTreeSet<LockId> = BTreeSet::new();
                for c in &self.fns[i].calls {
                    for &g in &c.callees {
                        if g != i {
                            add.extend(acq[g].iter().cloned());
                        }
                    }
                }
                for l in add {
                    if acq[i].insert(l) {
                        changed = true;
                    }
                }
            }
            if !changed {
                return acq;
            }
        }
    }

    /// The lock-order edge set: `held -> acquired`, each with one witness
    /// site. Direct acquisitions contribute their own edges; a call made
    /// with locks held contributes edges to everything the callee may
    /// transitively acquire.
    pub fn lock_edges(&self) -> BTreeMap<(LockId, LockId), (String, u32)> {
        let acq = self.acquired_star();
        let mut edges: BTreeMap<(LockId, LockId), (String, u32)> = BTreeMap::new();
        for f in &self.fns {
            for a in &f.acquires {
                for h in &a.held {
                    edges
                        .entry((h.clone(), a.lock.clone()))
                        .or_insert_with(|| (f.rel.clone(), a.line));
                }
            }
            for c in &f.calls {
                if c.held.is_empty() {
                    continue;
                }
                for &g in &c.callees {
                    for l in &acq[g] {
                        for h in &c.held {
                            edges
                                .entry((h.clone(), l.clone()))
                                .or_insert_with(|| (f.rel.clone(), c.line));
                        }
                    }
                }
            }
        }
        edges
    }

    /// D7: any cycle in the lock-order graph (including a self-loop —
    /// re-acquiring a lock already held) is a potential deadlock.
    pub fn check_lock_order(&self) -> Vec<Finding> {
        let edges = self.lock_edges();
        let mut adj: BTreeMap<&LockId, Vec<&LockId>> = BTreeMap::new();
        for (a, b) in edges.keys() {
            adj.entry(a).or_default().push(b);
        }
        // SCCs via iterative Kosaraju over the (sorted, deterministic)
        // node set.
        let nodes: Vec<&LockId> = {
            let mut s: BTreeSet<&LockId> = BTreeSet::new();
            for (a, b) in edges.keys() {
                s.insert(a);
                s.insert(b);
            }
            s.into_iter().collect()
        };
        let index: BTreeMap<&LockId, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let n = nodes.len();
        let mut fwd: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (a, b) in edges.keys() {
            let (ia, ib) = (index[a], index[b]);
            fwd[ia].push(ib);
            rev[ib].push(ia);
        }
        // Pass 1: finish order.
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        for s in 0..n {
            if visited[s] {
                continue;
            }
            let mut stack = vec![(s, 0usize)];
            visited[s] = true;
            while let Some(&mut (v, ref mut ei)) = stack.last_mut() {
                if *ei < fwd[v].len() {
                    let w = fwd[v][*ei];
                    *ei += 1;
                    if !visited[w] {
                        visited[w] = true;
                        stack.push((w, 0));
                    }
                } else {
                    order.push(v);
                    stack.pop();
                }
            }
        }
        // Pass 2: reverse-graph components in reverse finish order.
        let mut comp = vec![usize::MAX; n];
        let mut ncomp = 0;
        for &s in order.iter().rev() {
            if comp[s] != usize::MAX {
                continue;
            }
            let mut stack = vec![s];
            comp[s] = ncomp;
            while let Some(v) = stack.pop() {
                for &w in &rev[v] {
                    if comp[w] == usize::MAX {
                        comp[w] = ncomp;
                        stack.push(w);
                    }
                }
            }
            ncomp += 1;
        }
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
        for (v, &c) in comp.iter().enumerate() {
            members[c].push(v);
        }
        let mut out = Vec::new();
        for m in members {
            let cyclic = m.len() > 1
                || (m.len() == 1 && fwd[m[0]].contains(&m[0]));
            if !cyclic {
                continue;
            }
            // Witness edges inside the SCC, with their sites.
            let mset: BTreeSet<usize> = m.iter().copied().collect();
            let mut witness: Vec<String> = Vec::new();
            let mut site: Option<(String, u32)> = None;
            for ((a, b), s) in &edges {
                if mset.contains(&index[a]) && mset.contains(&index[b]) {
                    witness.push(format!("{} -> {} (at {}:{})", lock_name(a), lock_name(b), s.0, s.1));
                    match &site {
                        Some(best) if *best <= *s => {}
                        _ => site = Some(s.clone()),
                    }
                }
            }
            let (path, line) = site.expect("cyclic SCC has at least one edge");
            if self.emission_allowed(&path, line, "lock-order") {
                continue;
            }
            let names: Vec<String> = m.iter().map(|&v| lock_name(nodes[v])).collect();
            out.push(Finding {
                path,
                line: line as usize,
                rule: Rule::LockOrder,
                message: format!(
                    "lock-order cycle among {{{}}}: {}",
                    names.join(", "),
                    witness.join("; ")
                ),
            });
        }
        out
    }

    /// Human-readable dump of the call graph and lock-order graph, for
    /// `bin/lint --graph` triage.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        out.push_str("# call graph (resolved candidates per call site)\n");
        for f in &self.fns {
            out.push_str(&format!("fn {} [{}:{}]\n", f.qual(), f.rel, f.line));
            for c in &f.calls {
                if c.callees.is_empty() {
                    continue;
                }
                let tgts: Vec<String> =
                    c.callees.iter().map(|&g| self.fns[g].qual()).collect();
                let held = if c.held.is_empty() {
                    String::new()
                } else {
                    format!(
                        " [holding {}]",
                        c.held.iter().map(lock_name).collect::<Vec<_>>().join(", ")
                    )
                };
                out.push_str(&format!(
                    "  {}:{} {} -> {}{}\n",
                    f.rel,
                    c.line,
                    c.name,
                    tgts.join(", "),
                    held
                ));
            }
            for s in &f.sources {
                out.push_str(&format!("  {}:{} source {}\n", f.rel, s.line, s.what));
            }
            for p in &f.panics {
                out.push_str(&format!("  {}:{} panic {}\n", f.rel, p.line, p.what));
            }
        }
        out.push_str("# lock-order edges (held -> acquired)\n");
        for ((a, b), (rel, line)) in self.lock_edges() {
            out.push_str(&format!(
                "{} -> {} (at {}:{})\n",
                lock_name(&a),
                lock_name(&b),
                rel,
                line
            ));
        }
        out
    }
}
