//! Per-rule fixture tests: each rule has at least one caught-violation
//! fixture and one allowed fixture, including tricky tokens hidden in
//! strings and comments that must NOT trip the scanner.

use super::*;

fn rules_of(findings: &[Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- strip

#[test]
fn strip_blanks_comments_and_strings_preserving_lines() {
    let src = "let a = 1; // HashMap in a comment\nlet s = \"Instant::now()\";\n";
    let out = strip_code(src);
    assert_eq!(out.lines().count(), src.lines().count());
    assert!(!out.contains("HashMap"));
    assert!(!out.contains("Instant"));
    assert!(out.contains("let a = 1;"));
}

#[test]
fn strip_handles_raw_strings_and_nested_block_comments() {
    let src = r##"let x = r#"HashMap " inside raw"#; /* outer /* SystemTime::now */ still */ let y = 2;"##;
    let out = strip_code(src);
    assert!(!out.contains("HashMap"));
    assert!(!out.contains("SystemTime"));
    assert!(out.contains("let y = 2;"));
}

#[test]
fn strip_tells_lifetimes_from_char_literals() {
    let src = "fn f<'a>(x: &'a str) -> char { let q = '\"'; let n = '\\n'; q }";
    let out = strip_code(src);
    // The quote char literal must not open a string that swallows the rest.
    assert!(out.contains("q }"), "{out:?}");
    assert!(out.contains("<'a>"), "lifetimes survive: {out:?}");
}

#[test]
fn strip_handles_byte_and_hashed_raw_strings() {
    let src = r####"let a = b"HashSet\""; let b = br##"thread_rng "# "##; let c = 3;"####;
    let out = strip_code(src);
    assert!(!out.contains("HashSet"));
    assert!(!out.contains("thread_rng"));
    assert!(out.contains("let c = 3;"), "{out:?}");
}

// ------------------------------------------------------------------- D1

#[test]
fn d1_catches_wall_clock_reads() {
    let f = scan_source("crates/harness/src/lib.rs", "let t = std::time::Instant::now();\n");
    assert_eq!(rules_of(&f), vec![Rule::WallClock]);
    let f = scan_source("crates/obs/src/lib.rs", "let t = SystemTime::now();\n");
    assert_eq!(rules_of(&f), vec![Rule::WallClock]);
}

#[test]
fn d1_allows_bench_crate_comments_strings_and_annotated_lines() {
    assert!(scan_source("crates/bench/src/lib.rs", "let t = Instant::now();\n").is_empty());
    assert!(scan_source("crates/mtm/src/lib.rs", "// Instant::now() is banned here\n").is_empty());
    assert!(scan_source("crates/mtm/src/lib.rs", "let s = \"Instant::now()\";\n").is_empty());
    let annotated =
        "let t = Instant::now(); // lint:allow(wall-clock): stderr progress timing only\n";
    assert!(scan_source("crates/harness/src/lib.rs", annotated).is_empty());
}

#[test]
fn d1_annotation_without_reason_is_itself_a_finding() {
    let f = scan_source(
        "crates/harness/src/lib.rs",
        "let t = Instant::now(); // lint:allow(wall-clock):\n",
    );
    assert_eq!(rules_of(&f), vec![Rule::WallClock]);
    assert!(f[0].message.contains("missing its justification"), "{}", f[0].message);
}

// ------------------------------------------------------------------- D2

#[test]
fn d2_catches_unordered_maps_in_decision_crates_only() {
    let src = "use std::collections::HashMap;\n";
    for path in [
        "crates/mtm/src/daemon.rs",
        "crates/baselines/src/hemem.rs",
        "crates/harness/src/runs.rs",
        "crates/tiersim/src/machine.rs",
        "crates/obs/src/metrics.rs",
        "crates/scenario/src/trace.rs",
    ] {
        assert_eq!(rules_of(&scan_source(path, src)), vec![Rule::UnorderedMap], "{path}");
    }
    // Out-of-scope crates may use HashMap freely.
    assert!(scan_source("crates/workloads/src/gups.rs", src).is_empty());
    assert!(scan_source("crates/lint/src/lib.rs", src).is_empty());
}

#[test]
fn d2_respects_annotations_and_ident_boundaries() {
    let annotated = "// lint:allow(unordered-map): deterministic hasher, iteration never escapes\nuse std::collections::HashMap;\n";
    assert!(scan_source("crates/tiersim/src/page_table.rs", annotated).is_empty());
    // `MyHashMapLike` is not the ident `HashMap`.
    assert!(scan_source("crates/mtm/src/lib.rs", "struct MyHashMapLike;\n").is_empty());
    let f = scan_source("crates/mtm/src/lib.rs", "let s: HashSet<u64> = HashSet::new();\n");
    assert_eq!(rules_of(&f), vec![Rule::UnorderedMap]);
}

#[test]
fn d2_exempts_cfg_test_modules() {
    let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn g() { let _: HashMap<u8, u8> = HashMap::new(); }\n}\n";
    assert!(scan_source("crates/tiersim/src/frame.rs", src).is_empty());
    // ...but code after the test module is back in scope.
    let tail = format!("{src}use std::collections::HashMap;\n");
    assert_eq!(rules_of(&scan_source("crates/tiersim/src/frame.rs", &tail)), vec![Rule::UnorderedMap]);
}

// ------------------------------------------------------------------- D3

#[test]
fn d3_catches_entropy_sources_everywhere() {
    for src in [
        "let mut rng = thread_rng();\n",
        "let r = OsRng;\n",
        "let x = rand::random::<u64>();\n",
        "let s = std::collections::hash_map::RandomState::new();\n",
    ] {
        let f = scan_source("crates/workloads/src/lib.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::Entropy], "{src}");
    }
}

#[test]
fn d3_allows_seeded_prngs_and_mentions_in_prose() {
    assert!(scan_source("crates/workloads/src/lib.rs", "let x = splitmix64(seed);\n").is_empty());
    assert!(scan_source("crates/mtm/src/lib.rs", "// unlike thread_rng, this is seeded\n").is_empty());
    // `operand::` is not the `rand::` path.
    assert!(scan_source("crates/mtm/src/lib.rs", "let y = operand::width();\n").is_empty());
}

/// The admission plane makes per-batch migration decisions, so its module
/// must sit inside both the D2 (ordered collections) and D3 (entropy)
/// scopes: a policy iterating a `HashMap` or drawing entropy would break
/// the byte-identical-reports contract for `results/admission.txt`.
#[test]
fn admission_policy_module_is_in_determinism_scope() {
    let f = scan_source("crates/mtm/src/admission.rs", "use std::collections::HashMap;\n");
    assert_eq!(rules_of(&f), vec![Rule::UnorderedMap]);
    let f = scan_source("crates/mtm/src/admission.rs", "let mut rng = thread_rng();\n");
    assert_eq!(rules_of(&f), vec![Rule::Entropy]);
    // The BTreeMap state the built-in policies actually keep is clean.
    let good = "use std::collections::BTreeMap;\nstruct P { seen: BTreeMap<u64, u64> }\n";
    assert!(scan_source("crates/mtm/src/admission.rs", good).is_empty());
    // The harness sweep that renders the figure is equally in scope.
    let f = scan_source("crates/harness/src/admission.rs", "use std::collections::HashSet;\n");
    assert_eq!(rules_of(&f), vec![Rule::UnorderedMap]);
}

/// The multi-tenant arbitration plane re-splits machine resources every
/// interval, so both its policy module and the harness sweep driver must
/// sit inside the D1–D3 determinism scopes: a `HashMap`-iterating
/// arbiter or an entropy-drawing cell driver would break the
/// byte-identical contract for `results/multitenant.txt`.
#[test]
fn arbiter_and_multitenant_modules_are_in_determinism_scope() {
    for module in ["crates/mtm/src/arbiter.rs", "crates/harness/src/multitenant.rs"] {
        let f = scan_source(module, "use std::collections::HashMap;\n");
        assert_eq!(rules_of(&f), vec![Rule::UnorderedMap], "{module} escaped D2");
        let f = scan_source(module, "let mut rng = thread_rng();\n");
        assert_eq!(rules_of(&f), vec![Rule::Entropy], "{module} escaped D3");
        let f = scan_source(module, "let t0 = std::time::Instant::now();\n");
        assert_eq!(rules_of(&f), vec![Rule::WallClock], "{module} escaped D1");
        // The BTreeMap state the hotness arbiter actually keeps is clean.
        let good = "use std::collections::BTreeMap;\nstruct A { ema: BTreeMap<u16, f64> }\n";
        assert!(scan_source(module, good).is_empty(), "{module} false positive");
    }
}

// ------------------------------------------------------------------- D4

#[test]
fn d4_catches_exhaustive_public_error_enums() {
    let f = scan_source("crates/tiersim/src/lib.rs", "pub enum AllocError {\n    NoSpace,\n}\n");
    assert_eq!(rules_of(&f), vec![Rule::NonExhaustiveError]);
    assert!(f[0].message.contains("AllocError"));
}

#[test]
fn d4_allows_attributed_private_and_non_error_enums() {
    let good = "#[non_exhaustive]\n#[derive(Debug)]\npub enum MigrateError {\n    NoSpace,\n}\n";
    assert!(scan_source("crates/tiersim/src/lib.rs", good).is_empty());
    assert!(scan_source("crates/tiersim/src/lib.rs", "enum InnerError { A }\n").is_empty());
    assert!(scan_source("crates/tiersim/src/lib.rs", "pub enum Tier { Fast, Slow }\n").is_empty());
}

// ------------------------------------------------------------------- D5

#[test]
fn d5_catches_unwrap_and_expect_in_migration_paths_only() {
    let src = "let x = m.pt.unmap(va).expect(\"page mapped\");\nlet y = q.pop().unwrap();\n";
    let f = scan_source("crates/tiersim/src/migrate.rs", src);
    assert_eq!(rules_of(&f), vec![Rule::NoUnwrap, Rule::NoUnwrap]);
    let f = scan_source("crates/mtm/src/migration.rs", src);
    assert_eq!(f.len(), 2);
    // The same tokens anywhere else are fine.
    assert!(scan_source("crates/tiersim/src/machine.rs", src).is_empty());
}

#[test]
fn d5_does_not_match_unwrap_or_family_or_test_code() {
    let src = "let x = opt.unwrap_or(0);\nlet y = opt.unwrap_or_else(|| 1);\nlet z = r.expect_err(\"must fail\");\n";
    assert!(scan_source("crates/tiersim/src/migrate.rs", src).is_empty());
    let test_src = "#[cfg(test)]\nmod tests {\n    fn f() { Some(1).unwrap(); }\n}\n";
    assert!(scan_source("crates/tiersim/src/migrate.rs", test_src).is_empty());
}

// ------------------------------------------------------------------- H1

#[test]
fn h1_catches_registry_git_and_patch_sources() {
    let manifest = "[package]\nname = \"x\"\n\n[dependencies]\nrand = \"0.8\"\nobs = { path = \"../obs\" }\n";
    let f = hermetic::check_manifest_text("crates/x/Cargo.toml", manifest);
    assert_eq!(rules_of(&f), vec![Rule::HermeticDep]);
    assert_eq!(f[0].line, 5);
    assert!(f[0].message.contains("`rand`"), "{}", f[0].message);

    let git = "[dependencies]\nfoo = { git = \"https://example.com/foo\" }\n";
    let f = hermetic::check_manifest_text("Cargo.toml", git);
    assert!(f.iter().any(|x| x.message.contains("git dependencies")), "{f:?}");

    let patch = "[patch.crates-io]\nfoo = { path = \"vendor/foo\" }\n";
    let f = hermetic::check_manifest_text("Cargo.toml", patch);
    assert!(f.iter().any(|x| x.message.contains("[patch]")), "{f:?}");
}

#[test]
fn h1_allows_path_and_workspace_dependencies() {
    let manifest = "[dependencies]\nobs = { path = \"../obs\" }\ntiersim.workspace = true\nmtm = { workspace = true }\n\n[dependencies.faultsim]\npath = \"../faultsim\"\n\n[dev-dependencies]\nproptest-lite = { workspace = true }\n";
    assert!(hermetic::check_manifest_text("crates/x/Cargo.toml", manifest).is_empty());
    // Commented-out registry deps are not findings.
    let commented = "[dependencies]\n# rand = \"0.8\"\n";
    assert!(hermetic::check_manifest_text("Cargo.toml", commented).is_empty());
}

// -------------------------------------------------------------- helpers

#[test]
fn allowlist_parses_and_filters() {
    let allows = parse_allowlist(
        "# VersionStore map is never iterated\nallow unordered-map crates/tiersim/src/frame.rs  # reason\n\n",
    )
    .expect("valid allowlist");
    assert_eq!(allows.len(), 1);
    let findings = vec![
        Finding {
            path: "crates/tiersim/src/frame.rs".into(),
            line: 1,
            rule: Rule::UnorderedMap,
            message: "x".into(),
        },
        Finding {
            path: "crates/tiersim/src/frame.rs".into(),
            line: 2,
            rule: Rule::WallClock,
            message: "y".into(),
        },
        Finding {
            path: "crates/mtm/src/daemon.rs".into(),
            line: 3,
            rule: Rule::UnorderedMap,
            message: "z".into(),
        },
    ];
    let kept = apply_allowlist(findings, &allows);
    // Only the matching (slug, path) pair is suppressed.
    assert_eq!(kept.len(), 2);
    assert!(kept.iter().all(|f| !(f.rule == Rule::UnorderedMap
        && f.path.contains("frame.rs"))));
}

#[test]
fn allowlist_rejects_malformed_lines() {
    assert!(parse_allowlist("deny entropy crates/x\n").is_err());
    assert!(parse_allowlist("allow unordered-map\n").is_err());
    assert!(parse_allowlist("allow unordered-map path stray-token\n").is_err());
}

#[test]
fn findings_display_as_file_line_rule_message() {
    let f = Finding {
        path: "crates/mtm/src/daemon.rs".into(),
        line: 42,
        rule: Rule::UnorderedMap,
        message: "HashMap in a report/decision crate".into(),
    };
    assert_eq!(
        f.to_string(),
        "crates/mtm/src/daemon.rs:42: D2/unordered-map: HashMap in a report/decision crate"
    );
}

#[test]
fn integration_test_paths_are_wholly_exempt() {
    let src = "fn helper() { let _ = Instant::now(); Some(1).unwrap(); }\n";
    assert!(scan_source("tests/hermetic.rs", src).is_empty());
    assert!(scan_source("crates/tiersim/tests/sanitizer.rs", src).is_empty());
    assert!(scan_source("crates/bench/benches/micro.rs", src).is_empty());
}

#[test]
fn h1_manifest_glob_covers_the_scenario_crate() {
    // The member glob discovers new crates from the filesystem; pin the
    // newest one so a future restructuring can't silently drop it (and
    // its path-only dependency policy) from the H1 scan.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf();
    let manifests = hermetic::workspace_manifests(&root).expect("manifest enumeration");
    assert!(
        manifests.iter().any(|m| m.ends_with("crates/scenario/Cargo.toml")),
        "crates/scenario/Cargo.toml missing from the H1 scan"
    );
}

// -------------------------------------------------------------- semantic

/// Drives the full textual+semantic pipeline over in-memory sources.
fn semantic(files: &[(&str, &str)], toml: &str) -> Vec<Finding> {
    let files: Vec<(String, String)> =
        files.iter().map(|(r, s)| (r.to_string(), s.to_string())).collect();
    let allows = parse_allowlist(toml).expect("valid allowlist");
    run_on_files(&files, &allows, Vec::new()).0
}

#[test]
fn d6_catches_cross_crate_entropy_laundering() {
    // The textual D3 finding is silenced by a lint.toml *path* allow, so
    // only the reachability rule can see the laundering.
    let util = "pub fn jitter() -> u64 { rand::random::<u64>() }\n";
    let harness = "pub fn run_cell() -> u64 { mtm_util::jitter() }\n";
    let f = semantic(
        &[("crates/util/src/lib.rs", util), ("crates/harness/src/lib.rs", harness)],
        "allow entropy crates/util/\n",
    );
    assert_eq!(rules_of(&f), vec![Rule::DeterminismTaint], "{f:?}");
    assert!(f[0].message.contains("run_cell -> jitter"), "{}", f[0].message);
}

#[test]
fn d6_defers_to_a_surviving_textual_finding() {
    // Without the path allow the textual D3 finding survives, and D6
    // must not double-report the same line.
    let util = "pub fn jitter() -> u64 { rand::random::<u64>() }\n";
    let harness = "pub fn run_cell() -> u64 { mtm_util::jitter() }\n";
    let f = semantic(
        &[("crates/util/src/lib.rs", util), ("crates/harness/src/lib.rs", harness)],
        "",
    );
    assert_eq!(rules_of(&f), vec![Rule::Entropy], "{f:?}");
}

#[test]
fn d6_respects_a_justified_line_allow_on_the_source() {
    // A line-level allow means the author looked at that exact line; it
    // suppresses both the textual rule and the fact D6 would ride on.
    let util = "pub fn jitter() -> u64 {\n    // lint:allow(entropy): fixture; jitter feeds a log label only\n    rand::random::<u64>()\n}\n";
    let harness = "pub fn run_cell() -> u64 { mtm_util::jitter() }\n";
    let f = semantic(
        &[("crates/util/src/lib.rs", util), ("crates/harness/src/lib.rs", harness)],
        "",
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn d6_ignores_unreachable_sources() {
    // A source in a fn nothing in an ordered crate calls is out of every
    // decision path (its own crate is unordered), so D6 stays quiet.
    let util = "pub fn jitter() -> u64 { rand::random::<u64>() }\n";
    let f = semantic(&[("crates/util/src/lib.rs", util)], "allow entropy crates/util/\n");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn d7_flags_a_lock_order_inversion() {
    let src = "use std::sync::Mutex;\n\
               pub struct M { pub table: Mutex<u64>, pub stats: Mutex<u64> }\n\
               pub fn step(m: &M) -> u64 {\n\
                   let t = m.table.lock().expect(\"t\");\n\
                   let s = m.stats.lock().expect(\"s\");\n\
                   *t + *s\n\
               }\n\
               pub fn report(m: &M) -> u64 {\n\
                   let s = m.stats.lock().expect(\"s\");\n\
                   let t = m.table.lock().expect(\"t\");\n\
                   *t - *s\n\
               }\n";
    let f = semantic(&[("crates/tiersim/src/machine.rs", src)], "");
    assert_eq!(rules_of(&f), vec![Rule::LockOrder], "{f:?}");
    assert!(f[0].message.contains("table") && f[0].message.contains("stats"), "{}", f[0].message);
}

#[test]
fn d7_accepts_a_consistent_order_and_dropped_guards() {
    // Same locks, same order everywhere: acyclic, no finding.
    let consistent = "use std::sync::Mutex;\n\
               pub struct M { pub table: Mutex<u64>, pub stats: Mutex<u64> }\n\
               pub fn step(m: &M) { let t = m.table.lock().expect(\"t\"); let s = m.stats.lock().expect(\"s\"); let _ = (*t, *s); }\n\
               pub fn report(m: &M) { let t = m.table.lock().expect(\"t\"); let s = m.stats.lock().expect(\"s\"); let _ = (*t, *s); }\n";
    assert!(semantic(&[("crates/tiersim/src/machine.rs", consistent)], "").is_empty());
    // An explicit drop releases the first lock before the second is
    // taken, so the inverted pair creates no held->acquired edge.
    let dropped = "use std::sync::Mutex;\n\
               pub struct M { pub table: Mutex<u64>, pub stats: Mutex<u64> }\n\
               pub fn step(m: &M) { let t = m.table.lock().expect(\"t\"); drop(t); let s = m.stats.lock().expect(\"s\"); let _ = *s; }\n\
               pub fn report(m: &M) { let s = m.stats.lock().expect(\"s\"); drop(s); let t = m.table.lock().expect(\"t\"); let _ = *t; }\n";
    assert!(semantic(&[("crates/tiersim/src/machine.rs", dropped)], "").is_empty());
}

#[test]
fn d8_closes_over_the_relocation_root() {
    // The unwrap hides one hop below the root, in a file the textual D5
    // rule does not cover.
    let src = "pub fn relocate_range(n: u64) -> u64 { helper(n) }\n\
               fn helper(n: u64) -> u64 { n.checked_add(1).unwrap() }\n";
    let f = semantic(&[("crates/tiersim/src/engine.rs", src)], "");
    assert_eq!(rules_of(&f), vec![Rule::PanicPath], "{f:?}");
    assert!(f[0].message.contains("relocate_range -> helper"), "{}", f[0].message);
}

#[test]
fn d8_ignores_panics_outside_the_closure_and_honors_allows() {
    // Same unwrap, but nothing transactional calls the helper.
    let unreached = "pub fn relocate_range(n: u64) -> u64 { n }\n\
               fn helper(n: u64) -> u64 { n.checked_add(1).unwrap() }\n";
    assert!(semantic(&[("crates/tiersim/src/engine.rs", unreached)], "").is_empty());
    // A justified line allow on the panic site silences the closure.
    let allowed = "pub fn relocate_range(n: u64) -> u64 { helper(n) }\n\
               fn helper(n: u64) -> u64 {\n\
                   // lint:allow(panic-path): fixture; overflow is a config bug worth aborting on\n\
                   n.checked_add(1).unwrap()\n\
               }\n";
    assert!(semantic(&[("crates/tiersim/src/engine.rs", allowed)], "").is_empty());
}

#[test]
fn o1_audits_names_and_bookings() {
    let metrics = "pub mod names {\n\
                       pub const GOOD: &str = \"good_total\";\n\
                       pub const DEAD: &str = \"dead_total\";\n\
                   }\n\
                   pub fn counter_add(_n: &str, _v: u64) {}\n\
                   pub fn book() { counter_add(names::GOOD, 1); counter_add(\"raw_name\", 1); }\n";
    let f = semantic(&[("crates/obs/src/metrics.rs", metrics)], "");
    assert_eq!(rules_of(&f), vec![Rule::ObsName, Rule::ObsName], "{f:?}");
    assert!(f.iter().any(|x| x.message.contains("DEAD")), "{f:?}");
    assert!(f.iter().any(|x| x.message.contains("raw_name")), "{f:?}");
}

#[test]
fn l1_rejects_unknown_slugs_in_annotations_and_toml() {
    // Assembled at runtime so the self-scan does not see the typo'd
    // slug in this file's own source.
    let typo = format!("// lint:allow(wall-cl{}k): typo\n", "o");
    let f = scan_bad_allows("crates/mtm/src/lib.rs", &typo);
    assert_eq!(rules_of(&f), vec![Rule::BadAllow]);
    assert!(f[0].message.contains("wall-clok"), "{}", f[0].message);
    assert!(scan_bad_allows("crates/mtm/src/lib.rs", "// lint:allow(wall-clock): fine\n")
        .is_empty());
    let allows =
        vec![Allow { slug: "no-such-rule".into(), path_substr: "crates/".into(), line: 3 }];
    let f = validate_allowlist(&allows);
    assert_eq!(rules_of(&f), vec![Rule::BadAllow]);
    assert_eq!(f[0].line, 3);
}

#[test]
fn findings_serialize_to_stable_json() {
    let f = Finding {
        path: "crates/a/src/lib.rs".into(),
        line: 3,
        rule: Rule::LockOrder,
        message: "cycle \"x\"\\path".into(),
    };
    assert_eq!(
        f.to_json(),
        r#"{"path":"crates/a/src/lib.rs","line":3,"code":"D7","slug":"lock-order","message":"cycle \"x\"\\path"}"#
    );
}

// --------------------------------------------------------------- corpus

fn fixture_root(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name)
}

#[test]
fn the_seeded_corpus_matches_its_golden_findings() {
    let dir = fixture_root("corpus");
    let findings = run(&dir).expect("corpus lint run");
    let got = findings.iter().map(|f| format!("{f}\n")).collect::<String>();
    let want = std::fs::read_to_string(dir.join("expected.txt")).expect("golden file");
    assert_eq!(got, want, "corpus findings drifted from expected.txt");
    // Every semantic rule demonstrably catches its seeded violation.
    for rule in [Rule::DeterminismTaint, Rule::LockOrder, Rule::PanicPath, Rule::ObsName, Rule::BadAllow] {
        assert!(findings.iter().any(|f| f.rule == rule), "corpus misses {rule:?}");
    }
}

#[test]
fn the_clean_fixture_twin_has_zero_findings() {
    let findings = run(&fixture_root("clean")).expect("clean lint run");
    assert!(
        findings.is_empty(),
        "clean twin has findings:\n  {}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n  ")
    );
}

// ------------------------------------------------------------- property

/// Builds one noisy source from atom codes: per atom, a fn whose body
/// holds brace/string/comment noise plus a unique marker call, wrapped
/// in a module for even atoms, with a nested fn for atom 4. Returns the
/// source and each expected fn's marker ident.
fn build_noisy_source(atoms: &[u8]) -> (String, std::collections::BTreeMap<String, String>) {
    let mut src = String::new();
    let mut expected = std::collections::BTreeMap::new();
    for (i, &a) in atoms.iter().enumerate() {
        let noise = match a % 7 {
            0 => "// ghost_marker } { fn fake() {\n".to_string(),
            1 => "/* outer /* ghost_marker } */ fn fake2() { */\n".to_string(),
            2 => "let s = \"ghost_marker } { \\\" fn fake3() {\";\n".to_string(),
            3 => "let r = r#\"ghost_marker } { \" fn fake4() {\"#;\n".to_string(),
            4 => "{ let inner_block = 1; }\n".to_string(),
            5 => "let c = '}'; let q = '\\'';\n".to_string(),
            _ => "let l: &'static str = \"x\";\n".to_string(),
        };
        let marker = format!("marker_{i}");
        let mut item = format!("fn f{i}() {{\n{noise}    {marker}();\n}}\n");
        if a % 7 == 4 {
            item = format!(
                "fn f{i}() {{\n    fn inner{i}() {{ marker_inner_{i}(); }}\n{noise}    {marker}();\n}}\n"
            );
            expected.insert(format!("inner{i}"), format!("marker_inner_{i}"));
        }
        if a % 2 == 0 {
            item = format!("mod m{i} {{\n{item}}}\n");
        }
        src.push_str(&item);
        expected.insert(format!("f{i}"), marker);
    }
    (src, expected)
}

#[test]
fn parser_attributes_bodies_correctly_under_random_nesting() {
    use proptest_lite::{gen, prop_check};
    prop_check!("parser_round_trip", 64, gen::vec_in(gen::u8_range(0, 14), 1, 12), |atoms| {
        let (src, expected) = build_noisy_source(atoms);
        let pf = parse::parse_file("crates/mtm/src/generated.rs", &src);
        let names: std::collections::BTreeSet<String> =
            pf.fns.iter().map(|f| f.name.clone()).collect();
        let want: std::collections::BTreeSet<String> = expected.keys().cloned().collect();
        proptest_lite::prop_assert_eq!(&names, &want, "fn set mismatch for:\n{src}");
        for f in &pf.fns {
            let mut body: Vec<&str> = Vec::new();
            for k in f.body.clone() {
                if f.nested.iter().any(|r| r.contains(&k)) {
                    continue;
                }
                body.push(pf.toks[k].text.as_str());
            }
            let marker = &expected[&f.name];
            proptest_lite::prop_assert!(
                body.contains(&marker.as_str()),
                "fn {} lost its marker in:\n{src}",
                f.name
            );
            // Nothing from a string or comment may surface as a token,
            // and no other fn's marker may leak into this body.
            proptest_lite::prop_assert!(
                !body.contains(&"ghost_marker"),
                "string/comment text leaked into fn {} of:\n{src}",
                f.name
            );
            for (other, m) in &expected {
                if other != &f.name {
                    proptest_lite::prop_assert!(
                        !body.contains(&m.as_str()),
                        "fn {other}'s marker mis-attributed to fn {} in:\n{src}",
                        f.name
                    );
                }
            }
        }
    });
}

#[test]
fn the_workspace_itself_is_lint_clean() {
    // The real tree must stay at zero findings — the same gate verify.sh
    // applies, enforced from the test suite so `cargo test` catches a
    // regression without running the binary.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf();
    let findings = run(&root).expect("lint run succeeds");
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n  {}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n  ")
    );
}
