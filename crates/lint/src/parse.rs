//! Item-skeleton parser: the semantic layer's view of a Rust source file.
//!
//! Built on [`crate::strip_code`]'s string/comment-safe text, this module
//! tokenizes a file and recovers its *item skeleton*: modules, `fn` items
//! (with bodies kept as token ranges — no expression grammar), `impl` and
//! `trait` blocks (so methods know their self type), and `use ... as ...`
//! renames (so call resolution can chase aliases). That is deliberately
//! all the structure the semantic rules (D6/D7/D8, see [`crate::graph`])
//! need: per-function fact extraction walks the body token stream
//! linearly, and whole-workspace reasoning happens over the call graph,
//! not the syntax tree.
//!
//! The parser is conservative where Rust is hairy: generics and where
//! clauses are skipped by balanced-token counting, nested `fn` items are
//! pulled out as their own functions (and excluded from the parent's
//! body range, so a fact is never attributed to the wrong `fn`), and
//! `macro_rules!` bodies are skipped wholesale (fragments inside them are
//! not code until expanded).

use crate::{strip_code, test_mask};

/// Token classes the skeleton parser distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct,
    /// A (blanked) string literal — contents are gone, position remains.
    Str,
    /// Numeric literal.
    Num,
    /// Lifetime tick (the `'` of `'a`; the ident follows separately).
    Life,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (single char for punctuation).
    pub text: String,
    /// 1-based line number in the source file.
    pub line: u32,
}

impl Tok {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for a punctuation token with exactly this char.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// One `fn` item recovered from the skeleton.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Self type for `impl`/`trait` methods (`impl Trait for T` records `T`).
    pub owner: Option<String>,
    /// Enclosing in-file module path (inline `mod` items only).
    pub module: Vec<String>,
    /// 1-based declaration line.
    pub line: u32,
    /// Body token range into [`ParsedFile::toks`]; empty for bodyless
    /// declarations (trait signatures, extern fns).
    pub body: std::ops::Range<usize>,
    /// Token ranges of nested `fn` bodies inside `body`, which belong to
    /// the nested items and must be skipped when scanning this one.
    pub nested: Vec<std::ops::Range<usize>>,
    /// True when the item is test code (`#[cfg(test)]` region or a
    /// `#[test]`/`#[bench]` attribute) and therefore rule-exempt.
    pub is_test: bool,
}

impl FnItem {
    /// Display name: `Owner::name` for methods, `name` otherwise.
    pub fn qual(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One `use x as y;` rename: calls through `alias` resolve as `target`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UseRename {
    /// The local alias introduced by `as`.
    pub alias: String,
    /// The original (last path segment) name.
    pub target: String,
}

/// A tokenized file plus its item skeleton.
#[derive(Clone, Debug)]
pub struct ParsedFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Token stream of the stripped source.
    pub toks: Vec<Tok>,
    /// Every `fn` item, including nested ones, in declaration order.
    pub fns: Vec<FnItem>,
    /// `use ... as ...` renames declared anywhere in the file.
    pub renames: Vec<UseRename>,
    /// True when the file declares `RwLock` anywhere (gates whether
    /// `.read()`/`.write()` count as lock acquisitions in this file).
    pub has_rwlock: bool,
}

/// Tokenizes stripped source (see [`strip_code`]): identifiers, numbers,
/// blanked string literals, lifetime ticks and single-char punctuation,
/// each tagged with its 1-based line.
pub fn tokenize(stripped: &str) -> Vec<Tok> {
    let b: Vec<char> = stripped.chars().collect();
    let n = b.len();
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;
    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            out.push(Tok { kind: TokKind::Ident, text: b[start..i].iter().collect(), line });
        } else if c.is_ascii_digit() {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_' || b[i] == '.') {
                // Stop a float short of a method call: `1.max(2)`.
                if b[i] == '.' && i + 1 < n && !b[i + 1].is_ascii_digit() {
                    break;
                }
                i += 1;
            }
            out.push(Tok { kind: TokKind::Num, text: b[start..i].iter().collect(), line });
        } else if c == '"' {
            // A blanked plain string literal: quotes survive stripping.
            let start_line = line;
            i += 1;
            while i < n && b[i] != '"' {
                if b[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            i += 1;
            out.push(Tok { kind: TokKind::Str, text: String::new(), line: start_line });
        } else if c == '\'' {
            // Lifetime tick or a blanked char literal; either way one
            // token, the ident (if a lifetime) follows on its own.
            if i + 2 < n && b[i + 2] == '\'' {
                i += 3; // blanked char literal `' '`
            } else {
                out.push(Tok { kind: TokKind::Life, text: "'".to_string(), line });
                i += 1;
            }
        } else {
            out.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
            i += 1;
        }
    }
    out
}

/// Index of the token after the region balanced on `open`/`close`,
/// assuming `toks[i]` is the opening token. Returns `toks.len()` when
/// unbalanced (truncated input).
fn skip_balanced(toks: &[Tok], i: usize, open: char, close: char) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while j < toks.len() {
        if toks[j].is_punct(open) {
            depth += 1;
        } else if toks[j].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Rust keywords that look like call names but are not.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "mut",
    "ref", "move", "in", "as", "fn", "impl", "dyn", "where", "use", "pub", "crate", "self",
    "super", "mod", "struct", "enum", "trait", "type", "const", "static", "unsafe", "extern",
    "box", "async", "await",
];

/// True when `s` is a Rust keyword (for call-site filtering).
pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

struct Parser<'a> {
    toks: &'a [Tok],
    /// Per-line test mask from the stripped source.
    mask: &'a [bool],
    fns: Vec<FnItem>,
    renames: Vec<UseRename>,
}

impl Parser<'_> {
    /// True when the 1-based line is inside a `#[cfg(test)]` region.
    fn masked(&self, line: u32) -> bool {
        self.mask.get(line as usize - 1).copied().unwrap_or(false)
    }

    /// Parses the item sequence in `toks[i..end]` under `module`/`owner`.
    fn items(&mut self, mut i: usize, end: usize, module: &mut Vec<String>, owner: Option<&str>) {
        let mut attr_test = false;
        while i < end {
            let t = &self.toks[i];
            if t.is_punct('#') {
                // Attribute: `#[...]` or `#![...]`; remember test markers.
                let mut j = i + 1;
                if j < end && self.toks[j].is_punct('!') {
                    j += 1;
                }
                if j < end && self.toks[j].is_punct('[') {
                    let close = skip_balanced(self.toks, j, '[', ']');
                    if self.toks[j..close].iter().any(|t| t.is_ident("test") || t.is_ident("bench"))
                    {
                        attr_test = true;
                    }
                    i = close;
                } else {
                    i += 1;
                }
                continue;
            }
            if t.is_ident("mod") {
                if i + 2 < end && self.toks[i + 1].kind == TokKind::Ident {
                    let name = self.toks[i + 1].text.clone();
                    if self.toks[i + 2].is_punct('{') {
                        let close = skip_balanced(self.toks, i + 2, '{', '}');
                        module.push(name);
                        self.items(i + 3, close.saturating_sub(1), module, None);
                        module.pop();
                        i = close;
                        attr_test = false;
                        continue;
                    }
                }
                i += 1;
                continue;
            }
            if t.is_ident("use") {
                i = self.use_decl(i + 1, end);
                attr_test = false;
                continue;
            }
            if t.is_ident("impl") || t.is_ident("trait") {
                let is_trait = t.is_ident("trait");
                // Find the block opener, skipping generics balanced so a
                // `where T: Fn() -> u64` clause cannot fool us.
                let mut j = i + 1;
                let mut ty: Option<String> = None;
                let mut after_for = false;
                while j < end && !self.toks[j].is_punct('{') {
                    if self.toks[j].is_punct(';') {
                        break; // `impl Trait for T;`-style marker, no block
                    }
                    if self.toks[j].is_punct('<') {
                        j = skip_angles(self.toks, j, end);
                        continue;
                    }
                    if self.toks[j].is_ident("for") {
                        after_for = true;
                        ty = None;
                        j += 1;
                        continue;
                    }
                    if self.toks[j].is_ident("where") {
                        break;
                    }
                    if self.toks[j].kind == TokKind::Ident && (ty.is_none() || after_for) {
                        if ty.is_none() {
                            ty = Some(self.toks[j].text.clone());
                        }
                        after_for = false;
                    }
                    j += 1;
                }
                while j < end && !self.toks[j].is_punct('{') && !self.toks[j].is_punct(';') {
                    j += 1;
                }
                if j < end && self.toks[j].is_punct('{') {
                    let close = skip_balanced(self.toks, j, '{', '}');
                    let ty = ty.unwrap_or_default();
                    let owner = if is_trait && ty.is_empty() { None } else { Some(ty) };
                    self.items(j + 1, close.saturating_sub(1), module, owner.as_deref());
                    i = close;
                } else {
                    i = j + 1;
                }
                attr_test = false;
                continue;
            }
            if t.kind == TokKind::Ident && t.text == "macro_rules" {
                // `macro_rules! name { ... }`: fragments inside are not code.
                let mut j = i + 1;
                while j < end && !self.toks[j].is_punct('{') {
                    j += 1;
                }
                i = if j < end { skip_balanced(self.toks, j, '{', '}') } else { end };
                attr_test = false;
                continue;
            }
            if t.is_ident("fn") {
                i = self.fn_item(i, end, module, owner, attr_test);
                attr_test = false;
                continue;
            }
            i += 1;
        }
    }

    /// Parses `use ...;` collecting `x as y` renames; returns the index
    /// after the terminating `;`.
    fn use_decl(&mut self, mut i: usize, end: usize) -> usize {
        let mut prev_ident: Option<String> = None;
        while i < end && !self.toks[i].is_punct(';') {
            let t = &self.toks[i];
            if t.is_ident("as") {
                if let (Some(target), Some(alias)) = (
                    prev_ident.take(),
                    self.toks.get(i + 1).filter(|a| a.kind == TokKind::Ident),
                ) {
                    // `use x as _;` discards the name — nothing to resolve.
                    if alias.text != "_" {
                        self.renames.push(UseRename { alias: alias.text.clone(), target });
                    }
                    i += 2;
                    continue;
                }
            }
            if t.kind == TokKind::Ident {
                prev_ident = Some(t.text.clone());
            } else if !t.is_punct(':') {
                // A `::` keeps the chain going; anything else (`{`, `,`)
                // starts a fresh segment.
                if !t.is_punct(':') {
                    prev_ident = None;
                }
            }
            i += 1;
        }
        (i + 1).min(end)
    }

    /// Parses one `fn` item starting at the `fn` keyword; returns the
    /// index after the item. Recurses into the body to pull out nested
    /// `fn` items and records their ranges for exclusion.
    fn fn_item(
        &mut self,
        i: usize,
        end: usize,
        module: &mut Vec<String>,
        owner: Option<&str>,
        attr_test: bool,
    ) -> usize {
        let Some(name_tok) = self.toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            return i + 1; // `fn(` — a function-pointer type, not an item
        };
        let name = name_tok.text.clone();
        let line = name_tok.line;
        let mut j = i + 2;
        if j < end && self.toks[j].is_punct('<') {
            j = skip_angles(self.toks, j, end);
        }
        if j < end && self.toks[j].is_punct('(') {
            j = skip_balanced(self.toks, j, '(', ')');
        }
        // Return type / where clause: scan to the body `{` or a `;`,
        // skipping angle regions so `-> Result<(), String>` is safe.
        while j < end && !self.toks[j].is_punct('{') && !self.toks[j].is_punct(';') {
            if self.toks[j].is_punct('<') {
                j = skip_angles(self.toks, j, end);
            } else {
                j += 1;
            }
        }
        if j >= end || self.toks[j].is_punct(';') {
            self.push_fn(name, owner, module, line, 0..0, Vec::new(), attr_test);
            return (j + 1).min(end);
        }
        let close = skip_balanced(self.toks, j, '{', '}');
        let body = (j + 1)..close.saturating_sub(1);
        // Pull out nested `fn` items (token `fn` followed by an ident).
        let mut nested_ranges = Vec::new();
        let mut k = body.start;
        while k < body.end {
            if self.toks[k].is_ident("fn")
                && self.toks.get(k + 1).is_some_and(|t| t.kind == TokKind::Ident)
            {
                let next = self.fn_item(k, body.end, module, None, attr_test);
                nested_ranges.push(k..next);
                k = next;
            } else {
                k += 1;
            }
        }
        self.push_fn(name, owner, module, line, body, nested_ranges, attr_test);
        close
    }

    #[allow(clippy::too_many_arguments)]
    fn push_fn(
        &mut self,
        name: String,
        owner: Option<&str>,
        module: &[String],
        line: u32,
        body: std::ops::Range<usize>,
        nested: Vec<std::ops::Range<usize>>,
        attr_test: bool,
    ) {
        let is_test = attr_test || self.masked(line);
        self.fns.push(FnItem {
            name,
            owner: owner.map(str::to_string),
            module: module.to_vec(),
            line,
            body,
            nested,
            is_test,
        });
    }
}

/// Skips a balanced `<...>` region starting at `i` (which holds `<`),
/// treating `(`/`)` nesting inside; returns the index after the matching
/// `>`. Falls back to `i + 1` on shift-like text so expression context
/// (`a < b`) cannot swallow the rest of the file: the skeleton only calls
/// this in signature positions, where `<` is always a generic opener.
fn skip_angles(toks: &[Tok], i: usize, end: usize) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while j < end {
        let t = &toks[j];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        } else if t.is_punct('(') {
            j = skip_balanced(toks, j, '(', ')');
            continue;
        } else if t.is_punct('{') || t.is_punct(';') {
            // A generic list never contains these: bail out rather than
            // swallowing the body.
            return i + 1;
        }
        j += 1;
    }
    i + 1
}

/// Parses one source file into its item skeleton. `rel` is the
/// workspace-relative path (stored for diagnostics); `src` is raw text.
pub fn parse_file(rel: &str, src: &str) -> ParsedFile {
    let stripped = strip_code(src);
    let lines: Vec<&str> = stripped.lines().collect();
    let mask = test_mask(&lines);
    let toks = tokenize(&stripped);
    let has_rwlock = toks.iter().any(|t| t.is_ident("RwLock"));
    let mut p = Parser { toks: &toks, mask: &mask, fns: Vec::new(), renames: Vec::new() };
    let end = toks.len();
    let mut module = Vec::new();
    p.items(0, end, &mut module, None);
    let Parser { fns, renames, .. } = p;
    ParsedFile { rel: rel.to_string(), toks, fns, renames, has_rwlock }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file("crates/x/src/lib.rs", src)
    }

    fn fn_named<'a>(p: &'a ParsedFile, name: &str) -> &'a FnItem {
        p.fns.iter().find(|f| f.name == name).unwrap_or_else(|| panic!("no fn {name}"))
    }

    fn body_idents(p: &ParsedFile, f: &FnItem) -> Vec<String> {
        p.toks[f.body.clone()]
            .iter()
            .enumerate()
            .filter(|(k, t)| {
                t.kind == TokKind::Ident
                    && !f.nested.iter().any(|r| r.contains(&(f.body.start + k)))
            })
            .map(|(_, t)| t.text.clone())
            .collect()
    }

    #[test]
    fn simple_fn_bodies_are_attributed() {
        let p = parse("fn a() { alpha(); }\nfn b() -> u64 { beta() }\n");
        assert_eq!(p.fns.len(), 2);
        assert!(body_idents(&p, fn_named(&p, "a")).contains(&"alpha".to_string()));
        assert!(!body_idents(&p, fn_named(&p, "a")).contains(&"beta".to_string()));
        assert!(body_idents(&p, fn_named(&p, "b")).contains(&"beta".to_string()));
    }

    #[test]
    fn impl_and_trait_methods_know_their_owner() {
        let src = "struct S;\nimpl S { fn m(&self) { inner(); } }\n\
                   trait T { fn d(&self) { dflt(); } }\nimpl T for S { fn d(&self) { over(); } }\n";
        let p = parse(src);
        let m = fn_named(&p, "m");
        assert_eq!(m.owner.as_deref(), Some("S"));
        let ds: Vec<_> = p.fns.iter().filter(|f| f.name == "d").collect();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0].owner.as_deref(), Some("T"));
        assert_eq!(ds[1].owner.as_deref(), Some("S"), "impl Trait for S records S");
        assert_eq!(m.qual(), "S::m");
    }

    #[test]
    fn nested_fns_are_split_out_of_the_parent_body() {
        let src = "fn outer() {\n    fn helper() { hidden(); }\n    helper();\n    seen();\n}\n";
        let p = parse(src);
        let outer = fn_named(&p, "outer");
        let helper = fn_named(&p, "helper");
        let outer_ids = body_idents(&p, outer);
        assert!(outer_ids.contains(&"seen".to_string()));
        assert!(outer_ids.contains(&"helper".to_string()), "the call remains");
        assert!(!outer_ids.contains(&"hidden".to_string()), "nested body excluded");
        assert!(body_idents(&p, helper).contains(&"hidden".to_string()));
    }

    #[test]
    fn use_renames_are_collected() {
        let src = "use a::b::real_name as alias;\nuse x::{y as z, w};\nuse q::r as _;\n";
        let p = parse(src);
        assert_eq!(
            p.renames,
            vec![
                UseRename { alias: "alias".into(), target: "real_name".into() },
                UseRename { alias: "z".into(), target: "y".into() },
            ]
        );
    }

    #[test]
    fn strings_and_comments_cannot_fake_items() {
        let src = "fn real() {\n    let s = \"fn fake() { bad() }\";\n    // fn commented() {}\n    ok();\n}\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert!(body_idents(&p, fn_named(&p, "real")).contains(&"ok".to_string()));
    }

    #[test]
    fn cfg_test_and_test_attr_mark_items() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn case() {}\n}\n";
        let p = parse(src);
        assert!(!fn_named(&p, "prod").is_test);
        assert!(fn_named(&p, "helper").is_test);
        assert!(fn_named(&p, "case").is_test);
        let solo = parse("#[test]\nfn lone_case() {}\n");
        assert!(fn_named(&solo, "lone_case").is_test);
    }

    #[test]
    fn generic_signatures_and_where_clauses_parse() {
        let src = "fn g<T: Fn(u32) -> u64, const N: usize>(x: T) -> Result<Vec<u8>, String>\n\
                   where T: Clone {\n    seen_in_g();\n}\n";
        let p = parse(src);
        assert!(body_idents(&p, fn_named(&p, "g")).contains(&"seen_in_g".to_string()));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn real() { let f: fn(u32) -> u32 = other; f(1); }\n";
        let p = parse(src);
        assert_eq!(p.fns.iter().filter(|f| !f.name.is_empty()).count(), 1);
    }

    #[test]
    fn inline_modules_nest_in_the_path() {
        let src = "mod outer {\n    mod inner {\n        fn deep() {}\n    }\n    fn shallow() {}\n}\n";
        let p = parse(src);
        assert_eq!(fn_named(&p, "deep").module, vec!["outer", "inner"]);
        assert_eq!(fn_named(&p, "shallow").module, vec!["outer"]);
    }

    #[test]
    fn macro_rules_bodies_are_skipped() {
        let src = "macro_rules! m {\n    () => { fn generated() { ghost(); } };\n}\nfn real() {}\n";
        let p = parse(src);
        assert!(p.fns.iter().all(|f| f.name != "generated"));
        assert_eq!(p.fns.len(), 1);
    }

    #[test]
    fn bodyless_trait_signatures_have_empty_bodies() {
        let p = parse("trait T { fn sig(&self) -> u64; fn with_default(&self) { d(); } }\n");
        assert!(fn_named(&p, "sig").body.is_empty());
        assert!(!fn_named(&p, "with_default").body.is_empty());
    }
}
