//! Thermostat (ASPLOS '17): protection-fault-based profiling over fixed
//! 2 MB regions, for two tiers.
//!
//! Thermostat keeps every region at a fixed size, samples one random 4 KB
//! page per region per interval by removing its protection, and counts the
//! resulting protection faults as the hotness estimate — considerably more
//! expensive than a PTE scan (Sec. 9.3: "manipulating reserved bits in PTE
//! and counting protection faults ... is more expensive"). It allocates
//! everything in the fast tier and demotes regions classified cold;
//! regions that turn hot again are promoted back.

use std::collections::BTreeMap;

use tiersim::addr::{VaRange, VirtAddr, PAGE_SIZE_4K};
use tiersim::machine::Machine;
use tiersim::rng::SplitMix64;
use tiersim::sim::MemoryManager;
use tiersim::tier::ComponentId;

use crate::util::{migrate_sync, vma_chunks};

/// The Thermostat baseline.
pub struct Thermostat {
    chunks: Vec<VaRange>,
    /// Faults observed per chunk in the current interval window.
    chunk_faults: BTreeMap<u64, u32>,
    /// Consecutive cold intervals per chunk.
    cold_streak: BTreeMap<u64, u32>,
    /// Demote a chunk after this many cold intervals.
    cold_patience: u32,
    demote_budget: u64,
    fast: ComponentId,
    slow: ComponentId,
    rng: SplitMix64,
    hot_bytes_sum: u64,
    intervals: u64,
    /// Fraction of regions sampled each interval (1.0 = all, as in the
    /// original system; lower it to respect an overhead envelope).
    pub sample_fraction: f64,
}

impl Thermostat {
    /// Creates a Thermostat manager.
    pub fn new(demote_budget: u64) -> Thermostat {
        Thermostat {
            chunks: Vec::new(),
            chunk_faults: BTreeMap::new(),
            cold_streak: BTreeMap::new(),
            cold_patience: 2,
            demote_budget,
            fast: 0,
            slow: 1,
            rng: SplitMix64::new(0x7E57),
            hot_bytes_sum: 0,
            intervals: 0,
            sample_fraction: 1.0,
        }
    }
}

impl MemoryManager for Thermostat {
    fn name(&self) -> String {
        "Thermostat".into()
    }

    fn init(&mut self, m: &mut Machine) {
        let topo = m.topology();
        self.fast = topo.component_at_rank(0, 0);
        self.slow = topo
            .pm_components()
            .into_iter()
            .find(|&c| topo.components[c as usize].home_node == 0)
            .unwrap_or_else(|| topo.component_at_rank(0, topo.num_components() - 1));
        self.chunks = vma_chunks(m);
        // Arm the first interval's samples.
        self.arm_samples(m);
    }

    fn placement(&mut self, m: &Machine, tid: usize, _va: VirtAddr) -> Vec<ComponentId> {
        // All pages start in the fast tier (Thermostat's model).
        let mut order = vec![self.fast];
        order.extend(m.topology().view(m.node_of(tid)).iter().copied().filter(|&c| c != self.fast));
        order
    }

    fn on_interval(&mut self, m: &mut Machine, _interval: u64) {
        self.intervals += 1;
        // Collect this interval's protection faults.
        self.chunk_faults.clear();
        for f in m.drain_prot_faults() {
            *self.chunk_faults.entry(f.page.page_2m().0).or_insert(0) += 1;
        }
        // Sort: HashMap iteration order depends on the per-thread hasher
        // seed, and promotion order is behavior (free-space checks), so an
        // unsorted walk makes the whole run nondeterministic.
        let mut hot_chunks: Vec<u64> = self.chunk_faults.keys().copied().collect();
        hot_chunks.sort_unstable();
        self.hot_bytes_sum += self
            .chunk_faults
            .len() as u64
            * tiersim::addr::PAGE_SIZE_2M;

        // Promote hot chunks that were previously demoted.
        for &base in &hot_chunks {
            let va = VirtAddr(base);
            if m.component_of(va) == Some(self.slow) && m.allocator(self.fast).free() >= tiersim::addr::PAGE_SIZE_2M {
                migrate_sync(m, VaRange::from_len(va, tiersim::addr::PAGE_SIZE_2M), self.fast, 0);
            }
            self.cold_streak.remove(&base);
        }

        // Demote chunks cold for `cold_patience` consecutive intervals.
        let mut budget = self.demote_budget;
        for chunk in self.chunks.clone() {
            if budget == 0 {
                break;
            }
            let base = chunk.start.0;
            if self.chunk_faults.contains_key(&base) {
                continue;
            }
            let streak = self.cold_streak.entry(base).or_insert(0);
            *streak += 1;
            if *streak >= self.cold_patience && m.component_of(chunk.start) == Some(self.fast) {
                let moved = migrate_sync(m, chunk, self.slow, 0);
                budget = budget.saturating_sub(moved);
            }
        }
        self.arm_samples(m);
    }

    fn hot_bytes_identified(&self) -> u64 {
        self.hot_bytes_sum / self.intervals.max(1)
    }

    fn metadata_bytes(&self) -> u64 {
        (self.chunk_faults.len() + self.cold_streak.len()) as u64 * 12
    }
}

impl Thermostat {
    /// Chunks classified hot in the last interval (for profiling-quality
    /// studies, Fig. 1).
    pub fn hot_ranges(&self) -> Vec<VaRange> {
        let mut bases: Vec<u64> = self.chunk_faults.keys().copied().collect();
        bases.sort_unstable();
        bases
            .into_iter()
            .map(|base| VaRange::from_len(VirtAddr(base), tiersim::addr::PAGE_SIZE_2M))
            .collect()
    }

    /// Removes protection from one random 4 KB page per (sampled) region
    /// so the next interval's accesses fault and get counted.
    fn arm_samples(&mut self, m: &mut Machine) {
        for i in 0..self.chunks.len() {
            if self.sample_fraction < 1.0 && self.rng.unit_f64() > self.sample_fraction {
                continue;
            }
            let chunk = self.chunks[i];
            let pages = chunk.pages_4k();
            let page = VirtAddr(chunk.start.page_4k().0 + self.rng.below(pages) * PAGE_SIZE_4K);
            m.protect_page(page);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim::addr::PAGE_SIZE_2M;
    use tiersim::machine::{AccessKind, MachineConfig};
    use tiersim::tier::two_tier;

    fn machine() -> Machine {
        let mut cfg = MachineConfig::new(two_tier(1 << 12), 1);
        cfg.interval_ns = 1.0e6;
        let mut m = Machine::new(cfg);
        let r = VaRange::from_len(VirtAddr(0), 4 * PAGE_SIZE_2M);
        m.mmap("a", r, false);
        m
    }

    #[test]
    fn allocates_fast_first() {
        let mut m = machine();
        let mut t = Thermostat::new(PAGE_SIZE_2M);
        t.init(&mut m);
        let order = t.placement(&m, 0, VirtAddr(0));
        assert_eq!(order[0], 0);
    }

    #[test]
    fn cold_chunks_demote_after_patience() {
        let mut m = machine();
        m.prefault_range(VaRange::from_len(VirtAddr(0), 4 * PAGE_SIZE_2M), &[0]).unwrap();
        let mut t = Thermostat::new(64 * PAGE_SIZE_2M);
        t.init(&mut m);
        // Two silent intervals: every chunk crosses the cold patience.
        t.on_interval(&mut m, 0);
        t.on_interval(&mut m, 1);
        assert_eq!(m.component_of(VirtAddr(0)), Some(1), "cold chunk demoted");
    }

    #[test]
    fn faulting_chunk_stays_and_returns() {
        let mut m = machine();
        m.prefault_range(VaRange::from_len(VirtAddr(0), 4 * PAGE_SIZE_2M), &[0]).unwrap();
        let mut t = Thermostat::new(64 * PAGE_SIZE_2M);
        t.cold_patience = 1;
        t.init(&mut m);
        // Touch every page of chunk 0 so the sampled page faults for sure.
        let touch = |m: &mut Machine| {
            for page in VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M).iter_pages_4k() {
                m.access(0, page, AccessKind::Read);
            }
        };
        touch(&mut m);
        t.on_interval(&mut m, 0);
        assert_eq!(m.component_of(VirtAddr(0)), Some(0), "hot chunk kept fast");
        assert!(m.stats().prot_faults > 0, "profiling went through faults");
        // Let it go cold, demote, then heat it again: it promotes back.
        t.on_interval(&mut m, 1);
        assert_eq!(m.component_of(VirtAddr(0)), Some(1));
        touch(&mut m);
        t.on_interval(&mut m, 2);
        assert_eq!(m.component_of(VirtAddr(0)), Some(0), "reheated chunk promoted");
    }
}
