//! `mtm-baselines` — the page-management systems MTM is evaluated against
//! (Sec. 9 "Baselines"): first-touch NUMA, hardware-managed caching
//! (Optane Memory Mode), vanilla and patched tiered-AutoNUMA, AutoTiering,
//! HeMem, Thermostat, the DAMON profiler, and the Nimble / `move_pages()`
//! migration mechanisms (the latter two live in `tiersim::migrate` and
//! `mtm::migration`).

pub mod autonuma;
pub mod autotiering;
pub mod damon;
pub mod first_touch;
pub mod hemem;
pub mod hmc;
pub mod thermostat;
pub mod util;

pub use autonuma::AutoNuma;
pub use autotiering::AutoTiering;
pub use damon::{Damon, DamonConfig};
pub use first_touch::FirstTouch;
pub use hemem::{hemem_pebs_config, HeMem};
pub use hmc::{hmc_machine_config, MemoryMode};
pub use thermostat::Thermostat;

use tiersim::sim::MemoryManager;

/// Builds a baseline manager by its paper name.
///
/// Names: `first-touch`, `hmc`, `vanilla-autonuma`, `autonuma`,
/// `autotiering`, `hemem`, `thermostat`, `damon`. `promote_budget` is the
/// per-interval migration rate limit shared with MTM (the paper sets both
/// to 200 MB per interval). Returns `None` for an unknown name.
pub fn build_baseline(name: &str, promote_budget: u64) -> Option<Box<dyn MemoryManager>> {
    Some(match name {
        "first-touch" => Box::new(FirstTouch),
        "hmc" => Box::new(MemoryMode),
        "vanilla-autonuma" => Box::new(AutoNuma::vanilla(promote_budget)),
        "autonuma" => Box::new(AutoNuma::patched(promote_budget)),
        "autotiering" => Box::new(AutoTiering::new(promote_budget)),
        "hemem" => Box::new(HeMem::new(promote_budget)),
        "thermostat" => Box::new(Thermostat::new(promote_budget)),
        "damon" => Box::new(Damon::new(DamonConfig::default())),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_knows_all_names() {
        for name in
            ["first-touch", "hmc", "vanilla-autonuma", "autonuma", "autotiering", "hemem", "thermostat", "damon"]
        {
            assert!(build_baseline(name, 1 << 20).is_some(), "missing {name}");
        }
        assert!(build_baseline("bogus", 0).is_none());
    }
}
