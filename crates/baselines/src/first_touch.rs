//! First-touch NUMA: allocate close to the first toucher, never migrate.

use tiersim::addr::VirtAddr;
use tiersim::machine::Machine;
use tiersim::sim::MemoryManager;
use tiersim::tier::ComponentId;

/// The first-touch NUMA baseline (Sec. 9's "First-touch NUMA").
///
/// Pages are allocated in the fastest component with space from the view
/// of the faulting thread's node; no profiling, no migration.
#[derive(Default)]
pub struct FirstTouch;

impl MemoryManager for FirstTouch {
    fn name(&self) -> String {
        "First-touch NUMA".into()
    }

    fn placement(&mut self, m: &Machine, tid: usize, _va: VirtAddr) -> Vec<ComponentId> {
        m.topology().view(m.node_of(tid)).to_vec()
    }

    fn on_interval(&mut self, _m: &mut Machine, _interval: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim::addr::{VaRange, PAGE_SIZE_2M};
    use tiersim::machine::MachineConfig;
    use tiersim::tier::optane_four_tier;

    #[test]
    fn places_local_fast_first() {
        let mut m = Machine::new(MachineConfig::new(optane_four_tier(1 << 12), 2));
        m.mmap("a", VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M), false);
        let mut ft = FirstTouch;
        // Thread 0 is on node 0; thread 1 on node 1.
        assert_eq!(ft.placement(&m, 0, VirtAddr(0)), vec![0, 1, 2, 3]);
        assert_eq!(ft.placement(&m, 1, VirtAddr(0)), vec![1, 0, 3, 2]);
    }
}
