//! Hardware-managed memory caching (Optane Memory Mode).
//!
//! In Memory Mode only the PM capacity is visible to software; the DRAM in
//! front of each socket acts as a hardware-managed cache (modelled by
//! [`tiersim::cache::HwCache`] inside the machine). The manager therefore
//! just places every page in PM and lets the hardware do the rest — build
//! the machine with [`hmc_machine_config`] so the caches exist.

use tiersim::machine::{Machine, MachineConfig};
use tiersim::sim::MemoryManager;
use tiersim::tier::{ComponentId, Topology};
use tiersim::VirtAddr;

/// The Memory-Mode baseline ("HMC" in Fig. 4).
#[derive(Default)]
pub struct MemoryMode;

/// Builds a machine configuration with the hardware caches enabled.
pub fn hmc_machine_config(topology: Topology, threads: usize) -> MachineConfig {
    let mut cfg = MachineConfig::new(topology, threads);
    cfg.hmc_mode = true;
    cfg
}

impl MemoryManager for MemoryMode {
    fn name(&self) -> String {
        "HMC (Memory Mode)".into()
    }

    fn placement(&mut self, m: &Machine, tid: usize, _va: VirtAddr) -> Vec<ComponentId> {
        // Only PM is addressable; prefer the local socket's PM.
        let topo = m.topology();
        let node = m.node_of(tid);
        let mut pm = topo.pm_components();
        pm.sort_by_key(|&c| topo.tier_rank(node, c));
        pm
    }

    fn on_interval(&mut self, _m: &mut Machine, _interval: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim::addr::{VaRange, PAGE_SIZE_2M};
    use tiersim::machine::AccessKind;
    use tiersim::tier::optane_four_tier;

    #[test]
    fn pages_land_in_pm_and_cache_serves_hits() {
        let cfg = hmc_machine_config(optane_four_tier(1 << 12), 2);
        let mut m = Machine::new(cfg);
        m.mmap("a", VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M), false);
        let mut mm = MemoryMode;
        let order = mm.placement(&m, 0, VirtAddr(0));
        assert_eq!(order, vec![2, 3], "only PM components, local first");
        m.alloc_and_map(0, VirtAddr(0), &order).unwrap();
        assert_eq!(m.component_of(VirtAddr(0)), Some(2));
        m.access(0, VirtAddr(0), AccessKind::Read);
        m.access(0, VirtAddr(0), AccessKind::Read);
        let ratios = m.hmc_hit_ratios();
        let pm0 = ratios.iter().find(|&&(c, _)| c == 2).unwrap();
        assert!(pm0.1 > 0.0, "second access hits the DRAM cache");
    }
}
