//! DAMON (Linux's Data Access MONitor): region-based profiling with a
//! bounded region count.
//!
//! DAMON starts from one region per VMA, samples one random page per
//! region per sampling interval (checking and clearing its accessed bit),
//! accumulates `nr_accesses` over an aggregation interval, then merges
//! adjacent regions whose counts are similar and — whenever fewer than
//! half the maximum regions remain — splits every region into two
//! *randomly sized* subregions. The paper (Sec. 3) pins DAMON's weakness
//! on exactly this ad-hoc splitting and the rigid one-sample-per-region
//! rule; this implementation follows the upstream behaviour so those
//! effects reproduce.

use tiersim::addr::{VaRange, VirtAddr, PAGE_SIZE_4K};
use tiersim::machine::Machine;
use tiersim::rng::SplitMix64;
use tiersim::sim::{MemoryManager, RegionStats};
use tiersim::tier::ComponentId;

/// One DAMON region.
#[derive(Clone, Copy, Debug)]
pub struct DamonRegion {
    /// Covered virtual range.
    pub range: VaRange,
    /// Accesses observed in the current aggregation window.
    pub nr_accesses: u32,
    /// Result of the last completed aggregation window.
    pub last_nr: u32,
    /// Current sample page.
    sample: VirtAddr,
}

/// DAMON configuration.
#[derive(Clone, Copy, Debug)]
pub struct DamonConfig {
    /// Sampling checks per profiling interval (upstream: aggregation /
    /// sampling interval, default 100 ms / 5 ms = 20).
    pub checks_per_interval: u32,
    /// Lower bound on the region count.
    pub min_regions: usize,
    /// Upper bound on the region count (the overhead knob).
    pub max_regions: usize,
    /// Merge regions whose `nr_accesses` differ by at most this.
    pub merge_threshold: u32,
}

impl Default for DamonConfig {
    fn default() -> DamonConfig {
        DamonConfig { checks_per_interval: 20, min_regions: 10, max_regions: 1000, merge_threshold: 1 }
    }
}

/// The DAMON profiler (profiling only — the paper uses it to judge
/// profiling quality, not as a migration system).
pub struct Damon {
    cfg: DamonConfig,
    regions: Vec<DamonRegion>,
    rng: SplitMix64,
    intervals: u64,
    merged_total: u64,
    split_total: u64,
    region_sum: u64,
}

impl Damon {
    /// Creates a DAMON instance.
    pub fn new(cfg: DamonConfig) -> Damon {
        Damon {
            cfg,
            regions: Vec::new(),
            rng: SplitMix64::new(0xDA40),
            intervals: 0,
            merged_total: 0,
            split_total: 0,
            region_sum: 0,
        }
    }

    /// The current regions.
    pub fn regions(&self) -> &[DamonRegion] {
        &self.regions
    }

    fn pick_sample(&mut self, range: VaRange) -> VirtAddr {
        let pages = range.pages_4k().max(1);
        VirtAddr(range.start.page_4k().0 + self.rng.below(pages) * PAGE_SIZE_4K)
    }

    /// One sampling check: scan each region's sample page, count, and
    /// pick (and reset) the next sample.
    pub fn check(&mut self, m: &mut Machine) {
        for i in 0..self.regions.len() {
            let sample = self.regions[i].sample;
            if let Some((accessed, _)) = m.scan_page(sample) {
                if accessed {
                    self.regions[i].nr_accesses += 1;
                }
            }
            let range = self.regions[i].range;
            let next = self.pick_sample(range);
            // Clear the new sample's stale accessed bit (one more scan).
            let _ = m.scan_page(next);
            self.regions[i].sample = next;
        }
    }

    /// Aggregation: merge similar neighbours, then split ad hoc while the
    /// region count is below half the maximum.
    pub fn aggregate(&mut self) {
        self.intervals += 1;
        for r in &mut self.regions {
            r.last_nr = r.nr_accesses;
        }
        // Merge pass.
        let mut merged: Vec<DamonRegion> = Vec::with_capacity(self.regions.len());
        let total_before = self.regions.len();
        let mut removed = 0usize;
        for r in self.regions.drain(..) {
            match merged.last_mut() {
                Some(prev)
                    if prev.range.end == r.range.start
                        && prev.nr_accesses.abs_diff(r.nr_accesses) <= self.cfg.merge_threshold
                        && total_before - removed > self.cfg.min_regions =>
                {
                    prev.range = VaRange::new(prev.range.start, r.range.end);
                    prev.nr_accesses = (prev.nr_accesses + r.nr_accesses) / 2;
                    prev.last_nr = (prev.last_nr + r.last_nr) / 2;
                    self.merged_total += 1;
                    removed += 1;
                }
                _ => merged.push(r),
            }
        }
        self.regions = merged;
        // Ad-hoc split pass: each region into two randomly sized parts.
        if self.regions.len() < self.cfg.max_regions / 2 {
            let mut out = Vec::with_capacity(self.regions.len() * 2);
            for r in self.regions.drain(..) {
                let pages = r.range.pages_4k();
                if pages < 2 || out.len() + 2 > self.cfg.max_regions {
                    out.push(r);
                    continue;
                }
                // Random split point (upstream picks uniformly).
                let cut = 1 + self.rng.below(pages - 1);
                let mid = VirtAddr(r.range.start.page_4k().0 + cut * PAGE_SIZE_4K);
                let mut left = r;
                left.range = VaRange::new(r.range.start, mid);
                let mut right = r;
                right.range = VaRange::new(mid, r.range.end);
                left.sample = left.range.start;
                right.sample = right.range.start;
                out.push(left);
                out.push(right);
                self.split_total += 1;
            }
            self.regions = out;
        }
        for r in &mut self.regions {
            r.nr_accesses = 0;
        }
        self.region_sum += self.regions.len() as u64;
    }

    /// Regions whose last aggregation saw at least `threshold` accesses.
    pub fn hot_ranges_above(&self, threshold: u32) -> Vec<VaRange> {
        self.regions.iter().filter(|r| r.last_nr >= threshold).map(|r| r.range).collect()
    }
}

impl MemoryManager for Damon {
    fn name(&self) -> String {
        "DAMON".into()
    }

    fn init(&mut self, m: &mut Machine) {
        // One initial region per VMA (the coarse VMA-tree start the paper
        // criticizes in Fig. 6).
        self.regions = m
            .page_table()
            .vmas()
            .iter()
            .map(|v| DamonRegion {
                range: v.range,
                nr_accesses: 0,
                last_nr: 0,
                sample: v.range.start,
            })
            .collect();
        for i in 0..self.regions.len() {
            let range = self.regions[i].range;
            self.regions[i].sample = self.pick_sample(range);
        }
    }

    fn placement(&mut self, m: &Machine, tid: usize, _va: VirtAddr) -> Vec<ComponentId> {
        m.topology().view(m.node_of(tid)).to_vec()
    }

    fn sub_intervals(&self) -> u32 {
        self.cfg.checks_per_interval
    }

    fn on_subinterval(&mut self, m: &mut Machine, _interval: u64, _k: u32) {
        self.check(m);
    }

    fn on_interval(&mut self, _m: &mut Machine, _interval: u64) {
        self.aggregate();
    }

    fn region_stats(&self) -> Option<RegionStats> {
        let n = self.intervals.max(1) as f64;
        Some(RegionStats {
            intervals: self.intervals,
            avg_merged: self.merged_total as f64 / n,
            avg_split: self.split_total as f64 / n,
            avg_regions: self.region_sum as f64 / n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim::addr::PAGE_SIZE_2M;
    use tiersim::machine::{AccessKind, MachineConfig};
    use tiersim::tier::tiny_two_tier;

    fn machine() -> Machine {
        let mut m =
            Machine::new(MachineConfig::new(tiny_two_tier(64 * PAGE_SIZE_2M, 64 * PAGE_SIZE_2M), 1));
        let r = VaRange::from_len(VirtAddr(0), 8 * PAGE_SIZE_2M);
        m.mmap("a", r, false);
        m.prefault_range(r, &[0]).unwrap();
        m
    }

    #[test]
    fn starts_with_one_region_per_vma() {
        let mut m = machine();
        let mut d = Damon::new(DamonConfig::default());
        d.init(&mut m);
        assert_eq!(d.regions().len(), 1);
        assert_eq!(d.regions()[0].range.len(), 8 * PAGE_SIZE_2M);
    }

    #[test]
    fn splitting_grows_region_count_toward_max() {
        let mut m = machine();
        let mut d = Damon::new(DamonConfig { max_regions: 64, ..Default::default() });
        d.init(&mut m);
        for _ in 0..8 {
            d.aggregate();
        }
        // With no accesses every region looks alike: merging pulls the
        // count toward `min_regions`, splitting doubles it back — the
        // oscillation stays within the configured bounds.
        assert!(d.regions().len() >= 10, "regions = {}", d.regions().len());
        assert!(d.regions().len() <= 64);
        assert!(d.region_stats().unwrap().avg_split > 0.0);
        // Regions stay sorted and disjoint.
        for w in d.regions().windows(2) {
            assert!(w[0].range.end <= w[1].range.start);
        }
    }

    #[test]
    fn hot_region_accumulates_accesses() {
        let mut m = machine();
        let mut d = Damon::new(DamonConfig { max_regions: 16, ..Default::default() });
        d.init(&mut m);
        for _ in 0..6 {
            for _check in 0..d.cfg.checks_per_interval {
                // Touch every page before every check: any sample hits.
                for page in VaRange::from_len(VirtAddr(0), 8 * PAGE_SIZE_2M).iter_pages_4k() {
                    m.access(0, page, AccessKind::Read);
                }
                d.check(&mut m);
            }
            d.aggregate();
        }
        let hot = d.hot_ranges_above(d.cfg.checks_per_interval / 2);
        let hot_bytes: u64 = hot.iter().map(|r| r.len()).sum();
        assert!(hot_bytes >= 7 * PAGE_SIZE_2M, "most of the space detected hot");
    }

    #[test]
    fn merge_respects_min_regions() {
        let mut m = machine();
        let mut d = Damon::new(DamonConfig { min_regions: 4, max_regions: 8, ..Default::default() });
        d.init(&mut m);
        for _ in 0..10 {
            d.aggregate();
        }
        assert!(d.regions().len() >= 4);
    }
}
