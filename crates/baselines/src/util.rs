//! Shared helpers for baseline managers.

use tiersim::addr::{VaRange, VirtAddr, PAGE_SIZE_2M};
use tiersim::machine::Machine;
use tiersim::tier::{ComponentId, NodeId};

/// All 2 MB-aligned chunks covering the registered VMAs, in address order.
pub fn vma_chunks(m: &Machine) -> Vec<VaRange> {
    let mut out = Vec::new();
    for vma in m.page_table().vmas() {
        let mut start = vma.range.start.page_2m();
        while start < vma.range.end {
            let end = VirtAddr((start.0 + PAGE_SIZE_2M).min(vma.range.end.0));
            out.push(VaRange::new(start.max(vma.range.start), end));
            start = VirtAddr(start.0 + PAGE_SIZE_2M);
        }
    }
    out
}

/// Total bytes covered by the registered VMAs.
pub fn vma_bytes(m: &Machine) -> u64 {
    m.page_table().vmas().iter().map(|v| v.range.len()).sum()
}

/// The same-socket DRAM component fronting `component` (promotion target
/// for one-step tier-by-tier policies), or the node-local DRAM when the
/// page is already in a DRAM.
pub fn one_step_up(m: &Machine, component: ComponentId, node: NodeId) -> Option<ComponentId> {
    let topo = m.topology();
    let rank = topo.tier_rank(node, component);
    if rank == 0 {
        return None;
    }
    match topo.components[component as usize].kind {
        tiersim::tier::MemKind::Pm => {
            // Prefer the same-socket DRAM (the single-socket swap Linux
            // tiering performs), falling back to one rank up.
            let home = topo.components[component as usize].home_node;
            topo.dram_components()
                .into_iter()
                .find(|&d| topo.components[d as usize].home_node == home)
                .or_else(|| Some(topo.component_at_rank(node, rank - 1)))
        }
        tiersim::tier::MemKind::Dram => Some(topo.component_at_rank(node, rank - 1)),
    }
}

/// The next tier down from `component` (demotion target), preferring the
/// same-socket PM.
pub fn one_step_down(m: &Machine, component: ComponentId, node: NodeId) -> Option<ComponentId> {
    let topo = m.topology();
    let rank = topo.tier_rank(node, component);
    if rank + 1 >= topo.num_components() {
        return None;
    }
    match topo.components[component as usize].kind {
        tiersim::tier::MemKind::Dram => {
            let home = topo.components[component as usize].home_node;
            topo.pm_components()
                .into_iter()
                .find(|&p| topo.components[p as usize].home_node == home)
                .or_else(|| Some(topo.component_at_rank(node, rank + 1)))
        }
        tiersim::tier::MemKind::Pm => Some(topo.component_at_rank(node, rank + 1)),
    }
}

/// Migrates `range` to `dst` synchronously, charging the full cost, and
/// returns the bytes moved (0 on failure — destination full, empty
/// range, or a transient fault that outlived the retry budget), as Linux
/// `migrate_pages()`-based baselines do. Transient failures are retried
/// with bounded exponential backoff, the backoff landing on the critical
/// path exactly like the failed `migrate_pages()` calls it models.
pub fn migrate_sync(m: &mut Machine, range: VaRange, dst: ComponentId, node: NodeId) -> u64 {
    let (res, report) = tiersim::migrate::relocate_with_retry(
        m,
        range,
        dst,
        node,
        1,
        false,
        tiersim::migrate::RetryPolicy::default(),
    );
    if report.backoff_ns > 0.0 {
        m.charge_migration(report.backoff_ns);
    }
    match res {
        Ok(out) => {
            m.charge_migration(out.breakdown.total_ns());
            out.bytes
        }
        Err(e) => {
            if e.is_transient() {
                m.obs_mut().reg.counter_add(obs::names::MIGRATIONS_DROPPED_TRANSIENT, 1);
            }
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim::machine::MachineConfig;
    use tiersim::tier::optane_four_tier;

    fn machine() -> Machine {
        let mut m = Machine::new(MachineConfig::new(optane_four_tier(1 << 12), 2));
        m.mmap("a", VaRange::from_len(VirtAddr(0), 3 * PAGE_SIZE_2M), false);
        m.mmap("b", VaRange::from_len(VirtAddr(64 * PAGE_SIZE_2M), PAGE_SIZE_2M / 2), false);
        m
    }

    #[test]
    fn chunks_cover_vmas() {
        let m = machine();
        let chunks = vma_chunks(&m);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0].len(), PAGE_SIZE_2M);
        assert_eq!(chunks[3].len(), PAGE_SIZE_2M / 2, "partial tail chunk");
        assert_eq!(vma_bytes(&m), 3 * PAGE_SIZE_2M + PAGE_SIZE_2M / 2);
    }

    #[test]
    fn step_up_prefers_same_socket() {
        let m = machine();
        // PM0 (component 2, home 0) steps up to DRAM0 (component 0).
        assert_eq!(one_step_up(&m, 2, 0), Some(0));
        // PM1 (component 3, home 1) steps up to DRAM1 even from node 0.
        assert_eq!(one_step_up(&m, 3, 0), Some(1));
        // Remote DRAM steps to local DRAM.
        assert_eq!(one_step_up(&m, 1, 0), Some(0));
        // Fastest tier has no up.
        assert_eq!(one_step_up(&m, 0, 0), None);
    }

    #[test]
    fn step_down_prefers_same_socket() {
        let m = machine();
        assert_eq!(one_step_down(&m, 0, 0), Some(2), "DRAM0 demotes to PM0");
        assert_eq!(one_step_down(&m, 1, 0), Some(3), "DRAM1 demotes to PM1");
        assert_eq!(one_step_down(&m, 2, 0), Some(3), "PM0 demotes to the last rank");
        assert_eq!(one_step_down(&m, 3, 0), None, "bottom tier has no down");
    }
}
