//! HeMem (SOSP '21): PEBS-only tiered memory management for two tiers.
//!
//! HeMem samples memory accesses with performance counters alone (no PTE
//! scans), accumulates per-page sample counts with periodic cooling, and
//! promotes pages whose count crosses a hot threshold into local DRAM,
//! demoting cold pages under memory pressure. It understands exactly two
//! tiers — local DRAM and local PM — which is why it cannot exploit the
//! remote tiers of a four-tier machine (Sec. 2.2, 9.6). Run it on a
//! machine whose PEBS monitors *all* components ([`hemem_pebs_config`]),
//! matching its use of both DRAM and NVM read events.

use std::collections::BTreeMap;

use tiersim::addr::{VaRange, VirtAddr, PAGE_SIZE_2M, PAGE_SIZE_4K};
use tiersim::machine::Machine;
use tiersim::pebs::PebsConfig;
use tiersim::sim::MemoryManager;
use tiersim::tier::{ComponentId, Topology};

use crate::util::migrate_sync;

/// PEBS programming for HeMem: sample every component (DRAM + PM events).
pub fn hemem_pebs_config(topology: &Topology) -> PebsConfig {
    PebsConfig::with_components((0..topology.num_components() as u16).collect())
}

/// The HeMem baseline.
pub struct HeMem {
    /// Sample counts per 4 KB page (cooled periodically).
    counts: BTreeMap<u64, u32>,
    /// Promotion threshold in samples per interval window.
    hot_threshold: u32,
    /// Cool (halve) counts every this many intervals.
    cool_every: u64,
    /// DRAM fill watermark: demote when utilization exceeds this.
    watermark: f64,
    promote_budget: u64,
    dram: ComponentId,
    pm: ComponentId,
    hot_bytes_sum: u64,
    intervals: u64,
}

impl HeMem {
    /// Creates a HeMem manager for the local tiers of node 0.
    pub fn new(promote_budget: u64) -> HeMem {
        HeMem {
            counts: BTreeMap::new(),
            hot_threshold: 2,
            cool_every: 4,
            watermark: 0.95,
            promote_budget,
            dram: 0,
            pm: 1,
            hot_bytes_sum: 0,
            intervals: 0,
        }
    }
}

impl MemoryManager for HeMem {
    fn name(&self) -> String {
        "HeMem".into()
    }

    fn init(&mut self, m: &mut Machine) {
        // The two tiers HeMem manages: node 0's local DRAM and local PM.
        let topo = m.topology();
        self.dram = topo
            .dram_components()
            .into_iter()
            .find(|&c| topo.components[c as usize].home_node == 0)
            .expect("a local DRAM exists");
        self.pm = topo
            .pm_components()
            .into_iter()
            .find(|&c| topo.components[c as usize].home_node == 0)
            .unwrap_or(self.dram);
    }

    fn placement(&mut self, m: &Machine, _tid: usize, _va: VirtAddr) -> Vec<ComponentId> {
        // HeMem allocates DRAM until it runs out, then PM; remaining
        // components only as a last resort (it does not know about them).
        let mut order = vec![self.dram, self.pm];
        for c in 0..m.topology().num_components() as u16 {
            if c != self.dram && c != self.pm {
                order.push(c);
            }
        }
        order
    }

    fn on_interval(&mut self, m: &mut Machine, interval: u64) {
        self.intervals += 1;
        // Consume the full PEBS stream (HeMem's only signal).
        for s in m.drain_pebs() {
            *self.counts.entry(s.va.page_4k().0).or_insert(0) += 1;
        }
        // Identify hot pages.
        let mut hot: Vec<u64> = self
            .counts
            .iter()
            .filter(|&(_, &c)| c >= self.hot_threshold)
            .map(|(&p, _)| p)
            .collect();
        hot.sort_unstable();
        self.hot_bytes_sum += hot.len() as u64 * PAGE_SIZE_4K;

        // Promote hot pages resident in PM into DRAM, rate-limited.
        let mut budget = self.promote_budget;
        let (mut promoted_bytes, mut promotions) = (0u64, 0u64);
        let (mut demoted_bytes, mut demotions) = (0u64, 0u64);
        for page in hot {
            if budget < PAGE_SIZE_4K {
                break;
            }
            let va = VirtAddr(page);
            if m.component_of(va) != Some(self.pm) {
                continue;
            }
            if m.allocator(self.dram).free() < PAGE_SIZE_2M {
                // Under pressure: demote the coldest known DRAM pages.
                let mut coldest: Vec<(u32, u64)> = self
                    .counts
                    .iter()
                    .filter(|&(&p, _)| m.component_of(VirtAddr(p)) == Some(self.dram))
                    .map(|(&p, &c)| (c, p))
                    .collect();
                coldest.sort_unstable();
                let mut freed = 0u64;
                for &(_, p) in coldest.iter().take(256) {
                    let moved =
                        migrate_sync(m, VaRange::from_len(VirtAddr(p), PAGE_SIZE_4K), self.pm, 0);
                    if moved > 0 {
                        demoted_bytes += moved;
                        demotions += 1;
                    }
                    freed += moved;
                    if freed >= 64 * PAGE_SIZE_4K {
                        break;
                    }
                }
                if m.allocator(self.dram).free() < PAGE_SIZE_4K {
                    break;
                }
            }
            let moved = migrate_sync(m, VaRange::from_len(va, PAGE_SIZE_4K), self.dram, 0);
            if moved > 0 {
                promoted_bytes += moved;
                promotions += 1;
            }
            budget = budget.saturating_sub(moved.max(PAGE_SIZE_4K));
        }

        // Watermark-driven background demotion of never-sampled pressure.
        if m.allocator(self.dram).utilization() > self.watermark {
            let mut coldest: Vec<(u32, u64)> = self
                .counts
                .iter()
                .filter(|&(&p, _)| m.component_of(VirtAddr(p)) == Some(self.dram))
                .map(|(&p, &c)| (c, p))
                .collect();
            coldest.sort_unstable();
            for &(_, p) in coldest.iter().take(64) {
                let moved = migrate_sync(m, VaRange::from_len(VirtAddr(p), PAGE_SIZE_4K), self.pm, 0);
                if moved > 0 {
                    demoted_bytes += moved;
                    demotions += 1;
                }
            }
        }
        if promotions > 0 {
            m.obs_mut().reg.counter_add(obs::names::PROMOTIONS, promotions);
            m.obs_mut().reg.counter_add(obs::names::PROMOTED_BYTES, promoted_bytes);
            m.record_event(obs::EventKind::Promotion {
                bytes: promoted_bytes,
                src: self.pm,
                dst: self.dram,
            });
        }
        if demotions > 0 {
            m.obs_mut().reg.counter_add(obs::names::DEMOTIONS, demotions);
            m.obs_mut().reg.counter_add(obs::names::DEMOTED_BYTES, demoted_bytes);
            m.record_event(obs::EventKind::Demotion {
                bytes: demoted_bytes,
                src: self.dram,
                dst: self.pm,
            });
        }

        // Cooling.
        if interval % self.cool_every == self.cool_every - 1 {
            self.counts.retain(|_, c| {
                *c /= 2;
                *c > 0
            });
        }
    }

    fn hot_bytes_identified(&self) -> u64 {
        self.hot_bytes_sum / self.intervals.max(1)
    }

    fn metadata_bytes(&self) -> u64 {
        self.counts.len() as u64 * 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim::machine::{AccessKind, MachineConfig};
    use tiersim::tier::two_tier;

    fn machine() -> Machine {
        let topo = two_tier(1 << 12);
        let mut cfg = MachineConfig::new(topo.clone(), 1);
        cfg.pebs = hemem_pebs_config(&topo);
        cfg.pebs.period = 8; // Denser sampling for a small test.
        cfg.interval_ns = 1.0e6;
        let mut m = Machine::new(cfg);
        let r = VaRange::from_len(VirtAddr(0), 8 * PAGE_SIZE_2M);
        m.mmap("a", r, false);
        m.prefault_range(r, &[1]).unwrap(); // All pages start in PM.
        m
    }

    #[test]
    fn pebs_hot_pages_promote_to_dram() {
        let mut m = machine();
        let mut h = HeMem::new(4 * PAGE_SIZE_2M);
        h.init(&mut m);
        // Hammer one page hard enough to cross the sample threshold.
        for _ in 0..64 {
            m.access(0, VirtAddr(0x5000), AccessKind::Read);
        }
        h.on_interval(&mut m, 0);
        assert_eq!(m.component_of(VirtAddr(0x5000)), Some(0), "hot page promoted");
        assert!(h.hot_bytes_identified() > 0);
    }

    #[test]
    fn cooling_decays_counts() {
        let mut m = machine();
        let mut h = HeMem::new(PAGE_SIZE_2M);
        h.init(&mut m);
        h.counts.insert(0x1000, 8);
        h.cool_every = 1;
        h.on_interval(&mut m, 0);
        assert_eq!(h.counts.get(&0x1000), Some(&4));
    }

    #[test]
    fn unsampled_pages_stay_put() {
        let mut m = machine();
        let mut h = HeMem::new(PAGE_SIZE_2M);
        h.init(&mut m);
        h.on_interval(&mut m, 0);
        assert_eq!(m.component_of(VirtAddr(0)), Some(1), "no samples, no movement");
    }
}
