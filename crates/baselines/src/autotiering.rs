//! AutoTiering (ATC '21): flexible cross-tier migration with random
//! sampling and opportunistic promotion/demotion.
//!
//! Each interval AutoTiering randomly selects a window of the address
//! space (256 MB in the paper, scaled here to the same profiling-overhead
//! envelope) and scans its PTE accessed bits. Pages found accessed are
//! promoted *opportunistically*: to the fastest tier that happens to have
//! free space — there is no hotness ranking, which is exactly the weakness
//! the paper measures (Sec. 9.1: "random sampling and opportunistic
//! demotion, failing to effectively identify pages for migration"). Under
//! pressure it demotes randomly chosen resident chunks.

use tiersim::addr::{VaRange, VirtAddr, PAGE_SIZE_4K};
use tiersim::machine::Machine;
use tiersim::rng::SplitMix64;
use tiersim::sim::MemoryManager;
use tiersim::tier::ComponentId;

use crate::util::{migrate_sync, one_step_down, vma_chunks};

/// The AutoTiering baseline.
pub struct AutoTiering {
    chunks: Vec<VaRange>,
    promote_budget: u64,
    rng: SplitMix64,
    hot_bytes_sum: u64,
    intervals: u64,
    last_hot: Vec<VirtAddr>,
}

impl AutoTiering {
    /// Creates an AutoTiering manager with MTM's promotion rate limit.
    pub fn new(promote_budget: u64) -> AutoTiering {
        AutoTiering {
            chunks: Vec::new(),
            promote_budget,
            rng: SplitMix64::new(0xA070),
            hot_bytes_sum: 0,
            intervals: 0,
            last_hot: Vec::new(),
        }
    }

    /// Pages classified hot in the last interval (Fig. 1 probes).
    pub fn hot_ranges(&self) -> Vec<VaRange> {
        self.last_hot.iter().map(|&p| VaRange::from_len(p, PAGE_SIZE_4K)).collect()
    }

    /// Pages scanned per interval under the common ~5 % overhead envelope.
    fn scan_pages_per_interval(&self, m: &Machine) -> u64 {
        ((m.cfg.interval_ns * 0.05) / m.cfg.costs.one_scan_ns) as u64
    }
}

impl MemoryManager for AutoTiering {
    fn name(&self) -> String {
        "AutoTiering".into()
    }

    fn init(&mut self, m: &mut Machine) {
        self.chunks = vma_chunks(m);
    }

    fn placement(&mut self, m: &Machine, tid: usize, _va: VirtAddr) -> Vec<ComponentId> {
        m.topology().view(m.node_of(tid)).to_vec()
    }

    fn on_interval(&mut self, m: &mut Machine, _interval: u64) {
        self.intervals += 1;
        if self.chunks.is_empty() {
            return;
        }
        // Randomly sample a contiguous window of chunks and scan them.
        let mut to_scan = self.scan_pages_per_interval(m);
        let mut hot_pages: Vec<VirtAddr> = Vec::new();
        let mut chunk_i = self.rng.below(self.chunks.len() as u64) as usize;
        while to_scan > 0 {
            let chunk = self.chunks[chunk_i % self.chunks.len()];
            chunk_i += 1;
            for page in chunk.iter_pages_4k() {
                if to_scan == 0 {
                    break;
                }
                if let Some((accessed, _)) = m.scan_page(page) {
                    to_scan -= 1;
                    if accessed {
                        hot_pages.push(page);
                    }
                }
            }
        }
        self.hot_bytes_sum += hot_pages.len() as u64 * PAGE_SIZE_4K;
        self.last_hot = hot_pages.clone();

        // Coalesce contiguous hot pages into ranges: AutoTiering migrates
        // at page granularity, but batching contiguous pages into one
        // migration call is how any real implementation amortizes the
        // per-invocation cost.
        let mut runs: Vec<VaRange> = Vec::new();
        for &page in &hot_pages {
            match runs.last_mut() {
                Some(r) if r.end == page => r.end = VirtAddr(page.0 + PAGE_SIZE_4K),
                _ => runs.push(VaRange::from_len(page, PAGE_SIZE_4K)),
            }
        }

        // Opportunistic promotion: the fastest tier with space right now.
        let topo = m.topology().clone();
        let mut budget = self.promote_budget;
        for run in runs {
            if budget < PAGE_SIZE_4K {
                break;
            }
            let Some(cur) = m.component_of(run.start) else { continue };
            let node = 0; // AutoTiering keeps a single distance table.
            let cur_rank = topo.tier_rank(node, cur);
            let mut dest = None;
            for rank in 0..cur_rank {
                let c = topo.component_at_rank(node, rank);
                if m.allocator(c).free() >= run.len() {
                    dest = Some(c);
                    break;
                }
            }
            let Some(dest) = dest else {
                // Opportunistic demotion: push a random chunk out of the
                // fastest tier and retry next interval.
                let fast = topo.component_at_rank(node, 0);
                let start = self.rng.below(self.chunks.len() as u64) as usize;
                for off in 0..self.chunks.len() {
                    let chunk = self.chunks[(start + off) % self.chunks.len()];
                    if m.component_of(chunk.start) == Some(fast) {
                        if let Some(down) = one_step_down(m, fast, node) {
                            migrate_sync(m, chunk, down, node);
                        }
                        break;
                    }
                }
                continue;
            };
            // Truncate the run to the remaining rate-limit budget.
            let take = VaRange::from_len(run.start, run.len().min(budget & !(PAGE_SIZE_4K - 1)));
            if take.is_empty() {
                break;
            }
            let moved = migrate_sync(m, take, dest, node);
            budget = budget.saturating_sub(moved.max(PAGE_SIZE_4K));
        }
    }

    fn hot_bytes_identified(&self) -> u64 {
        self.hot_bytes_sum / self.intervals.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim::addr::PAGE_SIZE_2M;
    use tiersim::machine::{AccessKind, MachineConfig};
    use tiersim::tier::optane_four_tier;

    fn machine() -> Machine {
        let mut cfg = MachineConfig::new(optane_four_tier(1 << 12), 2);
        cfg.interval_ns = 1.0e6;
        let mut m = Machine::new(cfg);
        let r = VaRange::from_len(VirtAddr(0), 8 * PAGE_SIZE_2M);
        m.mmap("a", r, false);
        m.prefault_range(r, &[2]).unwrap();
        m
    }

    #[test]
    fn scans_sampled_window_and_promotes_accessed() {
        let mut m = machine();
        let mut at = AutoTiering::new(4 * PAGE_SIZE_2M);
        at.init(&mut m);
        // Touch every page so whatever window is sampled sees accesses.
        for chunk in at.chunks.clone() {
            for page in chunk.iter_pages_4k() {
                m.access(0, page, AccessKind::Read);
            }
        }
        at.on_interval(&mut m, 0);
        assert!(m.stats().pte_scans > 0);
        assert!(at.hot_bytes_identified() > 0);
        assert!(m.stats().pages_migrated > 0, "accessed pages were promoted");
        // Promotions land in the fastest tier (it has plenty of room).
        assert!(m.allocator(0).used() > 0);
    }

    #[test]
    fn respects_promotion_budget() {
        let mut m = machine();
        let budget = 16 * PAGE_SIZE_4K;
        let mut at = AutoTiering::new(budget);
        at.init(&mut m);
        for chunk in at.chunks.clone() {
            for page in chunk.iter_pages_4k() {
                m.access(0, page, AccessKind::Write);
            }
        }
        at.on_interval(&mut m, 0);
        assert!(m.stats().bytes_migrated <= budget + PAGE_SIZE_4K);
    }
}
