//! Tiered-AutoNUMA: Linux NUMA-balancing-based memory tiering.
//!
//! Profiling is hint-fault driven: each interval a window of pages is
//! poisoned (`PROT_NONE`-style NUMA hints); pages that fault were
//! recently accessed. The *vanilla* variant requires a page to fault in
//! two separate intervals before it is promotion-eligible (Linux's
//! two-pass rule) and migrates strictly tier-by-tier with a same-socket
//! preference. The *patched* variant adds the two upstream patches the
//! paper evaluates: hot-page selection by hint-fault latency and automatic
//! hot-threshold adjustment to match the promotion rate limit.

use std::collections::BTreeMap;

use tiersim::addr::{VaRange, VirtAddr, PAGE_SIZE_4K};
use tiersim::machine::Machine;
use tiersim::sim::MemoryManager;
use tiersim::tier::ComponentId;

use crate::util::{migrate_sync, one_step_down, one_step_up, vma_chunks};

/// The tiered-AutoNUMA baseline (vanilla or patched).
pub struct AutoNuma {
    patched: bool,
    chunks: Vec<VaRange>,
    cursor_chunk: usize,
    cursor_page: u64,
    /// Patched: promote pages whose hint-fault latency is below this.
    hot_threshold_ns: f64,
    /// Promotion rate limit in bytes per interval (matched to MTM's).
    promote_budget: u64,
    /// Fault history: page -> intervals in which it faulted (vanilla's
    /// two-pass rule) and the interval of the last fault.
    fault_count: BTreeMap<u64, u32>,
    chunk_last_fault: BTreeMap<u64, u64>,
    hot_bytes_sum: u64,
    intervals: u64,
}

impl AutoNuma {
    /// Creates the vanilla variant.
    pub fn vanilla(promote_budget: u64) -> AutoNuma {
        AutoNuma::new(false, promote_budget)
    }

    /// Creates the patched variant (hot-page selection + auto threshold).
    pub fn patched(promote_budget: u64) -> AutoNuma {
        AutoNuma::new(true, promote_budget)
    }

    fn new(patched: bool, promote_budget: u64) -> AutoNuma {
        AutoNuma {
            patched,
            chunks: Vec::new(),
            cursor_chunk: 0,
            cursor_page: 0,
            hot_threshold_ns: f64::INFINITY,
            promote_budget,
            fault_count: BTreeMap::new(),
            chunk_last_fault: BTreeMap::new(),
            hot_bytes_sum: 0,
            intervals: 0,
        }
    }

    /// Number of pages to poison per interval so the profiling overhead
    /// tracks the same ~5 % constraint the other systems run under.
    fn scan_pages_per_interval(&self, m: &Machine) -> u64 {
        let per_page = m.cfg.costs.one_scan_ns + m.cfg.costs.hint_fault_ns();
        ((m.cfg.interval_ns * 0.05) / per_page) as u64
    }

    fn poison_window(&mut self, m: &mut Machine) {
        if self.chunks.is_empty() {
            return;
        }
        // A page-granular cursor sweeps the whole address space across
        // intervals, as Linux's task scan pointer does.
        let mut left = self.scan_pages_per_interval(m);
        let total_pages: u64 = self.chunks.iter().map(|c| c.pages_4k()).sum();
        let mut guard = total_pages.saturating_mul(2);
        while left > 0 && guard > 0 {
            guard -= 1;
            let chunk = self.chunks[self.cursor_chunk % self.chunks.len()];
            let pages = chunk.pages_4k();
            if self.cursor_page >= pages {
                self.cursor_chunk = (self.cursor_chunk + 1) % self.chunks.len();
                self.cursor_page = 0;
                continue;
            }
            let page = VirtAddr(chunk.start.page_4k().0 + self.cursor_page * PAGE_SIZE_4K);
            self.cursor_page += 1;
            if m.poison_page(page) {
                left -= 1;
            }
        }
    }

    fn demote_cold_chunk(&mut self, m: &mut Machine, from: ComponentId, node: u16, interval: u64) -> bool {
        // The coldest chunk resident on `from`: oldest (or absent) fault.
        let mut best: Option<(u64, VaRange)> = None;
        for &chunk in &self.chunks {
            if m.component_of(chunk.start) != Some(from) {
                continue;
            }
            let last = self.chunk_last_fault.get(&chunk.start.0).copied().unwrap_or(0);
            if last + 2 > interval {
                continue; // Recently faulted; keep.
            }
            if best.map(|(l, _)| last < l).unwrap_or(true) {
                best = Some((last, chunk));
            }
        }
        let Some((_, chunk)) = best else { return false };
        let Some(down) = one_step_down(m, from, node) else { return false };
        let moved = migrate_sync(m, chunk, down, node);
        if moved > 0 {
            m.obs_mut().reg.counter_add(obs::names::DEMOTIONS, 1);
            m.obs_mut().reg.counter_add(obs::names::DEMOTED_BYTES, moved);
            m.record_event(obs::EventKind::Demotion { bytes: moved, src: from, dst: down });
        }
        moved > 0
    }
}

impl MemoryManager for AutoNuma {
    fn name(&self) -> String {
        if self.patched { "Tiered-AutoNUMA".into() } else { "Vanilla Tiered-AutoNUMA".into() }
    }

    fn init(&mut self, m: &mut Machine) {
        self.chunks = vma_chunks(m);
        if self.patched {
            self.hot_threshold_ns = m.cfg.interval_ns;
        }
    }

    fn placement(&mut self, m: &Machine, tid: usize, _va: VirtAddr) -> Vec<ComponentId> {
        m.topology().view(m.node_of(tid)).to_vec()
    }

    fn on_interval(&mut self, m: &mut Machine, interval: u64) {
        self.intervals += 1;
        let faults = m.drain_hint_faults();
        // Classify candidates.
        let mut hot_pages: Vec<(VirtAddr, u16)> = Vec::new();
        for f in &faults {
            self.chunk_last_fault.insert(f.page.page_2m().0, interval);
            let count = self.fault_count.entry(f.page.0).or_insert(0);
            *count += 1;
            let eligible = if self.patched {
                f.latency_ns <= self.hot_threshold_ns
            } else {
                *count >= 2
            };
            if eligible {
                hot_pages.push((f.page, f.node));
            }
        }
        self.hot_bytes_sum += hot_pages.len() as u64 * PAGE_SIZE_4K;

        // Tier-by-tier promotion, same-socket preference, rate-limited.
        let mut budget = self.promote_budget;
        let mut promoted = 0u64;
        // Per (src, dst) pair: (pages, bytes), aggregated into one
        // telemetry event per pair per interval.
        let mut moves: std::collections::BTreeMap<(u16, u16), (u64, u64)> =
            std::collections::BTreeMap::new();
        for (page, node) in hot_pages {
            if budget < PAGE_SIZE_4K {
                break;
            }
            let Some(cur) = m.component_of(page) else { continue };
            let Some(dest) = one_step_up(m, cur, node) else { continue };
            let range = VaRange::from_len(page, PAGE_SIZE_4K);
            if m.allocator(dest).free() < PAGE_SIZE_4K
                && !self.demote_cold_chunk(m, dest, node, interval)
            {
                continue;
            }
            let moved = migrate_sync(m, range, dest, node);
            budget = budget.saturating_sub(moved.max(PAGE_SIZE_4K));
            promoted += moved;
            if moved > 0 {
                let e = moves.entry((cur, dest)).or_insert((0, 0));
                e.0 += 1;
                e.1 += moved;
            }
        }
        for (&(src, dst), &(pages, bytes)) in &moves {
            m.obs_mut().reg.counter_add(obs::names::PROMOTIONS, pages);
            m.obs_mut().reg.counter_add(obs::names::PROMOTED_BYTES, bytes);
            m.record_event(obs::EventKind::Promotion { bytes, src, dst });
        }
        // Patched: adjust the hot threshold to track the rate limit.
        if self.patched {
            if promoted >= self.promote_budget / 2 {
                self.hot_threshold_ns = (self.hot_threshold_ns * 0.8).max(m.cfg.costs.one_scan_ns);
            } else {
                self.hot_threshold_ns = (self.hot_threshold_ns * 1.25).min(10.0 * m.cfg.interval_ns);
            }
        }

        // Periodically forget stale fault history (Linux resets scan state).
        if interval % 16 == 15 {
            self.fault_count.clear();
        }
        self.poison_window(m);
    }

    fn hot_bytes_identified(&self) -> u64 {
        self.hot_bytes_sum / self.intervals.max(1)
    }

    fn metadata_bytes(&self) -> u64 {
        (self.fault_count.len() + self.chunk_last_fault.len()) as u64 * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim::addr::PAGE_SIZE_2M;
    use tiersim::machine::{AccessKind, MachineConfig};
    use tiersim::tier::optane_four_tier;

    fn machine() -> Machine {
        let mut cfg = MachineConfig::new(optane_four_tier(1 << 12), 2);
        cfg.interval_ns = 1.0e6;
        let mut m = Machine::new(cfg);
        let r = VaRange::from_len(VirtAddr(0), 8 * PAGE_SIZE_2M);
        m.mmap("a", r, false);
        m.prefault_range(r, &[2]).unwrap(); // Start in local PM.
        m
    }

    #[test]
    fn poisons_scan_window_each_interval() {
        let mut m = machine();
        let mut an = AutoNuma::patched(PAGE_SIZE_2M);
        an.init(&mut m);
        an.on_interval(&mut m, 0);
        let expected = an.scan_pages_per_interval(&m);
        assert!(expected > 0);
        // Poisoned pages sit in the hint unit awaiting faults.
        assert!(m.stats().pte_scans == 0);
        assert!(m.breakdown().profiling_ns > 0.0);
    }

    #[test]
    fn vanilla_requires_two_faults() {
        let mut m = machine();
        let mut an = AutoNuma::vanilla(64 * PAGE_SIZE_4K);
        an.init(&mut m);
        an.on_interval(&mut m, 0); // Poisons the first window.
        let page = VirtAddr(0);
        m.access(0, page, AccessKind::Read); // First fault.
        an.on_interval(&mut m, 1);
        assert_eq!(m.component_of(page), Some(2), "one fault is not enough");
        // Second interval: poison again (cursor wrapped far; poison directly).
        m.poison_page(page);
        m.access(0, page, AccessKind::Read); // Second fault.
        an.on_interval(&mut m, 2);
        assert_eq!(m.component_of(page), Some(0), "two faults promote one tier up");
    }

    #[test]
    fn patched_promotes_fast_faults_one_step() {
        let mut m = machine();
        let mut an = AutoNuma::patched(64 * PAGE_SIZE_4K);
        an.init(&mut m);
        let page = VirtAddr(5 * PAGE_SIZE_2M);
        m.poison_page(page);
        m.access(0, page, AccessKind::Read);
        an.on_interval(&mut m, 0);
        // PM0 -> DRAM0 (same socket), not directly influenced by ranks.
        assert_eq!(m.component_of(page), Some(0));
        assert!(an.hot_bytes_identified() > 0);
    }

    #[test]
    fn threshold_relaxes_when_underpromoting() {
        let mut m = machine();
        let mut an = AutoNuma::patched(PAGE_SIZE_2M);
        an.init(&mut m);
        let before = an.hot_threshold_ns;
        an.on_interval(&mut m, 0); // No faults, nothing promoted.
        assert!(an.hot_threshold_ns > before * 1.2, "threshold widened");
    }
}

