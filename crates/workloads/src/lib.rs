//! `mtm-workloads` — the six large-memory workloads of the MTM evaluation.
//!
//! Each workload implements [`tiersim::sim::Workload`], generating a
//! realistic access stream against the simulated machine (Table 2 of the
//! paper): GUPS (random updates with a hot set), a TPC-C-style in-memory
//! database (VoltDB surrogate), a YCSB-A row store (Cassandra surrogate),
//! BFS and SSSP over an R-MAT graph, and a TeraSort-style multi-phase sort
//! (Spark surrogate). Footprints are the paper's sizes divided by a
//! configurable scale; capacity *ratios* against the tier sizes are
//! preserved because the topology is scaled by the same factor.

pub mod bfs;
pub mod graph;
pub mod gups;
pub mod layout;
pub mod rng;
pub mod sssp;
pub mod terasort;
pub mod tpcc;
pub mod ycsb;

pub use bfs::{Bfs, BfsConfig};
pub use gups::{Gups, GupsConfig, HotsetMode};
pub use sssp::{Sssp, SsspConfig};
pub use terasort::{Terasort, TerasortConfig};
pub use tpcc::{Tpcc, TpccConfig};
pub use ycsb::{Ycsb, YcsbConfig};

use tiersim::sim::Workload;

/// A catalog entry describing one evaluation workload (Table 2).
#[derive(Clone, Debug)]
pub struct CatalogEntry {
    /// Workload name as the paper prints it.
    pub name: &'static str,
    /// Short description (Table 2's wording, abbreviated).
    pub description: &'static str,
    /// Paper-scale memory footprint in bytes.
    pub paper_bytes: u64,
    /// Read/write character as the paper reports it.
    pub rw: &'static str,
}

/// The paper's Table 2 inventory.
pub fn catalog() -> Vec<CatalogEntry> {
    vec![
        CatalogEntry {
            name: "GUPS",
            description: "random updates to memory locations",
            paper_bytes: 512 << 30,
            rw: "1:1",
        },
        CatalogEntry {
            name: "VoltDB",
            description: "in-memory database running TPC-C (5K warehouses)",
            paper_bytes: 300 << 30,
            rw: "1:1",
        },
        CatalogEntry {
            name: "Cassandra",
            description: "partitioned row store under YCSB workload A",
            paper_bytes: 400 << 30,
            rw: "1:1",
        },
        CatalogEntry {
            name: "BFS",
            description: "parallel graph traversal (0.9B nodes, 14B edges)",
            paper_bytes: 525 << 30,
            rw: "read-only",
        },
        CatalogEntry {
            name: "SSSP",
            description: "shortest path search (0.9B nodes, 14B edges)",
            paper_bytes: 525 << 30,
            rw: "read-only",
        },
        CatalogEntry {
            name: "Spark",
            description: "TeraSort benchmark",
            paper_bytes: 350 << 30,
            rw: "1:1",
        },
    ]
}

/// Builds one of the six paper workloads by name, scaled by `scale`.
///
/// Names match the paper: `GUPS`, `VoltDB`, `Cassandra`, `BFS`, `SSSP`,
/// `Spark`. Returns `None` for an unknown name.
pub fn build_paper_workload(name: &str, scale: u64, threads: usize) -> Option<Box<dyn Workload>> {
    build_paper_workload_seeded(name, scale, threads, 0)
}

/// [`build_paper_workload`] with the access-stream seed XORed by `salt`,
/// so co-scheduled tenants running the *same* named workload still issue
/// distinct deterministic access streams. A salt of `0` reproduces the
/// unsalted builder exactly. Graph-topology seeds (the BFS/SSSP R-MAT
/// generators) are deliberately left unsalted: tenants share the graph
/// *shape* (and its construction cache) while traversing it from
/// different seeds — only the access stream must differ per tenant.
pub fn build_paper_workload_seeded(
    name: &str,
    scale: u64,
    threads: usize,
    salt: u64,
) -> Option<Box<dyn Workload>> {
    Some(match name {
        "GUPS" => {
            let mut c = GupsConfig::paper(scale, threads);
            c.seed ^= salt;
            Box::new(Gups::new(c))
        }
        "VoltDB" => {
            let mut c = TpccConfig::paper(scale, threads);
            c.seed ^= salt;
            Box::new(Tpcc::new(c))
        }
        "Cassandra" => {
            let mut c = YcsbConfig::paper(scale, threads);
            c.seed ^= salt;
            Box::new(Ycsb::new(c))
        }
        "BFS" => {
            let mut c = BfsConfig::paper(scale, threads);
            c.seed ^= salt;
            Box::new(Bfs::new(c))
        }
        "SSSP" => {
            let mut c = SsspConfig::paper(scale, threads);
            c.seed ^= salt;
            Box::new(Sssp::new(c))
        }
        "Spark" => {
            let mut c = TerasortConfig::paper(scale, threads);
            c.seed ^= salt;
            Box::new(Terasort::new(c))
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_lists_six_workloads() {
        let c = catalog();
        assert_eq!(c.len(), 6);
        assert_eq!(c[0].name, "GUPS");
        assert_eq!(c[3].rw, "read-only");
    }

    #[test]
    fn builder_knows_every_catalog_name() {
        for entry in catalog() {
            let wl = build_paper_workload(entry.name, 1 << 14, 2);
            assert!(wl.is_some(), "missing builder for {}", entry.name);
            assert_eq!(wl.unwrap().name(), entry.name);
        }
        assert!(build_paper_workload("nope", 1024, 2).is_none());
    }

    #[test]
    fn seeded_builder_salts_every_workload() {
        for entry in catalog() {
            let wl = build_paper_workload_seeded(entry.name, 1 << 14, 2, 0xDEAD_BEEF);
            assert!(wl.is_some(), "missing seeded builder for {}", entry.name);
        }
        assert!(build_paper_workload_seeded("nope", 1024, 2, 1).is_none());
    }

    #[test]
    fn declared_footprint_matches_setup_for_every_workload() {
        use tiersim::addr::PAGE_SIZE_2M;
        use tiersim::machine::{Machine, MachineConfig};
        use tiersim::sim::{FirstTouchPolicy, SimEnv};
        use tiersim::tier::tiny_two_tier;

        // Both above and below the VoltDB warehouse floor, the declared
        // footprint (available before setup, feeding the multi-tenant
        // initial grant) must equal the mapped footprint exactly.
        for scale in [1 << 12, 1 << 17] {
            for entry in catalog() {
                let mut wl = build_paper_workload(entry.name, scale, 2).unwrap();
                let declared = wl.declared_footprint();
                assert!(declared > 0, "{} declares nothing at scale {scale}", entry.name);
                let mut m = Machine::new(MachineConfig::new(
                    tiny_two_tier(256 * PAGE_SIZE_2M, 256 * PAGE_SIZE_2M),
                    2,
                ));
                let mut mgr = FirstTouchPolicy;
                let mut env = SimEnv { machine: &mut m, manager: &mut mgr };
                wl.setup(&mut env);
                assert_eq!(
                    declared,
                    wl.footprint(),
                    "{} declared a footprint its setup did not map at scale {scale}",
                    entry.name
                );
            }
        }
    }
}
