//! Synthetic power-law graph generation (R-MAT) and CSR storage.
//!
//! The paper's BFS and SSSP run on a 0.9 B-node / 14 B-edge graph (Table
//! 2). We generate R-MAT graphs with the same average degree and traverse
//! them for real, so the simulated access stream has genuine graph-
//! traversal structure (hub pages hot, neighbor lists streamed). Generated
//! graphs are cached per-process because several experiments traverse the
//! same graph under different managers.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::rng::SplitMix64;

/// A graph in compressed-sparse-row form.
#[derive(Debug)]
pub struct Csr {
    /// Number of vertices.
    pub vertices: u32,
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for vertex `v`.
    pub offsets: Vec<u64>,
    /// Concatenated adjacency lists.
    pub neighbors: Vec<u32>,
}

impl Csr {
    /// Number of directed edges.
    pub fn edges(&self) -> u64 {
        self.neighbors.len() as u64
    }

    /// The adjacency list of `v`.
    pub fn neighbors_of(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: u32) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Deterministic pseudo-weight of the edge at position `pos` in
    /// `neighbors`, in `[1, 256]` (SSSP edge weights without storing them).
    pub fn weight_at(pos: u64) -> u64 {
        let mut x = pos.wrapping_mul(0x9e3779b97f4a7c15);
        x ^= x >> 33;
        (x % 256) + 1
    }
}

/// R-MAT parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// Number of vertices (rounded up to a power of two internally).
    pub vertices: u32,
    /// Number of directed edges to generate.
    pub edges: u64,
    /// RNG seed.
    pub seed: u64,
}

/// Generates an R-MAT graph with the canonical (0.57, 0.19, 0.19, 0.05)
/// partition probabilities, producing a skewed (power-law-ish) degree
/// distribution.
pub fn rmat(params: RmatParams) -> Csr {
    let n = params.vertices.max(2);
    let levels = 32 - (n - 1).leading_zeros();
    let side = 1u32 << levels;
    let mut rng = SplitMix64::new(params.seed);
    let mut degree = vec![0u64; n as usize + 1];
    let mut edge_list: Vec<(u32, u32)> = Vec::with_capacity(params.edges as usize);
    const A: f64 = 0.57;
    const B: f64 = 0.19;
    const C: f64 = 0.19;
    for _ in 0..params.edges {
        let (mut src, mut dst) = (0u32, 0u32);
        for level in (0..levels).rev() {
            let r = rng.unit_f64();
            let bit = 1u32 << level;
            if r < A {
                // Top-left quadrant: no bits set.
            } else if r < A + B {
                dst |= bit;
            } else if r < A + B + C {
                src |= bit;
            } else {
                src |= bit;
                dst |= bit;
            }
        }
        // Fold the power-of-two grid onto [0, n).
        let src = (src as u64 * n as u64 / side as u64) as u32;
        let dst = (dst as u64 * n as u64 / side as u64) as u32;
        degree[src as usize + 1] += 1;
        edge_list.push((src, dst));
    }
    // Prefix sum, then scatter into CSR without sorting.
    let mut offsets = degree;
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    let mut cursor = offsets.clone();
    let mut neighbors = vec![0u32; params.edges as usize];
    for (src, dst) in edge_list {
        let at = cursor[src as usize];
        neighbors[at as usize] = dst;
        cursor[src as usize] += 1;
    }
    Csr { vertices: n, offsets, neighbors }
}

/// Returns a process-wide cached graph for the given parameters.
///
/// The cache is single-flight and parallel-run friendly: the map lock is
/// held only long enough to fetch the per-key slot, never across graph
/// generation, so concurrent runs generating *different* graphs proceed
/// in parallel while concurrent requests for the *same* graph block on
/// one generation (via `OnceLock::get_or_init`) instead of duplicating
/// it. Callers get their own `Arc` clone; no lock is held across a run.
pub fn cached_rmat(params: RmatParams) -> Arc<Csr> {
    type Slot = Arc<OnceLock<Arc<Csr>>>;
    static CACHE: OnceLock<Mutex<BTreeMap<(u32, u64, u64), Slot>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    let key = (params.vertices, params.edges, params.seed);
    let slot: Slot = {
        let mut guard = cache.lock().expect("graph cache poisoned");
        guard.entry(key).or_default().clone()
    };
    slot.get_or_init(|| Arc::new(rmat(params))).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        rmat(RmatParams { vertices: 1024, edges: 16_384, seed: 42 })
    }

    #[test]
    fn csr_is_well_formed() {
        let g = small();
        assert_eq!(g.vertices, 1024);
        assert_eq!(g.edges(), 16_384);
        assert_eq!(g.offsets.len(), 1025);
        assert_eq!(*g.offsets.last().unwrap(), 16_384);
        // Offsets are monotone.
        for w in g.offsets.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // All neighbors in range.
        assert!(g.neighbors.iter().all(|&v| v < 1024));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = small();
        let mut degrees: Vec<u64> = (0..g.vertices).map(|v| g.degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = degrees.iter().sum();
        let top: u64 = degrees.iter().take(g.vertices as usize / 20).sum();
        assert!(
            top as f64 > 0.25 * total as f64,
            "top 5 % of vertices hold a large edge share ({top}/{total})"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.neighbors, b.neighbors);
    }

    #[test]
    fn cache_returns_same_instance() {
        let p = RmatParams { vertices: 256, edges: 1024, seed: 1 };
        let a = cached_rmat(p);
        let b = cached_rmat(p);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn cache_is_single_flight_under_contention() {
        let p = RmatParams { vertices: 512, edges: 4096, seed: 99 };
        let handles: Vec<_> =
            (0..8).map(|_| std::thread::spawn(move || cached_rmat(p))).collect();
        let first = cached_rmat(p);
        for h in handles {
            assert!(Arc::ptr_eq(&h.join().expect("no panic"), &first));
        }
    }

    #[test]
    fn weights_are_bounded_and_stable() {
        for pos in 0..1000u64 {
            let w = Csr::weight_at(pos);
            assert!((1..=256).contains(&w));
            assert_eq!(w, Csr::weight_at(pos));
        }
    }
}
