//! TeraSort-style multi-phase sort (the Spark surrogate, Table 2).
//!
//! Reproduces the phase structure of Spark TeraSort over 100-byte records:
//! a key-sampling pass, a partitioning (shuffle) pass that streams the
//! input and scatters records to partition buffers, a per-partition sort
//! phase whose working set is one partition at a time (small and hot), and
//! a merge/output pass. Phases cycle, giving the time-varying access
//! pattern that stresses profiling responsiveness.

use tiersim::addr::{VaRange, VirtAddr};
use tiersim::sim::{MemEnv, Workload};

use crate::layout::Layout;
use crate::rng::SplitMix64;

const RECORD_BYTES: u64 = 100;
/// Simulated accesses per record touch (100 B spans two cache lines).
const LINES_PER_RECORD: u64 = 2;

/// The phase the sort job is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Random sampling of input keys to pick partition boundaries.
    Sample,
    /// Sequential input scan scattering records to partition buffers.
    Partition,
    /// In-place sort of one partition at a time.
    Sort,
    /// Sequential merge of sorted partitions into the output.
    Merge,
}

/// TeraSort configuration.
#[derive(Clone, Debug)]
pub struct TerasortConfig {
    /// Input bytes (the job's data size; total footprint is ~3x this).
    pub input_bytes: u64,
    /// Number of partitions (Spark reduce tasks).
    pub partitions: u64,
    /// Number of application threads.
    pub threads: usize,
    /// Compute time per record touched, ns (Spark task overhead,
    /// serialization and comparison work).
    pub cpu_ns_per_op: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TerasortConfig {
    /// The paper's 350 GB footprint scaled by `scale` (input ~117 GB so
    /// input + shuffle + output reach 350 GB).
    pub fn paper(scale: u64, threads: usize) -> TerasortConfig {
        TerasortConfig {
            input_bytes: (350u64 << 30) / scale / 3,
            partitions: 64,
            threads,
            cpu_ns_per_op: 2_000.0,
            seed: 0x7E4A,
        }
    }
}

/// The TeraSort workload.
pub struct Terasort {
    cfg: TerasortConfig,
    input: VaRange,
    shuffle: VaRange,
    output: VaRange,
    phase: Phase,
    /// Sequential cursor (records) within the current phase.
    cursor: u64,
    /// Partition currently being sorted / merged.
    part: u64,
    /// Remaining sort touches for the current partition.
    sort_left: u64,
    rngs: Vec<SplitMix64>,
    records: u64,
    jobs: u64,
    ops: u64,
}

impl Terasort {
    /// Creates a TeraSort instance (VMAs laid out in [`Workload::setup`]).
    pub fn new(cfg: TerasortConfig) -> Terasort {
        let rngs = (0..cfg.threads.max(1))
            .map(|t| SplitMix64::new(cfg.seed ^ ((t as u64) << 40)))
            .collect();
        Terasort {
            cfg,
            input: VaRange::from_len(VirtAddr(0), 0),
            shuffle: VaRange::from_len(VirtAddr(0), 0),
            output: VaRange::from_len(VirtAddr(0), 0),
            phase: Phase::Sample,
            cursor: 0,
            part: 0,
            sort_left: 0,
            rngs,
            records: 0,
            jobs: 0,
            ops: 0,
        }
    }

    /// The current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Completed sort jobs.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    fn record_addr(&self, range: VaRange, record: u64) -> VirtAddr {
        VirtAddr(range.start.0 + (record % self.records) * RECORD_BYTES)
    }

    fn touch_record(&self, env: &mut dyn MemEnv, tid: usize, range: VaRange, record: u64, write: bool) {
        let base = self.record_addr(range, record);
        for line in 0..LINES_PER_RECORD {
            let a = VirtAddr(base.0 + line * 64);
            if write {
                env.write(tid, a);
            } else {
                env.read(tid, a);
            }
        }
    }

    fn partition_span(&self, part: u64) -> (u64, u64) {
        let per = self.records / self.cfg.partitions;
        (part * per, per)
    }

    fn advance_phase(&mut self) {
        self.cursor = 0;
        self.phase = match self.phase {
            Phase::Sample => Phase::Partition,
            Phase::Partition => {
                self.part = 0;
                let (_, per) = self.partition_span(0);
                self.sort_left = per * 2;
                Phase::Sort
            }
            Phase::Sort => {
                self.part = 0;
                Phase::Merge
            }
            Phase::Merge => {
                self.jobs += 1;
                Phase::Sample
            }
        };
    }
}

impl Workload for Terasort {
    fn name(&self) -> String {
        "Spark".into()
    }

    fn setup(&mut self, env: &mut dyn MemEnv) {
        let mut layout = Layout::new();
        self.input = layout.add(env, "tera.input", self.cfg.input_bytes, true);
        self.shuffle = layout.add(env, "tera.shuffle", self.cfg.input_bytes, true);
        self.output = layout.add(env, "tera.output", self.cfg.input_bytes, true);
        self.records = self.cfg.input_bytes / RECORD_BYTES;
        assert!(self.records >= self.cfg.partitions * 16, "too few records");
        let threads = self.cfg.threads.max(1);
        crate::layout::populate_interleaved(env, &[self.input, self.shuffle, self.output], threads);
    }

    fn tick(&mut self, env: &mut dyn MemEnv, tid: usize) {
        env.compute(tid, self.cfg.cpu_ns_per_op);
        match self.phase {
            Phase::Sample => {
                // Random key probes over the input.
                for _ in 0..8 {
                    let r = self.rngs[tid].below(self.records);
                    env.read(tid, self.record_addr(self.input, r));
                }
                self.cursor += 8;
                if self.cursor >= self.records / 100 {
                    self.advance_phase();
                }
            }
            Phase::Partition => {
                // Stream input; scatter to the destination partition.
                for _ in 0..4 {
                    self.touch_record(env, tid, self.input, self.cursor, false);
                    let dest = self.rngs[tid].below(self.cfg.partitions);
                    let (start, per) = self.partition_span(dest);
                    let slot = start + self.rngs[tid].below(per.max(1));
                    self.touch_record(env, tid, self.shuffle, slot, true);
                    self.cursor += 1;
                    self.ops += 1;
                }
                if self.cursor >= self.records {
                    self.advance_phase();
                }
            }
            Phase::Sort => {
                // Random read-modify-writes inside the current partition.
                let (start, per) = self.partition_span(self.part);
                for _ in 0..4 {
                    let a = start + self.rngs[tid].below(per.max(1));
                    let b = start + self.rngs[tid].below(per.max(1));
                    self.touch_record(env, tid, self.shuffle, a, false);
                    self.touch_record(env, tid, self.shuffle, b, true);
                    self.ops += 1;
                }
                self.sort_left = self.sort_left.saturating_sub(4);
                if self.sort_left == 0 {
                    self.part += 1;
                    if self.part >= self.cfg.partitions {
                        self.advance_phase();
                    } else {
                        let (_, per) = self.partition_span(self.part);
                        self.sort_left = per * 2;
                    }
                }
            }
            Phase::Merge => {
                for _ in 0..4 {
                    self.touch_record(env, tid, self.shuffle, self.cursor, false);
                    self.touch_record(env, tid, self.output, self.cursor, true);
                    self.cursor += 1;
                    self.ops += 1;
                }
                if self.cursor >= self.records {
                    self.advance_phase();
                }
            }
        }
    }

    fn footprint(&self) -> u64 {
        self.input.len() + self.shuffle.len() + self.output.len()
    }

    fn declared_footprint(&self) -> u64 {
        3 * crate::layout::vma_len(self.cfg.input_bytes)
    }

    fn ops_completed(&self) -> u64 {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim::addr::PAGE_SIZE_2M;
    use tiersim::machine::{Machine, MachineConfig};
    use tiersim::sim::{FirstTouchPolicy, SimEnv};
    use tiersim::tier::tiny_two_tier;

    fn tera() -> (Terasort, Machine) {
        let cfg = TerasortConfig {
            input_bytes: 4 * PAGE_SIZE_2M,
            partitions: 8,
            threads: 2,
            cpu_ns_per_op: 0.0,
            seed: 6,
        };
        let mut t = Terasort::new(cfg);
        let mut m = Machine::new(MachineConfig::new(
            tiny_two_tier(64 * PAGE_SIZE_2M, 64 * PAGE_SIZE_2M),
            2,
        ));
        {
            let mut mgr = FirstTouchPolicy;
            let mut env = SimEnv { machine: &mut m, manager: &mut mgr };
            t.setup(&mut env);
        }
        (t, m)
    }

    #[test]
    fn phases_cycle_through_a_job() {
        let (mut t, mut m) = tera();
        let mut mgr = FirstTouchPolicy;
        let mut env = SimEnv { machine: &mut m, manager: &mut mgr };
        let mut seen = vec![t.phase()];
        let mut guard = 0u64;
        while t.jobs() == 0 && guard < 5_000_000 {
            t.tick(&mut env, (guard % 2) as usize);
            if *seen.last().unwrap() != t.phase() {
                seen.push(t.phase());
            }
            guard += 1;
        }
        assert_eq!(t.jobs(), 1, "one job completed");
        assert_eq!(seen, vec![Phase::Sample, Phase::Partition, Phase::Sort, Phase::Merge, Phase::Sample]);
    }

    #[test]
    fn footprint_is_three_regions() {
        let (t, m) = tera();
        assert_eq!(t.footprint(), 3 * 4 * PAGE_SIZE_2M);
        assert_eq!(m.page_table().mapped_bytes(), t.footprint());
    }

    #[test]
    fn sort_phase_stays_inside_partition() {
        let (mut t, _m) = tera();
        t.records = t.cfg.input_bytes / RECORD_BYTES;
        let (start, per) = t.partition_span(3);
        assert_eq!(start, 3 * (t.records / 8));
        assert_eq!(per, t.records / 8);
    }
}
