//! Virtual-address-space layout helper for workload data structures.
//!
//! Each workload lays its arrays and tables out as separate VMAs with 2 MB
//! alignment and guard gaps, mirroring how a large-memory application's
//! mappings look to a profiler.

use tiersim::addr::{VaRange, VirtAddr, PAGE_SIZE_2M};
use tiersim::sim::MemEnv;

/// Base address of the first workload VMA.
pub const LAYOUT_BASE: u64 = 0x1000_0000;
/// Guard gap between consecutive VMAs.
pub const LAYOUT_GAP: u64 = 4 * PAGE_SIZE_2M;

/// Sequentially assigns VMA address ranges.
#[derive(Debug)]
pub struct Layout {
    cursor: u64,
}

impl Default for Layout {
    fn default() -> Layout {
        Layout::new()
    }
}

impl Layout {
    /// Starts a fresh layout at [`LAYOUT_BASE`].
    pub fn new() -> Layout {
        Layout { cursor: LAYOUT_BASE }
    }

    /// Reserves `bytes` (rounded up to 2 MB) and registers the VMA.
    pub fn add(&mut self, env: &mut dyn MemEnv, name: &str, bytes: u64, thp: bool) -> VaRange {
        let len = vma_len(bytes);
        let range = VaRange::from_len(VirtAddr(self.cursor), len);
        env.machine().mmap(name, range, thp);
        self.cursor += len + LAYOUT_GAP;
        range
    }
}

/// Length [`Layout::add`] will reserve for a `bytes`-byte table — the
/// rounding workloads replicate in `Workload::declared_footprint` so the
/// declared value matches the mapped one exactly.
pub fn vma_len(bytes: u64) -> u64 {
    bytes.max(1).next_multiple_of(PAGE_SIZE_2M)
}

/// Touches one cache line in every 4 KB page of `range` with writes on
/// `tid`, so the pages get allocated through the active manager's policy
/// ("first touch").
pub fn populate(env: &mut dyn MemEnv, range: VaRange, tid: usize) {
    for page in range.iter_pages_4k() {
        env.write(tid, page);
    }
}

/// Touches one cache line in every 4 KB page of all `ranges`, cycling
/// between the ranges page-by-page and between threads, so first-touch
/// placement interleaves the data structures instead of handing whole
/// tables to whichever tier fills first.
pub fn populate_interleaved(env: &mut dyn MemEnv, ranges: &[VaRange], threads: usize) {
    let mut iters: Vec<_> = ranges.iter().map(|r| r.iter_pages_4k()).collect();
    let mut live = iters.len();
    let mut n = 0u64;
    while live > 0 {
        live = 0;
        for it in &mut iters {
            if let Some(page) = it.next() {
                // Hash-based thread assignment: a sequential stride would
                // resonate with THP chunk boundaries (512 pages per huge
                // page) and hand every huge-page allocation to one thread.
                let mut x = n.wrapping_mul(0x9e3779b97f4a7c15);
                x ^= x >> 31;
                env.write((x % threads.max(1) as u64) as usize, page);
                n += 1;
                live += 1;
            }
        }
    }
}

/// Virtual address of element `idx` in an array of `elem` byte elements
/// based at `range.start`.
#[inline]
pub fn elem_addr(range: VaRange, idx: u64, elem: u64) -> VirtAddr {
    let off = idx * elem;
    debug_assert!(off + elem <= range.len(), "element {idx} out of range");
    VirtAddr(range.start.0 + off)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim::machine::{Machine, MachineConfig};
    use tiersim::sim::{FirstTouchPolicy, SimEnv};
    use tiersim::tier::tiny_two_tier;

    fn env_machine() -> Machine {
        Machine::new(MachineConfig::new(tiny_two_tier(8 * PAGE_SIZE_2M, 32 * PAGE_SIZE_2M), 1))
    }

    #[test]
    fn layout_assigns_disjoint_aligned_ranges() {
        let mut m = env_machine();
        let mut mgr = FirstTouchPolicy;
        let mut env = SimEnv { machine: &mut m, manager: &mut mgr };
        let mut layout = Layout::new();
        let a = layout.add(&mut env, "a", 1000, false);
        let b = layout.add(&mut env, "b", 3 * PAGE_SIZE_2M + 1, true);
        assert!(a.start.is_2m_aligned() && b.start.is_2m_aligned());
        assert_eq!(a.len(), PAGE_SIZE_2M);
        assert_eq!(b.len(), 4 * PAGE_SIZE_2M);
        assert!(!a.overlaps(b));
        assert!(b.start.0 >= a.end.0 + LAYOUT_GAP);
    }

    #[test]
    fn populate_allocates_every_page() {
        let mut m = env_machine();
        let mut mgr = FirstTouchPolicy;
        let mut env = SimEnv { machine: &mut m, manager: &mut mgr };
        let mut layout = Layout::new();
        let a = layout.add(&mut env, "a", PAGE_SIZE_2M, false);
        populate(&mut env, a, 0);
        assert_eq!(m.page_table().mapped_bytes(), PAGE_SIZE_2M);
    }

    #[test]
    fn elem_addr_indexes_arrays() {
        let r = VaRange::from_len(VirtAddr(0x1000_0000), PAGE_SIZE_2M);
        assert_eq!(elem_addr(r, 0, 8).0, 0x1000_0000);
        assert_eq!(elem_addr(r, 10, 8).0, 0x1000_0050);
    }
}
