//! Parallel breadth-first search over an R-MAT graph (Table 2's BFS).
//!
//! The traversal is real: a host-side CSR is walked and every data
//! touch — offset lookups, adjacency-list streaming (one access per cache
//! line), visited-array probes, frontier pushes — is issued to the
//! simulated machine. When a traversal completes, it restarts from a new
//! source (the paper runs repeated parallel searches), using epoch stamps
//! so the visited array never needs clearing.

use std::collections::VecDeque;
use std::sync::Arc;

use tiersim::addr::{VaRange, VirtAddr};
use tiersim::sim::{MemEnv, Workload};

use crate::graph::{cached_rmat, Csr, RmatParams};
use crate::layout::{elem_addr, Layout};
use crate::rng::SplitMix64;

/// Simulated bytes per adjacency entry (vertex id + edge payload, as in
/// property graphs; sized so the paper's 525 GB footprint scales through).
const NEIGHBOR_BYTES: u64 = 24;
/// Simulated bytes per offsets entry.
const OFFSET_BYTES: u64 = 8;
/// Simulated bytes per visited stamp.
const VISITED_BYTES: u64 = 4;
/// Simulated bytes per frontier slot.
const FRONTIER_BYTES: u64 = 4;
/// Edges processed per tick: hubs in a power-law graph have adjacency
/// lists of hundreds of thousands of edges, and a real parallel BFS
/// shares that work; one tick handles a bounded slice.
const EDGE_BATCH: u64 = 64;

/// BFS configuration.
#[derive(Clone, Debug)]
pub struct BfsConfig {
    /// Graph shape.
    pub graph: RmatParams,
    /// Number of application threads.
    pub threads: usize,
    /// Compute time per settled vertex, ns (frontier management and
    /// per-edge work in a real graph framework).
    pub cpu_ns_per_op: f64,
    /// RNG seed for source selection.
    pub seed: u64,
}

impl BfsConfig {
    /// The paper's 0.9 B-vertex / 14 B-edge graph scaled by `scale`.
    pub fn paper(scale: u64, threads: usize) -> BfsConfig {
        BfsConfig {
            graph: RmatParams {
                vertices: ((900_000_000u64 / scale).max(4096)) as u32,
                edges: (14_000_000_000u64 / scale).max(65_536),
                seed: 0x6EA4,
            },
            threads,
            cpu_ns_per_op: 2_000.0,
            seed: 0xBF5,
        }
    }
}

/// The BFS workload.
pub struct Bfs {
    cfg: BfsConfig,
    graph: Arc<Csr>,
    offsets: VaRange,
    neighbors: VaRange,
    visited: VaRange,
    frontier_vma: VaRange,
    /// Epoch stamps standing in for the visited array's contents.
    stamps: Vec<u32>,
    epoch: u32,
    frontier: VecDeque<u32>,
    frontier_head: u64,
    /// Vertex being expanded: `(vertex, next edge position, end)`.
    current: Option<(u32, u64, u64)>,
    rng: SplitMix64,
    settled: u64,
    traversals: u64,
}

impl Bfs {
    /// Creates a BFS instance over the (cached) graph.
    pub fn new(cfg: BfsConfig) -> Bfs {
        let graph = cached_rmat(cfg.graph);
        let stamps = vec![0u32; graph.vertices as usize];
        let rng = SplitMix64::new(cfg.seed);
        Bfs {
            cfg,
            graph,
            offsets: VaRange::from_len(VirtAddr(0), 0),
            neighbors: VaRange::from_len(VirtAddr(0), 0),
            visited: VaRange::from_len(VirtAddr(0), 0),
            frontier_vma: VaRange::from_len(VirtAddr(0), 0),
            stamps,
            epoch: 0,
            frontier: VecDeque::new(),
            frontier_head: 0,
            current: None,
            rng,
            settled: 0,
            traversals: 0,
        }
    }

    /// Number of completed traversals.
    pub fn traversals(&self) -> u64 {
        self.traversals
    }

    fn start_traversal(&mut self) {
        self.epoch += 1;
        self.traversals += 1;
        // Pick a source with outgoing edges.
        let v = loop {
            let v = self.rng.below(self.graph.vertices as u64) as u32;
            if self.graph.degree(v) > 0 {
                break v;
            }
        };
        self.stamps[v as usize] = self.epoch;
        self.frontier.clear();
        self.frontier.push_back(v);
    }

    fn visit_addr(&self, v: u32) -> VirtAddr {
        elem_addr(self.visited, v as u64, VISITED_BYTES)
    }
}

impl Workload for Bfs {
    fn name(&self) -> String {
        "BFS".into()
    }

    fn setup(&mut self, env: &mut dyn MemEnv) {
        let v = self.graph.vertices as u64;
        let e = self.graph.edges();
        let mut layout = Layout::new();
        self.offsets = layout.add(env, "bfs.offsets", (v + 1) * OFFSET_BYTES, true);
        self.neighbors = layout.add(env, "bfs.neighbors", e * NEIGHBOR_BYTES, true);
        self.visited = layout.add(env, "bfs.visited", v * VISITED_BYTES, true);
        self.frontier_vma = layout.add(env, "bfs.frontier", (v * FRONTIER_BYTES).min(64 << 20), true);
        let threads = self.cfg.threads.max(1);
        crate::layout::populate_interleaved(env, &[self.offsets, self.neighbors, self.visited, self.frontier_vma], threads);
        self.start_traversal();
        self.traversals = 0; // Setup's kick-off does not count.
    }

    fn tick(&mut self, env: &mut dyn MemEnv, tid: usize) {
        let (u, lo, hi) = match self.current.take() {
            Some(cur) => cur,
            None => {
                let Some(u) = self.frontier.pop_front() else {
                    self.start_traversal();
                    return;
                };
                env.compute(tid, self.cfg.cpu_ns_per_op);
                // Pop charges a frontier read.
                let slots = self.frontier_vma.len() / FRONTIER_BYTES;
                env.read(
                    tid,
                    elem_addr(self.frontier_vma, self.frontier_head % slots, FRONTIER_BYTES),
                );
                self.frontier_head += 1;
                // Offset lookups (two 8-byte entries, usually one line).
                env.read(tid, elem_addr(self.offsets, u as u64, OFFSET_BYTES));
                env.read(tid, elem_addr(self.offsets, u as u64 + 1, OFFSET_BYTES));
                (u, self.graph.offsets[u as usize], self.graph.offsets[u as usize + 1])
            }
        };
        // Stream a bounded slice of the adjacency list: one access per
        // cache line, plus a visited probe per edge.
        let slots = self.frontier_vma.len() / FRONTIER_BYTES;
        let stop = (lo + EDGE_BATCH).min(hi);
        let mut line = u64::MAX;
        for pos in lo..stop {
            let byte = pos * NEIGHBOR_BYTES;
            if byte / 64 != line {
                line = byte / 64;
                env.read(tid, VirtAddr(self.neighbors.start.0 + line * 64));
            }
            let v = self.graph.neighbors[pos as usize];
            // Visited probe (random access).
            env.read(tid, self.visit_addr(v));
            if self.stamps[v as usize] != self.epoch {
                self.stamps[v as usize] = self.epoch;
                env.write(tid, self.visit_addr(v));
                let head = (self.frontier_head + self.frontier.len() as u64) % slots;
                env.write(tid, elem_addr(self.frontier_vma, head, FRONTIER_BYTES));
                self.frontier.push_back(v);
            }
        }
        if stop < hi {
            self.current = Some((u, stop, hi));
        } else {
            self.settled += 1;
        }
    }

    fn footprint(&self) -> u64 {
        self.offsets.len() + self.neighbors.len() + self.visited.len() + self.frontier_vma.len()
    }

    fn declared_footprint(&self) -> u64 {
        use crate::layout::vma_len;
        let v = self.graph.vertices as u64;
        let e = self.graph.edges();
        vma_len((v + 1) * OFFSET_BYTES)
            + vma_len(e * NEIGHBOR_BYTES)
            + vma_len(v * VISITED_BYTES)
            + vma_len((v * FRONTIER_BYTES).min(64 << 20))
    }

    fn true_hot_ranges(&self) -> Vec<VaRange> {
        vec![self.offsets, self.visited]
    }

    fn ops_completed(&self) -> u64 {
        self.settled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim::addr::PAGE_SIZE_2M;
    use tiersim::machine::{Machine, MachineConfig};
    use tiersim::sim::{FirstTouchPolicy, SimEnv};
    use tiersim::tier::tiny_two_tier;

    fn bfs() -> (Bfs, Machine) {
        let cfg = BfsConfig {
            graph: RmatParams { vertices: 2048, edges: 16_384, seed: 9 },
            threads: 2,
            cpu_ns_per_op: 0.0,
            seed: 1,
        };
        let mut b = Bfs::new(cfg);
        let mut m = Machine::new(MachineConfig::new(
            tiny_two_tier(64 * PAGE_SIZE_2M, 64 * PAGE_SIZE_2M),
            2,
        ));
        {
            let mut mgr = FirstTouchPolicy;
            let mut env = SimEnv { machine: &mut m, manager: &mut mgr };
            b.setup(&mut env);
        }
        (b, m)
    }

    #[test]
    fn traversal_settles_vertices() {
        let (mut b, mut m) = bfs();
        let mut mgr = FirstTouchPolicy;
        let mut env = SimEnv { machine: &mut m, manager: &mut mgr };
        for i in 0..5_000 {
            b.tick(&mut env, i % 2);
        }
        assert!(b.ops_completed() > 1_000, "settled = {}", b.ops_completed());
        assert!(b.traversals() >= 1, "at least one restart happened");
    }

    #[test]
    fn traversal_is_exhaustive_within_component() {
        let (mut b, mut m) = bfs();
        let mut mgr = FirstTouchPolicy;
        let mut env = SimEnv { machine: &mut m, manager: &mut mgr };
        // Run until the first traversal's frontier drains (no restart yet).
        let epoch = b.epoch;
        let mut ticks = 0u64;
        while !b.frontier.is_empty() && ticks < 1_000_000 {
            b.tick(&mut env, 0);
            ticks += 1;
        }
        // Every vertex reachable from the source carries the epoch stamp;
        // correctness proxy: the settled count equals stamped vertices.
        let stamped = b.stamps.iter().filter(|&&s| s == epoch).count() as u64;
        assert_eq!(stamped, b.settled, "settled exactly the reachable set");
    }

    #[test]
    fn footprint_matches_mapping() {
        let (b, m) = bfs();
        assert_eq!(m.page_table().mapped_bytes(), b.footprint());
    }
}
