//! Single-source shortest paths over an R-MAT graph (Table 2's SSSP).
//!
//! A queue-based label-correcting algorithm (Bellman-Ford with a FIFO and
//! re-insertion) walks the same CSR as BFS but additionally reads edge
//! weights and reads/updates a distance array, giving a heavier and more
//! write-leaning traversal than BFS while staying read-dominated overall.
//! Distances live host-side with epoch semantics; every touch is issued to
//! the simulated machine.

use std::collections::VecDeque;
use std::sync::Arc;

use tiersim::addr::{VaRange, VirtAddr};
use tiersim::sim::{MemEnv, Workload};

use crate::graph::{cached_rmat, Csr, RmatParams};
use crate::layout::{elem_addr, Layout};
use crate::rng::SplitMix64;

const NEIGHBOR_BYTES: u64 = 16;
const OFFSET_BYTES: u64 = 8;
const WEIGHT_BYTES: u64 = 16;
const DIST_BYTES: u64 = 8;
const QUEUE_BYTES: u64 = 4;
/// Edges relaxed per tick (hub adjacency lists are processed in slices).
const EDGE_BATCH: u64 = 64;

/// SSSP configuration.
#[derive(Clone, Debug)]
pub struct SsspConfig {
    /// Graph shape.
    pub graph: RmatParams,
    /// Number of application threads.
    pub threads: usize,
    /// Compute time per processed vertex, ns.
    pub cpu_ns_per_op: f64,
    /// RNG seed for source selection.
    pub seed: u64,
}

impl SsspConfig {
    /// The paper's 0.9 B-vertex / 14 B-edge graph scaled by `scale`.
    pub fn paper(scale: u64, threads: usize) -> SsspConfig {
        SsspConfig {
            graph: RmatParams {
                vertices: ((900_000_000u64 / scale).max(4096)) as u32,
                edges: (14_000_000_000u64 / scale).max(65_536),
                seed: 0x6EA4,
            },
            threads,
            cpu_ns_per_op: 2_000.0,
            seed: 0x555,
        }
    }
}

/// The SSSP workload.
pub struct Sssp {
    cfg: SsspConfig,
    graph: Arc<Csr>,
    offsets: VaRange,
    neighbors: VaRange,
    weights: VaRange,
    dist_vma: VaRange,
    queue_vma: VaRange,
    dist: Vec<u64>,
    epoch_of: Vec<u32>,
    in_queue: Vec<bool>,
    epoch: u32,
    queue: VecDeque<u32>,
    queue_head: u64,
    /// Vertex being relaxed: `(vertex, its distance, next pos, end)`.
    current: Option<(u32, u64, u64, u64)>,
    rng: SplitMix64,
    relaxed: u64,
    runs: u64,
}

impl Sssp {
    /// Creates an SSSP instance over the (cached) graph.
    pub fn new(cfg: SsspConfig) -> Sssp {
        let graph = cached_rmat(cfg.graph);
        let v = graph.vertices as usize;
        let seed = cfg.seed;
        Sssp {
            cfg,
            graph,
            offsets: VaRange::from_len(VirtAddr(0), 0),
            neighbors: VaRange::from_len(VirtAddr(0), 0),
            weights: VaRange::from_len(VirtAddr(0), 0),
            dist_vma: VaRange::from_len(VirtAddr(0), 0),
            queue_vma: VaRange::from_len(VirtAddr(0), 0),
            dist: vec![u64::MAX; v],
            epoch_of: vec![0; v],
            in_queue: vec![false; v],
            epoch: 0,
            queue: VecDeque::new(),
            queue_head: 0,
            current: None,
            rng: SplitMix64::new(seed),
            relaxed: 0,
            runs: 0,
        }
    }

    /// Completed shortest-path computations.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Distance of `v` under the current epoch (`u64::MAX` = unreached).
    fn dist_of(&self, v: u32) -> u64 {
        if self.epoch_of[v as usize] == self.epoch {
            self.dist[v as usize]
        } else {
            u64::MAX
        }
    }

    fn set_dist(&mut self, v: u32, d: u64) {
        self.epoch_of[v as usize] = self.epoch;
        self.dist[v as usize] = d;
    }

    fn start_run(&mut self) {
        self.epoch += 1;
        self.runs += 1;
        self.in_queue.iter_mut().for_each(|b| *b = false);
        let source = loop {
            let v = self.rng.below(self.graph.vertices as u64) as u32;
            if self.graph.degree(v) > 0 {
                break v;
            }
        };
        self.set_dist(source, 0);
        self.queue.clear();
        self.queue.push_back(source);
        self.in_queue[source as usize] = true;
    }

    fn dist_addr(&self, v: u32) -> VirtAddr {
        elem_addr(self.dist_vma, v as u64, DIST_BYTES)
    }
}

impl Workload for Sssp {
    fn name(&self) -> String {
        "SSSP".into()
    }

    fn setup(&mut self, env: &mut dyn MemEnv) {
        let v = self.graph.vertices as u64;
        let e = self.graph.edges();
        let mut layout = Layout::new();
        self.offsets = layout.add(env, "sssp.offsets", (v + 1) * OFFSET_BYTES, true);
        self.neighbors = layout.add(env, "sssp.neighbors", e * NEIGHBOR_BYTES, true);
        self.weights = layout.add(env, "sssp.weights", e * WEIGHT_BYTES, true);
        self.dist_vma = layout.add(env, "sssp.dist", v * DIST_BYTES, true);
        self.queue_vma = layout.add(env, "sssp.queue", (v * QUEUE_BYTES).min(64 << 20), true);
        let threads = self.cfg.threads.max(1);
        crate::layout::populate_interleaved(env, &[self.offsets, self.neighbors, self.weights, self.dist_vma, self.queue_vma], threads);
        self.start_run();
        self.runs = 0; // Setup's kick-off does not count.
    }

    fn tick(&mut self, env: &mut dyn MemEnv, tid: usize) {
        let (u, du, lo, hi) = match self.current.take() {
            Some(cur) => cur,
            None => {
                let Some(u) = self.queue.pop_front() else {
                    self.start_run();
                    return;
                };
                self.in_queue[u as usize] = false;
                env.compute(tid, self.cfg.cpu_ns_per_op);
                let slots = self.queue_vma.len() / QUEUE_BYTES;
                env.read(tid, elem_addr(self.queue_vma, self.queue_head % slots, QUEUE_BYTES));
                self.queue_head += 1;
                env.read(tid, elem_addr(self.offsets, u as u64, OFFSET_BYTES));
                env.read(tid, elem_addr(self.offsets, u as u64 + 1, OFFSET_BYTES));
                let du = self.dist_of(u);
                env.read(tid, self.dist_addr(u));
                if du == u64::MAX {
                    return;
                }
                (u, du, self.graph.offsets[u as usize], self.graph.offsets[u as usize + 1])
            }
        };
        let slots = self.queue_vma.len() / QUEUE_BYTES;
        let stop = (lo + EDGE_BATCH).min(hi);
        let mut line = u64::MAX;
        for pos in lo..stop {
            let byte = pos * NEIGHBOR_BYTES;
            if byte / 64 != line {
                line = byte / 64;
                env.read(tid, VirtAddr(self.neighbors.start.0 + line * 64));
                env.read(tid, VirtAddr(self.weights.start.0 + pos * WEIGHT_BYTES));
            }
            let v = self.graph.neighbors[pos as usize];
            let w = Csr::weight_at(pos);
            let cand = du.saturating_add(w);
            env.read(tid, self.dist_addr(v));
            if cand < self.dist_of(v) {
                self.set_dist(v, cand);
                env.write(tid, self.dist_addr(v));
                self.relaxed += 1;
                if !self.in_queue[v as usize] {
                    self.in_queue[v as usize] = true;
                    let head = (self.queue_head + self.queue.len() as u64) % slots;
                    env.write(tid, elem_addr(self.queue_vma, head, QUEUE_BYTES));
                    self.queue.push_back(v);
                }
            }
        }
        if stop < hi {
            self.current = Some((u, du, stop, hi));
        }
    }

    fn footprint(&self) -> u64 {
        self.offsets.len()
            + self.neighbors.len()
            + self.weights.len()
            + self.dist_vma.len()
            + self.queue_vma.len()
    }

    fn declared_footprint(&self) -> u64 {
        use crate::layout::vma_len;
        let v = self.graph.vertices as u64;
        let e = self.graph.edges();
        vma_len((v + 1) * OFFSET_BYTES)
            + vma_len(e * NEIGHBOR_BYTES)
            + vma_len(e * WEIGHT_BYTES)
            + vma_len(v * DIST_BYTES)
            + vma_len((v * QUEUE_BYTES).min(64 << 20))
    }

    fn true_hot_ranges(&self) -> Vec<VaRange> {
        vec![self.offsets, self.dist_vma]
    }

    fn ops_completed(&self) -> u64 {
        self.relaxed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim::addr::PAGE_SIZE_2M;
    use tiersim::machine::{Machine, MachineConfig};
    use tiersim::sim::{FirstTouchPolicy, SimEnv};
    use tiersim::tier::tiny_two_tier;

    fn sssp() -> (Sssp, Machine) {
        let cfg = SsspConfig {
            graph: RmatParams { vertices: 1024, edges: 8_192, seed: 9 },
            threads: 2,
            cpu_ns_per_op: 0.0,
            seed: 2,
        };
        let mut s = Sssp::new(cfg);
        let mut m = Machine::new(MachineConfig::new(
            tiny_two_tier(64 * PAGE_SIZE_2M, 64 * PAGE_SIZE_2M),
            2,
        ));
        {
            let mut mgr = FirstTouchPolicy;
            let mut env = SimEnv { machine: &mut m, manager: &mut mgr };
            s.setup(&mut env);
        }
        (s, m)
    }

    #[test]
    fn relaxations_happen() {
        let (mut s, mut m) = sssp();
        let mut mgr = FirstTouchPolicy;
        let mut env = SimEnv { machine: &mut m, manager: &mut mgr };
        for i in 0..5_000 {
            s.tick(&mut env, i % 2);
        }
        assert!(s.ops_completed() > 500, "relaxed = {}", s.ops_completed());
    }

    #[test]
    fn distances_satisfy_triangle_property() {
        let (mut s, mut m) = sssp();
        let mut mgr = FirstTouchPolicy;
        let mut env = SimEnv { machine: &mut m, manager: &mut mgr };
        // Drain the first run completely.
        let mut ticks = 0u64;
        while !s.queue.is_empty() && ticks < 2_000_000 {
            s.tick(&mut env, 0);
            ticks += 1;
        }
        assert!(ticks < 2_000_000, "run converged");
        // Label-correcting fixpoint: no edge can still relax.
        let epoch = s.epoch;
        for u in 0..s.graph.vertices {
            if s.epoch_of[u as usize] != epoch || s.dist[u as usize] == u64::MAX {
                continue;
            }
            let lo = s.graph.offsets[u as usize];
            let hi = s.graph.offsets[u as usize + 1];
            for pos in lo..hi {
                let v = s.graph.neighbors[pos as usize];
                let w = Csr::weight_at(pos);
                assert!(
                    s.dist_of(v) <= s.dist[u as usize] + w,
                    "edge {u}->{v} still relaxable"
                );
            }
        }
    }

    #[test]
    fn footprint_matches_mapping() {
        let (s, m) = sssp();
        assert_eq!(m.page_table().mapped_bytes(), s.footprint());
        assert!(s.weights.len() >= 8_192 * WEIGHT_BYTES);
    }
}
