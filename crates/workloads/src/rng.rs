//! Deterministic random-number utilities for workload generation.
//!
//! Workloads must be reproducible run-to-run so that manager comparisons
//! see identical access streams. [`SplitMix64`] is the base generator;
//! [`Zipfian`] implements the YCSB zipfian generator (Gray et al.) used by
//! the Cassandra/YCSB surrogate.

pub use tiersim::rng::SplitMix64;

/// The YCSB zipfian generator over `[0, n)` with parameter `theta`.
///
/// Produces the skewed key popularity Cassandra sees under YCSB workload A.
/// Item 0 is the most popular. Uses the standard constant-time inversion
/// with precomputed `zeta(n, theta)`.
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
}

impl Zipfian {
    /// Creates a generator for `n` items with skew `theta` (YCSB default
    /// 0.99).
    pub fn new(n: u64, theta: f64) -> Zipfian {
        assert!(n >= 1);
        assert!(theta > 0.0 && theta < 1.0, "theta in (0, 1)");
        let zeta_n = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zeta_n);
        Zipfian { n, theta, alpha, zeta_n, eta }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n; integral approximation for large n keeps
        // construction O(1)-ish while staying within ~1 % of the sum.
        const EXACT_LIMIT: u64 = 10_000;
        if n <= EXACT_LIMIT {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=EXACT_LIMIT).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            // Integral of x^-theta from EXACT_LIMIT to n.
            let a = EXACT_LIMIT as f64;
            let b = n as f64;
            head + (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
        }
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws the next item rank (0 = most popular).
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let u = rng.unit_f64();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5_f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }
}

/// A Fisher-Yates-derived "scatter" permutation: maps rank `r` to a stable
/// pseudo-random item id so zipfian popularity is spread across the key
/// space (as YCSB's hashed insertion order does).
#[inline]
pub fn scatter(rank: u64, n: u64, salt: u64) -> u64 {
    let mut x = rank.wrapping_add(salt).wrapping_mul(0x9e3779b97f4a7c15);
    x ^= x >> 29;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 32;
    ((x as u128 * n as u128) >> 64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.below(37) < 37);
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gaussian_has_sane_moments() {
        let mut r = SplitMix64::new(3);
        let n = 50_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.gaussian();
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn zipf_is_skewed_and_bounded() {
        let z = Zipfian::new(1000, 0.99);
        let mut r = SplitMix64::new(11);
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            let k = z.sample(&mut r);
            counts[k as usize] += 1;
        }
        // Rank 0 is by far the most popular.
        assert!(counts[0] > counts[10] && counts[0] > counts[500]);
        // Top-10 ranks carry a large share under theta = 0.99.
        let top10: u64 = counts[..10].iter().sum();
        assert!(top10 as f64 > 0.2 * 100_000.0, "top10 = {top10}");
    }

    #[test]
    fn zipf_large_n_constructs_and_samples() {
        let z = Zipfian::new(50_000_000, 0.99);
        let mut r = SplitMix64::new(5);
        for _ in 0..1000 {
            assert!(z.sample(&mut r) < 50_000_000);
        }
    }

    #[test]
    fn prop_zipf_head_mass_is_seed_stable() {
        use proptest_lite::{gen, prop_check};
        // The sampled *distribution* is a property of (n, theta) alone:
        // any two seed streams put the same mass on the head ranks (the
        // serving generators lean on this — per-thread streams must see
        // the same popularity curve), every draw is in bounds, and the
        // head carries more than its uniform share.
        prop_check!(
            "zipf_head_mass_is_seed_stable",
            16,
            (
                gen::u64_range(1_000, 200_000),
                gen::f64_range(0.3, 0.99),
                gen::u64_range(0, 1 << 62),
            ),
            |&(n, theta, seed)| {
                const DRAWS: u64 = 20_000;
                let z = Zipfian::new(n, theta);
                let decile = (n / 10).max(1);
                let mut shares = [0.0f64; 2];
                for (i, s) in [seed, seed ^ 0xD1CE_B00C].into_iter().enumerate() {
                    let mut rng = SplitMix64::new(s);
                    let mut hits = 0u64;
                    for _ in 0..DRAWS {
                        let k = z.sample(&mut rng);
                        proptest_lite::prop_assert!(k < n, "sample {k} out of bounds (n={n})");
                        if k < decile {
                            hits += 1;
                        }
                    }
                    shares[i] = hits as f64 / DRAWS as f64;
                }
                proptest_lite::prop_assert!(
                    shares[0] > 0.15,
                    "head decile under-weighted: {} (n={n}, theta={theta})",
                    shares[0]
                );
                proptest_lite::prop_assert!(
                    (shares[0] - shares[1]).abs() < 0.05,
                    "seed-dependent distribution: {} vs {} (n={n}, theta={theta})",
                    shares[0],
                    shares[1]
                );
            }
        );
    }

    #[test]
    fn scatter_is_stable_and_bounded() {
        assert_eq!(scatter(5, 100, 1), scatter(5, 100, 1));
        for rank in 0..1000 {
            assert!(scatter(rank, 777, 3) < 777);
        }
        // Adjacent ranks land far apart (spread check, not a strict law).
        let spread = (0..100)
            .filter(|&r| scatter(r, 1 << 40, 0).abs_diff(scatter(r + 1, 1 << 40, 0)) > 1 << 20)
            .count();
        assert!(spread > 90);
    }
}
