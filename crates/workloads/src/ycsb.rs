//! YCSB workload A over a partitioned row store (the Cassandra surrogate).
//!
//! Reproduces the access skeleton of Cassandra under YCSB's update-heavy
//! workload A (Table 2: 400 GB, 1:1 R/W): 1 KB rows addressed through a
//! hash index, with zipfian key popularity (theta = 0.99). Popularity is
//! permuted at *block* granularity — hot keys cluster into hot 256-row
//! blocks scattered across the key space, the partition-level locality a
//! real row store exhibits — so page-level hotness is skewed but not
//! trivially contiguous.

use tiersim::addr::{VaRange, VirtAddr};
use tiersim::sim::{MemEnv, Workload};

use crate::layout::{elem_addr, Layout};
use crate::rng::{scatter, SplitMix64, Zipfian};

const ROW_BYTES: u64 = 1024;
const INDEX_ENTRY: u64 = 16;
const ROWS_PER_BLOCK: u64 = 256;

/// YCSB configuration.
#[derive(Clone, Debug)]
pub struct YcsbConfig {
    /// Number of rows in the store.
    pub rows: u64,
    /// Zipfian skew parameter (YCSB default 0.99).
    pub theta: f64,
    /// Fraction of operations that are updates (workload A: 0.5).
    pub update_frac: f64,
    /// Number of application threads.
    pub threads: usize,
    /// Compute time per operation, ns (Cassandra's request path —
    /// serialization, memtable bookkeeping — dominates a single row op).
    pub cpu_ns_per_op: f64,
    /// RNG seed.
    pub seed: u64,
}

impl YcsbConfig {
    /// Selects a standard YCSB workload letter: `A` (update heavy,
    /// 50/50), `B` (read mostly, 95/5) or `C` (read only). The paper uses
    /// workload A; the others are provided for sensitivity studies.
    pub fn with_workload(mut self, letter: char) -> YcsbConfig {
        self.update_frac = match letter.to_ascii_uppercase() {
            'A' => 0.5,
            'B' => 0.05,
            'C' => 0.0,
            other => panic!("unsupported YCSB workload {other:?} (A, B or C)"),
        };
        self
    }

    /// The paper's configuration scaled by `scale`: ~400 GB of rows.
    pub fn paper(scale: u64, threads: usize) -> YcsbConfig {
        YcsbConfig {
            rows: (400u64 << 30) / scale / ROW_BYTES,
            theta: 0.99,
            update_frac: 0.5,
            threads,
            cpu_ns_per_op: 6_000.0,
            seed: 0xCA55,
        }
    }
}

/// The YCSB row-store workload.
pub struct Ycsb {
    cfg: YcsbConfig,
    index: VaRange,
    rows: VaRange,
    zipf: Zipfian,
    rngs: Vec<SplitMix64>,
    ops: u64,
}

impl Ycsb {
    /// Creates a YCSB instance (VMAs laid out in [`Workload::setup`]).
    pub fn new(cfg: YcsbConfig) -> Ycsb {
        assert!(cfg.rows >= ROWS_PER_BLOCK * 4, "too few rows");
        let zipf = Zipfian::new(cfg.rows, cfg.theta);
        let rngs = (0..cfg.threads.max(1))
            .map(|t| SplitMix64::new(cfg.seed ^ ((t as u64) << 17)))
            .collect();
        Ycsb {
            cfg,
            index: VaRange::from_len(VirtAddr(0), 0),
            rows: VaRange::from_len(VirtAddr(0), 0),
            zipf,
            rngs,
            ops: 0,
        }
    }

    /// Maps a popularity rank to a row id: blocks of 256 rows are permuted
    /// across the store, rows keep their in-block position.
    fn row_of_rank(&self, rank: u64) -> u64 {
        let blocks = self.cfg.rows / ROWS_PER_BLOCK;
        let block = scatter(rank / ROWS_PER_BLOCK, blocks, self.cfg.seed);
        block * ROWS_PER_BLOCK + rank % ROWS_PER_BLOCK
    }

    /// The hottest rows' blocks, for ground-truth checks.
    pub fn hot_blocks(&self, top_ranks: u64) -> Vec<u64> {
        let mut blocks: Vec<u64> =
            (0..top_ranks).map(|r| self.row_of_rank(r) / ROWS_PER_BLOCK).collect();
        blocks.sort_unstable();
        blocks.dedup();
        blocks
    }
}

impl Workload for Ycsb {
    fn name(&self) -> String {
        "Cassandra".into()
    }

    fn setup(&mut self, env: &mut dyn MemEnv) {
        let mut layout = Layout::new();
        self.index = layout.add(env, "ycsb.index", self.cfg.rows * INDEX_ENTRY, true);
        self.rows = layout.add(env, "ycsb.rows", self.cfg.rows * ROW_BYTES, true);
        let threads = self.cfg.threads.max(1);
        crate::layout::populate_interleaved(env, &[self.index, self.rows], threads);
    }

    fn tick(&mut self, env: &mut dyn MemEnv, tid: usize) {
        env.compute(tid, self.cfg.cpu_ns_per_op);
        let rank = self.zipf.sample(&mut self.rngs[tid]);
        let row = self.row_of_rank(rank);
        // Hash-index probe.
        env.read(tid, elem_addr(self.index, row, INDEX_ENTRY));
        let addr = elem_addr(self.rows, row, ROW_BYTES);
        let is_update = self.rngs[tid].unit_f64() < self.cfg.update_frac;
        if is_update {
            // Read-modify-write of the row head.
            env.read(tid, addr);
            env.write(tid, addr);
        } else {
            // Read two cache lines of the row.
            env.read(tid, addr);
            env.read(tid, VirtAddr(addr.0 + 512));
        }
        self.ops += 1;
    }

    fn footprint(&self) -> u64 {
        self.index.len() + self.rows.len()
    }

    fn declared_footprint(&self) -> u64 {
        crate::layout::vma_len(self.cfg.rows * INDEX_ENTRY)
            + crate::layout::vma_len(self.cfg.rows * ROW_BYTES)
    }

    fn true_hot_ranges(&self) -> Vec<VaRange> {
        // The index plus the blocks holding the top ~0.4 % of ranks.
        let mut out = vec![self.index];
        for block in self.hot_blocks(self.cfg.rows / 256) {
            out.push(VaRange::from_len(
                VirtAddr(self.rows.start.0 + block * ROWS_PER_BLOCK * ROW_BYTES),
                ROWS_PER_BLOCK * ROW_BYTES,
            ));
        }
        out
    }

    fn ops_completed(&self) -> u64 {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim::addr::PAGE_SIZE_2M;
    use tiersim::machine::{Machine, MachineConfig};
    use tiersim::sim::{FirstTouchPolicy, SimEnv};
    use tiersim::tier::tiny_two_tier;

    fn ycsb() -> (Ycsb, Machine) {
        let cfg = YcsbConfig {
            rows: 32 * 1024,
            theta: 0.99,
            update_frac: 0.5,
            threads: 2,
            cpu_ns_per_op: 0.0,
            seed: 5,
        };
        let mut y = Ycsb::new(cfg);
        let mut m = Machine::new(MachineConfig::new(
            tiny_two_tier(64 * PAGE_SIZE_2M, 64 * PAGE_SIZE_2M),
            2,
        ));
        {
            let mut mgr = FirstTouchPolicy;
            let mut env = SimEnv { machine: &mut m, manager: &mut mgr };
            y.setup(&mut env);
        }
        (y, m)
    }

    #[test]
    fn setup_maps_index_and_rows() {
        let (y, m) = ycsb();
        assert_eq!(m.page_table().mapped_bytes(), y.footprint());
        assert!(y.rows.len() >= 32 * 1024 * ROW_BYTES);
    }

    #[test]
    fn accesses_are_skewed_by_block() {
        let (mut y, mut m) = ycsb();
        let mut mgr = FirstTouchPolicy;
        let mut env = SimEnv { machine: &mut m, manager: &mut mgr };
        let mut block_counts = std::collections::HashMap::new();
        for i in 0..20_000 {
            let rank = y.zipf.sample(&mut y.rngs[i % 2]);
            let row = y.row_of_rank(rank);
            *block_counts.entry(row / ROWS_PER_BLOCK).or_insert(0u64) += 1;
            y.tick(&mut env, i % 2);
        }
        let mut counts: Vec<u64> = block_counts.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        let top4: u64 = counts.iter().take(4).sum();
        assert!(
            top4 as f64 > 0.3 * total as f64,
            "top-4 blocks carry a large share (got {top4}/{total})"
        );
    }

    #[test]
    fn row_of_rank_is_a_bijection_per_block() {
        let (y, _m) = ycsb();
        let a = y.row_of_rank(0);
        let b = y.row_of_rank(1);
        assert_eq!(a / ROWS_PER_BLOCK, b / ROWS_PER_BLOCK, "adjacent ranks share a block");
        assert_ne!(a, b);
        assert!(y.row_of_rank(300) / ROWS_PER_BLOCK != a / ROWS_PER_BLOCK);
    }

    #[test]
    fn workload_letters_set_update_fraction() {
        let base = YcsbConfig::paper(1 << 14, 2);
        assert_eq!(base.clone().with_workload('A').update_frac, 0.5);
        assert_eq!(base.clone().with_workload('b').update_frac, 0.05);
        assert_eq!(base.clone().with_workload('C').update_frac, 0.0);
    }

    #[test]
    #[should_panic(expected = "unsupported YCSB workload")]
    fn unknown_workload_letter_panics() {
        let _ = YcsbConfig::paper(1 << 14, 2).with_workload('Z');
    }

    #[test]
    fn update_fraction_respected() {
        let (mut y, mut m) = ycsb();
        m.reset_measurement();
        let mut mgr = FirstTouchPolicy;
        let mut env = SimEnv { machine: &mut m, manager: &mut mgr };
        for i in 0..10_000 {
            y.tick(&mut env, i % 2);
        }
        let counts = m.counters().all();
        let stores: u64 = counts.iter().map(|c| c.stores).sum();
        // ~50 % of 10 000 ops have exactly one store each.
        assert!((3_500..6_500).contains(&stores), "stores = {stores}");
    }
}
