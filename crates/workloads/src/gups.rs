//! GUPS: random-update benchmark with a configurable hot set.
//!
//! Mirrors the paper's use of GUPS (Table 2, Figs. 1, 6, 12): a large table
//! receives read-modify-write updates at random locations; a fraction of
//! the footprint is a *hot set* receiving most of the accesses. The
//! workload also maintains the two small hot data objects of Fig. 6 — the
//! indexes used to access the hot set ("A") and the hot-set information
//! ("B") — alongside the hot set itself ("C"). The hot band can rotate
//! periodically to create the temporal variance the paper's profilers are
//! judged on, or per-page hotness can follow a Gaussian (Sec. 3).

use tiersim::addr::{VaRange, VirtAddr, PAGE_SIZE_4K};
use tiersim::sim::{MemEnv, Workload};

use crate::layout::{elem_addr, Layout};
use crate::rng::SplitMix64;

/// How page hotness is distributed over the table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HotsetMode {
    /// A contiguous band of `hot_frac` of the table takes
    /// `hot_access_frac` of all updates.
    Band,
    /// Per-update target pages drawn from a Gaussian centred mid-table
    /// with standard deviation `hot_frac / 2` of the table (Sec. 3's
    /// "page hotness of GUPS follows a Gaussian distribution").
    Gaussian,
}

/// GUPS configuration.
#[derive(Clone, Debug)]
pub struct GupsConfig {
    /// Table size in bytes (simulated scale).
    pub table_bytes: u64,
    /// Fraction of the table that is hot (paper: 0.2).
    pub hot_frac: f64,
    /// Fraction of updates that hit the hot set (paper: 0.8).
    pub hot_access_frac: f64,
    /// Rotate the hot band every this many profiling intervals.
    pub rotate_every: Option<u64>,
    /// Hotness shape.
    pub mode: HotsetMode,
    /// Number of application threads (for per-thread generators).
    pub threads: usize,
    /// Application compute time per update, ns (the paper's GUPS is
    /// application-limited: each thread performs 1M updates per phase,
    /// i.e. hundreds of thousands of updates per second system-wide).
    pub cpu_ns_per_op: f64,
    /// RNG seed.
    pub seed: u64,
}

impl GupsConfig {
    /// The paper's configuration scaled by `scale`: a 512 GB table, 20 %
    /// hot set, 80 % of accesses to it.
    pub fn paper(scale: u64, threads: usize) -> GupsConfig {
        GupsConfig {
            table_bytes: (512u64 << 30) / scale,
            hot_frac: 0.2,
            hot_access_frac: 0.8,
            rotate_every: None,
            mode: HotsetMode::Band,
            threads,
            cpu_ns_per_op: 800.0,
            seed: 0xC0FFEE,
        }
    }
}

/// The GUPS workload.
pub struct Gups {
    cfg: GupsConfig,
    /// Object A: indexes used to access the hot set.
    index: VaRange,
    /// Object B: hot-set information (current band bounds etc.).
    hotinfo: VaRange,
    /// The table; object C is the hot band inside it.
    table: VaRange,
    band_start: u64,
    band_len: u64,
    rngs: Vec<SplitMix64>,
    band_rng: SplitMix64,
    ops: u64,
}

impl Gups {
    /// Creates a GUPS instance (VMAs are laid out in [`Workload::setup`]).
    pub fn new(cfg: GupsConfig) -> Gups {
        assert!(cfg.table_bytes >= 8 * PAGE_SIZE_4K, "table too small");
        assert!((0.0..1.0).contains(&cfg.hot_frac) && cfg.hot_frac > 0.0);
        let rngs = (0..cfg.threads.max(1)).map(|t| SplitMix64::new(cfg.seed ^ (t as u64) << 32)).collect();
        let band_rng = SplitMix64::new(cfg.seed.wrapping_mul(31));
        Gups {
            cfg,
            index: VaRange::from_len(VirtAddr(0), 0),
            hotinfo: VaRange::from_len(VirtAddr(0), 0),
            table: VaRange::from_len(VirtAddr(0), 0),
            band_start: 0,
            band_len: 0,
            rngs,
            band_rng,
            ops: 0,
        }
    }

    /// Current hot-band range within the table (object C).
    pub fn hot_band(&self) -> VaRange {
        VaRange::from_len(VirtAddr(self.table.start.0 + self.band_start), self.band_len)
    }

    /// The index object (A).
    pub fn index_range(&self) -> VaRange {
        self.index
    }

    /// The hot-set-information object (B).
    pub fn hotinfo_range(&self) -> VaRange {
        self.hotinfo
    }

    /// The table VMA.
    pub fn table_range(&self) -> VaRange {
        self.table
    }

    fn pick_target(&mut self, tid: usize) -> u64 {
        let rng = &mut self.rngs[tid];
        let len = self.table.len();
        match self.cfg.mode {
            HotsetMode::Band => {
                if rng.unit_f64() < self.cfg.hot_access_frac {
                    self.band_start + rng.below(self.band_len)
                } else {
                    // Uniform over the cold remainder.
                    let cold = len - self.band_len;
                    let r = rng.below(cold.max(1));
                    if r >= self.band_start {
                        r + self.band_len
                    } else {
                        r
                    }
                }
            }
            HotsetMode::Gaussian => {
                let pages = len / PAGE_SIZE_4K;
                let sigma = (pages as f64 * self.cfg.hot_frac / 2.0).max(1.0);
                let centre = pages as f64 / 2.0;
                let mut p = centre + sigma * rng.gaussian();
                if p < 0.0 || p >= pages as f64 {
                    p = rng.below(pages) as f64;
                }
                (p as u64) * PAGE_SIZE_4K + rng.below(PAGE_SIZE_4K / 8) * 8
            }
        }
    }

    fn rotate_band(&mut self) {
        let len = self.table.len();
        let step = (len / 16).max(PAGE_SIZE_4K);
        let max_start = len - self.band_len;
        self.band_start = (self.band_start + step + self.band_rng.below(step)) % max_start.max(1);
        // Align the band to pages so ground truth is page-granular.
        self.band_start &= !(PAGE_SIZE_4K - 1);
    }
}

impl Workload for Gups {
    fn name(&self) -> String {
        "GUPS".into()
    }

    fn setup(&mut self, env: &mut dyn MemEnv) {
        let mut layout = Layout::new();
        let index_bytes = (self.cfg.table_bytes / 512).max(PAGE_SIZE_4K);
        self.index = layout.add(env, "gups.index", index_bytes, true);
        self.hotinfo = layout.add(env, "gups.hotinfo", PAGE_SIZE_4K, true);
        self.table = layout.add(env, "gups.table", self.cfg.table_bytes, true);
        self.band_len =
            (((self.table.len() as f64 * self.cfg.hot_frac) as u64) & !(PAGE_SIZE_4K - 1)).max(PAGE_SIZE_4K);
        // The hot set is a random selection of the footprint (Sec. 9.3);
        // start the band mid-table so no placement policy gets it into
        // fast memory for free.
        self.band_start = (self.table.len() / 2) & !(PAGE_SIZE_4K - 1);
        // Touch everything so placement is decided by the active manager.
        let threads = self.cfg.threads;
        crate::layout::populate_interleaved(
            env,
            &[self.index, self.hotinfo, self.table],
            threads,
        );
    }

    fn tick(&mut self, env: &mut dyn MemEnv, tid: usize) {
        env.compute(tid, self.cfg.cpu_ns_per_op);
        let target_off = self.pick_target(tid);
        let rng = &mut self.rngs[tid];
        // Object A: read the index slot for this update.
        let slots = self.index.len() / 8;
        let a = elem_addr(self.index, rng.below(slots), 8);
        env.read(tid, a);
        // Object B: consult hot-set information.
        env.read(tid, VirtAddr(self.hotinfo.start.0 + rng.below(self.hotinfo.len() / 8) * 8));
        // Object C / table: read-modify-write the target element.
        let t = VirtAddr(self.table.start.0 + (target_off & !7));
        env.read(tid, t);
        env.write(tid, t);
        self.ops += 1;
    }

    fn footprint(&self) -> u64 {
        self.index.len() + self.hotinfo.len() + self.table.len()
    }

    fn declared_footprint(&self) -> u64 {
        use crate::layout::vma_len;
        let index_bytes = (self.cfg.table_bytes / 512).max(PAGE_SIZE_4K);
        vma_len(index_bytes) + vma_len(PAGE_SIZE_4K) + vma_len(self.cfg.table_bytes)
    }

    fn true_hot_ranges(&self) -> Vec<VaRange> {
        match self.cfg.mode {
            HotsetMode::Band => vec![self.index, self.hotinfo, self.hot_band()],
            HotsetMode::Gaussian => {
                // Central +/- sigma band holds ~68 % of accesses.
                let len = self.table.len();
                let sigma = (len as f64 * self.cfg.hot_frac / 2.0) as u64;
                let centre = len / 2;
                let start = (self.table.start.0 + centre.saturating_sub(sigma)) & !(PAGE_SIZE_4K - 1);
                vec![self.index, self.hotinfo, VaRange::from_len(VirtAddr(start), 2 * sigma)]
            }
        }
    }

    fn end_of_interval(&mut self, interval: u64) {
        if let Some(every) = self.cfg.rotate_every {
            if (interval + 1) % every == 0 {
                self.rotate_band();
            }
        }
    }

    fn ops_completed(&self) -> u64 {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim::addr::PAGE_SIZE_2M;
    use tiersim::machine::{Machine, MachineConfig};
    use tiersim::sim::{FirstTouchPolicy, SimEnv};
    use tiersim::tier::tiny_two_tier;

    fn small_cfg() -> GupsConfig {
        GupsConfig {
            table_bytes: 8 * PAGE_SIZE_2M,
            hot_frac: 0.2,
            hot_access_frac: 0.8,
            rotate_every: Some(2),
            mode: HotsetMode::Band,
            threads: 2,
            cpu_ns_per_op: 0.0,
            seed: 7,
        }
    }

    fn run_setup(g: &mut Gups) -> Machine {
        let mut m =
            Machine::new(MachineConfig::new(tiny_two_tier(64 * PAGE_SIZE_2M, 64 * PAGE_SIZE_2M), 2));
        let mut mgr = FirstTouchPolicy;
        let mut env = SimEnv { machine: &mut m, manager: &mut mgr };
        g.setup(&mut env);
        m
    }

    #[test]
    fn setup_maps_whole_footprint() {
        let mut g = Gups::new(small_cfg());
        let m = run_setup(&mut g);
        assert_eq!(m.page_table().mapped_bytes(), g.footprint());
        assert!(g.footprint() > 8 * PAGE_SIZE_2M);
    }

    #[test]
    fn updates_favour_hot_band() {
        let mut g = Gups::new(small_cfg());
        let mut m = run_setup(&mut g);
        let mut mgr = FirstTouchPolicy;
        let mut env = SimEnv { machine: &mut m, manager: &mut mgr };
        let band = g.hot_band();
        let mut hot = 0;
        let n = 20_000;
        for i in 0..n {
            let before = g.ops;
            g.tick(&mut env, i % 2);
            assert_eq!(g.ops, before + 1);
            let t = g.pick_target(i % 2);
            if band.contains(VirtAddr(g.table_range().start.0 + t)) {
                hot += 1;
            }
        }
        let frac = hot as f64 / n as f64;
        assert!((0.72..0.88).contains(&frac), "hot fraction {frac}");
    }

    #[test]
    fn rotation_moves_band() {
        let mut g = Gups::new(small_cfg());
        let _m = run_setup(&mut g);
        let before = g.hot_band();
        g.end_of_interval(0); // Interval 0: no rotation ((0+1) % 2 != 0).
        assert_eq!(g.hot_band(), before);
        g.end_of_interval(1);
        assert_ne!(g.hot_band(), before, "band rotated after the configured period");
        assert_eq!(g.hot_band().len(), before.len());
    }

    #[test]
    fn gaussian_mode_targets_centre() {
        let mut cfg = small_cfg();
        cfg.mode = HotsetMode::Gaussian;
        let mut g = Gups::new(cfg);
        let _m = run_setup(&mut g);
        let len = g.table_range().len();
        let mut central = 0;
        let n = 20_000;
        for _ in 0..n {
            let t = g.pick_target(0);
            assert!(t < len);
            if (t as f64 - len as f64 / 2.0).abs() < len as f64 * 0.2 {
                central += 1;
            }
        }
        // +/- 2 sigma covers ~95 % of draws.
        assert!(central as f64 > 0.85 * n as f64, "central = {central}");
    }

    #[test]
    fn true_hot_ranges_cover_objects() {
        let mut g = Gups::new(small_cfg());
        let _m = run_setup(&mut g);
        let hot = g.true_hot_ranges();
        assert_eq!(hot.len(), 3);
        assert_eq!(hot[0], g.index_range());
        assert_eq!(hot[2], g.hot_band());
    }
}
