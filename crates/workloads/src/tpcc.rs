//! TPC-C-style in-memory database workload (the VoltDB surrogate).
//!
//! Reproduces the access skeleton of VoltDB running TPC-C with thousands of
//! warehouses (Table 2: 300 GB, 1:1 R/W): tiny, very hot warehouse and
//! district rows; a shared hot item table; large customer and stock tables
//! with NURand-style skew; and an order log receiving sequential appends
//! with reads concentrated near the head. Each thread has a home warehouse
//! it mostly serves (TPC-C terminals), with a fraction of remote-warehouse
//! transactions.

use tiersim::addr::{VaRange, VirtAddr};
use tiersim::sim::{MemEnv, Workload};

use crate::layout::{elem_addr, Layout};
use crate::rng::{SplitMix64, Zipfian};

const WAREHOUSE_ROW: u64 = 128;
const DISTRICT_ROW: u64 = 128;
const DISTRICTS_PER_WH: u64 = 10;
const CUSTOMER_ROW: u64 = 1024;
const CUSTOMERS_PER_DISTRICT: u64 = 3_000;
const STOCK_ROW: u64 = 320;
const ITEMS: u64 = 100_000;
const ITEM_ROW: u64 = 80;
const STOCK_PER_WH: u64 = ITEMS;
const ORDER_LINE: u64 = 64;

/// TPC-C configuration.
#[derive(Clone, Debug)]
pub struct TpccConfig {
    /// Number of warehouses.
    pub warehouses: u64,
    /// Customer rows per district (the TPC-C spec's 3 000; thinned below
    /// the warehouse floor so the footprint keeps tracking `1/scale`).
    pub customers_per_district: u64,
    /// Stock rows per warehouse (the spec's 100 000; thinned like the
    /// customer table).
    pub stock_per_wh: u64,
    /// Item-table rows (the spec's fixed 100 000). The item table is not
    /// per-warehouse, so without thinning its 8 MB dwarfs a deeply
    /// scaled tenant's whole quota; below the warehouse floor it shrinks
    /// with the same rule as the stock table.
    pub items: u64,
    /// Number of application threads.
    pub threads: usize,
    /// Fraction of transactions against a non-home warehouse.
    pub remote_frac: f64,
    /// Compute time per transaction, ns (SQL execution, logging, locking
    /// — VoltDB runs tens of thousands of TPC-C transactions per second).
    pub cpu_ns_per_op: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TpccConfig {
    /// The paper's configuration scaled by `scale`: 5 K warehouses
    /// (~300 GB) at scale 1. TPC-C needs at least two warehouses (remote
    /// transactions must have somewhere to go), so past `scale > 2500`
    /// the warehouse count pins at 2 and the customer, stock, and item
    /// *densities* shrink instead — the footprint stays proportional to
    /// `1/scale` at every scale, where the old pure floor froze it at
    /// ~142 MB (fatal in a deeply split multi-tenant quota).
    pub fn paper(scale: u64, threads: usize) -> TpccConfig {
        let warehouses = (5_000 / scale).max(2);
        let thin = |rows: u64, floor: u64| {
            if 5_000 / scale >= 2 {
                rows
            } else {
                (rows * 5_000 / (warehouses * scale)).max(floor)
            }
        };
        TpccConfig {
            warehouses,
            customers_per_district: thin(CUSTOMERS_PER_DISTRICT, 30),
            stock_per_wh: thin(STOCK_PER_WH, 1_000),
            items: thin(ITEMS, 1_000),
            threads,
            remote_frac: 0.1,
            cpu_ns_per_op: 25_000.0,
            seed: 0x7C0C,
        }
    }
}

/// The TPC-C workload.
pub struct Tpcc {
    cfg: TpccConfig,
    items: VaRange,
    warehouse: VaRange,
    district: VaRange,
    customer: VaRange,
    stock: VaRange,
    orderlog: VaRange,
    order_head: u64,
    cust_skew: Zipfian,
    stock_skew: Zipfian,
    item_skew: Zipfian,
    rngs: Vec<SplitMix64>,
    ops: u64,
}

impl Tpcc {
    /// Creates a TPC-C instance (VMAs laid out in [`Workload::setup`]).
    pub fn new(cfg: TpccConfig) -> Tpcc {
        let rngs = (0..cfg.threads.max(1))
            .map(|t| SplitMix64::new(cfg.seed ^ ((t as u64) << 24)))
            .collect();
        Tpcc {
            cust_skew: Zipfian::new(cfg.customers_per_district, 0.6),
            stock_skew: Zipfian::new(cfg.stock_per_wh, 0.6),
            item_skew: Zipfian::new(cfg.items, 0.8),
            cfg,
            items: VaRange::from_len(VirtAddr(0), 0),
            warehouse: VaRange::from_len(VirtAddr(0), 0),
            district: VaRange::from_len(VirtAddr(0), 0),
            customer: VaRange::from_len(VirtAddr(0), 0),
            stock: VaRange::from_len(VirtAddr(0), 0),
            orderlog: VaRange::from_len(VirtAddr(0), 0),
            order_head: 0,
            rngs,
            ops: 0,
        }
    }

    fn pick_warehouse(&mut self, tid: usize) -> u64 {
        let w = self.cfg.warehouses;
        let home = (tid as u64) % w;
        let rng = &mut self.rngs[tid];
        if rng.unit_f64() < self.cfg.remote_frac {
            rng.below(w)
        } else {
            home
        }
    }

    fn customer_addr(&self, wh: u64, district: u64, cust: u64) -> VirtAddr {
        let idx = (wh * DISTRICTS_PER_WH + district) * self.cfg.customers_per_district + cust;
        elem_addr(self.customer, idx, CUSTOMER_ROW)
    }

    fn stock_addr(&self, wh: u64, item: u64) -> VirtAddr {
        elem_addr(self.stock, wh * self.cfg.stock_per_wh + item, STOCK_ROW)
    }

    fn new_order(&mut self, env: &mut dyn MemEnv, tid: usize) {
        let wh = self.pick_warehouse(tid);
        let district = self.rngs[tid].below(DISTRICTS_PER_WH);
        // Warehouse row read; district row read + D_NEXT_O_ID update.
        env.read(tid, elem_addr(self.warehouse, wh, WAREHOUSE_ROW));
        let d = elem_addr(self.district, wh * DISTRICTS_PER_WH + district, DISTRICT_ROW);
        env.read(tid, d);
        env.write(tid, d);
        // Customer lookup (NURand-style skew).
        let cust = self.cust_skew.sample(&mut self.rngs[tid]);
        env.read(tid, self.customer_addr(wh, district, cust));
        // Order lines: ten items.
        for _ in 0..10 {
            let item = self.item_skew.sample(&mut self.rngs[tid]);
            env.read(tid, elem_addr(self.items, item, ITEM_ROW));
            let sk_item = self.stock_skew.sample(&mut self.rngs[tid]);
            let s = self.stock_addr(wh, sk_item);
            env.read(tid, s);
            env.write(tid, s);
            // Append the order line to the log (ring).
            let slot = self.order_head % (self.orderlog.len() / ORDER_LINE);
            env.write(tid, elem_addr(self.orderlog, slot, ORDER_LINE));
            self.order_head += 1;
        }
    }

    fn payment(&mut self, env: &mut dyn MemEnv, tid: usize) {
        let wh = self.pick_warehouse(tid);
        let district = self.rngs[tid].below(DISTRICTS_PER_WH);
        let w = elem_addr(self.warehouse, wh, WAREHOUSE_ROW);
        env.read(tid, w);
        env.write(tid, w);
        let d = elem_addr(self.district, wh * DISTRICTS_PER_WH + district, DISTRICT_ROW);
        env.read(tid, d);
        env.write(tid, d);
        let cust = self.cust_skew.sample(&mut self.rngs[tid]);
        let c = self.customer_addr(wh, district, cust);
        env.read(tid, c);
        env.write(tid, c);
    }

    fn order_status(&mut self, env: &mut dyn MemEnv, tid: usize) {
        // Read a handful of recent order lines near the log head.
        let slots = self.orderlog.len() / ORDER_LINE;
        let rng = &mut self.rngs[tid];
        let back = rng.below(256.min(slots));
        let base = (self.order_head + slots - back) % slots;
        for k in 0..5 {
            env.read(tid, elem_addr(self.orderlog, (base + k) % slots, ORDER_LINE));
        }
    }
}

impl Workload for Tpcc {
    fn name(&self) -> String {
        "VoltDB".into()
    }

    fn setup(&mut self, env: &mut dyn MemEnv) {
        let w = self.cfg.warehouses;
        let mut layout = Layout::new();
        self.items = layout.add(env, "tpcc.item", self.cfg.items * ITEM_ROW, true);
        self.warehouse = layout.add(env, "tpcc.warehouse", w * WAREHOUSE_ROW, true);
        self.district = layout.add(env, "tpcc.district", w * DISTRICTS_PER_WH * DISTRICT_ROW, true);
        self.customer = layout.add(
            env,
            "tpcc.customer",
            w * DISTRICTS_PER_WH * self.cfg.customers_per_district * CUSTOMER_ROW,
            true,
        );
        self.stock =
            layout.add(env, "tpcc.stock", w * self.cfg.stock_per_wh * STOCK_ROW, true);
        let log_bytes = (self.stock.len() / 8).max(ORDER_LINE * 1024);
        self.orderlog = layout.add(env, "tpcc.orderlog", log_bytes, true);
        let threads = self.cfg.threads.max(1);
        crate::layout::populate_interleaved(env, &[self.items, self.warehouse, self.district, self.customer, self.stock, self.orderlog], threads);
    }

    fn tick(&mut self, env: &mut dyn MemEnv, tid: usize) {
        env.compute(tid, self.cfg.cpu_ns_per_op);
        let dice = self.rngs[tid].unit_f64();
        if dice < 0.45 {
            self.new_order(env, tid);
        } else if dice < 0.88 {
            self.payment(env, tid);
        } else {
            self.order_status(env, tid);
        }
        self.ops += 1;
    }

    fn footprint(&self) -> u64 {
        self.items.len()
            + self.warehouse.len()
            + self.district.len()
            + self.customer.len()
            + self.stock.len()
            + self.orderlog.len()
    }

    fn declared_footprint(&self) -> u64 {
        use crate::layout::vma_len;
        let w = self.cfg.warehouses;
        let stock = vma_len(w * self.cfg.stock_per_wh * STOCK_ROW);
        vma_len(self.cfg.items * ITEM_ROW)
            + vma_len(w * WAREHOUSE_ROW)
            + vma_len(w * DISTRICTS_PER_WH * DISTRICT_ROW)
            + vma_len(w * DISTRICTS_PER_WH * self.cfg.customers_per_district * CUSTOMER_ROW)
            + stock
            + vma_len((stock / 8).max(ORDER_LINE * 1024))
    }

    fn true_hot_ranges(&self) -> Vec<VaRange> {
        vec![self.items, self.warehouse, self.district]
    }

    fn ops_completed(&self) -> u64 {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim::addr::PAGE_SIZE_2M;
    use tiersim::machine::{Machine, MachineConfig};
    use tiersim::sim::{FirstTouchPolicy, SimEnv};
    use tiersim::tier::tiny_two_tier;

    fn tpcc() -> (Tpcc, Machine) {
        let cfg = TpccConfig {
            warehouses: 2,
            customers_per_district: CUSTOMERS_PER_DISTRICT,
            stock_per_wh: STOCK_PER_WH,
            items: ITEMS,
            threads: 2,
            remote_frac: 0.1,
            cpu_ns_per_op: 0.0,
            seed: 3,
        };
        let mut t = Tpcc::new(cfg);
        let mut m = Machine::new(MachineConfig::new(
            tiny_two_tier(128 * PAGE_SIZE_2M, 128 * PAGE_SIZE_2M),
            2,
        ));
        {
            let mut mgr = FirstTouchPolicy;
            let mut env = SimEnv { machine: &mut m, manager: &mut mgr };
            t.setup(&mut env);
        }
        (t, m)
    }

    #[test]
    fn setup_sizes_tables() {
        let (t, m) = tpcc();
        // Stock dominates: 2 warehouses x 100K x 320 B = 64 MB.
        assert!(t.footprint() > 64 << 20);
        assert_eq!(m.page_table().mapped_bytes(), t.footprint());
    }

    #[test]
    fn transactions_mix_reads_and_writes() {
        let (mut t, mut m) = tpcc();
        let mut mgr = FirstTouchPolicy;
        let mut env = SimEnv { machine: &mut m, manager: &mut mgr };
        for i in 0..2_000 {
            t.tick(&mut env, i % 2);
        }
        assert_eq!(t.ops_completed(), 2_000);
        let counts = env.machine().counters().all();
        let loads: u64 = counts.iter().map(|c| c.loads).sum();
        let stores: u64 = counts.iter().map(|c| c.stores).sum();
        // Roughly 1:1 R/W as in Table 2 (setup writes excluded would make
        // this tighter; the mix keeps stores within 2x of loads).
        assert!(stores > 0 && loads > 0);
        let ratio = loads as f64 / stores as f64;
        assert!((0.4..4.0).contains(&ratio), "R/W ratio {ratio}");
    }

    #[test]
    fn order_log_wraps() {
        let (mut t, mut m) = tpcc();
        let mut mgr = FirstTouchPolicy;
        let mut env = SimEnv { machine: &mut m, manager: &mut mgr };
        let slots = t.orderlog.len() / ORDER_LINE;
        for i in 0..(slots / 5) as usize {
            t.new_order(&mut env, i % 2);
        }
        assert!(t.order_head > slots, "head advanced past one lap");
    }

    #[test]
    fn paper_scaling_thins_density_below_the_warehouse_floor() {
        // Above the floor: spec densities, warehouses track scale.
        let big = TpccConfig::paper(256, 2);
        assert_eq!(big.warehouses, 19);
        assert_eq!(big.customers_per_district, CUSTOMERS_PER_DISTRICT);
        assert_eq!(big.stock_per_wh, STOCK_PER_WH);
        assert_eq!(big.items, ITEMS);
        // Below the floor: two warehouses, thinner tables — the dominant
        // tables keep shrinking with scale instead of freezing.
        let small = TpccConfig::paper(4096, 2);
        assert_eq!(small.warehouses, 2);
        assert!(small.customers_per_district < CUSTOMERS_PER_DISTRICT);
        assert!(small.stock_per_wh < STOCK_PER_WH);
        assert!(small.items < ITEMS, "the shared item table thins too");
        let smaller = TpccConfig::paper(8192, 2);
        assert!(
            smaller.stock_per_wh < small.stock_per_wh,
            "footprint keeps tracking 1/scale past the floor"
        );
        let dominant = |c: &TpccConfig| {
            c.warehouses
                * (DISTRICTS_PER_WH * c.customers_per_district * CUSTOMER_ROW
                    + c.stock_per_wh * STOCK_ROW)
        };
        let ratio = dominant(&small) as f64 / dominant(&smaller) as f64;
        assert!((1.5..2.5).contains(&ratio), "halving again roughly halves bytes: {ratio}");
        // A 32-tenant quick cell hands each tenant about six 2 MB blocks;
        // all six tables must fit that even after per-VMA frame rounding.
        let deep = TpccConfig::paper(4096 * 32, 2);
        let round = |b: u64| b.div_ceil(PAGE_SIZE_2M).max(1) * PAGE_SIZE_2M;
        let stock_bytes = deep.warehouses * deep.stock_per_wh * STOCK_ROW;
        let frames = round(deep.items * ITEM_ROW)
            + round(deep.warehouses * WAREHOUSE_ROW)
            + round(deep.warehouses * DISTRICTS_PER_WH * DISTRICT_ROW)
            + round(
                deep.warehouses * DISTRICTS_PER_WH * deep.customers_per_district * CUSTOMER_ROW,
            )
            + round(stock_bytes)
            + round((stock_bytes / 8).max(ORDER_LINE * 1024));
        assert!(frames <= 12 << 20, "deep-split footprint outgrows its quota: {frames}");
    }

    #[test]
    fn hot_ranges_are_small_tables() {
        let (t, _m) = tpcc();
        let hot = t.true_hot_ranges();
        let hot_bytes: u64 = hot.iter().map(|r| r.len()).sum();
        assert!(hot_bytes * 4 < t.footprint(), "hot set is a small fraction");
    }
}
