//! Shadow-state sanitizer for the simulated machine (`MTM_CHECK=1`).
//!
//! Migration bugs in a tiered-memory simulator are silent: a lost page, a
//! leaked frame or a double-counted byte skews a report without crashing
//! anything, and the scattered regression tests only catch the failure
//! modes someone already imagined. This crate is the runtime analogue of
//! Miri's interpreter checks and HeMem's debug accounting: a dependency-
//! free shadow model of "which virtual page lives on which frame of which
//! tier" plus census checks that the authoritative structures (page table,
//! per-component frame allocators, observability counters and event ring)
//! agree with each other.
//!
//! The sanitizer is **observation-only**. It never touches the virtual
//! clock, any counter or any RNG, so a checked run produces byte-identical
//! reports to an unchecked one — it can only panic, with a structured
//! diff of shadow vs. actual state, when an invariant is broken.
//!
//! `tiersim::Machine` owns the hooks (see `Machine::verify_consistency`);
//! this crate holds the model and the verdicts so the logic stays testable
//! without a machine.

use std::collections::BTreeMap;
use std::sync::OnceLock;

/// True when the process was started with `MTM_CHECK=1` (or `true`/`on`).
/// Read once; tests that need the sanitizer regardless of the environment
/// use `Machine::set_checking` instead of mutating the environment.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var("MTM_CHECK")
            .map(|v| {
                let v = v.trim().to_ascii_lowercase();
                v == "1" || v == "true" || v == "on"
            })
            .unwrap_or(false)
    })
}

/// Shadow record of one mapped page: where the page table says it lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShadowPage {
    /// Memory component (tier) backing the page.
    pub component: u16,
    /// Frame offset within the component.
    pub frame_offset: u64,
    /// Mapping granularity in bytes (4 KB or 2 MB).
    pub bytes: u64,
}

/// A snapshot of the mapped state of an address range: virtual page base
/// -> shadow record. Ordered so diffs and censuses are deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShadowState {
    /// Mapped pages keyed by virtual base address.
    pub pages: BTreeMap<u64, ShadowPage>,
}

impl ShadowState {
    /// An empty snapshot.
    pub fn new() -> ShadowState {
        ShadowState::default()
    }

    /// Records one mapped page.
    pub fn insert(&mut self, va: u64, page: ShadowPage) {
        self.pages.insert(va, page);
    }

    /// Total mapped bytes in the snapshot.
    pub fn total_bytes(&self) -> u64 {
        self.pages.values().map(|p| p.bytes).sum()
    }

    /// Mapped bytes resident on `component`.
    pub fn bytes_on(&self, component: u16) -> u64 {
        self.pages.values().filter(|p| p.component == component).map(|p| p.bytes).sum()
    }

    /// Mapped bytes per component, ordered by component id.
    pub fn bytes_by_component(&self) -> BTreeMap<u16, u64> {
        let mut out = BTreeMap::new();
        for p in self.pages.values() {
            *out.entry(p.component).or_insert(0) += p.bytes;
        }
        out
    }

    /// Structural diff against a later snapshot of the same range: one
    /// line per page that appeared, vanished, or changed placement or
    /// granularity. Empty iff the two snapshots are identical.
    pub fn diff(&self, after: &ShadowState) -> Vec<String> {
        let mut out = Vec::new();
        for (&va, pre) in &self.pages {
            match after.pages.get(&va) {
                None => out.push(format!(
                    "page {va:#x}: mapped before (component {}, frame {:#x}, {} B) but gone after",
                    pre.component, pre.frame_offset, pre.bytes
                )),
                Some(post) if post != pre => out.push(format!(
                    "page {va:#x}: component {} frame {:#x} ({} B) -> component {} frame {:#x} ({} B)",
                    pre.component, pre.frame_offset, pre.bytes,
                    post.component, post.frame_offset, post.bytes
                )),
                Some(_) => {}
            }
        }
        for (&va, post) in &after.pages {
            if !self.pages.contains_key(&va) {
                out.push(format!(
                    "page {va:#x}: unmapped before but mapped after (component {}, frame {:#x}, {} B)",
                    post.component, post.frame_offset, post.bytes
                ));
            }
        }
        out
    }

    /// Placement diff: per-component byte totals only. Insensitive to THP
    /// splits (which change granularity but move no bytes), so it is the
    /// right invariant for aborts that may legitimately have split a
    /// mapping before failing.
    pub fn placement_diff(&self, after: &ShadowState) -> Vec<String> {
        let pre = self.bytes_by_component();
        let post = after.bytes_by_component();
        let mut out = Vec::new();
        let components: std::collections::BTreeSet<u16> =
            pre.keys().chain(post.keys()).copied().collect();
        for c in components {
            let a = pre.get(&c).copied().unwrap_or(0);
            let b = post.get(&c).copied().unwrap_or(0);
            if a != b {
                out.push(format!("component {c}: {a} B mapped before vs {b} B after"));
            }
        }
        out
    }
}

/// One component's occupancy as seen by the two authorities that must
/// agree: the page-table census and the frame allocator.
#[derive(Clone, Copy, Debug)]
pub struct CensusRow {
    /// Component id.
    pub component: u16,
    /// Bytes mapped onto this component per the page-table walk.
    pub mapped_bytes: u64,
    /// Bytes retained as shadow copies (Nomad non-exclusive mode): frames
    /// the allocator holds that back no live mapping, by design.
    pub shadow_bytes: u64,
    /// Bytes the component's allocator reports as allocated.
    pub allocator_used: u64,
    /// The allocator's capacity.
    pub capacity: u64,
}

/// Verifies tier occupancy: every component's allocator-used bytes must
/// equal the frame-map census plus retained shadow bytes, and neither may
/// exceed capacity.
pub fn check_census(rows: &[CensusRow]) -> Vec<String> {
    let mut out = Vec::new();
    for r in rows {
        if r.mapped_bytes + r.shadow_bytes != r.allocator_used {
            out.push(format!(
                "component {} occupancy drift: page-table census maps {} B (+{} B shadow) but allocator reports {} B used ({} B capacity)",
                r.component, r.mapped_bytes, r.shadow_bytes, r.allocator_used, r.capacity
            ));
        }
        if r.allocator_used > r.capacity {
            out.push(format!(
                "component {} over capacity: {} B used of {} B",
                r.component, r.allocator_used, r.capacity
            ));
        }
    }
    out
}

/// Verifies a multi-tenant quota partition of one physical component:
/// the per-tenant quota bytes must sum to exactly the component's
/// capacity (arbitration may move capacity between tenants, never create
/// or destroy it), and no tenant may hold more bytes than its quota.
/// `quotas` and `used` are indexed by tenant.
pub fn check_quota_partition(
    component: u16,
    quotas: &[u64],
    used: &[u64],
    capacity: u64,
) -> Vec<String> {
    let mut out = Vec::new();
    if quotas.len() != used.len() {
        out.push(format!(
            "component {component} quota ledger shape: {} quota(s) vs {} usage row(s)",
            quotas.len(),
            used.len()
        ));
        return out;
    }
    let total: u64 = quotas.iter().sum();
    if total != capacity {
        out.push(format!(
            "component {component} quota leak: per-tenant quotas sum to {total} B but capacity is {capacity} B"
        ));
    }
    for (t, (&q, &u)) in quotas.iter().zip(used).enumerate() {
        if u > q {
            out.push(format!(
                "component {component} tenant {t} over quota: {u} B used of {q} B granted"
            ));
        }
    }
    out
}

/// Verifies that no physical frame backs two live mappings: `spans` is
/// one `(component, frame_start, frame_end, va)` entry per mapped page.
/// Sorted sweep; overlap means a page was duplicated or a frame leaked
/// back into the allocator while still mapped.
pub fn check_frame_overlap(spans: &mut Vec<(u16, u64, u64, u64)>) -> Vec<String> {
    spans.sort_unstable();
    let mut out = Vec::new();
    for w in spans.windows(2) {
        let (c0, s0, e0, va0) = w[0];
        let (c1, s1, _e1, va1) = w[1];
        if c0 == c1 && s1 < e0 {
            out.push(format!(
                "frame overlap on component {c0}: va {va0:#x} holds [{s0:#x}, {e0:#x}) and va {va1:#x} starts at {s1:#x}"
            ));
        }
    }
    out
}

/// One counter that must agree with the number of matching events in the
/// bounded ring. When the ring never overflowed the relation is exact;
/// once events were shed the retained count is only a lower bound.
#[derive(Clone, Copy, Debug)]
pub struct CounterEventPair {
    /// Counter name (for the violation message).
    pub name: &'static str,
    /// The counter's value.
    pub counter: u64,
    /// Matching events retained in the ring.
    pub events: u64,
}

/// Verifies counter/ring consistency given how many events the ring shed.
pub fn check_counter_events(pairs: &[CounterEventPair], ring_dropped: u64) -> Vec<String> {
    let mut out = Vec::new();
    for p in pairs {
        let consistent = if ring_dropped == 0 { p.counter == p.events } else { p.counter >= p.events };
        if !consistent {
            out.push(format!(
                "counter/ring drift for {}: counter={} vs {} ring event(s) (ring dropped {})",
                p.name, p.counter, p.events, ring_dropped
            ));
        }
    }
    out
}

/// Panics with a structured report of every violation. `context` names
/// the check point (e.g. `relocate_range commit`, `interval boundary`).
pub fn fail(context: &str, violations: &[String]) -> ! {
    let mut msg = format!(
        "MTM_CHECK violation at {context}: {} invariant(s) broken\n",
        violations.len()
    );
    for v in violations {
        msg.push_str("  - ");
        msg.push_str(v);
        msg.push('\n');
    }
    // lint:allow(panic-path): aborting on a broken invariant is this crate's entire contract
    panic!("{msg}");
}

/// Panics via [`fail`] iff `violations` is non-empty.
pub fn assert_clean(context: &str, violations: Vec<String>) {
    if !violations.is_empty() {
        fail(context, &violations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(component: u16, frame_offset: u64, bytes: u64) -> ShadowPage {
        ShadowPage { component, frame_offset, bytes }
    }

    #[test]
    fn identical_snapshots_diff_empty() {
        let mut a = ShadowState::new();
        a.insert(0x1000, page(0, 0x4000, 4096));
        let b = a.clone();
        assert!(a.diff(&b).is_empty());
        assert!(a.placement_diff(&b).is_empty());
    }

    #[test]
    fn moved_page_shows_in_diff() {
        let mut a = ShadowState::new();
        a.insert(0x1000, page(0, 0x4000, 4096));
        let mut b = ShadowState::new();
        b.insert(0x1000, page(1, 0x0, 4096));
        let d = a.diff(&b);
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("component 0") && d[0].contains("component 1"), "{d:?}");
        let p = a.placement_diff(&b);
        assert_eq!(p.len(), 2, "both components' totals changed: {p:?}");
    }

    #[test]
    fn lost_and_duplicated_pages_show_in_diff() {
        let mut a = ShadowState::new();
        a.insert(0x1000, page(0, 0x4000, 4096));
        let mut b = ShadowState::new();
        b.insert(0x2000, page(0, 0x5000, 4096));
        let d = a.diff(&b);
        assert_eq!(d.len(), 2);
        assert!(d.iter().any(|l| l.contains("gone after")));
        assert!(d.iter().any(|l| l.contains("unmapped before")));
    }

    #[test]
    fn split_is_placement_neutral() {
        // 2 MB huge page vs the same bytes as 512 base pages: structural
        // diff fires, placement diff must not.
        let mut huge = ShadowState::new();
        huge.insert(0, page(2, 0, 2 << 20));
        let mut split = ShadowState::new();
        for i in 0..512u64 {
            split.insert(i * 4096, page(2, i * 4096, 4096));
        }
        assert!(!huge.diff(&split).is_empty());
        assert!(huge.placement_diff(&split).is_empty());
        assert_eq!(huge.total_bytes(), split.total_bytes());
        assert_eq!(huge.bytes_on(2), split.bytes_on(2));
    }

    #[test]
    fn census_catches_drift_and_overflow() {
        let ok = CensusRow { component: 0, mapped_bytes: 8192, shadow_bytes: 0, allocator_used: 8192, capacity: 1 << 21 };
        assert!(check_census(&[ok]).is_empty());
        let drift = CensusRow { component: 1, mapped_bytes: 4096, shadow_bytes: 0, allocator_used: 8192, capacity: 1 << 21 };
        let v = check_census(&[drift]);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("occupancy drift"), "{v:?}");
        let over = CensusRow { component: 2, mapped_bytes: 1 << 22, shadow_bytes: 0, allocator_used: 1 << 22, capacity: 1 << 21 };
        assert!(check_census(&[over]).iter().any(|l| l.contains("over capacity")));
        // Shadow bytes explain allocator/census gaps exactly: a retained
        // shadow copy is not drift, but an unexplained remainder still is.
        let shadowed = CensusRow { component: 3, mapped_bytes: 4096, shadow_bytes: 4096, allocator_used: 8192, capacity: 1 << 21 };
        assert!(check_census(&[shadowed]).is_empty());
        let leak = CensusRow { component: 4, mapped_bytes: 4096, shadow_bytes: 4096, allocator_used: 12288, capacity: 1 << 21 };
        assert!(check_census(&[leak]).iter().any(|l| l.contains("occupancy drift")));
    }

    #[test]
    fn overlap_detected_within_component_only() {
        let mut clean = vec![(0u16, 0u64, 4096u64, 0u64), (0, 4096, 8192, 0x1000), (1, 0, 4096, 0x2000)];
        assert!(check_frame_overlap(&mut clean).is_empty());
        let mut dup = vec![(0u16, 0u64, 4096u64, 0u64), (0, 0, 4096, 0x9000)];
        let v = check_frame_overlap(&mut dup);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("frame overlap"), "{v:?}");
        // Same offsets on different components do not overlap.
        let mut cross = vec![(0u16, 0u64, 4096u64, 0u64), (1, 0, 4096, 0x1000)];
        assert!(check_frame_overlap(&mut cross).is_empty());
    }

    #[test]
    fn quota_partition_is_exact_and_bounded() {
        // Exact partition with everyone inside their grant: clean.
        assert!(check_quota_partition(0, &[4 << 21, 4 << 21], &[1 << 21, 4 << 21], 8 << 21)
            .is_empty());
        // Quotas that do not sum to capacity leak (or mint) bytes.
        let v = check_quota_partition(1, &[4 << 21, 3 << 21], &[0, 0], 8 << 21);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("quota leak"), "{v:?}");
        // A tenant above its grant is flagged by index.
        let v = check_quota_partition(2, &[4 << 21, 4 << 21], &[5 << 21, 0], 8 << 21);
        assert!(v.iter().any(|l| l.contains("tenant 0 over quota")), "{v:?}");
        // Shape mismatch short-circuits with a single structural error.
        let v = check_quota_partition(3, &[1], &[1, 2], 1);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("ledger shape"), "{v:?}");
    }

    #[test]
    fn counter_ring_exact_until_ring_drops() {
        let pair = CounterEventPair { name: "x", counter: 3, events: 2 };
        assert_eq!(check_counter_events(&[pair], 0).len(), 1);
        // With shed history the counter may exceed the retained events...
        assert!(check_counter_events(&[pair], 5).is_empty());
        // ...but never undershoot them.
        let under = CounterEventPair { name: "y", counter: 1, events: 2 };
        assert_eq!(check_counter_events(&[under], 5).len(), 1);
    }

    #[test]
    fn fail_panics_with_structured_report() {
        let err = std::panic::catch_unwind(|| {
            fail("unit test", &["component 0 occupancy drift: 1 vs 2".to_string()]);
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic payload is a String");
        assert!(msg.contains("MTM_CHECK violation at unit test"), "{msg}");
        assert!(msg.contains("1 invariant(s) broken"), "{msg}");
        assert!(msg.contains("occupancy drift"), "{msg}");
    }

    #[test]
    fn assert_clean_is_silent_on_empty() {
        assert_clean("unit test", Vec::new());
    }
}
