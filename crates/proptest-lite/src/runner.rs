//! The property runner: generate, test, shrink, report.

use crate::gen::Gen;
use tiersim::rng::SplitMix64;

/// Default base seed; overridden by `PROPTEST_LITE_SEED`.
const DEFAULT_SEED: u64 = 0x5eed_1e55_u64;

/// Hard cap on property evaluations spent shrinking one failure.
const SHRINK_BUDGET: u32 = 1024;

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated inputs to test.
    pub cases: u64,
    /// Base seed; each case derives its own stream from it.
    pub seed: u64,
}

impl Config {
    /// `cases` generated inputs, honoring the `PROPTEST_LITE_SEED` and
    /// `PROPTEST_LITE_CASES` environment overrides (for replaying a
    /// reported failure and for soak runs respectively).
    pub fn with_cases(cases: u64) -> Config {
        let seed = std::env::var("PROPTEST_LITE_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        let cases = std::env::var("PROPTEST_LITE_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(cases);
        Config { cases, seed }
    }
}

/// Derives the per-case RNG from the base seed. Kept public so a
/// failure can be replayed by hand for a single case.
pub fn case_rng(base_seed: u64, case: u64) -> SplitMix64 {
    // Decorrelate cases by running the case index through one SplitMix64
    // step seeded off the base.
    let mut mixer = SplitMix64::new(base_seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    SplitMix64::new(mixer.next_u64())
}

/// Runs `prop` over `config.cases` inputs drawn from `gen`.
///
/// On the first failing input the runner shrinks greedily — it walks the
/// generator's candidates and restarts from the first one that still
/// fails, until no candidate fails or the budget is spent — then panics
/// with the minimal counterexample, the property error, and the
/// `PROPTEST_LITE_SEED` needed to replay the run.
pub fn check<G, F>(name: &str, config: &Config, gen: &G, prop: F)
where
    G: Gen,
    F: Fn(&G::Value) -> Result<(), String>,
{
    for case in 0..config.cases {
        let mut rng = case_rng(config.seed, case);
        let value = gen.generate(&mut rng);
        if let Err(err) = prop(&value) {
            let (shrunk, err, steps) = shrink_failure(gen, &prop, value, err);
            panic!(
                "property '{name}' falsified at case {case}/{cases} \
                 (base seed {seed:#x})\n  \
                 replay: PROPTEST_LITE_SEED={seed} cargo test {name}\n  \
                 counterexample (after {steps} shrink steps): {shrunk:?}\n  \
                 error: {err}",
                cases = config.cases,
                seed = config.seed,
            );
        }
    }
}

/// Greedy shrink loop: keep the first simpler candidate that still
/// fails; stop when everything passes or the budget runs out.
fn shrink_failure<G, F>(
    gen: &G,
    prop: &F,
    mut value: G::Value,
    mut err: String,
) -> (G::Value, String, u32)
where
    G: Gen,
    F: Fn(&G::Value) -> Result<(), String>,
{
    let mut budget = SHRINK_BUDGET;
    let mut steps = 0;
    'outer: while budget > 0 {
        for candidate in gen.shrink(&value) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Err(candidate_err) = prop(&candidate) {
                value = candidate;
                err = candidate_err;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (value, err, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn passing_property_runs_all_cases() {
        let counted = std::cell::Cell::new(0u64);
        let config = Config { cases: 32, seed: 1 };
        check("always_true", &config, &gen::u64_range(0, 10), |_| {
            counted.set(counted.get() + 1);
            Ok(())
        });
        assert_eq!(counted.get(), 32);
    }

    #[test]
    fn failure_is_shrunk_to_boundary_and_reports_seed() {
        // Property "v < 500" over [0, 1000): minimal counterexample via
        // bisection from any failing value lands at or near 500.
        let config = Config { cases: 256, seed: 99 };
        let result = std::panic::catch_unwind(|| {
            check("bounded", &config, &gen::u64_range(0, 1000), |v| {
                if *v >= 500 {
                    Err(format!("{v} too big"))
                } else {
                    Ok(())
                }
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("PROPTEST_LITE_SEED=99"), "seed in message: {msg}");
        assert!(msg.contains("counterexample"), "counterexample in message: {msg}");
        // Greedy bisection toward 0 converges to exactly the boundary.
        assert!(msg.contains(": 500"), "shrunk to boundary: {msg}");
    }

    #[test]
    fn vec_failures_shrink_length() {
        // "no vec contains a 7" — minimal counterexample is a single 7.
        let config = Config { cases: 512, seed: 3 };
        let g = gen::vec_in(gen::u64_range(0, 8), 1, 32);
        let result = std::panic::catch_unwind(|| {
            check("no_sevens", &config, &g, |v| {
                if v.contains(&7) {
                    Err("has a 7".into())
                } else {
                    Ok(())
                }
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("[7]"), "minimal vec: {msg}");
    }

    #[test]
    fn case_rng_streams_are_decorrelated() {
        let a = case_rng(1, 0).next_u64();
        let b = case_rng(1, 1).next_u64();
        let c = case_rng(2, 0).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
