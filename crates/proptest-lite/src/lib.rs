//! `proptest-lite` — a minimal, dependency-free property-testing harness.
//!
//! The workspace builds hermetically (no registry access), so instead of
//! pulling in `proptest` this crate provides the small slice of it the
//! repo actually uses:
//!
//! * [`gen`] — composable generators ([`Gen`]) driven by the workspace's
//!   deterministic [`SplitMix64`] stream: scalar ranges, fixed- and
//!   variable-length vectors, and tuples.
//! * [`runner`] — a [`check`](runner::check) loop that runs a property
//!   over `cases` generated inputs, and on failure greedily shrinks the
//!   input (halve vector lengths, bisect scalars toward their lower
//!   bound) before panicking with the failing seed for replay.
//! * [`prop_check!`] / [`prop_assert!`] / [`prop_assert_eq!`] — macro
//!   sugar mirroring the `proptest` test style.
//!
//! Replaying a failure is seed-based: every panic message carries the
//! base seed and case index, and `PROPTEST_LITE_SEED=<n>` reruns the
//! whole property from that base seed. `PROPTEST_LITE_CASES=<n>`
//! overrides the case count (e.g. for a long soak).
//!
//! ```
//! use proptest_lite::{gen, prop_check};
//!
//! prop_check!("vec_sum_is_order_independent", 64,
//!     gen::vec(gen::u64_range(0, 1000), 8),
//!     |v| {
//!         let forward: u64 = v.iter().sum();
//!         let backward: u64 = v.iter().rev().sum();
//!         proptest_lite::prop_assert_eq!(forward, backward);
//!     });
//! ```

pub mod gen;
pub mod runner;

pub use gen::Gen;
pub use runner::{check, Config};
pub use tiersim::rng::SplitMix64;

/// Asserts a condition inside a property body; on failure returns
/// `Err` with the stringified condition (or a formatted message), which
/// the runner treats as a counterexample and shrinks.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts two expressions are equal inside a property body; mirrors
/// `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::core::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::core::result::Result::Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Runs a property over `cases` generated inputs.
///
/// `prop_check!(name, cases, generator, |input| { ... })` — the closure
/// body uses [`prop_assert!`] / [`prop_assert_eq!`] (or early
/// `return Err(..)`) to reject an input. The closure receives the input
/// by reference; tuple generators destructure directly
/// (`|(xs, ops)| ...`).
#[macro_export]
macro_rules! prop_check {
    ($name:expr, $cases:expr, $gen:expr, |$input:pat_param| $body:block) => {{
        let __gen = $gen;
        let __config = $crate::Config::with_cases($cases);
        $crate::check($name, &__config, &__gen, |__value: &_| {
            let $input = __value;
            $body
            #[allow(unreachable_code)]
            ::core::result::Result::Ok(())
        });
    }};
}
