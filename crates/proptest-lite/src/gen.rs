//! Composable input generators with built-in greedy shrinking.
//!
//! A [`Gen`] produces values from a deterministic [`SplitMix64`] stream
//! and knows how to propose *smaller* variants of a failing value
//! (`shrink`). Shrinking is greedy and bounded by the runner: scalars
//! bisect toward their lower bound, vectors halve their length and then
//! shrink individual elements, tuples shrink one component at a time.

use tiersim::rng::SplitMix64;

/// A reproducible value generator with shrinking.
pub trait Gen {
    /// The generated value type.
    type Value: Clone + std::fmt::Debug;

    /// Draws one value from the random stream.
    fn generate(&self, rng: &mut SplitMix64) -> Self::Value;

    /// Proposes simpler candidate values derived from `value`, most
    /// aggressive first. An empty vec means the value is minimal.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

macro_rules! int_range_gen {
    ($name:ident, $builder:ident, $ty:ty, $doc:literal) => {
        #[doc = $doc]
        #[derive(Clone, Copy, Debug)]
        pub struct $name {
            lo: $ty,
            hi: $ty,
        }

        /// Uniform integer in the half-open range `[lo, hi)`.
        pub fn $builder(lo: $ty, hi: $ty) -> $name {
            assert!(lo < hi, "empty range [{lo}, {hi})");
            $name { lo, hi }
        }

        impl Gen for $name {
            type Value = $ty;

            fn generate(&self, rng: &mut SplitMix64) -> $ty {
                let span = (self.hi - self.lo) as u64;
                self.lo + rng.below(span) as $ty
            }

            fn shrink(&self, value: &$ty) -> Vec<$ty> {
                let v = *value;
                if v == self.lo {
                    return Vec::new();
                }
                // Halving deltas: lo first (most aggressive), then
                // points progressively closer to v, ending at v - 1.
                // Greedy restarts from any failing candidate, so this
                // binary-searches down to the failure boundary.
                let mut out = Vec::new();
                let mut delta = v - self.lo;
                while delta > 0 {
                    out.push(v - delta);
                    delta /= 2;
                }
                out
            }
        }
    };
}

int_range_gen!(U8Range, u8_range, u8, "Uniform `u8` in `[lo, hi)`.");
int_range_gen!(U16Range, u16_range, u16, "Uniform `u16` in `[lo, hi)`.");
int_range_gen!(U32Range, u32_range, u32, "Uniform `u32` in `[lo, hi)`.");
int_range_gen!(U64Range, u64_range, u64, "Uniform `u64` in `[lo, hi)`.");
int_range_gen!(UsizeRange, usize_range, usize, "Uniform `usize` in `[lo, hi)`.");

/// Uniform `f64` in the half-open range `[lo, hi)`.
#[derive(Clone, Copy, Debug)]
pub struct F64Range {
    lo: f64,
    hi: f64,
}

/// Uniform float in `[lo, hi)`.
pub fn f64_range(lo: f64, hi: f64) -> F64Range {
    assert!(lo < hi, "empty range [{lo}, {hi})");
    F64Range { lo, hi }
}

impl Gen for F64Range {
    type Value = f64;

    fn generate(&self, rng: &mut SplitMix64) -> f64 {
        self.lo + rng.unit_f64() * (self.hi - self.lo)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let v = *value;
        if v <= self.lo {
            return Vec::new();
        }
        // Halving deltas toward v, stopping once the step is negligible
        // relative to the range.
        let mut out = Vec::new();
        let mut delta = v - self.lo;
        let floor = 1e-9 * (self.hi - self.lo);
        while delta > floor {
            out.push(v - delta);
            delta /= 2.0;
        }
        out
    }
}

/// Vector generator with an inclusive length range `[lo, hi]`.
#[derive(Clone, Copy, Debug)]
pub struct VecGen<G> {
    elem: G,
    lo: usize,
    hi: usize,
}

/// Fixed-length vector: exactly `len` draws from `elem`. Shrinking
/// keeps the length and simplifies elements (like `proptest`).
pub fn vec<G: Gen>(elem: G, len: usize) -> VecGen<G> {
    VecGen { elem, lo: len, hi: len }
}

/// Variable-length vector with a uniform length in `[min_len, max_len)`,
/// mirroring `proptest`'s `vec(elem, min..max)`. Shrinking halves the
/// length toward `min_len` before simplifying elements.
pub fn vec_in<G: Gen>(elem: G, min_len: usize, max_len: usize) -> VecGen<G> {
    assert!(min_len < max_len, "empty length range [{min_len}, {max_len})");
    VecGen { elem, lo: min_len, hi: max_len - 1 }
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut SplitMix64) -> Vec<G::Value> {
        let len = if self.hi > self.lo {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        } else {
            self.lo
        };
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        // Variable-length vectors first try getting shorter: halve the
        // length (keeping the front half preserves index alignment with
        // any paired structure), then remove single elements.
        if self.hi > self.lo && value.len() > self.lo {
            let half = (value.len() / 2).max(self.lo);
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            for i in 0..value.len() {
                let mut copy = value.clone();
                copy.remove(i);
                out.push(copy);
            }
        }
        // Shrink elements in place, one position at a time (first
        // candidate per position keeps the fan-out bounded).
        for (i, v) in value.iter().enumerate() {
            if let Some(simpler) = self.elem.shrink(v).into_iter().next() {
                let mut copy = value.clone();
                copy[i] = simpler;
                out.push(copy);
            }
        }
        out
    }
}

macro_rules! tuple_gen {
    ($(($($g:ident / $v:ident / $idx:tt),+))+) => {$(
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut SplitMix64) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut copy = value.clone();
                        copy.$idx = cand;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    )+};
}

tuple_gen! {
    (A / a / 0, B / b / 1)
    (A / a / 0, B / b / 1, C / c / 2)
    (A / a / 0, B / b / 1, C / c / 2, D / d / 3)
    (A / a / 0, B / b / 1, C / c / 2, D / d / 3, E / e / 4)
    (A / a / 0, B / b / 1, C / c / 2, D / d / 3, E / e / 4, F / f / 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::new(7);
        let g = u64_range(10, 20);
        for _ in 0..256 {
            let v = g.generate(&mut rng);
            assert!((10..20).contains(&v));
        }
        let f = f64_range(-1.0, 1.0);
        for _ in 0..256 {
            let v = f.generate(&mut rng);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn scalar_shrink_bisects_toward_lo() {
        let g = u64_range(0, 100);
        let cands = g.shrink(&80);
        assert_eq!(cands.first(), Some(&0), "most aggressive candidate first");
        assert_eq!(cands.last(), Some(&79), "finest step is v - 1");
        assert!(cands.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        assert!(g.shrink(&0).is_empty());
        assert_eq!(g.shrink(&1), vec![0]);
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = SplitMix64::new(3);
        let g = vec_in(u8_range(0, 4), 1, 8);
        for _ in 0..256 {
            let v = g.generate(&mut rng);
            assert!((1..8).contains(&v.len()));
        }
        let fixed = vec(u8_range(0, 4), 16);
        assert_eq!(fixed.generate(&mut rng).len(), 16);
    }

    #[test]
    fn vec_shrink_halves_and_never_underflows_min() {
        let g = vec_in(u64_range(0, 10), 2, 9);
        let candidates = g.shrink(&std::vec![5, 5, 5, 5, 5, 5, 5, 5]);
        assert!(candidates.iter().all(|c| c.len() >= 2));
        assert!(candidates.iter().any(|c| c.len() == 4), "halving candidate present");
    }

    #[test]
    fn tuple_shrink_varies_one_component() {
        let g = (u64_range(0, 10), u8_range(0, 4));
        let cands = g.shrink(&(8, 3));
        assert!(cands.contains(&(0, 3)));
        assert!(cands.contains(&(8, 0)));
        assert!(!cands.contains(&(0, 0)), "one component at a time");
    }

    #[test]
    fn generation_is_deterministic() {
        let g = vec(u64_range(0, 1 << 32), 32);
        let a = g.generate(&mut SplitMix64::new(42));
        let b = g.generate(&mut SplitMix64::new(42));
        assert_eq!(a, b);
    }
}
