//! Integration tests for the `MTM_CHECK` shadow-state sanitizer: a clean
//! machine verifies silently, deliberate frame-state corruption produces
//! the structured panic, and the `relocate_range` checking wrapper passes
//! on a healthy migration.

use std::panic::{catch_unwind, AssertUnwindSafe};

use tiersim::addr::{VaRange, VirtAddr, PAGE_SIZE_2M, PAGE_SIZE_4K};
use tiersim::machine::{Machine, MachineConfig};
use tiersim::migrate::relocate_range;
use tiersim::tier::tiny_two_tier;

fn machine() -> Machine {
    let topo = tiny_two_tier(4 * PAGE_SIZE_2M, 16 * PAGE_SIZE_2M);
    let mut cfg = MachineConfig::new(topo, 2);
    cfg.mlp = 1.0;
    let mut m = Machine::new(cfg);
    m.mmap("sanitizer", VaRange::from_len(VirtAddr(0), 8 * PAGE_SIZE_2M), false);
    m
}

/// Runs `f` and returns the panic payload as a `String`, asserting that it
/// panicked at all.
fn panic_message(f: impl FnOnce()) -> String {
    let err = catch_unwind(AssertUnwindSafe(f)).expect_err("expected a sanitizer panic");
    if let Some(s) = err.downcast_ref::<String>() {
        return s.clone();
    }
    if let Some(s) = err.downcast_ref::<&str>() {
        return (*s).to_string();
    }
    panic!("panic payload was not a string");
}

#[test]
fn healthy_machine_verifies_silently() {
    let mut m = machine();
    for p in 0..16u64 {
        m.alloc_and_map(0, VirtAddr(p * PAGE_SIZE_4K), &[0, 1]).unwrap();
    }
    m.set_checking(true);
    m.verify_consistency("healthy test machine");
}

#[test]
fn leaked_frame_panics_with_structured_diff() {
    let mut m = machine();
    let va = VirtAddr(0x1000);
    m.alloc_and_map(0, va, &[0]).unwrap();
    // Corrupt: drop the mapping but leave the frame allocated. Occupancy
    // (census) now disagrees with the page table.
    m.page_table_mut().unmap(va).unwrap();
    m.set_checking(true);
    let msg = panic_message(|| m.verify_consistency("leaked frame"));
    assert!(msg.contains("MTM_CHECK violation at leaked frame"), "message was: {msg}");
    assert!(msg.contains("invariant(s) broken"), "message was: {msg}");
    assert!(msg.contains("  - "), "expected a structured violation list, got: {msg}");
}

#[test]
fn double_mapped_frame_panics() {
    let mut m = machine();
    let va1 = VirtAddr(0x4000);
    m.alloc_and_map(0, va1, &[0]).unwrap();
    let t = m.page_table().translate(va1).unwrap();
    // Corrupt: alias a second VA onto the same physical frame. The frame
    // census (mapped bytes > allocator-used bytes) and the overlap sweep
    // both trip.
    let va2 = VirtAddr(0x9000);
    m.page_table_mut().map_4k(va2, t.pte);
    m.set_checking(true);
    let msg = panic_message(|| m.verify_consistency("aliased frame"));
    assert!(msg.contains("MTM_CHECK violation at aliased frame"), "message was: {msg}");
}

#[test]
fn allocator_mutation_for_tests_disarms_checking() {
    let mut m = machine();
    m.set_checking(true);
    // Tests that reach behind the page table are allowed to break the
    // occupancy==census invariant; the accessor disarms checking so the
    // next interval boundary does not fire.
    let _ = m.allocators_mut_for_test(0);
    assert!(!m.checking());
}

#[test]
fn checked_relocate_passes_and_machine_stays_consistent() {
    let mut m = machine();
    for p in 0..32u64 {
        m.alloc_and_map(0, VirtAddr(p * PAGE_SIZE_4K), &[0]).unwrap();
    }
    m.set_checking(true);
    let range = VaRange::from_len(VirtAddr(0), 32 * PAGE_SIZE_4K);
    let out = relocate_range(&mut m, range, 1, 0, 4, true).unwrap();
    assert_eq!(out.bytes, 32 * PAGE_SIZE_4K);
    assert_eq!(m.allocator(1).used(), 32 * PAGE_SIZE_4K);
    m.verify_consistency("after checked relocate");
}
