//! Per-component physical frame allocators.
//!
//! Frames carry no data: workloads keep their own state and the simulator
//! only tracks placement. Each frame does carry a *version* counter, bumped
//! on every simulated write, which lets tests prove that a migration
//! protocol loses no update (the copied version must match the source
//! version when the migration commits).

use crate::addr::{PhysAddr, PAGE_SIZE_2M, PAGE_SIZE_4K};
use crate::tier::ComponentId;

/// Allocation granularity of a frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameSize {
    /// 4 KB base frame.
    Base4K,
    /// 2 MB huge frame.
    Huge2M,
}

impl FrameSize {
    /// Size in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            FrameSize::Base4K => PAGE_SIZE_4K,
            FrameSize::Huge2M => PAGE_SIZE_2M,
        }
    }
}

/// Allocator for one memory component.
///
/// Internally the component is carved into 2 MB blocks. A huge frame takes a
/// whole block; 4 KB frames are sub-allocated from blocks dedicated to base
/// pages. Blocks freed in either mode return to the shared free list, so
/// space moves freely between huge and base usage.
#[derive(Debug)]
pub struct FrameAllocator {
    component: ComponentId,
    capacity: u64,
    used: u64,
    /// 2 MB block offsets never yet carved.
    next_fresh_block: u64,
    /// Recycled whole 2 MB blocks.
    free_blocks: Vec<u64>,
    /// Recycled 4 KB frames.
    free_small: Vec<u64>,
    /// Current partially-carved block for 4 KB frames: (base, next offset).
    small_cursor: Option<(u64, u64)>,
}

/// Error returned when a component is out of space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Component that could not satisfy the allocation.
    pub component: ComponentId,
    /// Requested frame size.
    pub size: FrameSize,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "component {} out of memory for {:?} frame", self.component, self.size)
    }
}

impl std::error::Error for OutOfMemory {}

impl FrameAllocator {
    /// Creates an allocator managing `capacity` bytes of `component`.
    ///
    /// The capacity is rounded down to a whole number of 2 MB blocks.
    pub fn new(component: ComponentId, capacity: u64) -> FrameAllocator {
        FrameAllocator {
            component,
            capacity: capacity & !(PAGE_SIZE_2M - 1),
            used: 0,
            next_fresh_block: 0,
            free_blocks: Vec::new(),
            free_small: Vec::new(),
            small_cursor: None,
        }
    }

    /// Component this allocator serves.
    #[inline]
    pub fn component(&self) -> ComponentId {
        self.component
    }

    /// Total managed bytes.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    #[inline]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still available.
    #[inline]
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Resizes the managed capacity — a multi-tenant *quota* carved out
    /// of the physical component. The new capacity is rounded down to
    /// whole 2 MB blocks and clamped so it never drops below the bytes
    /// currently allocated (rounded up to a block): a quota change may
    /// deny future allocations, never invalidate live frames. Shrinking
    /// below already-carved offsets is safe — those frames keep their
    /// addresses and recycle through the free lists; only fresh-block
    /// carving is bounded by the new capacity. Returns the effective
    /// capacity after rounding and clamping.
    pub fn set_capacity(&mut self, bytes: u64) -> u64 {
        let floor = (self.used + PAGE_SIZE_2M - 1) & !(PAGE_SIZE_2M - 1);
        self.capacity = (bytes & !(PAGE_SIZE_2M - 1)).max(floor);
        self.capacity
    }

    /// Fraction of capacity in use, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            return 1.0;
        }
        self.used as f64 / self.capacity as f64
    }

    /// True if a frame of `size` can be allocated right now.
    pub fn can_alloc(&self, size: FrameSize) -> bool {
        match size {
            FrameSize::Huge2M => self.block_available(),
            FrameSize::Base4K => {
                !self.free_small.is_empty()
                    || self.small_cursor.is_some()
                    || self.block_available()
            }
        }
    }

    fn block_available(&self) -> bool {
        !self.free_blocks.is_empty() || self.next_fresh_block + PAGE_SIZE_2M <= self.capacity
    }

    fn take_block(&mut self) -> Option<u64> {
        if let Some(b) = self.free_blocks.pop() {
            return Some(b);
        }
        if self.next_fresh_block + PAGE_SIZE_2M <= self.capacity {
            let b = self.next_fresh_block;
            self.next_fresh_block += PAGE_SIZE_2M;
            return Some(b);
        }
        None
    }

    /// Allocates one frame of the given size.
    pub fn alloc(&mut self, size: FrameSize) -> Result<PhysAddr, OutOfMemory> {
        let oom = OutOfMemory { component: self.component, size };
        match size {
            FrameSize::Huge2M => {
                let block = self.take_block().ok_or(oom)?;
                self.used += PAGE_SIZE_2M;
                Ok(PhysAddr::new(self.component, block))
            }
            FrameSize::Base4K => {
                if let Some(off) = self.free_small.pop() {
                    self.used += PAGE_SIZE_4K;
                    return Ok(PhysAddr::new(self.component, off));
                }
                let (base, off) = match self.small_cursor {
                    Some(cur) => cur,
                    None => (self.take_block().ok_or(oom)?, 0),
                };
                let frame = base + off;
                let next = off + PAGE_SIZE_4K;
                self.small_cursor = if next < PAGE_SIZE_2M { Some((base, next)) } else { None };
                self.used += PAGE_SIZE_4K;
                Ok(PhysAddr::new(self.component, frame))
            }
        }
    }

    /// Serializes the allocator's dynamic state. Free-list order is kept
    /// verbatim: future allocations pop from these lists, so a resumed run
    /// hands out the same frames in the same order as the original.
    pub fn save(&self, w: &mut obs::wire::Writer) {
        w.u16(self.component);
        w.u64(self.capacity);
        w.u64(self.used);
        w.u64(self.next_fresh_block);
        w.varint(self.free_blocks.len() as u64);
        for &b in &self.free_blocks {
            w.u64(b);
        }
        w.varint(self.free_small.len() as u64);
        for &f in &self.free_small {
            w.u64(f);
        }
        match self.small_cursor {
            Some((base, off)) => {
                w.bool(true);
                w.u64(base);
                w.u64(off);
            }
            None => w.bool(false),
        }
    }

    /// Restores state saved with [`FrameAllocator::save`] into this
    /// allocator. The component id must match.
    pub fn load(&mut self, r: &mut obs::wire::Reader) -> Result<(), String> {
        let component = r.u16()?;
        if component != self.component {
            return Err(format!(
                "frame allocator: component mismatch (saved {component}, have {})",
                self.component
            ));
        }
        self.capacity = r.u64()?;
        self.used = r.u64()?;
        self.next_fresh_block = r.u64()?;
        self.free_blocks = (0..r.varint()?).map(|_| r.u64()).collect::<Result<_, _>>()?;
        self.free_small = (0..r.varint()?).map(|_| r.u64()).collect::<Result<_, _>>()?;
        self.small_cursor = if r.bool()? { Some((r.u64()?, r.u64()?)) } else { None };
        Ok(())
    }

    /// Frees a previously allocated frame.
    ///
    /// Freed huge frames return to the shared block list; freed base frames
    /// go to the small free list (blocks are not coalesced, which is a fair
    /// model of fragmentation under mixed page sizes).
    pub fn free_frame(&mut self, frame: PhysAddr, size: FrameSize) {
        debug_assert_eq!(frame.component(), self.component, "frame belongs to this component");
        match size {
            FrameSize::Huge2M => {
                debug_assert_eq!(frame.offset() % PAGE_SIZE_2M, 0);
                self.free_blocks.push(frame.offset());
                self.used -= PAGE_SIZE_2M;
            }
            FrameSize::Base4K => {
                debug_assert_eq!(frame.offset() % PAGE_SIZE_4K, 0);
                self.free_small.push(frame.offset());
                self.used -= PAGE_SIZE_4K;
            }
        }
    }
}

/// Per-frame version store used to validate migration correctness.
///
/// Every simulated write bumps the version of the written 4 KB frame. A
/// migration mechanism copies versions from source to destination frames;
/// if the application writes the source after the copy, the destination is
/// stale and the mechanism must re-copy (or have switched to a synchronous
/// copy). Tests assert the committed destination version equals the final
/// source version.
/// Versions live in dense per-component vectors indexed by frame number
/// (`offset >> 12`): physical offsets are allocator-bounded and contiguous
/// from zero, so a vector with lazy power-of-two growth replaces the old
/// hash map on the simulated-write hot path (one bump per write).
#[derive(Default, Debug)]
pub struct VersionStore {
    comps: Vec<Vec<u64>>,
}

impl VersionStore {
    /// Creates an empty store.
    pub fn new() -> VersionStore {
        VersionStore::default()
    }

    #[inline]
    fn frame_index(frame: PhysAddr) -> (usize, usize) {
        (frame.component() as usize, (frame.offset() >> 12) as usize)
    }

    /// Current version of a frame (0 if never written).
    #[inline]
    pub fn get(&self, frame: PhysAddr) -> u64 {
        let (c, i) = Self::frame_index(frame);
        self.comps.get(c).and_then(|v| v.get(i)).copied().unwrap_or(0)
    }

    #[inline]
    fn slot(&mut self, frame: PhysAddr) -> &mut u64 {
        let (c, i) = Self::frame_index(frame);
        if c >= self.comps.len() {
            self.comps.resize_with(c + 1, Vec::new);
        }
        let v = &mut self.comps[c];
        if i >= v.len() {
            v.resize((i + 1).next_power_of_two(), 0);
        }
        &mut v[i]
    }

    /// Records a write to a frame, bumping its version.
    #[inline]
    pub fn bump(&mut self, frame: PhysAddr) {
        *self.slot(frame) += 1;
    }

    /// Copies the version from `src` to `dst`, as a data copy would.
    pub fn copy(&mut self, src: PhysAddr, dst: PhysAddr) {
        let v = self.get(src);
        *self.slot(dst) = v;
    }

    /// Serializes all per-frame versions (dense vectors verbatim,
    /// including any trailing zeros from power-of-two growth — load
    /// reproduces the exact growth state).
    pub fn save(&self, w: &mut obs::wire::Writer) {
        w.varint(self.comps.len() as u64);
        for comp in &self.comps {
            w.varint(comp.len() as u64);
            for &v in comp {
                w.varint(v);
            }
        }
    }

    /// Restores a store saved with [`VersionStore::save`].
    pub fn load(r: &mut obs::wire::Reader) -> Result<VersionStore, String> {
        let mut comps = Vec::new();
        for _ in 0..r.varint()? {
            let n = r.varint()? as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.varint()?);
            }
            comps.push(v);
        }
        Ok(VersionStore { comps })
    }

    /// Drops bookkeeping for a freed frame.
    pub fn forget(&mut self, frame: PhysAddr) {
        let (c, i) = Self::frame_index(frame);
        if let Some(slot) = self.comps.get_mut(c).and_then(|v| v.get_mut(i)) {
            *slot = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn huge_allocation_exhausts_capacity() {
        let mut a = FrameAllocator::new(0, 4 * PAGE_SIZE_2M);
        let mut frames = Vec::new();
        for _ in 0..4 {
            frames.push(a.alloc(FrameSize::Huge2M).unwrap());
        }
        assert!(a.alloc(FrameSize::Huge2M).is_err());
        assert_eq!(a.used(), 4 * PAGE_SIZE_2M);
        a.free_frame(frames[0], FrameSize::Huge2M);
        assert!(a.alloc(FrameSize::Huge2M).is_ok());
    }

    #[test]
    fn small_frames_carve_blocks() {
        let mut a = FrameAllocator::new(1, PAGE_SIZE_2M);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..512 {
            let f = a.alloc(FrameSize::Base4K).unwrap();
            assert!(seen.insert(f), "no double allocation");
        }
        assert!(a.alloc(FrameSize::Base4K).is_err());
        assert_eq!(a.free(), 0);
    }

    #[test]
    fn freed_small_frames_recycle() {
        let mut a = FrameAllocator::new(0, PAGE_SIZE_2M);
        let f = a.alloc(FrameSize::Base4K).unwrap();
        a.free_frame(f, FrameSize::Base4K);
        assert_eq!(a.used(), 0);
        let g = a.alloc(FrameSize::Base4K).unwrap();
        assert_eq!(f, g, "recycled frame reused");
    }

    #[test]
    fn mixed_sizes_share_capacity() {
        let mut a = FrameAllocator::new(0, 2 * PAGE_SIZE_2M);
        let h = a.alloc(FrameSize::Huge2M).unwrap();
        let _s = a.alloc(FrameSize::Base4K).unwrap();
        // Second huge block is taken by the small cursor.
        assert!(a.alloc(FrameSize::Huge2M).is_err());
        a.free_frame(h, FrameSize::Huge2M);
        assert!(a.alloc(FrameSize::Huge2M).is_ok());
    }

    #[test]
    fn capacity_rounds_down_to_blocks() {
        let a = FrameAllocator::new(0, PAGE_SIZE_2M + 12345);
        assert_eq!(a.capacity(), PAGE_SIZE_2M);
    }

    #[test]
    fn version_store_tracks_writes() {
        let mut v = VersionStore::new();
        let a = PhysAddr::new(0, 0x1000);
        let b = PhysAddr::new(1, 0x2000);
        assert_eq!(v.get(a), 0);
        v.bump(a);
        v.bump(a);
        v.copy(a, b);
        assert_eq!(v.get(b), 2);
        v.bump(a);
        assert_ne!(v.get(a), v.get(b), "stale copy detectable");
    }
}
