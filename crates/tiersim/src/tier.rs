//! Memory components, tiers, and the machine topology.
//!
//! A *memory component* is one physical pool of memory (a DRAM DIMM set or a
//! PM module set attached to one socket). What the paper calls a *tier* is a
//! component ranked by its distance from a given CPU node: the same component
//! is tier 1 for the local socket and tier 2 (or worse) for a remote socket.
//! This is the paper's "multi-view of tiered memory" (Sec. 6.2). The default
//! view used in reports is node 0's view, matching Table 1 of the paper.


/// Index of a memory component (also used as a physical "node" id in Linux
/// terms: CPU-attached DRAM or a CPU-less PM node).
pub type ComponentId = u16;

/// Index of a CPU node (socket).
pub type NodeId = u16;

/// The kind of memory technology backing a component.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemKind {
    /// CPU-attached DRAM.
    Dram,
    /// High-capacity persistent memory (Optane DC PM in the paper).
    Pm,
}

/// One memory component with its capacity and home socket.
#[derive(Clone, Debug)]
pub struct Component {
    /// Human-readable name used in reports (e.g. `"DRAM0"`).
    pub name: String,
    /// Memory technology of the component.
    pub kind: MemKind,
    /// Socket the component is attached to.
    pub home_node: NodeId,
    /// Capacity in bytes (already divided by the simulation scale).
    pub capacity: u64,
}

/// Latency and bandwidth of one (CPU node, component) pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// Load-to-use latency in nanoseconds.
    pub latency_ns: f64,
    /// Sustainable read bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Sustainable write bandwidth in GB/s. PM sustains far fewer writes
    /// than reads (roughly a quarter on Optane); DRAM is symmetric, and
    /// the remote-PM link is interconnect-bound in both directions.
    pub write_bandwidth_gbps: f64,
}

impl LinkSpec {
    /// A link with symmetric read/write bandwidth.
    pub fn symmetric(latency_ns: f64, bandwidth_gbps: f64) -> LinkSpec {
        LinkSpec { latency_ns, bandwidth_gbps, write_bandwidth_gbps: bandwidth_gbps }
    }

    /// Read bandwidth converted to bytes per nanosecond.
    #[inline]
    pub fn bytes_per_ns(&self) -> f64 {
        self.bandwidth_gbps
    }

    /// How many read-equivalent bytes one written byte consumes on this
    /// link (the roofline uses a single read-bandwidth denominator).
    #[inline]
    pub fn write_cost_factor(&self) -> f64 {
        self.bandwidth_gbps / self.write_bandwidth_gbps.max(1e-9)
    }
}

/// The full machine topology: components plus the per-node distance matrix.
#[derive(Clone, Debug)]
pub struct Topology {
    /// All memory components, indexed by [`ComponentId`].
    pub components: Vec<Component>,
    /// Number of CPU nodes (sockets).
    pub nodes: u16,
    /// `links[node][component]` describes access cost from `node` to
    /// `component`.
    pub links: Vec<Vec<LinkSpec>>,
    /// Per-node tier order: `views[node]` lists component ids sorted from
    /// fastest (tier 1) to slowest, as seen from `node`.
    pub views: Vec<Vec<ComponentId>>,
}

impl Topology {
    /// Builds a topology from components and a link matrix, deriving the
    /// per-node tier views by sorting components by latency.
    pub fn new(components: Vec<Component>, nodes: u16, links: Vec<Vec<LinkSpec>>) -> Topology {
        assert_eq!(links.len(), nodes as usize, "one link row per node");
        for row in &links {
            assert_eq!(row.len(), components.len(), "one link per component");
        }
        let mut views = Vec::with_capacity(nodes as usize);
        for node in 0..nodes as usize {
            let mut order: Vec<ComponentId> = (0..components.len() as u16).collect();
            order.sort_by(|&a, &b| {
                links[node][a as usize]
                    .latency_ns
                    .partial_cmp(&links[node][b as usize].latency_ns)
                    .expect("latency is finite")
            });
            views.push(order);
        }
        Topology { components, nodes, links, views }
    }

    /// Number of memory components.
    #[inline]
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Access cost spec from `node` to `component`.
    #[inline]
    pub fn link(&self, node: NodeId, component: ComponentId) -> LinkSpec {
        self.links[node as usize][component as usize]
    }

    /// Component ids ordered fastest-to-slowest from `node`'s view.
    #[inline]
    pub fn view(&self, node: NodeId) -> &[ComponentId] {
        &self.views[node as usize]
    }

    /// The tier rank (0 = fastest) of `component` as seen from `node`.
    pub fn tier_rank(&self, node: NodeId, component: ComponentId) -> usize {
        self.views[node as usize]
            .iter()
            .position(|&c| c == component)
            // lint:allow(panic-path): Topology construction puts every component in every node's view; a rankless component is a config bug worth aborting on
            .expect("component present in every view")
    }

    /// Component at tier rank `rank` (0 = fastest) from `node`'s view.
    #[inline]
    pub fn component_at_rank(&self, node: NodeId, rank: usize) -> ComponentId {
        self.views[node as usize][rank]
    }

    /// Total capacity over all components, in bytes.
    pub fn total_capacity(&self) -> u64 {
        self.components.iter().map(|c| c.capacity).sum()
    }

    /// Ids of all DRAM components.
    pub fn dram_components(&self) -> Vec<ComponentId> {
        (0..self.components.len() as u16)
            .filter(|&c| self.components[c as usize].kind == MemKind::Dram)
            .collect()
    }

    /// Ids of all PM components (the "slow" tiers PEBS events cover).
    pub fn pm_components(&self) -> Vec<ComponentId> {
        (0..self.components.len() as u16)
            .filter(|&c| self.components[c as usize].kind == MemKind::Pm)
            .collect()
    }

    /// The slowest component from `node`'s view.
    pub fn slowest_from(&self, node: NodeId) -> ComponentId {
        *self.views[node as usize].last().expect("non-empty topology")
    }
}

/// Paper-scale capacities of the Optane testbed (Table 1 hardware): 96 GB
/// DRAM and 756 GB PM per socket.
pub const PAPER_DRAM_PER_SOCKET: u64 = 96 * (1 << 30);
/// Paper-scale PM capacity per socket.
pub const PAPER_PM_PER_SOCKET: u64 = 756 * (1 << 30);

/// Builds the paper's two-socket, four-component Optane topology (Table 1).
///
/// Capacities are divided by `scale` so multi-hundred-GB experiments can be
/// simulated with proportionally smaller footprints. `scale = 1` reproduces
/// the paper-scale capacities.
///
/// From node 0's view the four tiers match Table 1:
///
/// | tier | component | latency | bandwidth |
/// |------|-----------|---------|-----------|
/// | 1    | local DRAM  | 90 ns  | 95 GB/s |
/// | 2    | remote DRAM | 145 ns | 35 GB/s |
/// | 3    | local PM    | 275 ns | 35 GB/s |
/// | 4    | remote PM   | 340 ns | 1 GB/s  |
pub fn optane_four_tier(scale: u64) -> Topology {
    assert!(scale >= 1, "scale must be at least 1");
    let dram = PAPER_DRAM_PER_SOCKET / scale;
    let pm = PAPER_PM_PER_SOCKET / scale;
    let components = vec![
        Component { name: "DRAM0".into(), kind: MemKind::Dram, home_node: 0, capacity: dram },
        Component { name: "DRAM1".into(), kind: MemKind::Dram, home_node: 1, capacity: dram },
        Component { name: "PM0".into(), kind: MemKind::Pm, home_node: 0, capacity: pm },
        Component { name: "PM1".into(), kind: MemKind::Pm, home_node: 1, capacity: pm },
    ];
    let local_dram = LinkSpec::symmetric(90.0, 95.0);
    let remote_dram = LinkSpec::symmetric(145.0, 35.0);
    let local_pm = LinkSpec { latency_ns: 275.0, bandwidth_gbps: 35.0, write_bandwidth_gbps: 9.0 };
    let remote_pm = LinkSpec::symmetric(340.0, 1.0);
    let links = vec![
        vec![local_dram, remote_dram, local_pm, remote_pm],
        vec![remote_dram, local_dram, remote_pm, local_pm],
    ];
    Topology::new(components, 2, links)
}

/// Builds a single-socket, two-tier topology (one DRAM + one PM component),
/// the setting of the paper's Sec. 9.6 HeMem comparison.
pub fn two_tier(scale: u64) -> Topology {
    assert!(scale >= 1, "scale must be at least 1");
    let components = vec![
        Component {
            name: "DRAM0".into(),
            kind: MemKind::Dram,
            home_node: 0,
            capacity: PAPER_DRAM_PER_SOCKET / scale,
        },
        Component {
            name: "PM0".into(),
            kind: MemKind::Pm,
            home_node: 0,
            capacity: PAPER_PM_PER_SOCKET / scale,
        },
    ];
    let links = vec![vec![
        LinkSpec::symmetric(90.0, 95.0),
        LinkSpec { latency_ns: 275.0, bandwidth_gbps: 35.0, write_bandwidth_gbps: 9.0 },
    ]];
    Topology::new(components, 1, links)
}

/// A small synthetic topology for unit tests: two tiny tiers on one node.
pub fn tiny_two_tier(fast_capacity: u64, slow_capacity: u64) -> Topology {
    let components = vec![
        Component { name: "fast".into(), kind: MemKind::Dram, home_node: 0, capacity: fast_capacity },
        Component { name: "slow".into(), kind: MemKind::Pm, home_node: 0, capacity: slow_capacity },
    ];
    let links = vec![vec![
        LinkSpec::symmetric(100.0, 50.0),
        LinkSpec::symmetric(300.0, 5.0),
    ]];
    Topology::new(components, 1, links)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optane_views_match_table1() {
        let t = optane_four_tier(1);
        // Node 0: DRAM0, DRAM1, PM0, PM1.
        assert_eq!(t.view(0), &[0, 1, 2, 3]);
        // Node 1 view mirrors: DRAM1, DRAM0, PM1, PM0.
        assert_eq!(t.view(1), &[1, 0, 3, 2]);
        assert_eq!(t.link(0, 0).latency_ns, 90.0);
        assert_eq!(t.link(0, 3).bandwidth_gbps, 1.0);
        assert_eq!(t.slowest_from(0), 3);
        assert_eq!(t.slowest_from(1), 2);
    }

    #[test]
    fn tier_ranks() {
        let t = optane_four_tier(1);
        assert_eq!(t.tier_rank(0, 0), 0);
        assert_eq!(t.tier_rank(0, 2), 2);
        assert_eq!(t.tier_rank(1, 2), 3);
        assert_eq!(t.component_at_rank(0, 3), 3);
    }

    #[test]
    fn scaling_divides_capacity() {
        let t = optane_four_tier(1024);
        assert_eq!(t.components[0].capacity, PAPER_DRAM_PER_SOCKET / 1024);
        assert_eq!(t.total_capacity(), 2 * (PAPER_DRAM_PER_SOCKET + PAPER_PM_PER_SOCKET) / 1024);
    }

    #[test]
    fn kind_partitions() {
        let t = optane_four_tier(1);
        assert_eq!(t.dram_components(), vec![0, 1]);
        assert_eq!(t.pm_components(), vec![2, 3]);
    }

    #[test]
    fn two_tier_is_single_view() {
        let t = two_tier(64);
        assert_eq!(t.nodes, 1);
        assert_eq!(t.view(0), &[0, 1]);
    }
}
