//! Virtual and physical address newtypes and page-size constants.
//!
//! All simulated addresses are plain `u64` values wrapped in newtypes so the
//! type system keeps virtual and physical spaces apart. The simulated machine
//! uses the x86-64 layout the paper assumes: 4 KB base pages and 2 MB huge
//! pages, where one last-level page-directory entry (PDE) spans 2 MB.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Size of a base page in bytes (4 KB).
pub const PAGE_SIZE_4K: u64 = 4096;
/// Size of a huge page in bytes (2 MB), also the span of a last-level PDE.
pub const PAGE_SIZE_2M: u64 = 2 * 1024 * 1024;
/// Number of base pages per huge page / last-level PDE (512).
pub const PTES_PER_PD: u64 = PAGE_SIZE_2M / PAGE_SIZE_4K;
/// Bytes touched by one simulated memory access (a cache line).
pub const CACHE_LINE: u64 = 64;

/// A virtual address in the simulated process address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

/// A physical address in a simulated memory component.
///
/// The top 16 bits carry the memory-component (tier) index; the low 48 bits
/// are the byte offset within that component.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

impl VirtAddr {
    /// Returns the address rounded down to a 4 KB page boundary.
    #[inline]
    pub fn page_4k(self) -> VirtAddr {
        VirtAddr(self.0 & !(PAGE_SIZE_4K - 1))
    }

    /// Returns the address rounded down to a 2 MB boundary.
    #[inline]
    pub fn page_2m(self) -> VirtAddr {
        VirtAddr(self.0 & !(PAGE_SIZE_2M - 1))
    }

    /// Index of the last-level PDE covering this address (address / 2 MB).
    #[inline]
    pub fn pde_index(self) -> u64 {
        self.0 >> 21
    }

    /// Index of the 4 KB PTE within its PDE (0..512).
    #[inline]
    pub fn pte_index(self) -> usize {
        ((self.0 >> 12) & (PTES_PER_PD - 1)) as usize
    }

    /// True if the address is aligned to a 2 MB boundary.
    #[inline]
    pub fn is_2m_aligned(self) -> bool {
        self.0 & (PAGE_SIZE_2M - 1) == 0
    }

    /// True if the address is aligned to a 4 KB boundary.
    #[inline]
    pub fn is_4k_aligned(self) -> bool {
        self.0 & (PAGE_SIZE_4K - 1) == 0
    }

    /// Rounds up to the next 2 MB boundary (identity if already aligned).
    #[inline]
    pub fn align_up_2m(self) -> VirtAddr {
        VirtAddr(self.0.checked_add(PAGE_SIZE_2M - 1).expect("address overflow") & !(PAGE_SIZE_2M - 1))
    }
}

impl Add<u64> for VirtAddr {
    type Output = VirtAddr;
    #[inline]
    fn add(self, rhs: u64) -> VirtAddr {
        VirtAddr(self.0 + rhs)
    }
}

impl AddAssign<u64> for VirtAddr {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<VirtAddr> for VirtAddr {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: VirtAddr) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VA({:#x})", self.0)
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PA(tier={}, off={:#x})", self.component(), self.offset())
    }
}

impl PhysAddr {
    /// Builds a physical address from a component index and byte offset.
    #[inline]
    pub fn new(component: u16, offset: u64) -> PhysAddr {
        debug_assert!(offset < 1 << 48, "offset exceeds 48 bits");
        PhysAddr(((component as u64) << 48) | offset)
    }

    /// Memory-component (tier) index this address lives in.
    #[inline]
    pub fn component(self) -> u16 {
        (self.0 >> 48) as u16
    }

    /// Byte offset within the memory component.
    #[inline]
    pub fn offset(self) -> u64 {
        self.0 & ((1 << 48) - 1)
    }
}

/// A half-open range `[start, end)` of virtual addresses.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct VaRange {
    /// Inclusive start address.
    pub start: VirtAddr,
    /// Exclusive end address.
    pub end: VirtAddr,
}

impl VaRange {
    /// Builds a range; panics if `end < start`.
    pub fn new(start: VirtAddr, end: VirtAddr) -> VaRange {
        assert!(end >= start, "inverted range");
        VaRange { start, end }
    }

    /// Builds a range from a start address and a length in bytes.
    pub fn from_len(start: VirtAddr, len: u64) -> VaRange {
        VaRange { start, end: start + len }
    }

    /// Length of the range in bytes.
    #[inline]
    pub fn len(self) -> u64 {
        self.end - self.start
    }

    /// True if the range is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// True if `addr` lies within the range.
    #[inline]
    pub fn contains(self, addr: VirtAddr) -> bool {
        addr >= self.start && addr < self.end
    }

    /// True if the two ranges share at least one byte.
    #[inline]
    pub fn overlaps(self, other: VaRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Number of 4 KB pages fully or partially covered by the range.
    pub fn pages_4k(self) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let first = self.start.page_4k().0;
        let last = (self.end.0 + PAGE_SIZE_4K - 1) & !(PAGE_SIZE_4K - 1);
        (last - first) / PAGE_SIZE_4K
    }

    /// Iterates over the 4 KB page base addresses covered by the range.
    pub fn iter_pages_4k(self) -> impl Iterator<Item = VirtAddr> {
        let first = self.start.page_4k().0;
        let end = self.end.0;
        (first..end).step_by(PAGE_SIZE_4K as usize).map(VirtAddr)
    }

    /// Iterates over the 2 MB chunk base addresses covered by the range.
    pub fn iter_pages_2m(self) -> impl Iterator<Item = VirtAddr> {
        let first = self.start.page_2m().0;
        let end = self.end.0;
        (first..end).step_by(PAGE_SIZE_2M as usize).map(VirtAddr)
    }
}

impl fmt::Debug for VaRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}, {:#x})", self.start.0, self.end.0)
    }
}

/// Formats a byte count with a binary-unit suffix for reports.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes}B")
    } else {
        format!("{v:.1}{}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_rounding() {
        let a = VirtAddr(0x2345_6789);
        assert_eq!(a.page_4k().0, 0x2345_6000);
        assert_eq!(a.page_2m().0, 0x2340_0000);
        assert_eq!(a.pde_index(), 0x2345_6789 >> 21);
        assert!(!a.is_2m_aligned());
        assert!(VirtAddr(0x0060_0000).is_2m_aligned());
    }

    #[test]
    fn align_up() {
        assert_eq!(VirtAddr(0).align_up_2m().0, 0);
        assert_eq!(VirtAddr(1).align_up_2m().0, PAGE_SIZE_2M);
        assert_eq!(VirtAddr(PAGE_SIZE_2M).align_up_2m().0, PAGE_SIZE_2M);
    }

    #[test]
    fn pte_index_cycles() {
        assert_eq!(VirtAddr(0).pte_index(), 0);
        assert_eq!(VirtAddr(PAGE_SIZE_4K).pte_index(), 1);
        assert_eq!(VirtAddr(PAGE_SIZE_2M - PAGE_SIZE_4K).pte_index(), 511);
        assert_eq!(VirtAddr(PAGE_SIZE_2M).pte_index(), 0);
    }

    #[test]
    fn phys_addr_packing() {
        let pa = PhysAddr::new(3, 0xdead_beef);
        assert_eq!(pa.component(), 3);
        assert_eq!(pa.offset(), 0xdead_beef);
    }

    #[test]
    fn range_page_iteration() {
        let r = VaRange::from_len(VirtAddr(PAGE_SIZE_4K / 2), PAGE_SIZE_4K);
        // Straddles two pages.
        assert_eq!(r.pages_4k(), 2);
        let pages: Vec<_> = r.iter_pages_4k().collect();
        assert_eq!(pages, vec![VirtAddr(0), VirtAddr(PAGE_SIZE_4K)]);
    }

    #[test]
    fn range_overlap() {
        let a = VaRange::from_len(VirtAddr(0), 100);
        let b = VaRange::from_len(VirtAddr(50), 100);
        let c = VaRange::from_len(VirtAddr(100), 100);
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c));
        assert!(a.contains(VirtAddr(99)));
        assert!(!a.contains(VirtAddr(100)));
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0MB");
    }
}
