//! Scenario driver: wires a workload, a memory manager, and a machine.
//!
//! The driver advances the simulation in *profiling intervals*: workload
//! threads issue accesses until the open interval's virtual wall time
//! reaches the configured interval length, then the interval is committed
//! and the manager's `on_interval` hook runs (profile, decide, migrate) —
//! the structure of every system the paper evaluates.

use crate::addr::{VaRange, VirtAddr};
use crate::counters::ComponentCounts;
use crate::machine::{AccessKind, AccessResult, Machine, MachineStats};
use crate::tier::ComponentId;

/// The memory interface a workload sees: plain reads and writes plus access
/// to the machine for setup (VMA registration, prefaulting).
pub trait MemEnv {
    /// Issues a load from `va` on thread `tid`.
    fn read(&mut self, tid: usize, va: VirtAddr);
    /// Issues a store to `va` on thread `tid`.
    fn write(&mut self, tid: usize, va: VirtAddr);
    /// Charges pure compute (think) time to `tid`.
    fn compute(&mut self, tid: usize, ns: f64);
    /// The underlying machine.
    fn machine(&mut self) -> &mut Machine;
}

/// A page-management system under test (MTM or a baseline).
pub trait MemoryManager {
    /// Display name used in reports.
    fn name(&self) -> String;

    /// One-time initialization once VMAs exist.
    fn init(&mut self, _m: &mut Machine) {}

    /// Placement order for a faulting page: components to try, best first.
    fn placement(&mut self, m: &Machine, tid: usize, va: VirtAddr) -> Vec<ComponentId>;

    /// Periodic hook: profile, decide, and migrate. Runs after interval
    /// `interval` has been committed to the clock.
    fn on_interval(&mut self, m: &mut Machine, interval: u64);

    /// Number of profiling points within one interval (multi-scan
    /// profilers return their scans-per-interval; default 1).
    fn sub_intervals(&self) -> u32 {
        1
    }

    /// Called at each sub-interval boundary `k` in `1..=sub_intervals()`,
    /// while the interval is still open. Multi-scan profilers perform one
    /// PTE scan pass per call.
    fn on_subinterval(&mut self, _m: &mut Machine, _interval: u64, _k: u32) {}

    /// Cumulative bytes of pages the manager has classified as hot
    /// (Table 3's "volume of hot pages identified").
    fn hot_bytes_identified(&self) -> u64 {
        0
    }

    /// Extra memory the manager's metadata consumes (Table 5).
    fn metadata_bytes(&self) -> u64 {
        0
    }

    /// `(merged, split, live)` region counts averaged per interval
    /// (Table 7), if the manager forms memory regions.
    fn region_stats(&self) -> Option<RegionStats> {
        None
    }

    /// Installs this tenant's resource [`Share`](crate::tenant::Share)
    /// from a global arbiter: promotion-bandwidth slice and profiling
    /// budget fraction. Managers that ignore arbitration (all static
    /// baselines) keep the default no-op; fast-tier capacity is enforced
    /// separately through allocator quotas, not through the manager.
    fn set_share(&mut self, _share: crate::tenant::Share) {}

    /// Serializes the manager's dynamic state for a checkpoint, or `None`
    /// when the manager does not support checkpointing (the default).
    /// A `Some` blob must restore bit-identically via
    /// [`MemoryManager::load_state`] on a freshly built manager of the
    /// same configuration.
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state captured by [`MemoryManager::save_state`] into this
    /// freshly built manager. The default rejects: managers that return
    /// `None` from `save_state` cannot be resumed.
    fn load_state(&mut self, _bytes: &[u8]) -> Result<(), String> {
        Err(format!("manager {:?} does not support checkpoint restore", self.name()))
    }
}

/// Region-formation statistics (Table 7).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RegionStats {
    /// Profiling intervals observed.
    pub intervals: u64,
    /// Average regions merged per interval.
    pub avg_merged: f64,
    /// Average regions split per interval.
    pub avg_split: f64,
    /// Average live regions per interval.
    pub avg_regions: f64,
}

/// A workload generating memory accesses (Table 2 of the paper).
pub trait Workload {
    /// Display name used in reports.
    fn name(&self) -> String;

    /// Registers VMAs and populates initial data (runs before measurement).
    fn setup(&mut self, env: &mut dyn MemEnv);

    /// Performs one small unit of work on thread `tid` (e.g. one GUPS
    /// update or one transaction step), issuing its accesses.
    fn tick(&mut self, env: &mut dyn MemEnv, tid: usize);

    /// Total memory footprint in bytes (simulated scale).
    fn footprint(&self) -> u64;

    /// Footprint the workload *will* map, known before [`Workload::setup`]
    /// has laid any VMA out. Multi-tenant arbitration uses this for its
    /// initial grant: setup populates eagerly, so a deeply split quota
    /// carved blind to demand can be too small for the first touch of a
    /// tenant whose tables span more 2 MB blocks than its equal share.
    /// Implementations replicate the VMA rounding their setup performs,
    /// so the declared value equals [`Workload::footprint`] once setup
    /// ran. Defaults to `footprint()` (zero before setup).
    fn declared_footprint(&self) -> u64 {
        self.footprint()
    }

    /// Ground-truth hot virtual ranges, when the workload knows them
    /// (GUPS does; used for profiling recall/accuracy in Fig. 1).
    fn true_hot_ranges(&self) -> Vec<VaRange> {
        Vec::new()
    }

    /// Notifies the workload that a profiling interval ended, letting it
    /// shift phases (e.g. GUPS hot-set rotation).
    fn end_of_interval(&mut self, _interval: u64) {}

    /// Application-level progress counter (operations completed).
    fn ops_completed(&self) -> u64 {
        0
    }

    /// Serializes the workload's dynamic state (RNG streams, cursors,
    /// phase counters) for a checkpoint, or `None` when the workload does
    /// not support checkpointing (the default).
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state captured by [`Workload::save_state`] into this
    /// freshly built (and already set-up) workload. The default rejects.
    fn load_state(&mut self, _bytes: &[u8]) -> Result<(), String> {
        Err(format!("workload {:?} does not support checkpoint restore", self.name()))
    }
}

/// Boxed workloads forward the whole trait, so factory-built workloads
/// plug into generic wrappers (e.g. the scenario engine's trace
/// recorder) without re-boxing.
impl Workload for Box<dyn Workload> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn setup(&mut self, env: &mut dyn MemEnv) {
        (**self).setup(env);
    }

    fn tick(&mut self, env: &mut dyn MemEnv, tid: usize) {
        (**self).tick(env, tid);
    }

    fn footprint(&self) -> u64 {
        (**self).footprint()
    }

    fn declared_footprint(&self) -> u64 {
        (**self).declared_footprint()
    }

    fn true_hot_ranges(&self) -> Vec<VaRange> {
        (**self).true_hot_ranges()
    }

    fn end_of_interval(&mut self, interval: u64) {
        (**self).end_of_interval(interval);
    }

    fn ops_completed(&self) -> u64 {
        (**self).ops_completed()
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        (**self).save_state()
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        (**self).load_state(bytes)
    }
}

/// A [`MemEnv`] over a machine and a manager: faults are resolved through
/// the manager's placement policy.
pub struct SimEnv<'a> {
    /// The machine accesses execute on.
    pub machine: &'a mut Machine,
    /// The manager resolving placement faults.
    pub manager: &'a mut dyn MemoryManager,
}

impl<'a> SimEnv<'a> {
    #[inline]
    fn do_access(&mut self, tid: usize, va: VirtAddr, kind: AccessKind) {
        if self.machine.access(tid, va, kind) == AccessResult::Ok {
            return;
        }
        let order = self.manager.placement(self.machine, tid, va);
        self.machine
            .alloc_and_map(tid, va, &order)
            .unwrap_or_else(|e| panic!("placement failed for {va:?}: {e}"));
        let r = self.machine.access(tid, va, kind);
        debug_assert_eq!(r, AccessResult::Ok, "access succeeds after mapping");
    }
}

impl<'a> MemEnv for SimEnv<'a> {
    #[inline]
    fn read(&mut self, tid: usize, va: VirtAddr) {
        self.do_access(tid, va, AccessKind::Read);
    }

    #[inline]
    fn write(&mut self, tid: usize, va: VirtAddr) {
        self.do_access(tid, va, AccessKind::Write);
    }

    #[inline]
    fn compute(&mut self, tid: usize, ns: f64) {
        self.machine.compute(tid, ns);
    }

    fn machine(&mut self) -> &mut Machine {
        self.machine
    }
}

/// Everything a finished scenario reports; the harness builds every paper
/// table and figure from these fields.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Manager display name.
    pub manager: String,
    /// Workload display name.
    pub workload: String,
    /// Committed time breakdown.
    pub breakdown: crate::clock::TimeBreakdown,
    /// Total virtual runtime in nanoseconds.
    pub total_ns: f64,
    /// Per-component application access counts.
    pub component_counts: Vec<ComponentCounts>,
    /// Per-interval per-component access counts.
    pub window_counts: Vec<Vec<ComponentCounts>>,
    /// Per-interval wall time.
    pub interval_ns: Vec<f64>,
    /// Cumulative workload ops after each interval (including the
    /// manager's interval work).
    pub ops_trace: Vec<u64>,
    /// Committed time breakdown after each interval.
    pub breakdown_trace: Vec<crate::clock::TimeBreakdown>,
    /// Bytes resident per component at the end.
    pub residency: Vec<u64>,
    /// Machine-level statistics.
    pub machine: MachineStats,
    /// Manager-reported hot-page volume (Table 3).
    pub hot_bytes_identified: u64,
    /// Manager metadata footprint (Table 5).
    pub metadata_bytes: u64,
    /// Region statistics (Table 7), if any.
    pub region_stats: Option<RegionStats>,
    /// Workload operations completed.
    pub ops_completed: u64,
    /// Workload footprint in bytes.
    pub footprint: u64,
    /// Per-run observability snapshot (counters, decision events,
    /// per-interval series). Travels with the report through the
    /// harness's run cache, so telemetry is identical for every caller.
    pub telemetry: obs::RunTelemetry,
}

impl RunReport {
    /// Total accesses that hit the component at tier rank `rank` from
    /// `node`'s view.
    pub fn accesses_at_rank(&self, topo: &crate::tier::Topology, node: u16, rank: usize) -> u64 {
        let c = topo.component_at_rank(node, rank);
        self.component_counts[c as usize].total()
    }

    /// Runtime in virtual seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_ns / 1e9
    }

    /// Throughput in operations per virtual second.
    pub fn ops_per_second(&self) -> f64 {
        if self.total_ns <= 0.0 {
            return 0.0;
        }
        self.ops_completed as f64 / (self.total_ns / 1e9)
    }

    /// Virtual nanoseconds per completed operation — the execution-time
    /// metric for a fixed amount of work. Runs last a fixed number of
    /// profiling intervals, so comparing managers requires normalizing by
    /// the work they completed.
    pub fn ns_per_op(&self) -> f64 {
        if self.ops_completed == 0 {
            return f64::INFINITY;
        }
        self.total_ns / self.ops_completed as f64
    }

    /// Time this run would need for `ops` operations, extrapolated.
    pub fn ns_for_ops(&self, ops: u64) -> f64 {
        self.ns_per_op() * ops as f64
    }

    /// Steady-state window: the time breakdown and work completed in the
    /// last quarter of the run, after migration-driven placement has
    /// (largely) converged — the regime the paper's hours-long runs spend
    /// most of their time in.
    ///
    /// The window covers the last `ceil(n/4)` intervals: its start index
    /// is `w = n - ceil(n/4)` (arithmetically equal to the old opaque
    /// `3*n/4`, but now the "round the window *up* to a quarter when `n %
    /// 4 != 0`" boundary is explicit), and the `w >= 1` guard keeps
    /// `w - 1` (the breakdown snapshot the deltas are taken against) in
    /// bounds by construction instead of by luck of the `n < 4` early
    /// return.
    /// All deltas are computed saturating: breakdown traces are monotone
    /// in a healthy run, but a degenerate trace (e.g. from a partially
    /// recorded or merged run) must clamp to zero, not panic in debug
    /// builds or wrap into garbage.
    pub fn steady(&self) -> (crate::clock::TimeBreakdown, u64) {
        let n = self.breakdown_trace.len();
        if n < 4 {
            return (self.breakdown, self.ops_completed);
        }
        let quarter = n.div_ceil(4);
        let w = (n - quarter).max(1);
        let b0 = self.breakdown_trace[w - 1];
        let b1 = self.breakdown_trace[n - 1];
        // f64 "saturating subtraction": clamp each field at zero.
        let delta = crate::clock::TimeBreakdown {
            app_ns: (b1.app_ns - b0.app_ns).max(0.0),
            profiling_ns: (b1.profiling_ns - b0.profiling_ns).max(0.0),
            migration_ns: (b1.migration_ns - b0.migration_ns).max(0.0),
        };
        let ops = self.ops_trace[n - 1].saturating_sub(self.ops_trace[w - 1]);
        (delta, ops)
    }

    /// Nanoseconds per operation over the steady-state window.
    pub fn ns_per_op_steady(&self) -> f64 {
        let (b, ops) = self.steady();
        if ops == 0 {
            return f64::INFINITY;
        }
        b.total_ns() / ops as f64
    }

    /// Steady-state throughput (ops per virtual second).
    pub fn ops_per_second_steady(&self) -> f64 {
        let (b, ops) = self.steady();
        if b.total_ns() <= 0.0 {
            return 0.0;
        }
        ops as f64 / (b.total_ns() / 1e9)
    }
}

/// Drives one profiling interval: generates accesses until the interval's
/// virtual wall time elapses (invoking the manager's sub-interval hooks on
/// the way), commits the interval and returns its wall time. The caller
/// is responsible for invoking `manager.on_interval` afterwards — which
/// lets experiment harnesses probe manager state between intervals.
///
/// # Phase structure and parallelism
///
/// Each interval is three phases. **Access simulation** (the tick loop
/// below) is inherently serial: every access mutates the clock, counters,
/// PEBS and PTE state, and the access order *is* the simulated workload.
/// **Profiling scans** and **migration batches** (inside the manager
/// hooks) contain read-only page-table sweeps; those run as work packets
/// on [`crate::engine`]'s pool (`MTM_RUN_WORKERS`) with their results
/// reduced in packet order, then apply their effects serially in the
/// original order — so the interval's outcome is byte-identical for any
/// worker count.
pub fn drive_interval(
    machine: &mut Machine,
    manager: &mut dyn MemoryManager,
    workload: &mut dyn Workload,
    interval: u64,
) -> f64 {
    let interval_len = machine.cfg.interval_ns;
    let threads = machine.cfg.threads;
    let subs = manager.sub_intervals().max(1);
    for k in 1..=subs {
        let target = interval_len * k as f64 / subs as f64;
        while machine.open_interval_ns() < target {
            let mut env = SimEnv { machine, manager };
            for _ in 0..8 {
                for tid in 0..threads {
                    workload.tick(&mut env, tid);
                }
            }
        }
        manager.on_subinterval(machine, interval, k);
    }
    machine.commit_interval()
}

/// An in-flight scenario that external drivers advance one interval at a
/// time — the mechanism behind multi-tenant lock-step execution, where a
/// global arbiter re-splits resources between each tenant's intervals.
/// [`run_scenario`] is exactly `start` + `step_interval` × N + `finish`,
/// so a single-stepped run is bit-identical to the one-shot path.
pub struct ScenarioProgress {
    window_counts: Vec<Vec<ComponentCounts>>,
    interval_ns: Vec<f64>,
    ops_trace: Vec<u64>,
    breakdown_trace: Vec<crate::clock::TimeBreakdown>,
    series: obs::IntervalSeries,
    prev_breakdown: crate::clock::TimeBreakdown,
    prev_migrated: u64,
}

impl ScenarioProgress {
    /// Sets up the scenario (workload VMAs and data, manager init) and
    /// resets measurement, leaving the run ready for its first interval.
    pub fn start(
        machine: &mut Machine,
        manager: &mut dyn MemoryManager,
        workload: &mut dyn Workload,
    ) -> ScenarioProgress {
        {
            let mut env = SimEnv { machine, manager };
            workload.setup(&mut env);
        }
        manager.init(machine);
        machine.reset_measurement();
        machine.counters_mut().reset_window();
        ScenarioProgress {
            window_counts: Vec::new(),
            interval_ns: Vec::new(),
            ops_trace: Vec::new(),
            breakdown_trace: Vec::new(),
            series: obs::IntervalSeries::default(),
            prev_breakdown: machine.breakdown(),
            prev_migrated: machine.stats().bytes_migrated,
        }
    }

    /// Drives profiling interval `ivl` to completion: access generation,
    /// the manager's interval hook, the workload's phase shift, and the
    /// per-interval telemetry series.
    pub fn step_interval(
        &mut self,
        machine: &mut Machine,
        manager: &mut dyn MemoryManager,
        workload: &mut dyn Workload,
        ivl: u64,
    ) {
        let wall = drive_interval(machine, manager, workload, ivl);
        self.interval_ns.push(wall);
        let comps = machine.topology().num_components();
        self.window_counts.push((0..comps as u16).map(|c| machine.counters().window(c)).collect());
        machine.counters_mut().reset_window();
        manager.on_interval(machine, ivl);
        workload.end_of_interval(ivl);
        self.ops_trace.push(workload.ops_completed());
        self.breakdown_trace.push(machine.breakdown());

        // Per-interval telemetry series: profiling overhead share,
        // migration traffic and tier occupancy for this interval.
        let b = machine.breakdown();
        let total_delta = b.total_ns() - self.prev_breakdown.total_ns();
        let prof_delta = b.profiling_ns - self.prev_breakdown.profiling_ns;
        self.series.wall_ns.push(wall);
        self.series
            .overhead_pct
            .push(if total_delta > 0.0 { 100.0 * prof_delta / total_delta } else { 0.0 });
        let migrated = machine.stats().bytes_migrated;
        self.series.migrated_bytes.push(migrated - self.prev_migrated);
        self.series.occupancy.push(machine.residency());
        self.prev_breakdown = b;
        self.prev_migrated = migrated;
    }

    /// Number of intervals stepped so far.
    pub fn intervals_done(&self) -> u64 {
        self.interval_ns.len() as u64
    }

    /// Serializes the accumulated per-interval traces (checkpoint
    /// support). Together with [`Machine::save_state`] and the manager's
    /// and workload's state blobs this captures everything a resumed run
    /// needs to finish with a byte-identical report.
    pub fn save(&self, w: &mut obs::wire::Writer) {
        w.varint(self.window_counts.len() as u64);
        for snap in &self.window_counts {
            w.varint(snap.len() as u64);
            for c in snap {
                w.varint(c.loads);
                w.varint(c.stores);
            }
        }
        w.varint(self.interval_ns.len() as u64);
        for &v in &self.interval_ns {
            w.f64(v);
        }
        w.varint(self.ops_trace.len() as u64);
        for &v in &self.ops_trace {
            w.varint(v);
        }
        w.varint(self.breakdown_trace.len() as u64);
        for b in &self.breakdown_trace {
            w.f64(b.app_ns);
            w.f64(b.profiling_ns);
            w.f64(b.migration_ns);
        }
        self.series.save(w);
        w.f64(self.prev_breakdown.app_ns);
        w.f64(self.prev_breakdown.profiling_ns);
        w.f64(self.prev_breakdown.migration_ns);
        w.varint(self.prev_migrated);
    }

    /// Restores progress saved with [`ScenarioProgress::save`]. The
    /// machine, manager and workload must be restored separately before
    /// stepping resumes.
    pub fn load(r: &mut obs::wire::Reader) -> Result<ScenarioProgress, String> {
        let mut window_counts = Vec::new();
        for _ in 0..r.varint()? {
            let n = r.varint()? as usize;
            let mut snap = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                snap.push(ComponentCounts { loads: r.varint()?, stores: r.varint()? });
            }
            window_counts.push(snap);
        }
        let mut interval_ns = Vec::new();
        for _ in 0..r.varint()? {
            interval_ns.push(r.f64()?);
        }
        let mut ops_trace = Vec::new();
        for _ in 0..r.varint()? {
            ops_trace.push(r.varint()?);
        }
        let mut breakdown_trace = Vec::new();
        for _ in 0..r.varint()? {
            breakdown_trace.push(crate::clock::TimeBreakdown {
                app_ns: r.f64()?,
                profiling_ns: r.f64()?,
                migration_ns: r.f64()?,
            });
        }
        let series = obs::IntervalSeries::load(r)?;
        let prev_breakdown = crate::clock::TimeBreakdown {
            app_ns: r.f64()?,
            profiling_ns: r.f64()?,
            migration_ns: r.f64()?,
        };
        let prev_migrated = r.varint()?;
        Ok(ScenarioProgress {
            window_counts,
            interval_ns,
            ops_trace,
            breakdown_trace,
            series,
            prev_breakdown,
            prev_migrated,
        })
    }

    /// Finalizes telemetry and assembles the report.
    pub fn finish(
        self,
        machine: &mut Machine,
        manager: &mut dyn MemoryManager,
        workload: &mut dyn Workload,
    ) -> RunReport {
        let telemetry = finalize_telemetry(machine, manager, workload, self.series);
        let breakdown = machine.breakdown();
        RunReport {
            manager: manager.name(),
            workload: workload.name(),
            breakdown,
            total_ns: breakdown.total_ns(),
            component_counts: machine.counters().all(),
            window_counts: self.window_counts,
            interval_ns: self.interval_ns,
            ops_trace: self.ops_trace,
            breakdown_trace: self.breakdown_trace,
            residency: machine.residency(),
            machine: machine.stats(),
            hot_bytes_identified: manager.hot_bytes_identified(),
            metadata_bytes: manager.metadata_bytes(),
            region_stats: manager.region_stats(),
            ops_completed: workload.ops_completed(),
            footprint: workload.footprint(),
            telemetry,
        }
    }
}

/// Runs `workload` under `manager` for `intervals` profiling intervals and
/// returns the report. Setup time is excluded from measurement.
pub fn run_scenario(
    machine: &mut Machine,
    manager: &mut dyn MemoryManager,
    workload: &mut dyn Workload,
    intervals: u64,
) -> RunReport {
    let mut progress = ScenarioProgress::start(machine, manager, workload);
    for ivl in 0..intervals {
        progress.step_interval(machine, manager, workload, ivl);
    }
    progress.finish(machine, manager, workload)
}

/// Static metric names for per-component PEBS sample counts (the
/// registry's key set is closed at compile time; no simulated topology
/// exceeds this many components).
const PEBS_COMPONENT_NAMES: [&str; 8] = [
    "pebs_samples_c0",
    "pebs_samples_c1",
    "pebs_samples_c2",
    "pebs_samples_c3",
    "pebs_samples_c4",
    "pebs_samples_c5",
    "pebs_samples_c6",
    "pebs_samples_c7",
];

/// Moves the machine's recorder out and folds the end-of-run machine
/// statistics into it, producing the run's telemetry snapshot.
fn finalize_telemetry(
    machine: &mut Machine,
    manager: &mut dyn MemoryManager,
    workload: &mut dyn Workload,
    series: obs::IntervalSeries,
) -> obs::RunTelemetry {
    use obs::names;
    let mut rec = std::mem::take(machine.obs_mut());
    let stats = machine.stats();
    for (name, v) in [
        (names::ALLOC_FAULTS, stats.alloc_faults),
        (names::HINT_FAULTS, stats.hint_faults),
        (names::PROT_FAULTS, stats.prot_faults),
        (names::WP_FAULTS, stats.wp_faults),
        (names::PTE_SCANS, stats.pte_scans),
        (names::TLB_FLUSHES, stats.tlb_flushes),
        (names::PAGES_MIGRATED, stats.pages_migrated),
        (names::BYTES_MIGRATED, stats.bytes_migrated),
    ] {
        rec.reg.counter_add(name, v);
    }
    let (pebs_taken, pebs_dropped, _) = machine.pebs_stats();
    rec.reg.counter_add(names::PEBS_SAMPLES_TAKEN, pebs_taken);
    rec.reg.counter_add(names::PEBS_SAMPLES_DROPPED, pebs_dropped);
    for (c, n) in machine.pebs_component_counts() {
        if let Some(&name) = PEBS_COMPONENT_NAMES.get(c as usize) {
            rec.reg.counter_add(name, n);
        }
    }
    rec.reg.gauge_set(names::HINT_POISONED_PEAK, machine.hint_poisoned_peak() as f64);
    obs::RunTelemetry {
        manager: manager.name(),
        workload: workload.name(),
        registry: rec.reg,
        events_dropped: rec.ring.dropped(),
        events: rec.ring.take(),
        series,
    }
}

/// A trivial manager placing pages on the local fastest component with
/// space, never migrating — first-touch NUMA, also used in substrate tests.
pub struct FirstTouchPolicy;

impl MemoryManager for FirstTouchPolicy {
    fn name(&self) -> String {
        "first-touch".into()
    }

    fn placement(&mut self, m: &Machine, tid: usize, _va: VirtAddr) -> Vec<ComponentId> {
        m.topology().view(m.node_of(tid)).to_vec()
    }

    fn on_interval(&mut self, _m: &mut Machine, _interval: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SIZE_2M;
    use crate::machine::MachineConfig;
    use crate::tier::tiny_two_tier;

    /// A workload striding over its footprint.
    struct Strider {
        range: VaRange,
        cursor: u64,
        ops: u64,
    }

    impl Workload for Strider {
        fn name(&self) -> String {
            "strider".into()
        }

        fn setup(&mut self, env: &mut dyn MemEnv) {
            let range = self.range;
            env.machine().mmap("stride", range, false);
        }

        fn tick(&mut self, env: &mut dyn MemEnv, tid: usize) {
            let va = VirtAddr(self.range.start.0 + self.cursor % self.range.len());
            self.cursor += 4096;
            self.ops += 1;
            env.read(tid, va);
        }

        fn footprint(&self) -> u64 {
            self.range.len()
        }

        fn ops_completed(&self) -> u64 {
            self.ops
        }
    }

    #[test]
    fn scenario_runs_and_reports() {
        let topo = tiny_two_tier(2 * PAGE_SIZE_2M, 8 * PAGE_SIZE_2M);
        let mut cfg = MachineConfig::new(topo, 2);
        cfg.interval_ns = 50_000.0;
        let mut machine = Machine::new(cfg);
        let mut wl = Strider { range: VaRange::from_len(VirtAddr(0), 4 * PAGE_SIZE_2M), cursor: 0, ops: 0 };
        let mut mgr = FirstTouchPolicy;
        let report = run_scenario(&mut machine, &mut mgr, &mut wl, 4);
        assert_eq!(report.interval_ns.len(), 4);
        assert!(report.total_ns > 0.0);
        assert!(report.ops_completed > 0);
        assert_eq!(report.window_counts.len(), 4);
        // First-touch fills the fast component first; nothing spills until
        // it is full.
        assert!(report.residency[0] > 0);
        assert!(report.residency[0] <= 2 * PAGE_SIZE_2M);
        if report.residency[1] > 0 {
            assert_eq!(report.residency[0], 2 * PAGE_SIZE_2M, "spill only after fast is full");
        }
        // Each interval's wall time is at least the configured length.
        for &w in &report.interval_ns {
            assert!(w >= 50_000.0);
        }
    }

    fn bd(ns: f64) -> crate::clock::TimeBreakdown {
        crate::clock::TimeBreakdown { app_ns: ns, profiling_ns: ns / 2.0, migration_ns: ns / 4.0 }
    }

    #[test]
    fn steady_clamps_degenerate_traces() {
        let topo = tiny_two_tier(2 * PAGE_SIZE_2M, 8 * PAGE_SIZE_2M);
        let mut cfg = MachineConfig::new(topo, 1);
        cfg.interval_ns = 20_000.0;
        let mut machine = Machine::new(cfg);
        let mut wl = Strider { range: VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M), cursor: 0, ops: 0 };
        let mut report = run_scenario(&mut machine, &mut FirstTouchPolicy, &mut wl, 4);

        // A degenerate (non-monotone) trace: the tail snapshot is *below*
        // the window anchor, as a partially recorded or merged run can
        // produce. Every field must clamp to zero — not panic in debug,
        // not wrap.
        report.breakdown_trace = vec![bd(100.0), bd(200.0), bd(300.0), bd(50.0)];
        report.ops_trace = vec![10, 20, 30, 5];
        let (delta, ops) = report.steady();
        assert_eq!(delta.app_ns, 0.0);
        assert_eq!(delta.profiling_ns, 0.0);
        assert_eq!(delta.migration_ns, 0.0);
        assert_eq!(ops, 0);

        // Healthy monotone trace with n % 4 != 0: the window is the last
        // ceil(n/4) = 2 intervals, anchored at index w - 1 = 2.
        report.breakdown_trace = vec![bd(10.0), bd(20.0), bd(30.0), bd(40.0), bd(60.0)];
        report.ops_trace = vec![1, 2, 3, 4, 9];
        let (delta, ops) = report.steady();
        assert_eq!(delta.app_ns, 30.0);
        assert_eq!(ops, 6);
    }

    #[test]
    fn report_rank_accessor() {
        let topo = tiny_two_tier(2 * PAGE_SIZE_2M, 8 * PAGE_SIZE_2M);
        let mut cfg = MachineConfig::new(topo.clone(), 1);
        cfg.interval_ns = 20_000.0;
        let mut machine = Machine::new(cfg);
        let mut wl = Strider { range: VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M), cursor: 0, ops: 0 };
        let mut mgr = FirstTouchPolicy;
        let report = run_scenario(&mut machine, &mut mgr, &mut wl, 2);
        // Footprint fits in fast; all accesses land at rank 0.
        assert_eq!(report.accesses_at_rank(&topo, 0, 0), report.component_counts[0].total());
        assert_eq!(report.accesses_at_rank(&topo, 0, 1), 0);
    }
}
