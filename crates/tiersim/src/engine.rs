//! Deterministic intra-run work-packet executor.
//!
//! The per-run interval loop has three phases — access simulation,
//! profiling scan, migration batch — and the latter two contain read-only
//! sweeps over the page table (sampling accessed bits, collecting a
//! migration move-set, taking the sanitizer census). This module executes
//! such sweeps as *work packets*: contiguous index chunks pulled from a
//! shared atomic counter by a small `std::thread::scope` pool (the same
//! dependency-free shape as the harness's `runpool`), with results
//! reduced **in packet order**. Because every packet is a pure function
//! of shared read-only state and the reduction order is fixed, the output
//! is byte-identical for any worker count — `MTM_RUN_WORKERS=1` and `=8`
//! must (and do) produce the same `results/ALL.txt`.
//!
//! The worker count comes from `MTM_RUN_WORKERS` (default 1: packets are
//! fine-grained and the harness's outer `MTM_JOBS` pool already owns the
//! cores; raising it helps single-run workflows like `bin/simulate` on
//! big machines). [`crate::machine::Machine`] snapshots the value at
//! construction and exposes `set_run_workers` so tests can pin a count
//! programmatically without racing on the process environment.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Worker count from `MTM_RUN_WORKERS`, read once per process. Always at
/// least 1; an unparsable value is ignored with a `warning:` line on
/// stderr (the verify gates grep for exactly that prefix).
pub fn workers() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("MTM_RUN_WORKERS") {
        Ok(raw) => match raw.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!(
                    "warning: ignoring MTM_RUN_WORKERS={raw:?} (expected a positive integer)"
                );
                1
            }
        },
        Err(_) => 1,
    })
}

/// Splits `0..len` into `chunk`-sized packets, maps each through `f` (on
/// up to `workers` threads), and returns the per-packet results **in
/// packet order** — the deterministic ordered reduction every caller
/// relies on. With one worker or one packet the packets run inline on
/// the calling thread, in order: the exact serial behavior.
///
/// `f` must be a pure function of shared read-only state: packets run
/// concurrently in arbitrary order, so any side effect would break the
/// byte-identical-across-worker-counts guarantee.
pub fn map_chunks<T, F>(workers: usize, len: usize, chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let chunk = chunk.max(1);
    let n_chunks = len.div_ceil(chunk);
    let bounds = |ci: usize| (ci * chunk)..((ci + 1) * chunk).min(len);
    if workers <= 1 || n_chunks <= 1 {
        return (0..n_chunks).map(|ci| f(bounds(ci))).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n_chunks) {
            scope.spawn(|| loop {
                let ci = next.fetch_add(1, Ordering::Relaxed);
                if ci >= n_chunks {
                    break;
                }
                let out = f(bounds(ci));
                // lint:allow(panic-path): each chunk index is claimed exactly once, so no other worker can poison this slot's lock
                *slots[ci].lock().expect("packet slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        // lint:allow(panic-path): thread::scope re-raises worker panics before this line can run with an unfilled or poisoned slot
        .map(|s| s.into_inner().expect("packet slot poisoned").expect("worker filled every packet"))
        .collect()
}

/// Maps `f` over `items` in `chunk`-sized packets and concatenates the
/// results in item order. Convenience wrapper over [`map_chunks`] for
/// element-wise read phases (e.g. sampling one accessed bit per planned
/// scan slot).
pub fn map_items<I, T, F>(workers: usize, items: &[I], chunk: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let parts = map_chunks(workers, items.len(), chunk, |r| {
        items[r].iter().map(&f).collect::<Vec<T>>()
    });
    let mut out = Vec::with_capacity(items.len());
    for p in parts {
        out.extend(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn packet_results_keep_index_order() {
        for workers in [1, 2, 4, 7] {
            let out = map_chunks(workers, 100, 7, |r| r.clone());
            let flat: Vec<usize> = out.into_iter().flatten().collect();
            assert_eq!(flat, (0..100).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn map_items_matches_serial_for_any_worker_count() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x)).collect();
        for workers in [1, 2, 3, 8, 32] {
            let par = map_items(workers, &items, 16, |&x| x.wrapping_mul(x));
            assert_eq!(par, serial, "workers={workers}");
        }
    }

    #[test]
    fn every_index_is_mapped_exactly_once() {
        let hits = AtomicU64::new(0);
        let out = map_chunks(4, 333, 10, |r| {
            hits.fetch_add(r.len() as u64, Ordering::Relaxed);
            r.len()
        });
        assert_eq!(out.iter().sum::<usize>(), 333);
        assert_eq!(hits.load(Ordering::Relaxed), 333);
    }

    #[test]
    fn empty_input_yields_no_packets() {
        let out: Vec<usize> = map_chunks(4, 0, 8, |r| r.len());
        assert!(out.is_empty());
        let none: Vec<u8> = map_items(4, &[] as &[u8], 8, |&b| b);
        assert!(none.is_empty());
    }

    #[test]
    fn workers_is_at_least_one() {
        assert!(workers() >= 1);
    }
}
