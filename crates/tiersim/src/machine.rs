//! The simulated multi-tiered machine.
//!
//! A [`Machine`] owns the topology, the page table, per-component frame
//! allocators, the virtual clock, performance counters, the PEBS sampler,
//! the hint-fault unit, and (in Memory-Mode) the hardware DRAM caches. Every
//! simulated memory access goes through [`Machine::access`], which sets PTE
//! accessed/dirty bits, fires hint and protection faults, feeds PEBS, and
//! charges virtual time — the same signal surface the paper's profilers
//! consume on real hardware.

use std::collections::BTreeMap;

use crate::addr::{VaRange, VirtAddr, CACHE_LINE, PAGE_SIZE_2M};
use crate::cache::HwCache;
use crate::clock::{Clock, TimeBreakdown};
use crate::counters::Counters;
use crate::frame::{FrameAllocator, FrameSize, OutOfMemory, VersionStore};
use crate::hintfault::HintFaultUnit;
use crate::page_table::PageTable;
use crate::pebs::{Pebs, PebsConfig};
use crate::pte::{Pte, PTE_NUMA_POISON, PTE_PROT_NONE, PTE_WRITE_TRACK};
use crate::tier::{ComponentId, NodeId, Topology};

/// Whether an access reads or writes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Outcome of [`Machine::access`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessResult {
    /// The access completed.
    Ok,
    /// No mapping covers the address; the caller must place the page and
    /// retry (the simulator's demand-paging fault).
    Unmapped,
}

/// A protection fault captured for a `PROT_NONE` page (Thermostat's
/// profiling signal).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProtFault {
    /// Base address of the faulting page.
    pub page: VirtAddr,
    /// Faulting thread.
    pub tid: u32,
    /// True if the faulting access was a write.
    pub is_write: bool,
}

/// A region armed for write tracking during an asynchronous migration.
#[derive(Clone, Copy, Debug)]
struct WatchEntry {
    range: VaRange,
    dirty: bool,
    id: u64,
}

/// A retained demotion copy (Nomad-style non-exclusive migration): the
/// source-tier frames a demoted range used to occupy, kept allocated so a
/// clean repromotion can reuse them with zero copy traffic. A write watch
/// over the (now slower-tier) mapping invalidates the copy on the first
/// write, via the same machinery async migration uses.
#[derive(Clone, Debug)]
struct ShadowEntry {
    /// Demoted virtual range the copy mirrors.
    range: VaRange,
    /// Component holding the retained frames (the demotion source).
    component: ComponentId,
    /// Write watch armed over the demoted range; dirty means stale.
    watch_id: u64,
    /// Retained frames, one record per page at demotion time.
    pages: Vec<(VirtAddr, crate::addr::PhysAddr, FrameSize)>,
    /// Total retained bytes (sum of page sizes).
    bytes: u64,
}

/// Per-event and per-operation cost constants, in virtual nanoseconds.
///
/// Defaults are calibrated for the default simulation scale (see
/// `DESIGN.md`): one PTE scan is cheap, a hint fault costs 12x a scan
/// (Sec. 6.2), and a write-protection fault during migration costs ~40 µs
/// (Sec. 9.5).
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Cost of scanning (read + clear) one PTE.
    pub one_scan_ns: f64,
    /// Hint-fault cost as a multiple of `one_scan_ns`.
    pub hint_fault_mult: f64,
    /// Cost of one TLB shootdown.
    pub tlb_flush_ns: f64,
    /// Cost of a demand-paging (allocation) fault.
    pub page_fault_ns: f64,
    /// Cost of handling one write-protection fault during async migration.
    pub wp_fault_ns: f64,
    /// Cost of a protection fault used by Thermostat-style profiling.
    pub prot_fault_ns: f64,
    /// Cost to allocate one destination page during migration.
    pub migrate_alloc_page_ns: f64,
    /// Cost to unmap (invalidate PTE of) one page during migration.
    pub migrate_unmap_page_ns: f64,
    /// Cost to remap one page during migration.
    pub migrate_remap_page_ns: f64,
    /// Cost to move the page-table pages of one region.
    pub migrate_pt_region_ns: f64,
    /// Cost charged per drained PEBS sample.
    pub pebs_sample_ns: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            one_scan_ns: 60.0,
            hint_fault_mult: 12.0,
            tlb_flush_ns: 2_000.0,
            page_fault_ns: 1_500.0,
            wp_fault_ns: 40_000.0,
            prot_fault_ns: 3_000.0,
            migrate_alloc_page_ns: 250.0,
            migrate_unmap_page_ns: 150.0,
            migrate_remap_page_ns: 150.0,
            migrate_pt_region_ns: 1_200.0,
            pebs_sample_ns: 15.0,
        }
    }
}

impl CostModel {
    /// Cost of one hint fault.
    pub fn hint_fault_ns(&self) -> f64 {
        self.one_scan_ns * self.hint_fault_mult
    }
}

/// Configuration of a simulated machine.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Memory topology.
    pub topology: Topology,
    /// Number of application threads.
    pub threads: usize,
    /// CPU node each thread is pinned to (`thread_node[tid]`).
    pub thread_node: Vec<NodeId>,
    /// Memory-level-parallelism factor: effective per-access latency is
    /// `link latency / mlp`. Defaults to 1: the paper's workloads chase
    /// pointers and random indices (dependent loads), which out-of-order
    /// cores cannot overlap.
    pub mlp: f64,
    /// Cost constants.
    pub costs: CostModel,
    /// PEBS programming.
    pub pebs: PebsConfig,
    /// Profiling-interval length used by interval-relative consumers.
    pub interval_ns: f64,
    /// Run the DRAM components as hardware caches of PM (Memory Mode).
    pub hmc_mode: bool,
    /// Track a 2 MB-granularity access heatmap (for Fig. 6 style plots).
    pub track_heat: bool,
}

impl MachineConfig {
    /// A sane default configuration over `topology`: `threads` threads
    /// pinned round-robin across nodes, PEBS monitoring the PM components.
    pub fn new(topology: Topology, threads: usize) -> MachineConfig {
        let nodes = topology.nodes;
        let pebs = PebsConfig::with_components(topology.pm_components());
        MachineConfig {
            topology,
            threads,
            thread_node: (0..threads).map(|t| (t as u16) % nodes).collect(),
            mlp: 1.0,
            costs: CostModel::default(),
            pebs,
            interval_ns: 10.0e6,
            hmc_mode: false,
            track_heat: false,
        }
    }

    /// Pins all threads to one node (the paper's Table 6 setting).
    pub fn pin_all_to(mut self, node: NodeId) -> MachineConfig {
        self.thread_node = vec![node; self.threads];
        self
    }
}

/// Aggregate machine statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct MachineStats {
    /// Demand-paging faults served.
    pub alloc_faults: u64,
    /// Hint faults served.
    pub hint_faults: u64,
    /// Protection faults served.
    pub prot_faults: u64,
    /// Write-protection (async-migration tracking) faults served.
    pub wp_faults: u64,
    /// PTE scans performed.
    pub pte_scans: u64,
    /// TLB flushes performed.
    pub tlb_flushes: u64,
    /// Pages migrated (any mechanism).
    pub pages_migrated: u64,
    /// Bytes migrated (any mechanism).
    pub bytes_migrated: u64,
}

/// Precomputed per-(node, component) access-charge constants — the
/// division-free fast path of the roofline cost model. Every entry is
/// derived from [`MachineConfig`] at construction with exactly the
/// arithmetic the per-access path used to perform inline, so charging
/// from the table is bit-identical to recomputing; the config must not
/// change latency/bandwidth/`mlp` after [`Machine::new`].
#[derive(Clone, Copy, Debug)]
struct ChargeSpec {
    /// `link.latency_ns / cfg.mlp`.
    lat_ns: f64,
    /// `CACHE_LINE as f64 * link.write_cost_factor()` — the roofline
    /// byte charge of one written line on this link.
    write_bytes: f64,
    /// `link.write_cost_factor()` (Memory Mode writeback charging).
    wcf: f64,
    /// `(dram latency + this link's latency) / cfg.mlp` for the PM
    /// component's Memory Mode miss path (tag check in the fronting
    /// DRAM serializes before the PM access); 0.0 outside Memory Mode.
    hmc_miss_lat_ns: f64,
}

/// The simulated machine.
pub struct Machine {
    /// Machine configuration (public for read access by policies).
    pub cfg: MachineConfig,
    pub(crate) pt: PageTable,
    pub(crate) allocators: Vec<FrameAllocator>,
    pub(crate) clock: Clock,
    pub(crate) counters: Counters,
    pub(crate) pebs: Pebs,
    pub(crate) hints: HintFaultUnit,
    pub(crate) versions: VersionStore,
    pub(crate) stats: MachineStats,
    prot_faults: Vec<ProtFault>,
    watches: Vec<WatchEntry>,
    watch_bounds: Option<VaRange>,
    next_watch_id: u64,
    /// Whether demotions retain shadow copies (Nomad non-exclusive mode).
    shadow_mode: bool,
    /// Live shadow copies, oldest first.
    shadows: Vec<ShadowEntry>,
    /// Per-(node, component) charge table, indexed
    /// `node * num_components + component` (see [`ChargeSpec`]).
    charge: Vec<ChargeSpec>,
    /// DRAM cache per PM component id (Memory Mode only).
    hmc_caches: BTreeMap<ComponentId, HwCache>,
    /// PM component -> fronting DRAM component (Memory Mode).
    hmc_front: BTreeMap<ComponentId, ComponentId>,
    /// Access heatmap, dense-indexed by 2 MB chunk (`va >> 21`); zero
    /// entries mean "never touched" and are skipped on snapshot.
    heat: Vec<u64>,
    /// Worker count for packetized intra-run sweeps, snapshotted from
    /// `MTM_RUN_WORKERS` at construction (see [`crate::engine`]).
    run_workers: usize,
    /// Per-run observability recorder. Recording never touches the clock
    /// or any RNG, so instrumentation cannot perturb simulated results.
    pub(crate) recorder: obs::Recorder,
    /// Fault-injection plane. Disabled by default: every query answers
    /// "no fault" without consuming randomness, so a healthy run is
    /// byte-identical to one built before this field existed.
    pub(crate) faults: faultsim::FaultState,
    /// Whether the `MTM_CHECK` shadow-state sanitizer is armed. The
    /// sanitizer only reads state and panics on violation — it never
    /// touches the clock, counters or any RNG, so a checked run is
    /// byte-identical to an unchecked one.
    checking: bool,
}

impl Machine {
    /// Builds a machine from a configuration.
    pub fn new(cfg: MachineConfig) -> Machine {
        assert_eq!(cfg.thread_node.len(), cfg.threads, "one pin per thread");
        let allocators = (0..cfg.topology.num_components() as u16)
            .map(|c| FrameAllocator::new(c, cfg.topology.components[c as usize].capacity))
            .collect();
        let clock = Clock::new(cfg.threads, &cfg.topology);
        let counters = Counters::new(cfg.topology.num_components());
        let pebs = Pebs::new(&cfg.pebs);
        let mut hmc_caches = BTreeMap::new();
        let mut hmc_front = BTreeMap::new();
        if cfg.hmc_mode {
            for pm in cfg.topology.pm_components() {
                let home = cfg.topology.components[pm as usize].home_node;
                let dram = cfg
                    .topology
                    .dram_components()
                    .into_iter()
                    .find(|&d| cfg.topology.components[d as usize].home_node == home)
                    .expect("each PM has a same-socket DRAM to act as its cache");
                let cap = cfg.topology.components[dram as usize].capacity;
                hmc_caches.insert(pm, HwCache::new(cap));
                hmc_front.insert(pm, dram);
            }
        }
        let components = cfg.topology.num_components();
        let mut charge = Vec::with_capacity(cfg.topology.nodes as usize * components);
        for node in 0..cfg.topology.nodes {
            for comp in 0..components as u16 {
                let link = cfg.topology.link(node, comp);
                let hmc_miss_lat_ns = match hmc_front.get(&comp) {
                    Some(&dram) => {
                        let dram_link = cfg.topology.link(node, dram);
                        (dram_link.latency_ns + link.latency_ns) / cfg.mlp
                    }
                    None => 0.0,
                };
                charge.push(ChargeSpec {
                    lat_ns: link.latency_ns / cfg.mlp,
                    write_bytes: CACHE_LINE as f64 * link.write_cost_factor(),
                    wcf: link.write_cost_factor(),
                    hmc_miss_lat_ns,
                });
            }
        }
        Machine {
            cfg,
            pt: PageTable::new(),
            allocators,
            clock,
            counters,
            pebs,
            hints: HintFaultUnit::new(),
            versions: VersionStore::new(),
            stats: MachineStats::default(),
            prot_faults: Vec::new(),
            watches: Vec::new(),
            watch_bounds: None,
            next_watch_id: 1,
            shadow_mode: false,
            shadows: Vec::new(),
            charge,
            hmc_caches,
            hmc_front,
            heat: Vec::new(),
            run_workers: crate::engine::workers(),
            recorder: obs::Recorder::new(),
            faults: faultsim::FaultState::disabled(),
            checking: mtm_check::enabled(),
        }
    }

    /// Installs a fault-injection plan drawn from `seed`. The previous
    /// plane (if any) is replaced wholesale; its stream restarts on the
    /// next [`Machine::reset_measurement`].
    pub fn install_faults(&mut self, plan: faultsim::FaultPlan, seed: u64) {
        self.faults = faultsim::FaultState::new(plan, seed);
    }

    /// The fault-injection plane (read-only).
    #[inline]
    pub fn faults(&self) -> &faultsim::FaultState {
        &self.faults
    }

    /// Injection counters accumulated so far.
    pub fn fault_stats(&self) -> faultsim::FaultStats {
        self.faults.stats()
    }

    /// The machine topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.cfg.topology
    }

    /// The page table (read-only).
    #[inline]
    pub fn page_table(&self) -> &PageTable {
        &self.pt
    }

    /// Mutable page table access (for VMA registration and tests).
    #[inline]
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.pt
    }

    /// Aggregate statistics.
    #[inline]
    pub fn stats(&self) -> MachineStats {
        self.stats
    }

    /// Performance counters.
    #[inline]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Mutable counters (for window resets).
    #[inline]
    pub fn counters_mut(&mut self) -> &mut Counters {
        &mut self.counters
    }

    /// The frame allocator of one component.
    #[inline]
    pub fn allocator(&self, component: ComponentId) -> &FrameAllocator {
        &self.allocators[component as usize]
    }

    /// Resizes one component's managed capacity — a multi-tenant *quota*
    /// carved from the physical component by a global arbiter. Rounded
    /// down to whole 2 MB blocks and clamped so it never drops below the
    /// bytes currently allocated (see [`FrameAllocator::set_capacity`]).
    /// Returns the effective capacity.
    pub fn set_component_quota(&mut self, component: ComponentId, bytes: u64) -> u64 {
        self.allocators[component as usize].set_capacity(bytes)
    }

    /// Mutable allocator access for tests that set up fragmentation.
    ///
    /// Mutating an allocator behind the page table's back (allocating
    /// frames that are never mapped) breaks the occupancy==census
    /// invariant by design, so taking this handle disarms the sanitizer
    /// for the rest of the machine's life.
    #[doc(hidden)]
    pub fn allocators_mut_for_test(&mut self, component: ComponentId) -> &mut FrameAllocator {
        self.checking = false;
        &mut self.allocators[component as usize]
    }

    /// CPU node a thread is pinned to.
    #[inline]
    pub fn node_of(&self, tid: usize) -> NodeId {
        self.cfg.thread_node[tid]
    }

    /// Approximate current virtual time as seen by `tid` (committed time
    /// plus the thread's open-interval latency clock).
    #[inline]
    pub fn approx_now_ns(&self, tid: usize) -> f64 {
        self.clock.breakdown().total_ns() + self.clock.thread_ns(tid)
    }

    /// Committed time breakdown.
    pub fn breakdown(&self) -> TimeBreakdown {
        self.clock.breakdown()
    }

    /// Total committed virtual time.
    pub fn elapsed_ns(&self) -> f64 {
        self.clock.breakdown().total_ns()
    }

    /// The per-run observability recorder.
    #[inline]
    pub fn obs(&self) -> &obs::Recorder {
        &self.recorder
    }

    /// Mutable access to the per-run observability recorder.
    #[inline]
    pub fn obs_mut(&mut self) -> &mut obs::Recorder {
        &mut self.recorder
    }

    /// Records a decision event, stamping it with the number of committed
    /// profiling intervals and the committed virtual time.
    pub fn record_event(&mut self, kind: obs::EventKind) {
        let interval = self.clock.intervals();
        let t_ns = self.clock.breakdown().total_ns();
        self.recorder.record(interval, t_ns, kind);
    }

    /// Registers a VMA (see [`PageTable::mmap`]).
    pub fn mmap(&mut self, name: &str, range: VaRange, thp: bool) {
        self.pt.mmap(name, range, thp);
    }

    /// Charges pure compute time to a thread (application think time
    /// between memory accesses — real workloads are not load-latency
    /// machines; see DESIGN.md on access-density calibration).
    #[inline]
    pub fn compute(&mut self, tid: usize, ns: f64) {
        let node = self.cfg.thread_node[tid];
        self.clock.charge_access(tid, ns, node, 0, 0.0);
    }

    /// Issues one application access.
    ///
    /// Returns [`AccessResult::Unmapped`] if no mapping covers `va`; the
    /// caller (normally the [`crate::sim`] driver) places the page via the
    /// active manager's policy and retries.
    pub fn access(&mut self, tid: usize, va: VirtAddr, kind: AccessKind) -> AccessResult {
        let is_write = kind == AccessKind::Write;
        // `touch` sets ACCESSED (and DIRTY on writes) in the PTE and the
        // packed side metadata together, and hands back the pre-access
        // flag word the rare-path fault gate reads.
        let Some((pre, _size)) = self.pt.touch(va, is_write) else {
            return AccessResult::Unmapped;
        };
        let mut extra_ns = 0.0;
        let flags = pre.0;
        let frame = pre.frame();
        let component = frame.component();

        // Rare-path fault handling, gated on the pre-access flag word.
        if flags & (PTE_NUMA_POISON | PTE_PROT_NONE | PTE_WRITE_TRACK) != 0 {
            if flags & PTE_NUMA_POISON != 0 {
                self.pt.clear_flags(va, PTE_NUMA_POISON);
                let node = self.cfg.thread_node[tid];
                let page = va.page_4k();
                let now = self.approx_now_ns(tid);
                self.hints.fault(page, tid as u32, node, now);
                self.stats.hint_faults += 1;
                extra_ns += self.cfg.costs.hint_fault_ns();
            }
            if flags & PTE_PROT_NONE != 0 {
                // Count once, then restore protection (Thermostat clears the
                // trap after the first hit of the interval).
                self.pt.clear_flags(va, PTE_PROT_NONE);
                self.prot_faults.push(ProtFault { page: va.page_4k(), tid: tid as u32, is_write });
                self.stats.prot_faults += 1;
                extra_ns += self.cfg.costs.prot_fault_ns;
            }
            if is_write && flags & PTE_WRITE_TRACK != 0 {
                extra_ns += self.handle_wp_fault(va);
            }
        }

        if is_write {
            self.versions.bump(frame_page_base(frame));
        }
        if self.cfg.track_heat {
            let chunk = (va.0 >> 21) as usize;
            if chunk >= self.heat.len() {
                self.heat.resize((chunk + 1).next_power_of_two(), 0);
            }
            self.heat[chunk] += 1;
        }
        let node = self.cfg.thread_node[tid];
        let charge_base = node as usize * self.cfg.topology.num_components();

        // Cost: either through the hardware cache (Memory Mode) or direct.
        // All latency/byte constants come from the precomputed charge
        // table — no division on the per-access path.
        if !self.hmc_caches.is_empty() {
            if let Some(cache) = self.hmc_caches.get_mut(&component) {
                let t_ns = self.clock.thread_ns(tid);
                let dram = self.hmc_front[&component];
                // Probe at cache-line granularity: the accessed line's
                // physical address, not the page base.
                let page_span = match _size {
                    FrameSize::Huge2M => PAGE_SIZE_2M,
                    FrameSize::Base4K => crate::addr::PAGE_SIZE_4K,
                };
                let line_pa = crate::addr::PhysAddr::new(
                    frame.component(),
                    frame.offset() + (va.0 & (page_span - 1)),
                );
                let probe = cache.access(line_pa, is_write);
                if probe.hit {
                    // A cache hit is served by (and counted against) DRAM.
                    self.counters.record(dram, is_write);
                    self.pebs.observe(va, tid as u32, dram, is_write, t_ns);
                    let lat = self.charge[charge_base + dram as usize].lat_ns + extra_ns;
                    self.clock.charge_access(tid, lat, node, dram, CACHE_LINE as f64);
                } else {
                    self.counters.record(component, is_write);
                    self.pebs.observe(va, tid as u32, component, is_write, t_ns);
                    // Memory Mode misses are serial: the tag check in DRAM
                    // happens before the PM access can start.
                    let spec = self.charge[charge_base + component as usize];
                    let lat = spec.hmc_miss_lat_ns + extra_ns;
                    let pm_bytes =
                        probe.fill_bytes as f64 + probe.writeback_bytes as f64 * spec.wcf;
                    self.clock.charge_access(tid, lat, node, component, pm_bytes);
                    self.clock.charge_access(tid, 0.0, node, dram, probe.fill_bytes as f64);
                }
                return AccessResult::Ok;
            }
        }
        let t_ns = self.clock.thread_ns(tid);
        self.counters.record(component, is_write);
        self.pebs.observe(va, tid as u32, component, is_write, t_ns);
        let spec = self.charge[charge_base + component as usize];
        let lat = spec.lat_ns + extra_ns;
        // The roofline uses a read-bandwidth denominator; writes count as
        // more bytes where write bandwidth is lower.
        let bytes = if is_write { spec.write_bytes } else { CACHE_LINE as f64 };
        self.clock.charge_access(tid, lat, node, component, bytes);
        AccessResult::Ok
    }

    fn handle_wp_fault(&mut self, va: VirtAddr) -> f64 {
        // Every watch covering the written page observes the write:
        // overlapping watches (a shadow-invalidation watch under an async
        // migration watch, say) must not mask each other.
        let mut any = false;
        for w in self.watches.iter_mut().filter(|w| w.range.contains(va)) {
            w.dirty = true;
            any = true;
        }
        if !any {
            // Stale tracking bit with no armed watch; just clear it.
            if let Some((pte, _)) = self.pt.pte_mut(va) {
                pte.clear(PTE_WRITE_TRACK);
            }
            return 0.0;
        }
        // First write detected: tracking turns off for every region whose
        // watch is now dirty — except where a still-clean watch overlaps
        // and needs its bits armed.
        let dirty_ranges: Vec<VaRange> =
            self.watches.iter().filter(|w| w.dirty).map(|w| w.range).collect();
        let watches = &self.watches;
        for range in dirty_ranges {
            self.pt.for_each_mapped(range, |pva, pte, _| {
                if !watches.iter().any(|w| !w.dirty && w.range.contains(pva)) {
                    pte.clear(PTE_WRITE_TRACK);
                }
            });
        }
        self.stats.wp_faults += 1;
        self.cfg.costs.wp_fault_ns
    }

    /// Allocates and maps the page covering `va`, trying components in
    /// `order`, honouring THP for eligible 2 MB chunks.
    ///
    /// Returns the chosen component. Charges a demand-paging fault to the
    /// faulting thread.
    pub fn alloc_and_map(
        &mut self,
        tid: usize,
        va: VirtAddr,
        order: &[ComponentId],
    ) -> Result<ComponentId, OutOfMemory> {
        self.alloc_and_map_inner(tid, va, order, true)
    }

    fn alloc_and_map_inner(
        &mut self,
        tid: usize,
        va: VirtAddr,
        order: &[ComponentId],
        charge: bool,
    ) -> Result<ComponentId, OutOfMemory> {
        let huge_base = va.page_2m();
        let want_huge = match self.pt.vma_of(va) {
            Some(vma) => {
                vma.thp
                    && vma.range.contains(huge_base)
                    && vma.range.contains(VirtAddr(huge_base.0 + PAGE_SIZE_2M - 1))
                    && self.pt.translate(huge_base).is_none()
                    && self.pt.mapped_page_count(VaRange::from_len(huge_base, PAGE_SIZE_2M)) == 0
            }
            None => false,
        };
        let size = if want_huge { FrameSize::Huge2M } else { FrameSize::Base4K };
        let mut chosen = None;
        for &c in order {
            if self.allocators[c as usize].can_alloc(size) {
                chosen = Some(c);
                break;
            }
        }
        let Some(c) = chosen else {
            return Err(OutOfMemory { component: order.last().copied().unwrap_or(0), size });
        };
        let frame = self.allocators[c as usize].alloc(size).expect("can_alloc checked");
        match size {
            FrameSize::Huge2M => self.pt.map_2m(huge_base, Pte::map(frame, true)),
            FrameSize::Base4K => self.pt.map_4k(va.page_4k(), Pte::map(frame, false)),
        }
        if charge {
            self.stats.alloc_faults += 1;
            let node = self.cfg.thread_node[tid];
            self.clock.charge_access(tid, self.cfg.costs.page_fault_ns, node, c, 0.0);
        }
        Ok(c)
    }

    /// Maps an address range ahead of time (setup helper), charging nothing.
    pub fn prefault_range(&mut self, range: VaRange, order: &[ComponentId]) -> Result<(), OutOfMemory> {
        let mut va = range.start.page_4k();
        while va < range.end {
            if self.pt.translate(va).is_none() {
                self.alloc_and_map_quiet(va, order)?;
            }
            // Skip to the end of whatever mapping now covers `va`.
            let step = match self.pt.translate(va) {
                Some(t) if t.size == FrameSize::Huge2M => PAGE_SIZE_2M - (va.0 - va.page_2m().0),
                _ => crate::addr::PAGE_SIZE_4K,
            };
            va += step;
        }
        Ok(())
    }

    fn alloc_and_map_quiet(&mut self, va: VirtAddr, order: &[ComponentId]) -> Result<(), OutOfMemory> {
        self.alloc_and_map_inner(0, va, order, false)?;
        Ok(())
    }

    /// Scans one PTE: reads and clears its ACCESSED bit, charging one scan.
    ///
    /// Returns `None` if the page is unmapped, otherwise whether the bit was
    /// set and whether the mapping is huge.
    pub fn scan_page(&mut self, va: VirtAddr) -> Option<(bool, bool)> {
        let (accessed, size) = self.pt.scan_page_at(va)?;
        let huge = size == FrameSize::Huge2M;
        self.stats.pte_scans += 1;
        self.clock.charge_profiling(self.cfg.costs.one_scan_ns);
        Some((accessed, huge))
    }

    /// Clears the ACCESSED bit of the page covering `va` without reading
    /// it, charging one scan — the apply half of a packetized scan pass
    /// whose read half already sampled the bit from the packed side
    /// metadata ([`PageTable::accessed_at`]). Returns whether the page
    /// was mapped (unmapped pages cost nothing, as in
    /// [`Machine::scan_page`]).
    pub fn scan_page_clear(&mut self, va: VirtAddr) -> bool {
        if self.pt.clear_accessed_at(va).is_none() {
            return false;
        }
        self.stats.pte_scans += 1;
        self.clock.charge_profiling(self.cfg.costs.one_scan_ns);
        true
    }

    /// Reads the ACCESSED bit without clearing or charging (test helper).
    pub fn peek_accessed(&self, va: VirtAddr) -> Option<bool> {
        self.pt.translate(va).map(|t| t.pte.accessed())
    }

    /// Poisons the page covering `va` for a NUMA hint fault, charging one
    /// scan's worth of profiling time.
    pub fn poison_page(&mut self, va: VirtAddr) -> bool {
        let now = self.clock.breakdown().total_ns();
        let Some((pte, _)) = self.pt.pte_mut(va) else { return false };
        pte.set(PTE_NUMA_POISON);
        self.hints.poison(va.page_4k(), now);
        self.clock.charge_profiling(self.cfg.costs.one_scan_ns);
        true
    }

    /// Removes protection from the page covering `va` (Thermostat-style
    /// fault-based profiling), charging one scan.
    pub fn protect_page(&mut self, va: VirtAddr) -> bool {
        let Some((pte, _)) = self.pt.pte_mut(va) else { return false };
        pte.set(PTE_PROT_NONE);
        self.clock.charge_profiling(self.cfg.costs.one_scan_ns);
        true
    }

    /// Drains captured protection faults.
    pub fn drain_prot_faults(&mut self) -> Vec<ProtFault> {
        std::mem::take(&mut self.prot_faults)
    }

    /// Drains captured hint faults. An active fault plan may lose records
    /// on the way out (the kernel's fault queue overran).
    pub fn drain_hint_faults(&mut self) -> Vec<crate::hintfault::HintFault> {
        let mut faults = self.hints.drain();
        if self.faults.is_active() && !faults.is_empty() {
            let before = faults.len();
            faults.retain(|_| !self.faults.drop_hint());
            let lost = (before - faults.len()) as u64;
            if lost > 0 {
                self.recorder.reg.counter_add(obs::names::FAULT_HINTS_LOST, lost);
            }
        }
        if !faults.is_empty() {
            self.recorder.reg.counter_add(obs::names::HINT_FAULTS_DRAINED, faults.len() as u64);
            self.recorder.reg.observe(obs::names::HINT_DRAIN_BATCH, faults.len() as u64);
        }
        faults
    }

    /// Version counter of a physical frame (bumped on every simulated
    /// write; copied by migration). Lets tests prove no write is lost.
    pub fn frame_version(&self, frame: crate::addr::PhysAddr) -> u64 {
        self.versions.get(frame)
    }

    /// PEBS sampler statistics: `(samples taken, dropped, pending)`.
    pub fn pebs_stats(&self) -> (u64, u64, usize) {
        (self.pebs.taken(), self.pebs.dropped(), self.pebs.pending())
    }

    /// PEBS samples taken per component (see [`crate::pebs::Pebs::component_counts`]).
    pub fn pebs_component_counts(&self) -> Vec<(ComponentId, u64)> {
        self.pebs.component_counts()
    }

    /// Largest number of simultaneously poisoned hint-fault PTEs.
    pub fn hint_poisoned_peak(&self) -> usize {
        self.hints.poisoned_peak()
    }

    /// Drains PEBS samples, charging the per-sample processing cost to
    /// profiling. An active fault plan may drop samples before they reach
    /// the consumer (ring-buffer overrun); dropped samples cost nothing
    /// because they were never processed.
    pub fn drain_pebs(&mut self) -> Vec<crate::pebs::PebsSample> {
        let mut samples = self.pebs.drain();
        if self.faults.is_active() && !samples.is_empty() {
            let before = samples.len();
            samples.retain(|_| !self.faults.drop_pebs());
            let lost = (before - samples.len()) as u64;
            if lost > 0 {
                self.recorder.reg.counter_add(obs::names::FAULT_PEBS_LOST, lost);
            }
        }
        self.clock.charge_profiling(samples.len() as f64 * self.cfg.costs.pebs_sample_ns);
        if !samples.is_empty() {
            self.recorder.reg.counter_add(obs::names::PEBS_SAMPLES_DRAINED, samples.len() as u64);
            self.recorder.reg.observe(obs::names::PEBS_DRAIN_BATCH, samples.len() as u64);
        }
        samples
    }

    /// Arms write tracking over `range` for an asynchronous migration.
    ///
    /// Sets the reserved write-track bit on every mapped page in the range
    /// and performs one TLB flush (Sec. 7.2: "flushes TLB for once").
    /// Returns a watch id to pass to [`Machine::take_watch`].
    pub fn arm_write_watch(&mut self, range: VaRange) -> u64 {
        self.pt.for_each_mapped(range, |_, pte, _| pte.set(PTE_WRITE_TRACK));
        self.clock.charge_migration(self.cfg.costs.tlb_flush_ns);
        self.stats.tlb_flushes += 1;
        let id = self.next_watch_id;
        self.next_watch_id += 1;
        self.watches.push(WatchEntry { range, dirty: false, id });
        self.watch_bounds = Some(match self.watch_bounds {
            None => range,
            Some(b) => VaRange::new(b.start.min(range.start), b.end.max(range.end)),
        });
        id
    }

    /// Disarms a watch and reports whether a write was observed while armed.
    pub fn take_watch(&mut self, id: u64) -> bool {
        let Some(idx) = self.watches.iter().position(|w| w.id == id) else {
            return false;
        };
        let w = self.watches.swap_remove(idx);
        if !w.dirty {
            // Tracking bits are still set; clear them, except where
            // another still-clean watch overlaps and needs them armed.
            let watches = &self.watches;
            self.pt.for_each_mapped(w.range, |pva, pte, _| {
                if !watches.iter().any(|o| !o.dirty && o.range.contains(pva)) {
                    pte.clear(PTE_WRITE_TRACK);
                }
            });
        }
        if self.watches.is_empty() {
            self.watch_bounds = None;
        }
        w.dirty
    }

    /// Whether watch `id` has observed a write, without disarming it.
    /// `None` when no such watch is armed.
    pub fn watch_dirty(&self, id: u64) -> Option<bool> {
        self.watches.iter().find(|w| w.id == id).map(|w| w.dirty)
    }

    /// Number of armed write watches (regression-test hook: drop paths
    /// must leave no watch behind).
    pub fn active_watches(&self) -> usize {
        self.watches.len()
    }

    /// Closes the current profiling interval on the clock, returning its
    /// wall time.
    pub fn commit_interval(&mut self) -> f64 {
        let dt = self.clock.commit_interval(&self.cfg.topology);
        if self.checking {
            self.verify_consistency("interval boundary");
        }
        dt
    }

    /// Wall time accumulated in the open interval so far.
    pub fn open_interval_ns(&self) -> f64 {
        self.clock.open_interval_ns(&self.cfg.topology)
    }

    /// Charges profiling time directly (manager bookkeeping).
    pub fn charge_profiling(&mut self, ns: f64) {
        self.clock.charge_profiling(ns);
    }

    /// Charges critical-path migration time directly.
    pub fn charge_migration(&mut self, ns: f64) {
        self.clock.charge_migration(ns);
    }

    /// Zeroes all time, counters and event statistics (used after
    /// workload setup so reports exclude initialization).
    pub fn reset_measurement(&mut self) {
        self.clock = Clock::new(self.cfg.threads, &self.cfg.topology);
        self.counters = Counters::new(self.cfg.topology.num_components());
        self.heat.clear();
        self.stats = MachineStats::default();
        self.pebs = Pebs::new(&self.cfg.pebs);
        self.prot_faults.clear();
        self.hints.reset_stats();
        self.recorder = obs::Recorder::new();
        // Rewind the injection stream so the measured run sees the same
        // fault schedule a fresh machine would.
        self.faults.reset();
    }

    /// The 2 MB-granularity access heatmap (empty unless `track_heat`).
    /// Ascending by address (dense indexing keeps it sorted for free).
    pub fn heat_snapshot(&self) -> Vec<(VirtAddr, u64)> {
        self.heat
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(chunk, &n)| (VirtAddr((chunk as u64) << 21), n))
            .collect()
    }

    /// Worker count used by packetized intra-run sweeps.
    #[inline]
    pub fn run_workers(&self) -> usize {
        self.run_workers
    }

    /// Overrides the packet worker count for this machine (tests pin it
    /// programmatically instead of racing on `MTM_RUN_WORKERS`).
    pub fn set_run_workers(&mut self, workers: usize) {
        self.run_workers = workers.max(1);
    }

    /// Component currently backing the page at `va`, if mapped.
    pub fn component_of(&self, va: VirtAddr) -> Option<ComponentId> {
        self.pt.translate(va).map(|t| t.pte.frame().component())
    }

    /// Bytes resident per component.
    pub fn residency(&self) -> Vec<u64> {
        self.allocators.iter().map(|a| a.used()).collect()
    }

    // ---------------------------------------------------------------
    // Nomad-style non-exclusive (shadow-copy) demotion support. With the
    // mode off (the default) no shadow state ever exists and every path
    // below is dead, so behavior is bit-identical to a machine built
    // before the mode existed.

    /// Whether demotions retain a shadow copy in the source tier.
    #[inline]
    pub fn shadow_mode(&self) -> bool {
        self.shadow_mode
    }

    /// Enables or disables shadow-copy retention on demotion.
    pub fn set_shadow_mode(&mut self, on: bool) {
        self.shadow_mode = on;
    }

    /// Bytes retained as shadow copies on `component`.
    pub fn shadow_bytes(&self, component: ComponentId) -> u64 {
        self.shadows.iter().filter(|e| e.component == component).map(|e| e.bytes).sum()
    }

    /// Total shadow bytes across all components.
    pub fn shadow_total_bytes(&self) -> u64 {
        self.shadows.iter().map(|e| e.bytes).sum()
    }

    /// Number of live shadow entries (test hook).
    pub fn shadow_entries(&self) -> usize {
        self.shadows.len()
    }

    /// Registers a shadow copy for a just-demoted `range`: the retained
    /// source-tier frames in `pages`. The invalidation watch is armed
    /// here — after the remap — so the tracking bits land on the new
    /// (slower-tier) mappings.
    pub(crate) fn register_shadow(
        &mut self,
        range: VaRange,
        component: ComponentId,
        pages: Vec<(VirtAddr, crate::addr::PhysAddr, FrameSize)>,
    ) {
        debug_assert!(self.shadow_mode && !pages.is_empty());
        let bytes = pages.iter().map(|&(_, _, s)| s.bytes()).sum();
        let watch_id = self.arm_write_watch(range);
        self.shadows.push(ShadowEntry { range, component, watch_id, pages, bytes });
    }

    /// Clean shadow bytes that pages of `range` could repromote onto
    /// `dst` without copying: exact `(va, granularity)` matches under a
    /// clean watch, counting only pages that currently live elsewhere.
    pub(crate) fn shadow_match_bytes(&self, range: VaRange, dst: ComponentId) -> u64 {
        let mut total = 0;
        for e in &self.shadows {
            if e.component != dst
                || !e.range.overlaps(range)
                || self.watch_dirty(e.watch_id) != Some(false)
            {
                continue;
            }
            for &(va, _, size) in &e.pages {
                if !range.contains(va) {
                    continue;
                }
                if let Some(t) = self.pt.translate(va) {
                    if t.size == size && t.pte.frame().component() != dst {
                        total += size.bytes();
                    }
                }
            }
        }
        total
    }

    /// Consumes the retained frame for `va` if a clean shadow copy on
    /// `dst` holds one at exactly `size` granularity. A dirty entry found
    /// on the way is invalidated wholesale (frames freed, watch disarmed)
    /// instead of being reused.
    pub(crate) fn take_shadow_page(
        &mut self,
        va: VirtAddr,
        dst: ComponentId,
        size: FrameSize,
    ) -> Option<crate::addr::PhysAddr> {
        let mut idx = 0;
        while idx < self.shadows.len() {
            let e = &self.shadows[idx];
            if e.component != dst || !e.range.contains(va) {
                idx += 1;
                continue;
            }
            if self.watch_dirty(e.watch_id) != Some(false) {
                // Stale copy: a write landed since the demotion.
                self.invalidate_shadow_at(idx);
                continue;
            }
            let e = &mut self.shadows[idx];
            if let Some(p) = e.pages.iter().position(|&(pva, _, psz)| pva == va && psz == size) {
                let (_, frame, psz) = e.pages.swap_remove(p);
                e.bytes -= psz.bytes();
                if e.pages.is_empty() {
                    let watch_id = e.watch_id;
                    self.shadows.remove(idx);
                    self.take_watch(watch_id);
                }
                return Some(frame);
            }
            idx += 1;
        }
        None
    }

    /// Invalidates every shadow entry overlapping `range`, on any
    /// component: the pages moved, so a retained copy is no longer paired
    /// with a watched mapping and could go stale silently.
    pub(crate) fn invalidate_shadows_overlapping(&mut self, range: VaRange) {
        let mut idx = 0;
        while idx < self.shadows.len() {
            if self.shadows[idx].range.overlaps(range) {
                self.invalidate_shadow_at(idx);
            } else {
                idx += 1;
            }
        }
    }

    /// Reclaims shadow frames on `dst` (oldest entry first) until `need`
    /// bytes are free or no eligible entry remains. Entries overlapping
    /// `keep` are skipped: they may be about to satisfy shadow hits for
    /// the relocation requesting the space.
    pub(crate) fn reclaim_shadow_space(&mut self, dst: ComponentId, need: u64, keep: VaRange) {
        let mut idx = 0;
        while idx < self.shadows.len() {
            if self.allocators[dst as usize].free() >= need {
                return;
            }
            let e = &self.shadows[idx];
            if e.component == dst && !e.range.overlaps(keep) {
                self.invalidate_shadow_at(idx);
            } else {
                idx += 1;
            }
        }
    }

    /// Frees every frame of shadow entry `idx`, disarms its watch, counts
    /// one invalidation and removes the entry.
    fn invalidate_shadow_at(&mut self, idx: usize) {
        let e = self.shadows.remove(idx);
        for &(_, frame, size) in &e.pages {
            self.allocators[e.component as usize].free_frame(frame, size);
        }
        self.take_watch(e.watch_id);
        self.recorder.reg.counter_add(obs::names::SHADOW_INVALIDATIONS, 1);
    }

    // ---------------------------------------------------------------
    // Checkpoint support: full dynamic-state serialization. The machine
    // is rebuilt from its configuration at restore time (`Machine::new`)
    // and `load_state` then overwrites every piece of dynamic state, so
    // derived structures (the charge table, PEBS programming, packed
    // side metadata) re-derive from config + restored state instead of
    // being stored. `run_workers` and `checking` are deliberately *not*
    // part of the state: they are environment-derived execution knobs
    // that must not alter simulated results, and a checkpoint written
    // under one knob setting must restore under any other.

    /// Digest of every configuration parameter that shapes simulated
    /// state. A checkpoint written under one configuration refuses to
    /// load under another: silently restoring dynamic state onto a
    /// machine with different capacities or costs would diverge.
    pub fn config_digest(&self) -> u64 {
        let mut w = obs::wire::Writer::new();
        let t = &self.cfg.topology;
        w.varint(t.components.len() as u64);
        for c in &t.components {
            w.str(&c.name);
            w.u8(match c.kind {
                crate::tier::MemKind::Dram => 0,
                crate::tier::MemKind::Pm => 1,
            });
            w.u16(c.home_node);
            w.u64(c.capacity);
        }
        w.u16(t.nodes);
        for row in &t.links {
            for l in row {
                w.f64(l.latency_ns);
                w.f64(l.bandwidth_gbps);
                w.f64(l.write_bandwidth_gbps);
            }
        }
        w.varint(self.cfg.threads as u64);
        for &n in &self.cfg.thread_node {
            w.u16(n);
        }
        w.f64(self.cfg.mlp);
        let c = &self.cfg.costs;
        for v in [
            c.one_scan_ns,
            c.hint_fault_mult,
            c.tlb_flush_ns,
            c.page_fault_ns,
            c.wp_fault_ns,
            c.prot_fault_ns,
            c.migrate_alloc_page_ns,
            c.migrate_unmap_page_ns,
            c.migrate_remap_page_ns,
            c.migrate_pt_region_ns,
            c.pebs_sample_ns,
        ] {
            w.f64(v);
        }
        w.u64(self.cfg.pebs.period);
        w.varint(self.cfg.pebs.monitored.len() as u64);
        for &m in &self.cfg.pebs.monitored {
            w.u16(m);
        }
        w.varint(self.cfg.pebs.buffer_cap as u64);
        w.f64(self.cfg.interval_ns);
        w.bool(self.cfg.hmc_mode);
        w.bool(self.cfg.track_heat);
        obs::wire::fnv1a(&w.into_bytes())
    }

    /// Serializes the machine's complete dynamic state (page table,
    /// allocators, clock, counters, samplers, watches, shadow copies,
    /// statistics and the observability recorder) into a self-describing
    /// blob restorable with [`Machine::load_state`].
    ///
    /// Returns an error in Memory Mode (hardware-cache tag state is not
    /// checkpointable) and while a fault-injection plan is active (the
    /// injection stream's position is owned by the plan, not the
    /// machine).
    pub fn save_state(&self) -> Result<Vec<u8>, String> {
        if self.cfg.hmc_mode {
            return Err("checkpoint: Memory Mode (hmc_mode) machines are not checkpointable \
                        (hardware DRAM-cache tag state is opaque)"
                .to_string());
        }
        if self.faults.is_active() {
            return Err("checkpoint: machines with an active fault-injection plan are not \
                        checkpointable (the injection stream is owned by the plan)"
                .to_string());
        }
        let mut w = obs::wire::Writer::new();
        w.u64(self.config_digest());
        self.pt.save(&mut w);
        w.varint(self.allocators.len() as u64);
        for a in &self.allocators {
            a.save(&mut w);
        }
        self.clock.save(&mut w);
        self.counters.save(&mut w);
        self.pebs.save(&mut w);
        self.hints.save(&mut w);
        self.versions.save(&mut w);
        let s = &self.stats;
        for v in [
            s.alloc_faults,
            s.hint_faults,
            s.prot_faults,
            s.wp_faults,
            s.pte_scans,
            s.tlb_flushes,
            s.pages_migrated,
            s.bytes_migrated,
        ] {
            w.varint(v);
        }
        w.varint(self.prot_faults.len() as u64);
        for f in &self.prot_faults {
            w.u64(f.page.0);
            w.u32(f.tid);
            w.bool(f.is_write);
        }
        w.varint(self.watches.len() as u64);
        for watch in &self.watches {
            w.u64(watch.range.start.0);
            w.u64(watch.range.end.0);
            w.bool(watch.dirty);
            w.u64(watch.id);
        }
        match self.watch_bounds {
            Some(b) => {
                w.bool(true);
                w.u64(b.start.0);
                w.u64(b.end.0);
            }
            None => w.bool(false),
        }
        w.u64(self.next_watch_id);
        w.bool(self.shadow_mode);
        w.varint(self.shadows.len() as u64);
        for e in &self.shadows {
            w.u64(e.range.start.0);
            w.u64(e.range.end.0);
            w.u16(e.component);
            w.u64(e.watch_id);
            w.varint(e.pages.len() as u64);
            for &(va, frame, size) in &e.pages {
                w.u64(va.0);
                w.u16(frame.component());
                w.u64(frame.offset());
                w.bool(size == FrameSize::Huge2M);
            }
        }
        w.varint(self.heat.len() as u64);
        for &h in &self.heat {
            w.varint(h);
        }
        self.recorder.save(&mut w);
        Ok(w.into_bytes())
    }

    /// Restores dynamic state captured by [`Machine::save_state`] into
    /// this machine, which must be freshly built (`Machine::new`) from a
    /// configuration whose [`Machine::config_digest`] matches the one
    /// embedded in the blob.
    pub fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        if self.cfg.hmc_mode {
            return Err("checkpoint: cannot restore into a Memory Mode machine".to_string());
        }
        let mut r = obs::wire::Reader::new(bytes);
        let digest = r.u64()?;
        if digest != self.config_digest() {
            return Err(format!(
                "checkpoint: config digest mismatch (saved {:#018x}, this machine {:#018x})",
                digest,
                self.config_digest()
            ));
        }
        self.pt = PageTable::load(&mut r)?;
        let n = r.varint()? as usize;
        if n != self.allocators.len() {
            return Err(format!(
                "checkpoint: allocator count mismatch (saved {n}, have {})",
                self.allocators.len()
            ));
        }
        for a in self.allocators.iter_mut() {
            a.load(&mut r)?;
        }
        self.clock.load(&mut r)?;
        self.counters.load(&mut r)?;
        self.pebs.load(&mut r)?;
        self.hints = HintFaultUnit::load(&mut r)?;
        self.versions = VersionStore::load(&mut r)?;
        self.stats = MachineStats {
            alloc_faults: r.varint()?,
            hint_faults: r.varint()?,
            prot_faults: r.varint()?,
            wp_faults: r.varint()?,
            pte_scans: r.varint()?,
            tlb_flushes: r.varint()?,
            pages_migrated: r.varint()?,
            bytes_migrated: r.varint()?,
        };
        self.prot_faults.clear();
        for _ in 0..r.varint()? {
            self.prot_faults.push(ProtFault {
                page: VirtAddr(r.u64()?),
                tid: r.u32()?,
                is_write: r.bool()?,
            });
        }
        self.watches.clear();
        for _ in 0..r.varint()? {
            self.watches.push(WatchEntry {
                range: VaRange::new(VirtAddr(r.u64()?), VirtAddr(r.u64()?)),
                dirty: r.bool()?,
                id: r.u64()?,
            });
        }
        self.watch_bounds = if r.bool()? {
            Some(VaRange::new(VirtAddr(r.u64()?), VirtAddr(r.u64()?)))
        } else {
            None
        };
        self.next_watch_id = r.u64()?;
        self.shadow_mode = r.bool()?;
        self.shadows.clear();
        for _ in 0..r.varint()? {
            let range = VaRange::new(VirtAddr(r.u64()?), VirtAddr(r.u64()?));
            let component = r.u16()?;
            let watch_id = r.u64()?;
            let mut pages = Vec::new();
            for _ in 0..r.varint()? {
                let va = VirtAddr(r.u64()?);
                let fc = r.u16()?;
                let off = r.u64()?;
                let size = if r.bool()? { FrameSize::Huge2M } else { FrameSize::Base4K };
                pages.push((va, crate::addr::PhysAddr::new(fc, off), size));
            }
            let bytes = pages.iter().map(|&(_, _, s)| s.bytes()).sum();
            self.shadows.push(ShadowEntry { range, component, watch_id, pages, bytes });
        }
        let heat_len = r.varint()? as usize;
        self.heat.clear();
        self.heat.reserve(heat_len);
        for _ in 0..heat_len {
            self.heat.push(r.varint()?);
        }
        self.recorder = obs::Recorder::load(&mut r)?;
        self.faults = faultsim::FaultState::disabled();
        r.finish()?;
        if self.checking {
            self.verify_consistency("checkpoint restore");
        }
        Ok(())
    }

    /// Hardware-cache hit ratio per PM component (Memory Mode only).
    pub fn hmc_hit_ratios(&self) -> Vec<(ComponentId, f64)> {
        let mut v: Vec<(ComponentId, f64)> =
            self.hmc_caches.iter().map(|(&c, cache)| (c, cache.hit_ratio())).collect();
        v.sort_by_key(|&(c, _)| c);
        v
    }

    // ---------------------------------------------------------------
    // MTM_CHECK shadow-state sanitizer (see crates/check and DESIGN.md
    // §5d). Everything below is read-only with respect to simulated
    // state: it can panic, never perturb.

    /// True when the shadow-state sanitizer is armed for this machine.
    /// Initialized from `MTM_CHECK=1` in the process environment; tests
    /// toggle it programmatically with [`Machine::set_checking`] so they
    /// never race on environment variables.
    #[inline]
    pub fn checking(&self) -> bool {
        self.checking
    }

    /// Arms or disarms the shadow-state sanitizer.
    pub fn set_checking(&mut self, on: bool) {
        self.checking = on;
    }

    /// Shadow snapshot of the mapped state of `range`: virtual page base
    /// -> (component, frame offset, bytes), exactly as the page table
    /// reports it.
    pub fn shadow_of(&self, range: VaRange) -> mtm_check::ShadowState {
        let mut s = mtm_check::ShadowState::new();
        self.pt.for_each_mapped_in(range, |va, pte, size| {
            s.insert(
                va.0,
                mtm_check::ShadowPage {
                    component: pte.frame().component(),
                    frame_offset: pte.frame().offset(),
                    bytes: size.bytes(),
                },
            );
        });
        s
    }

    /// Full-machine invariant check. Verifies, from one sorted walk of
    /// the page table:
    ///
    /// - every mapped PTE points at a frame of an existing component, and
    ///   no two live mappings share (overlap) a frame;
    /// - per-component occupancy: the page-table census equals the frame
    ///   allocator's `used()`, and neither exceeds capacity;
    /// - obs migration counters are consistent with the retained ring
    ///   events (exact while the bounded ring has dropped nothing).
    ///
    /// Panics with a structured violation report; returns silently when
    /// every invariant holds.
    pub fn verify_consistency(&self, context: &str) {
        let mut violations = Vec::new();
        let ncomp = self.allocators.len();
        let mut mapped = vec![0u64; ncomp];
        let mut spans: Vec<(u16, u64, u64, u64)> = Vec::new();
        // Census as work packets: one packet per 1 GB directory group,
        // reduced in index order, so the packetized walk visits pages in
        // exactly the ascending order `for_each_mapped_all` would.
        let packets = crate::engine::map_chunks(
            self.run_workers,
            self.pt.dir_count(),
            1,
            |dirs| {
                let mut mapped = vec![0u64; ncomp];
                let mut spans: Vec<(u16, u64, u64, u64)> = Vec::new();
                let mut violations = Vec::new();
                for di in dirs {
                    self.pt.for_each_mapped_in_dir(di, |va, pte, size| {
                        let frame = pte.frame();
                        let c = frame.component();
                        if (c as usize) < ncomp {
                            mapped[c as usize] += size.bytes();
                        } else {
                            violations.push(format!(
                                "page {:#x} maps component {c} but the machine has {ncomp} component(s)",
                                va.0
                            ));
                        }
                        spans.push((c, frame.offset(), frame.offset() + size.bytes(), va.0));
                    });
                }
                (mapped, spans, violations)
            },
        );
        for (pm, ps, pv) in packets {
            for (c, b) in pm.into_iter().enumerate() {
                mapped[c] += b;
            }
            spans.extend(ps);
            violations.extend(pv);
        }
        // Cross-check the packed side metadata against the PTE bits (the
        // source of truth): any drift means a scan path bypassed the
        // touch/scan accessors.
        violations.extend(self.pt.check_side_metadata());
        // Shadow copies occupy allocator space without backing a mapping:
        // census them separately, and feed their frame spans into the
        // overlap sweep — a shadow frame aliasing a live mapping (or
        // another shadow) means a frame was reused while still retained.
        let mut shadow = vec![0u64; ncomp];
        for e in &self.shadows {
            let mut entry_bytes = 0;
            for &(va, frame, size) in &e.pages {
                let c = frame.component();
                if (c as usize) < ncomp {
                    shadow[c as usize] += size.bytes();
                } else {
                    violations.push(format!(
                        "shadow frame for page {:#x} names component {c} but the machine has {ncomp} component(s)",
                        va.0
                    ));
                }
                if c != e.component {
                    violations.push(format!(
                        "shadow entry over {:?} books component {} but holds a frame on component {c}",
                        e.range, e.component
                    ));
                }
                spans.push((c, frame.offset(), frame.offset() + size.bytes(), va.0));
                entry_bytes += size.bytes();
            }
            if entry_bytes != e.bytes {
                violations.push(format!(
                    "shadow entry over {:?} books {} B but holds {} B of frames",
                    e.range, e.bytes, entry_bytes
                ));
            }
            if self.watch_dirty(e.watch_id).is_none() {
                violations.push(format!(
                    "shadow entry over {:?} has no armed invalidation watch (id {})",
                    e.range, e.watch_id
                ));
            }
        }
        let rows: Vec<mtm_check::CensusRow> = self
            .allocators
            .iter()
            .enumerate()
            .map(|(c, a)| mtm_check::CensusRow {
                component: c as u16,
                mapped_bytes: mapped[c],
                shadow_bytes: shadow[c],
                allocator_used: a.used(),
                capacity: a.capacity(),
            })
            .collect();
        violations.extend(mtm_check::check_census(&rows));
        violations.extend(mtm_check::check_frame_overlap(&mut spans));

        let ring = &self.recorder.ring;
        let count_of = |label: &str| ring.iter().filter(|e| e.kind.label() == label).count() as u64;
        let reg = &self.recorder.reg;
        let pairs: Vec<mtm_check::CounterEventPair> = [
            (obs::names::ASYNC_CLEAN, "async_clean"),
            (obs::names::SWITCHED_SYNC, "switched_sync"),
            (obs::names::SYNC_DIRECT, "sync_direct"),
            (obs::names::MIGRATIONS_DROPPED, "migration_dropped"),
            (obs::names::MIGRATION_ABORTS, "migration_aborted"),
            (obs::names::MIGRATION_DEFERRALS, "migration_deferred"),
            (obs::names::SHADOW_HITS, "shadow_hit"),
            (obs::names::ADMIT_REJECTED, "admission_rejected"),
        ]
        .iter()
        .map(|&(name, label)| mtm_check::CounterEventPair {
            name,
            counter: reg.counter(name),
            events: count_of(label),
        })
        .collect();
        violations.extend(mtm_check::check_counter_events(&pairs, ring.dropped()));
        // Retries: one MigrationRetried event summarizes all retries of an
        // eventually-successful call, and calls that exhaust their budget
        // record no event at all — so the counter is a lower-bounded sum,
        // never exactly the event count.
        let retried_in_ring: u64 = ring
            .iter()
            .map(|e| match e.kind {
                obs::EventKind::MigrationRetried { retries, .. } => retries,
                _ => 0,
            })
            .sum();
        if reg.counter(obs::names::MIGRATION_RETRIES) < retried_in_ring {
            violations.push(format!(
                "counter/ring drift for {}: counter={} but retained migration_retried events sum to {}",
                obs::names::MIGRATION_RETRIES,
                reg.counter(obs::names::MIGRATION_RETRIES),
                retried_in_ring
            ));
        }
        mtm_check::assert_clean(context, violations);
    }
}

/// Rounds a frame address down to its 4 KB base for version bookkeeping.
fn frame_page_base(frame: crate::addr::PhysAddr) -> crate::addr::PhysAddr {
    crate::addr::PhysAddr::new(frame.component(), frame.offset() & !(crate::addr::PAGE_SIZE_4K - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::tiny_two_tier;

    fn machine() -> Machine {
        let topo = tiny_two_tier(4 * PAGE_SIZE_2M, 16 * PAGE_SIZE_2M);
        let mut cfg = MachineConfig::new(topo, 2);
        cfg.mlp = 1.0;
        let mut m = Machine::new(cfg);
        m.mmap("test", VaRange::from_len(VirtAddr(0), 8 * PAGE_SIZE_2M), false);
        m
    }

    #[test]
    fn unmapped_access_faults() {
        let mut m = machine();
        assert_eq!(m.access(0, VirtAddr(0x1000), AccessKind::Read), AccessResult::Unmapped);
        m.alloc_and_map(0, VirtAddr(0x1000), &[0, 1]).unwrap();
        assert_eq!(m.access(0, VirtAddr(0x1000), AccessKind::Read), AccessResult::Ok);
        assert_eq!(m.stats().alloc_faults, 1);
    }

    #[test]
    fn access_sets_bits_and_counters() {
        let mut m = machine();
        let va = VirtAddr(0x3000);
        m.alloc_and_map(0, va, &[0]).unwrap();
        m.access(0, va, AccessKind::Write);
        assert!(m.peek_accessed(va).unwrap());
        assert_eq!(m.counters().component(0).stores, 1);
        let (accessed, huge) = m.scan_page(va).unwrap();
        assert!(accessed && !huge);
        assert!(!m.peek_accessed(va).unwrap(), "scan clears the bit");
        assert_eq!(m.stats().pte_scans, 1);
    }

    #[test]
    fn thp_allocates_huge_frames() {
        let topo = tiny_two_tier(4 * PAGE_SIZE_2M, 4 * PAGE_SIZE_2M);
        let mut m = Machine::new(MachineConfig::new(topo, 1));
        m.mmap("thp", VaRange::from_len(VirtAddr(0), 2 * PAGE_SIZE_2M), true);
        m.alloc_and_map(0, VirtAddr(0x1234), &[0]).unwrap();
        let t = m.page_table().translate(VirtAddr(0x1234)).unwrap();
        assert_eq!(t.size, FrameSize::Huge2M);
        assert_eq!(m.allocator(0).used(), PAGE_SIZE_2M);
    }

    #[test]
    fn allocation_falls_through_full_components() {
        let topo = tiny_two_tier(PAGE_SIZE_2M, 4 * PAGE_SIZE_2M);
        let mut m = Machine::new(MachineConfig::new(topo, 1));
        m.mmap("a", VaRange::from_len(VirtAddr(0), 8 * PAGE_SIZE_2M), true);
        m.alloc_and_map(0, VirtAddr(0), &[0, 1]).unwrap();
        let c = m.alloc_and_map(0, VirtAddr(PAGE_SIZE_2M), &[0, 1]).unwrap();
        assert_eq!(c, 1, "fast component full; spilled to slow");
    }

    #[test]
    fn hint_fault_captured_on_poisoned_access() {
        let mut m = machine();
        let va = VirtAddr(0x5000);
        m.alloc_and_map(1, va, &[0]).unwrap();
        assert!(m.poison_page(va));
        m.access(1, va, AccessKind::Read);
        let faults = m.drain_hint_faults();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].page, va.page_4k());
        assert_eq!(m.stats().hint_faults, 1);
        // Poison cleared: no further fault.
        m.access(1, va, AccessKind::Read);
        assert!(m.drain_hint_faults().is_empty());
    }

    #[test]
    fn prot_fault_counts_once() {
        let mut m = machine();
        let va = VirtAddr(0x7000);
        m.alloc_and_map(0, va, &[0]).unwrap();
        m.protect_page(va);
        m.access(0, va, AccessKind::Write);
        m.access(0, va, AccessKind::Write);
        let faults = m.drain_prot_faults();
        assert_eq!(faults.len(), 1);
        assert!(faults[0].is_write);
    }

    #[test]
    fn write_watch_detects_first_write_only() {
        let mut m = machine();
        let range = VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M);
        for p in 0..4u64 {
            m.alloc_and_map(0, VirtAddr(p * 4096), &[0]).unwrap();
        }
        let id = m.arm_write_watch(range);
        let wp_before = m.stats().wp_faults;
        m.access(0, VirtAddr(0x1000), AccessKind::Read);
        assert_eq!(m.stats().wp_faults, wp_before, "reads do not trip the watch");
        m.access(0, VirtAddr(0x2000), AccessKind::Write);
        m.access(0, VirtAddr(0x3000), AccessKind::Write);
        assert_eq!(m.stats().wp_faults, 1, "tracking disarms after the first write");
        assert!(m.take_watch(id));
    }

    #[test]
    fn clean_watch_reports_clean() {
        let mut m = machine();
        m.alloc_and_map(0, VirtAddr(0), &[0]).unwrap();
        let id = m.arm_write_watch(VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M));
        m.access(0, VirtAddr(0), AccessKind::Read);
        assert!(!m.take_watch(id));
    }

    #[test]
    fn prefault_is_free() {
        let mut m = machine();
        m.prefault_range(VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M), &[1]).unwrap();
        assert_eq!(m.stats().alloc_faults, 0);
        assert_eq!(m.component_of(VirtAddr(0x1000)), Some(1));
        assert_eq!(m.elapsed_ns(), 0.0);
    }

    #[test]
    fn hmc_mode_routes_through_cache() {
        let topo = tiny_two_tier(2 * PAGE_SIZE_2M, 16 * PAGE_SIZE_2M);
        let mut cfg = MachineConfig::new(topo, 1);
        cfg.hmc_mode = true;
        cfg.mlp = 1.0;
        let mut m = Machine::new(cfg);
        m.mmap("a", VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M), false);
        m.alloc_and_map(0, VirtAddr(0), &[1]).unwrap();
        m.access(0, VirtAddr(0), AccessKind::Read); // Miss.
        m.access(0, VirtAddr(0), AccessKind::Read); // Hit.
        let ratios = m.hmc_hit_ratios();
        assert_eq!(ratios.len(), 1);
        assert!((ratios[0].1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn save_state_round_trips_and_resumes_identically() {
        let build = || {
            let topo = tiny_two_tier(4 * PAGE_SIZE_2M, 16 * PAGE_SIZE_2M);
            let mut cfg = MachineConfig::new(topo, 2);
            cfg.pebs.period = 2;
            cfg.track_heat = true;
            cfg.mlp = 1.0;
            Machine::new(cfg)
        };
        let mut m = build();
        m.mmap("test", VaRange::from_len(VirtAddr(0), 8 * PAGE_SIZE_2M), false);
        for p in 0..6u64 {
            m.alloc_and_map(0, VirtAddr(p * 4096), &[0, 1]).unwrap();
        }
        m.poison_page(VirtAddr(0x2000));
        m.protect_page(VirtAddr(0x3000));
        let watch = m.arm_write_watch(VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M));
        for i in 0..32u64 {
            let kind = if i % 3 == 0 { AccessKind::Write } else { AccessKind::Read };
            m.access((i % 2) as usize, VirtAddr((i % 6) * 4096), kind);
        }
        m.record_event(obs::EventKind::Promotion { bytes: 4096, src: 1, dst: 0 });
        let blob = m.save_state().unwrap();

        let mut n = build();
        n.load_state(&blob).unwrap();
        assert_eq!(n.save_state().unwrap(), blob, "restored state re-saves byte-identically");
        assert_eq!(n.stats().alloc_faults, m.stats().alloc_faults);
        assert_eq!(n.elapsed_ns(), m.elapsed_ns());
        assert_eq!(n.watch_dirty(watch), m.watch_dirty(watch));

        // Both machines must now evolve in lockstep.
        for i in 0..16u64 {
            m.access(0, VirtAddr((i % 6) * 4096), AccessKind::Write);
            n.access(0, VirtAddr((i % 6) * 4096), AccessKind::Write);
        }
        assert_eq!(m.commit_interval(), n.commit_interval());
        assert_eq!(m.drain_pebs(), n.drain_pebs());
        assert_eq!(m.drain_hint_faults(), n.drain_hint_faults());
        assert_eq!(m.drain_prot_faults(), n.drain_prot_faults());
        assert_eq!(m.save_state().unwrap(), n.save_state().unwrap());
    }

    #[test]
    fn load_state_rejects_config_mismatch() {
        let topo = tiny_two_tier(4 * PAGE_SIZE_2M, 16 * PAGE_SIZE_2M);
        let m = Machine::new(MachineConfig::new(topo, 2));
        let blob = m.save_state().unwrap();
        let other = tiny_two_tier(2 * PAGE_SIZE_2M, 16 * PAGE_SIZE_2M);
        let mut n = Machine::new(MachineConfig::new(other, 2));
        let err = n.load_state(&blob).unwrap_err();
        assert!(err.contains("digest mismatch"), "{err}");
    }

    #[test]
    fn save_state_refuses_memory_mode() {
        let topo = tiny_two_tier(2 * PAGE_SIZE_2M, 16 * PAGE_SIZE_2M);
        let mut cfg = MachineConfig::new(topo, 1);
        cfg.hmc_mode = true;
        let m = Machine::new(cfg);
        assert!(m.save_state().unwrap_err().contains("Memory Mode"));
    }

    #[test]
    fn pebs_samples_slow_tier_only() {
        let topo = tiny_two_tier(4 * PAGE_SIZE_2M, 16 * PAGE_SIZE_2M);
        let mut cfg = MachineConfig::new(topo, 1);
        cfg.pebs.period = 1;
        let mut m = Machine::new(cfg);
        m.mmap("a", VaRange::from_len(VirtAddr(0), 2 * PAGE_SIZE_2M), false);
        m.alloc_and_map(0, VirtAddr(0), &[0]).unwrap();
        m.alloc_and_map(0, VirtAddr(PAGE_SIZE_2M), &[1]).unwrap();
        m.access(0, VirtAddr(0), AccessKind::Read);
        m.access(0, VirtAddr(PAGE_SIZE_2M), AccessKind::Read);
        let samples = m.drain_pebs();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].component, 1);
    }
}
