//! Deterministic random-number generator shared across the workspace.
//!
//! Policies and workloads must be reproducible run-to-run so manager
//! comparisons see identical streams; SplitMix64 is small, fast, and
//! deterministic.

/// A SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed.wrapping_add(0x9e3779b97f4a7c15) }
    }

    /// Current internal state, for checkpointing mid-stream.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator at an exact mid-stream state captured with
    /// [`SplitMix64::state`] (unlike [`SplitMix64::new`], no seed scramble
    /// is applied).
    pub fn from_state(state: u64) -> SplitMix64 {
        SplitMix64 { state }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift range reduction: bias is negligible for
        // workload-generation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Approximately standard-normal value (sum of 12 uniforms).
    pub fn gaussian(&mut self) -> f64 {
        let mut s = 0.0;
        for _ in 0..12 {
            s += self.unit_f64();
        }
        s - 6.0
    }

    /// Picks `k` distinct indices out of `[0, n)` (reservoir style);
    /// returns all of them when `k >= n`.
    pub fn sample_indices(&mut self, n: u64, k: usize) -> Vec<u64> {
        if k as u64 >= n {
            return (0..n).collect();
        }
        let mut out: Vec<u64> = (0..k as u64).collect();
        for i in k as u64..n {
            let j = self.below(i + 1);
            if (j as usize) < k {
                out[j as usize] = i;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_round_trip_resumes_mid_stream() {
        let mut a = SplitMix64::new(77);
        for _ in 0..13 {
            a.next_u64();
        }
        let mut b = SplitMix64::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = SplitMix64::new(4);
        let s = r.sample_indices(100, 10);
        assert_eq!(s.len(), 10);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_saturates() {
        let mut r = SplitMix64::new(4);
        let s = r.sample_indices(5, 10);
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }
}
