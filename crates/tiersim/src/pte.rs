//! Page-table-entry bit layout.
//!
//! The layout mirrors x86-64 closely enough for the mechanisms the paper
//! relies on: a hardware-set ACCESSED bit, a hardware-set DIRTY bit, the PS
//! bit marking a huge mapping, and software-available bits. Bit 11 is the
//! reserved bit MTM uses for write tracking during asynchronous migration
//! (Sec. 7.2/8), and two high software bits model NUMA hint-fault poisoning
//! and `mprotect`-style protection (used by Thermostat's profiler).

use crate::addr::PhysAddr;

/// Bit 0: the mapping is valid.
pub const PTE_PRESENT: u64 = 1 << 0;
/// Bit 5: set by the MMU on any access (the profiling signal).
pub const PTE_ACCESSED: u64 = 1 << 5;
/// Bit 6: set by the MMU on a write.
pub const PTE_DIRTY: u64 = 1 << 6;
/// Bit 7: page-size bit; the entry maps a 2 MB huge page.
pub const PTE_HUGE: u64 = 1 << 7;
/// Bit 11: reserved software bit; armed to track writes during async copy.
pub const PTE_WRITE_TRACK: u64 = 1 << 11;
/// Bit 61: protection removed (`PROT_NONE`); any access faults.
pub const PTE_PROT_NONE: u64 = 1 << 61;
/// Bit 62: NUMA hint-fault poison; the next access faults and reports the
/// accessing CPU, as in Linux AutoNUMA.
pub const PTE_NUMA_POISON: u64 = 1 << 62;

const FRAME_SHIFT: u64 = 12;
const FRAME_MASK: u64 = ((1 << 48) - 1) & !((1 << FRAME_SHIFT) - 1);

/// A software page-table entry.
///
/// The frame's physical address (component + offset) is packed into bits
/// 12..60; flag bits follow the constants above.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct Pte(pub u64);

impl Pte {
    /// An empty (non-present) entry.
    pub const EMPTY: Pte = Pte(0);

    /// Builds a present entry mapping `frame`, optionally as a huge page.
    pub fn map(frame: PhysAddr, huge: bool) -> Pte {
        // Pack component into bits 48..60 and offset (page-aligned) into
        // bits 12..48. Offsets are page-aligned so no information is lost.
        debug_assert_eq!(frame.offset() & 0xfff, 0, "frame offset must be page-aligned");
        let packed = ((frame.component() as u64) << 48) | (frame.offset() & FRAME_MASK);
        let mut flags = PTE_PRESENT;
        if huge {
            flags |= PTE_HUGE;
        }
        Pte(packed | flags)
    }

    /// The physical frame address stored in the entry.
    #[inline]
    pub fn frame(self) -> PhysAddr {
        PhysAddr::new(((self.0 >> 48) & 0x1fff) as u16, self.0 & FRAME_MASK)
    }

    /// Replaces the frame while keeping all flag bits.
    #[inline]
    pub fn with_frame(self, frame: PhysAddr) -> Pte {
        let flags = self.0 & !(FRAME_MASK | (0x1fff << 48));
        let packed = ((frame.component() as u64) << 48) | (frame.offset() & FRAME_MASK);
        Pte(packed | flags)
    }

    /// True if the entry is valid.
    #[inline]
    pub fn present(self) -> bool {
        self.0 & PTE_PRESENT != 0
    }

    /// True if the MMU has recorded an access since the last clear.
    #[inline]
    pub fn accessed(self) -> bool {
        self.0 & PTE_ACCESSED != 0
    }

    /// True if the MMU has recorded a write since the last clear.
    #[inline]
    pub fn dirty(self) -> bool {
        self.0 & PTE_DIRTY != 0
    }

    /// True if the entry maps a 2 MB huge page.
    #[inline]
    pub fn huge(self) -> bool {
        self.0 & PTE_HUGE != 0
    }

    /// True if writes to the page are being tracked for async migration.
    #[inline]
    pub fn write_tracked(self) -> bool {
        self.0 & PTE_WRITE_TRACK != 0
    }

    /// True if the entry is poisoned for a NUMA hint fault.
    #[inline]
    pub fn numa_poisoned(self) -> bool {
        self.0 & PTE_NUMA_POISON != 0
    }

    /// True if protection has been removed (any access faults).
    #[inline]
    pub fn prot_none(self) -> bool {
        self.0 & PTE_PROT_NONE != 0
    }

    /// Sets the given flag bits.
    #[inline]
    pub fn set(&mut self, bits: u64) {
        self.0 |= bits;
    }

    /// Clears the given flag bits.
    #[inline]
    pub fn clear(&mut self, bits: u64) {
        self.0 &= !bits;
    }

    /// Reads and clears the ACCESSED bit, returning its prior value.
    ///
    /// This is the primitive behind a PTE scan: profiling repeatedly calls
    /// it and counts how often the bit was found set.
    #[inline]
    pub fn take_accessed(&mut self) -> bool {
        let was = self.accessed();
        self.clear(PTE_ACCESSED);
        was
    }
}

impl std::fmt::Debug for Pte {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.present() {
            return write!(f, "Pte(empty)");
        }
        write!(
            f,
            "Pte({:?}{}{}{}{}{}{})",
            self.frame(),
            if self.huge() { " HUGE" } else { "" },
            if self.accessed() { " A" } else { "" },
            if self.dirty() { " D" } else { "" },
            if self.write_tracked() { " WT" } else { "" },
            if self.numa_poisoned() { " NUMA" } else { "" },
            if self.prot_none() { " PROT_NONE" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrips_frame() {
        let frame = PhysAddr::new(3, 0x1234_5000);
        let pte = Pte::map(frame, false);
        assert!(pte.present());
        assert!(!pte.huge());
        assert_eq!(pte.frame(), frame);
    }

    #[test]
    fn huge_bit() {
        let pte = Pte::map(PhysAddr::new(1, 0x20_0000), true);
        assert!(pte.huge());
        assert_eq!(pte.frame().offset(), 0x20_0000);
    }

    #[test]
    fn accessed_take_and_clear() {
        let mut pte = Pte::map(PhysAddr::new(0, 0), false);
        assert!(!pte.take_accessed());
        pte.set(PTE_ACCESSED);
        assert!(pte.take_accessed());
        assert!(!pte.accessed());
    }

    #[test]
    fn flags_do_not_disturb_frame() {
        let frame = PhysAddr::new(2, 0xabc000);
        let mut pte = Pte::map(frame, false);
        pte.set(PTE_ACCESSED | PTE_DIRTY | PTE_WRITE_TRACK | PTE_NUMA_POISON | PTE_PROT_NONE);
        assert_eq!(pte.frame(), frame);
        pte.clear(PTE_NUMA_POISON);
        assert!(!pte.numa_poisoned());
        assert!(pte.prot_none());
        assert_eq!(pte.frame(), frame);
    }

    #[test]
    fn with_frame_keeps_flags() {
        let mut pte = Pte::map(PhysAddr::new(0, 0x1000), true);
        pte.set(PTE_ACCESSED | PTE_DIRTY);
        let moved = pte.with_frame(PhysAddr::new(3, 0x8000));
        assert_eq!(moved.frame(), PhysAddr::new(3, 0x8000));
        assert!(moved.accessed());
        assert!(moved.dirty());
        assert!(moved.huge());
    }
}
