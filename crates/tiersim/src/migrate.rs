//! Page-migration primitives and the Linux `move_pages()` baseline.
//!
//! [`relocate_range`] is the mechanism-neutral core: it moves every mapped
//! page of a virtual range to a destination component, performing the four
//! steps of Sec. 7.1 — (1) allocate destination frames (including zeroing
//! cost), (2) unmap/invalidate, (3) copy, (4) remap — plus moving the
//! region's page-table pages. It *returns* the per-step cost breakdown and
//! lets the caller decide which steps land on the critical path: the Linux
//! `move_pages()` wrapper charges everything synchronously, while MTM's
//! `move_memory_regions()` (in the `mtm` crate) overlaps steps 1 and 3 with
//! application execution.

use crate::addr::{VaRange, PAGE_SIZE_4K};
use crate::frame::{FrameSize, OutOfMemory};
use crate::machine::Machine;
use crate::tier::{ComponentId, NodeId};

/// Per-step migration costs in virtual nanoseconds (Fig. 3 / Fig. 11).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StepBreakdown {
    /// Allocating (and zeroing) new pages in the target component.
    pub alloc_ns: f64,
    /// Unmapping the source pages (PTE invalidation).
    pub unmap_ns: f64,
    /// Copying page contents.
    pub copy_ns: f64,
    /// Mapping the new pages (PTE update).
    pub remap_ns: f64,
    /// Moving the corresponding page-table pages.
    pub pt_ns: f64,
    /// Dirtiness-tracking overhead (arming + faults), MTM only.
    pub track_ns: f64,
}

impl StepBreakdown {
    /// Sum of all steps.
    pub fn total_ns(&self) -> f64 {
        self.alloc_ns + self.unmap_ns + self.copy_ns + self.remap_ns + self.pt_ns + self.track_ns
    }

    /// Adds another breakdown step-wise.
    pub fn add(&mut self, other: StepBreakdown) {
        self.alloc_ns += other.alloc_ns;
        self.unmap_ns += other.unmap_ns;
        self.copy_ns += other.copy_ns;
        self.remap_ns += other.remap_ns;
        self.pt_ns += other.pt_ns;
        self.track_ns += other.track_ns;
    }
}

/// Result of a successful range relocation.
#[derive(Clone, Copy, Debug, Default)]
pub struct MigrateOutcome {
    /// Pages moved (huge pages count once).
    pub pages: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Bytes (of `bytes`) remapped from a clean shadow copy with zero
    /// copy traffic (Nomad non-exclusive mode; always 0 otherwise).
    pub shadow_hit_bytes: u64,
    /// Per-step costs (not yet charged to any clock bucket).
    pub breakdown: StepBreakdown,
}

/// Errors from migration primitives.
///
/// `#[non_exhaustive]` because the fault model grows: downstream crates
/// must keep a wildcard arm, and new transient failure classes then land
/// without breaking them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MigrateError {
    /// The destination cannot hold the pages being moved.
    NoSpace(OutOfMemory),
    /// The range contains no mapped pages.
    NothingMapped,
    /// A page in the range is transiently busy/pinned (injected fault);
    /// retrying later may succeed.
    PageBusy,
    /// Destination allocation failed transiently (injected fault);
    /// retrying later may succeed.
    TransientAllocFail,
}

impl MigrateError {
    /// True for failures that a bounded retry may recover from.
    pub fn is_transient(&self) -> bool {
        matches!(self, MigrateError::PageBusy | MigrateError::TransientAllocFail)
    }
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::NoSpace(oom) => write!(f, "migration failed: {oom}"),
            MigrateError::NothingMapped => write!(f, "migration failed: no mapped pages in range"),
            MigrateError::PageBusy => write!(f, "migration failed: page transiently busy/pinned"),
            MigrateError::TransientAllocFail => {
                write!(f, "migration failed: transient destination allocation failure")
            }
        }
    }
}

impl std::error::Error for MigrateError {}

/// Sustained single-thread page-copy bandwidth, GB/s.
const SINGLE_THREAD_COPY_GBPS: f64 = 6.0;

/// Effective copy bandwidth (bytes/ns) between two components as seen from
/// `node`, with `copy_threads` parallel copy threads.
///
/// A single kernel copy thread cannot saturate a fast link; parallel copy
/// (Nimble, MTM helpers) scales until the slower of the two links caps it.
pub fn copy_bandwidth(m: &Machine, node: NodeId, src: ComponentId, dst: ComponentId, copy_threads: u32) -> f64 {
    let topo = m.topology();
    let link_cap = topo.link(node, src).bytes_per_ns().min(topo.link(node, dst).bytes_per_ns());
    let bw = link_cap.min(SINGLE_THREAD_COPY_GBPS * copy_threads.max(1) as f64);
    // An installed fault plan can degrade copy bandwidth in interval
    // windows. The factor is exactly 1.0 outside every window, so the
    // multiplication is an IEEE no-op on the healthy path.
    bw * m.faults.bw_factor(m.clock.intervals())
}

/// The CPU node from which copying `src` -> `dst` is fastest.
///
/// Migration helper threads are kernel threads and can be scheduled on
/// whichever socket maximizes copy throughput (MTM pins them at the
/// highest priority, Sec. 7.2); page-migration costs therefore use the
/// best placement rather than the requesting thread's socket.
pub fn best_copy_node(m: &Machine, src: ComponentId, dst: ComponentId) -> NodeId {
    let topo = m.topology();
    (0..topo.nodes)
        .max_by(|&a, &b| {
            let ba = copy_bandwidth(m, a, src, dst, 1);
            let bb = copy_bandwidth(m, b, src, dst, 1);
            ba.total_cmp(&bb)
        })
        .unwrap_or(0)
}

/// Cost to copy `bytes` from `src` to `dst` (latency + bandwidth term).
pub fn copy_cost_ns(
    m: &Machine,
    node: NodeId,
    src: ComponentId,
    dst: ComponentId,
    bytes: u64,
    copy_threads: u32,
) -> f64 {
    let topo = m.topology();
    let pages = bytes.div_ceil(PAGE_SIZE_4K);
    let lat = (topo.link(node, src).latency_ns + topo.link(node, dst).latency_ns) * pages as f64
        / copy_threads.max(1) as f64;
    lat + bytes as f64 / copy_bandwidth(m, node, src, dst, copy_threads)
}

/// Cost to allocate and zero `bytes` of destination pages.
pub fn alloc_cost_ns(m: &Machine, node: NodeId, dst: ComponentId, bytes: u64) -> f64 {
    let pages = bytes.div_ceil(PAGE_SIZE_4K) as f64;
    let zero = bytes as f64 / m.topology().link(node, dst).bytes_per_ns().min(12.0);
    m.cfg.costs.migrate_alloc_page_ns * pages + zero
}

/// One fused read-only sweep of `range`: the ordered move set (every
/// mapped page, ascending) plus the capacity demand (pages of each size
/// not already on `dst`). Runs as work packets of 64 last-level PDEs,
/// reduced in packet order — sub-range boundaries are 2 MB aligned, so a
/// huge page is visited by exactly the packet owning its base and the
/// concatenation matches the serial walk page for page.
fn collect_move_set(
    m: &Machine,
    range: VaRange,
    dst: ComponentId,
) -> (Vec<(crate::addr::VirtAddr, FrameSize)>, u64, u64) {
    if range.is_empty() {
        return (Vec::new(), 0, 0);
    }
    let first_pde = range.start.pde_index();
    let last_pde = (range.end.0 - 1) >> 21;
    let n_pdes = (last_pde - first_pde + 1) as usize;
    let pt = m.page_table();
    let packets = crate::engine::map_chunks(m.run_workers(), n_pdes, 64, |r| {
        let lo = ((first_pde + r.start as u64) << 21).max(range.start.0);
        let hi = ((first_pde + r.end as u64) << 21).min(range.end.0);
        let sub = VaRange::new(crate::addr::VirtAddr(lo), crate::addr::VirtAddr(hi));
        let mut pages = Vec::new();
        let (mut need_4k, mut need_2m) = (0u64, 0u64);
        pt.for_each_mapped_in(sub, |va, pte, size| {
            pages.push((va, size));
            if pte.frame().component() != dst {
                match size {
                    FrameSize::Base4K => need_4k += 1,
                    FrameSize::Huge2M => need_2m += 1,
                }
            }
        });
        (pages, need_4k, need_2m)
    });
    let mut pages = Vec::new();
    let (mut need_4k, mut need_2m) = (0u64, 0u64);
    for (p, n4, n2) in packets {
        pages.extend(p);
        need_4k += n4;
        need_2m += n2;
    }
    (pages, need_4k, need_2m)
}

/// Allocates a destination frame for one page, splitting a huge mapping to
/// base pages when the destination has the bytes but no contiguous huge
/// frame (the THP-split fallback Linux performs under fragmentation).
///
/// Returns the frame and the (possibly downgraded) mapping size, or
/// `None` when even base allocation fails.
fn alloc_dst_frame(
    m: &mut Machine,
    va: crate::addr::VirtAddr,
    size: FrameSize,
    dst: ComponentId,
) -> Option<(crate::addr::PhysAddr, FrameSize)> {
    if let Ok(frame) = m.allocators[dst as usize].alloc(size) {
        return Some((frame, size));
    }
    if size == FrameSize::Huge2M {
        // Split the source THP and retry at base granularity.
        if m.pt.split_huge(va) {
            if let Ok(frame) = m.allocators[dst as usize].alloc(FrameSize::Base4K) {
                return Some((frame, FrameSize::Base4K));
            }
        }
    }
    None
}

/// Moves every mapped page in `range` that is not already on `dst` to
/// `dst`, splitting huge mappings first if `split_huge`.
///
/// Performs all four `move_pages()` steps, computing their costs, but does
/// **not** charge the machine clock — callers charge the returned breakdown
/// to the buckets their mechanism exposes on the critical path. Frame
/// versions are copied so tests can verify no update is lost.
///
/// Under `MTM_CHECK=1` (or [`Machine::set_checking`]) every call is
/// bracketed by shadow snapshots: a success must have moved exactly
/// `out.bytes` onto `dst` without creating or losing pages; a transient
/// abort must leave the range structurally untouched; a non-transient
/// failure may have split huge mappings but must not have moved a byte.
pub fn relocate_range(
    m: &mut Machine,
    range: VaRange,
    dst: ComponentId,
    node: NodeId,
    copy_threads: u32,
    split_huge: bool,
) -> Result<MigrateOutcome, MigrateError> {
    if !m.checking() {
        return relocate_range_inner(m, range, dst, node, copy_threads, split_huge);
    }
    let pre = m.shadow_of(range);
    let result = relocate_range_inner(m, range, dst, node, copy_threads, split_huge);
    let post = m.shadow_of(range);
    let mut violations = Vec::new();
    match &result {
        Ok(out) => {
            if post.total_bytes() != pre.total_bytes() {
                violations.push(format!(
                    "bytes not conserved: {} B mapped in range before vs {} B after",
                    pre.total_bytes(),
                    post.total_bytes()
                ));
            }
            let gained = post.bytes_on(dst).wrapping_sub(pre.bytes_on(dst));
            if gained != out.bytes {
                violations.push(format!(
                    "destination gain mismatch: component {dst} gained {gained} B but the outcome reports {} B moved",
                    out.bytes
                ));
            }
        }
        Err(e) if e.is_transient() => {
            // The fault gate fires before any mutation: the pre-image
            // must be intact down to mapping granularity.
            violations.extend(pre.diff(&post));
        }
        Err(_) => {
            // NoSpace/NothingMapped may legitimately have split huge
            // mappings (a placement-neutral granularity change) but must
            // not have moved a byte between components.
            violations.extend(pre.placement_diff(&post));
        }
    }
    // Cheap global invariant on every call: total allocator occupancy
    // must equal the page-table census plus retained shadow bytes (a
    // leaked or double-freed frame shows up here immediately; the full
    // per-component census runs at interval boundaries).
    let used: u64 = (0..m.topology().num_components() as u16)
        .map(|c| m.allocator(c).used())
        .sum();
    let mapped = m.page_table().mapped_bytes();
    let shadow = m.shadow_total_bytes();
    if used != mapped + shadow {
        violations.push(format!(
            "occupancy drift: allocators hold {used} B but the page table maps {mapped} B (+{shadow} B shadow)"
        ));
    }
    if !violations.is_empty() {
        let context = match &result {
            Ok(_) => format!("relocate_range commit (range {range:?} -> component {dst})"),
            Err(e) => format!("relocate_range abort ({e}; range {range:?} -> component {dst})"),
        };
        mtm_check::fail(&context, &violations);
    }
    result
}

/// The unchecked four-step move loop behind [`relocate_range`].
fn relocate_range_inner(
    m: &mut Machine,
    range: VaRange,
    dst: ComponentId,
    // Requesting node: its tier view classifies promotions vs demotions
    // for shadow-copy retention; copy threads are placed by
    // `best_copy_node` independently of it.
    node: NodeId,
    copy_threads: u32,
    split_huge: bool,
) -> Result<MigrateOutcome, MigrateError> {
    // Fault-injection gate. A transient failure aborts the attempt before
    // any state is touched, so a failed migration is transactional:
    // nothing moved, nothing to roll back (Nomad-style abort semantics
    // come for free to every caller).
    if m.faults.is_active() {
        if m.faults.page_busy() {
            m.recorder.reg.counter_add(obs::names::FAULT_PAGE_BUSY, 1);
            return Err(MigrateError::PageBusy);
        }
        if m.faults.alloc_fail() {
            m.recorder.reg.counter_add(obs::names::FAULT_ALLOC_FAIL, 1);
            return Err(MigrateError::TransientAllocFail);
        }
    }
    if split_huge {
        for base in range.iter_pages_2m() {
            if matches!(m.pt.translate(base), Some(t) if t.size == FrameSize::Huge2M) {
                m.pt.split_huge(base);
            }
        }
    }
    let (pages, need_4k, need_2m) = collect_move_set(m, range, dst);
    if need_4k > 0 || need_2m > 0 {
        let need_bytes = need_4k * PAGE_SIZE_4K + need_2m * crate::addr::PAGE_SIZE_2M;
        // In shadow mode some of the demand may be met by reusing clean
        // retained frames (no allocation), and retained frames not about
        // to be reused are reclaimable free space.
        let need_alloc = if m.shadow_mode() {
            need_bytes.saturating_sub(m.shadow_match_bytes(range, dst))
        } else {
            need_bytes
        };
        if m.shadow_mode() && m.allocators[dst as usize].free() < need_alloc {
            m.reclaim_shadow_space(dst, need_alloc, range);
        }
        if m.allocators[dst as usize].free() < need_alloc {
            return Err(MigrateError::NoSpace(OutOfMemory {
                component: dst,
                size: if need_2m > 0 { FrameSize::Huge2M } else { FrameSize::Base4K },
            }));
        }
    }
    if pages.is_empty() {
        return Err(MigrateError::NothingMapped);
    }
    let shadow_mode = m.shadow_mode();
    let costs = m.cfg.costs.clone();
    let mut out = MigrateOutcome::default();
    let mut any_moved = false;
    // Frames retained as shadow copies on demotion, grouped by the source
    // component they stay allocated on.
    let mut retained: std::collections::BTreeMap<
        ComponentId,
        Vec<(crate::addr::VirtAddr, crate::addr::PhysAddr, FrameSize)>,
    > = std::collections::BTreeMap::new();
    let mut queue: std::collections::VecDeque<(crate::addr::VirtAddr, FrameSize)> = pages.into();
    while let Some((va, size)) = queue.pop_front() {
        // `mapped_pages` ran moments ago, but a defensive miss here must
        // not panic mid-transaction: skipping the page leaves it exactly
        // where it was, which every caller already handles.
        let Some(src) = m.component_of(va) else {
            continue;
        };
        if src == dst {
            continue;
        }
        // Shadow fast path: a clean retained copy on the destination lets
        // the page repromote by remapping alone — no allocation, no copy.
        let shadow_frame =
            if shadow_mode { m.take_shadow_page(va, dst, size) } else { None };
        let (new_frame, eff_size) = match shadow_frame {
            Some(frame) => (frame, size),
            None => {
                // Step 1: allocate (+ zero) the destination frame,
                // splitting the THP when the destination lacks a
                // contiguous huge frame.
                let Some((new_frame, eff_size)) = alloc_dst_frame(m, va, size, dst) else {
                    continue;
                };
                if eff_size != size {
                    // The huge mapping was split: queue the sibling base
                    // pages that fall inside the requested range (the
                    // rest stay put).
                    for off in
                        (PAGE_SIZE_4K..crate::addr::PAGE_SIZE_2M).step_by(PAGE_SIZE_4K as usize)
                    {
                        let sibling = crate::addr::VirtAddr(va.0 + off);
                        if range.contains(sibling) {
                            queue.push_back((sibling, FrameSize::Base4K));
                        }
                    }
                }
                out.breakdown.alloc_ns +=
                    alloc_cost_ns(m, best_copy_node(m, dst, dst), dst, eff_size.bytes());
                (new_frame, eff_size)
            }
        };
        let bytes = eff_size.bytes();
        // Step 2: unmap / invalidate. A miss here would leak the frame
        // allocated (or consumed from the shadow pool) above, so return
        // it before skipping the page.
        let Some((old_pte, old_size)) = m.pt.unmap(va) else {
            m.allocators[dst as usize].free_frame(new_frame, eff_size);
            continue;
        };
        debug_assert_eq!(old_size, eff_size, "split (if any) happened before unmap");
        out.breakdown.unmap_ns += costs.migrate_unmap_page_ns;
        // Step 3: copy contents (versions stand in for data). A shadow
        // hit copies nothing over the interconnect — the retained frame
        // already holds the bytes — but the version bookkeeping still
        // follows the page so no write is ever lost.
        for off in (0..bytes).step_by(PAGE_SIZE_4K as usize) {
            let s = crate::addr::PhysAddr::new(old_pte.frame().component(), old_pte.frame().offset() + off);
            let d = crate::addr::PhysAddr::new(new_frame.component(), new_frame.offset() + off);
            m.versions.copy(s, d);
            m.versions.forget(s);
        }
        if shadow_frame.is_none() {
            let copy_node = best_copy_node(m, src, dst);
            out.breakdown.copy_ns += copy_cost_ns(m, copy_node, src, dst, bytes, copy_threads);
        }
        // Step 4: remap.
        let new_pte = old_pte.with_frame(new_frame);
        match eff_size {
            FrameSize::Huge2M => m.pt.map_2m(va, new_pte),
            FrameSize::Base4K => m.pt.map_4k(va, new_pte),
        }
        out.breakdown.remap_ns += costs.migrate_remap_page_ns;
        // On a demotion (the destination is slower than the source in the
        // requesting node's tier view) shadow mode retains the source
        // frame instead of freeing it, so a clean repromotion can reuse
        // it with zero copy bytes.
        let topo = m.topology();
        let demotion = shadow_mode && topo.tier_rank(node, src) < topo.tier_rank(node, dst);
        if demotion {
            retained.entry(src).or_default().push((va, old_pte.frame(), eff_size));
        } else {
            m.allocators[src as usize].free_frame(old_pte.frame(), eff_size);
        }
        out.pages += 1;
        out.bytes += bytes;
        if shadow_frame.is_some() {
            out.shadow_hit_bytes += bytes;
        }
        any_moved = true;
    }
    if !any_moved {
        return Err(MigrateError::NothingMapped);
    }
    if shadow_mode {
        // Pages of this range moved: any surviving shadow entry that
        // overlaps it is no longer paired with a watched mapping (its
        // tracking bits died with the unmap), so drop it before
        // registering the fresh retained copies.
        m.invalidate_shadows_overlapping(range);
        for (src, pages) in retained {
            m.register_shadow(range, src, pages);
        }
        if out.shadow_hit_bytes > 0 {
            m.recorder.reg.counter_add(obs::names::SHADOW_HITS, 1);
            m.recorder.reg.counter_add(obs::names::SHADOW_HIT_BYTES, out.shadow_hit_bytes);
            m.record_event(obs::EventKind::ShadowHit { bytes: out.shadow_hit_bytes, dst });
        }
    }
    // Moving the page-table pages costs one unit per 2 MB region's worth
    // of pages; pro-rate for smaller moves so per-page migrators are not
    // overcharged.
    out.breakdown.pt_ns +=
        costs.migrate_pt_region_ns * (out.bytes as f64 / crate::addr::PAGE_SIZE_2M as f64).max(0.01);
    m.stats.pages_migrated += out.pages;
    m.stats.bytes_migrated += out.bytes;
    m.recorder.reg.counter_add(obs::names::MIGRATIONS, 1);
    m.recorder.reg.observe(obs::names::MIGRATION_BYTES, out.bytes);
    Ok(out)
}

/// Bounded retry with exponential backoff for transient migration
/// failures.
///
/// `max_attempts` counts *total* tries (so 1 disables retrying). Between
/// attempt `i` and `i + 1` the caller is charged
/// `min(base_backoff_ns << (i-1), max_backoff_ns)` of virtual migration
/// time — the cost of the failed kernel call plus the sleep a real retry
/// loop would take. The doubling is exact integer arithmetic (not
/// `f64::powi`), so the backoff sequence is bit-identical on every
/// platform and rounding mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum total attempts (>= 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, virtual ns.
    pub base_backoff_ns: u64,
    /// Upper bound on a single backoff step, virtual ns.
    pub max_backoff_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 4, base_backoff_ns: 20_000, max_backoff_ns: 500_000 }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// Backoff charged after failed attempt number `attempt` (1-based),
    /// as exact integer doubling capped at `max_backoff_ns`. Saturates
    /// instead of overflowing, so huge attempt numbers pin at the cap.
    pub fn backoff_step_ns(&self, attempt: u32) -> u64 {
        let doublings = attempt.saturating_sub(1);
        let step = if doublings >= 64 {
            u64::MAX
        } else {
            self.base_backoff_ns.saturating_mul(1u64 << doublings)
        };
        step.min(self.max_backoff_ns)
    }

    /// [`RetryPolicy::backoff_step_ns`] in the `f64` domain the clock
    /// charges in. Steps are capped at `max_backoff_ns`, far below
    /// 2^53, so the conversion is exact.
    pub fn backoff_ns(&self, attempt: u32) -> f64 {
        self.backoff_step_ns(attempt) as f64
    }

    /// Worst-case total backoff a single migration can accumulate,
    /// summed in attempt order (the same order the retry loop charges).
    pub fn max_total_backoff_ns(&self) -> f64 {
        (1..self.max_attempts).map(|a| self.backoff_ns(a)).sum()
    }
}

/// What a [`relocate_with_retry`] call went through, success or not.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RetryReport {
    /// Attempts made (1 = first try succeeded or failed permanently).
    pub attempts: u32,
    /// Retries after transient failures (`attempts - 1` unless a
    /// permanent error cut the loop short).
    pub retries: u32,
    /// Total virtual backoff accumulated. The caller decides which clock
    /// bucket it lands on (sync callers charge it to migration).
    pub backoff_ns: f64,
}

/// [`relocate_range`] wrapped in bounded retry with exponential backoff.
///
/// Transient errors ([`MigrateError::is_transient`]) are retried up to
/// `policy.max_attempts` total tries; permanent errors return
/// immediately. The accumulated backoff is **not** charged to the machine
/// clock here — it is reported so each caller can put it on the right
/// critical path — but retry counters and the backoff histogram are
/// recorded.
pub fn relocate_with_retry(
    m: &mut Machine,
    range: VaRange,
    dst: ComponentId,
    node: NodeId,
    copy_threads: u32,
    split_huge: bool,
    policy: RetryPolicy,
) -> (Result<MigrateOutcome, MigrateError>, RetryReport) {
    let mut report = RetryReport::default();
    let max_attempts = policy.max_attempts.max(1);
    loop {
        report.attempts += 1;
        match relocate_range(m, range, dst, node, copy_threads, split_huge) {
            Ok(out) => {
                if report.retries > 0 {
                    m.recorder.reg.observe(obs::names::RETRY_BACKOFF_NS, report.backoff_ns as u64);
                    let kind = obs::EventKind::MigrationRetried {
                        retries: report.retries as u64,
                        backoff_ns: report.backoff_ns as u64,
                    };
                    m.record_event(kind);
                }
                return (Ok(out), report);
            }
            Err(e) if e.is_transient() && report.attempts < max_attempts => {
                report.retries += 1;
                report.backoff_ns += policy.backoff_ns(report.attempts);
                m.recorder.reg.counter_add(obs::names::MIGRATION_RETRIES, 1);
            }
            Err(e) => return (Err(e), report),
        }
    }
}

/// The Linux `move_pages()` baseline: sequential 4 KB migration with every
/// step exposed on the critical path.
///
/// Huge mappings are split to 4 KB first (the syscall operates on base
/// pages). Charges the full cost to the machine's migration bucket and
/// returns the outcome.
pub fn move_pages_linux(
    m: &mut Machine,
    range: VaRange,
    dst: ComponentId,
    node: NodeId,
) -> Result<MigrateOutcome, MigrateError> {
    let out = relocate_range(m, range, dst, node, 1, true)?;
    m.charge_migration(out.breakdown.total_ns());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{VirtAddr, PAGE_SIZE_2M};
    use crate::machine::{AccessKind, MachineConfig};
    use crate::tier::tiny_two_tier;

    fn machine() -> Machine {
        let topo = tiny_two_tier(8 * PAGE_SIZE_2M, 8 * PAGE_SIZE_2M);
        let mut m = Machine::new(MachineConfig::new(topo, 1));
        m.mmap("a", VaRange::from_len(VirtAddr(0), 8 * PAGE_SIZE_2M), false);
        m
    }

    #[test]
    fn relocation_moves_pages_and_preserves_versions() {
        let mut m = machine();
        let range = VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M);
        m.prefault_range(range, &[0]).unwrap();
        m.access(0, VirtAddr(0x1000), AccessKind::Write);
        m.access(0, VirtAddr(0x1000), AccessKind::Write);
        let out = relocate_range(&mut m, range, 1, 0, 1, false).unwrap();
        assert_eq!(out.pages, 512);
        assert_eq!(out.bytes, PAGE_SIZE_2M);
        assert_eq!(m.component_of(VirtAddr(0x1000)), Some(1));
        // The moved frame carries the two writes.
        let t = m.page_table().translate(VirtAddr(0x1000)).unwrap();
        assert_eq!(m.versions.get(t.pte.frame()), 2);
        // Source space is reclaimed.
        assert_eq!(m.allocator(0).used(), 0);
        assert_eq!(m.allocator(1).used(), PAGE_SIZE_2M);
    }

    #[test]
    fn huge_mapping_moves_whole() {
        let topo = tiny_two_tier(8 * PAGE_SIZE_2M, 8 * PAGE_SIZE_2M);
        let mut m = Machine::new(MachineConfig::new(topo, 1));
        m.mmap("thp", VaRange::from_len(VirtAddr(0), 2 * PAGE_SIZE_2M), true);
        m.prefault_range(VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M), &[0]).unwrap();
        let out = relocate_range(&mut m, VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M), 1, 0, 1, false).unwrap();
        assert_eq!(out.pages, 1, "huge page moved as one unit");
        let t = m.page_table().translate(VirtAddr(0)).unwrap();
        assert!(t.pte.huge());
        assert_eq!(t.pte.frame().component(), 1);
    }

    #[test]
    fn move_pages_splits_huge_and_charges() {
        let topo = tiny_two_tier(8 * PAGE_SIZE_2M, 8 * PAGE_SIZE_2M);
        let mut m = Machine::new(MachineConfig::new(topo, 1));
        m.mmap("thp", VaRange::from_len(VirtAddr(0), 2 * PAGE_SIZE_2M), true);
        m.prefault_range(VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M), &[0]).unwrap();
        let out = move_pages_linux(&mut m, VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M), 1, 0).unwrap();
        assert_eq!(out.pages, 512, "THP split into base pages");
        assert!(m.breakdown().migration_ns > 0.0);
        assert_eq!(m.breakdown().migration_ns, out.breakdown.total_ns());
    }

    #[test]
    fn relocation_rejects_when_destination_full() {
        let topo = tiny_two_tier(8 * PAGE_SIZE_2M, 2 * PAGE_SIZE_2M);
        let mut m = Machine::new(MachineConfig::new(topo, 1));
        m.mmap("a", VaRange::from_len(VirtAddr(0), 8 * PAGE_SIZE_2M), false);
        m.prefault_range(VaRange::from_len(VirtAddr(0), 4 * PAGE_SIZE_2M), &[0]).unwrap();
        let err = relocate_range(&mut m, VaRange::from_len(VirtAddr(0), 4 * PAGE_SIZE_2M), 1, 0, 1, false);
        assert!(matches!(err, Err(MigrateError::NoSpace(_))));
        // Nothing was moved.
        assert_eq!(m.allocator(1).used(), 0);
        assert_eq!(m.stats().pages_migrated, 0);
    }

    #[test]
    fn already_resident_pages_are_skipped() {
        let mut m = machine();
        let range = VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M);
        m.prefault_range(range, &[1]).unwrap();
        let err = relocate_range(&mut m, range, 1, 0, 1, false);
        assert!(matches!(err, Err(MigrateError::NothingMapped)), "no page needed moving");
    }

    #[test]
    fn thp_splits_when_destination_lacks_huge_frames() {
        // Destination has bytes free only as scattered 4 KB frames.
        let topo = tiny_two_tier(8 * PAGE_SIZE_2M, 2 * PAGE_SIZE_2M);
        let mut m = Machine::new(MachineConfig::new(topo, 1));
        m.mmap("thp", VaRange::from_len(VirtAddr(0), 2 * PAGE_SIZE_2M), true);
        m.prefault_range(VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M), &[0]).unwrap();
        // Fragment the destination: allocate one 4 KB frame from each of
        // its two blocks, then free one block's worth minus a page.
        let a = m.allocators_mut_for_test(1).alloc(FrameSize::Base4K).unwrap();
        let _b = m.allocators_mut_for_test(1).alloc(FrameSize::Huge2M).unwrap();
        m.allocators_mut_for_test(1).free_frame(a, FrameSize::Base4K);
        // No huge frame is available (one block is carved, one is taken),
        // but 4 KB frames are: the huge mapping must split and move.
        let out = relocate_range(&mut m, VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M), 1, 0, 1, false)
            .unwrap();
        assert_eq!(out.pages, 512, "moved as base pages after the split");
        let t = m.page_table().translate(VirtAddr(0)).unwrap();
        assert_eq!(t.size, FrameSize::Base4K);
        assert_eq!(t.pte.frame().component(), 1);
    }

    #[test]
    fn parallel_copy_is_faster() {
        let m = machine();
        let one = copy_cost_ns(&m, 0, 0, 1, PAGE_SIZE_2M, 1);
        let four = copy_cost_ns(&m, 0, 0, 1, PAGE_SIZE_2M, 4);
        assert!(four < one, "parallel copy reduces cost ({four} !< {one})");
    }

    #[test]
    fn slow_link_caps_copy_bandwidth() {
        let m = machine();
        // Slow tier link is 5 GB/s; even 8 threads cannot exceed it.
        let bw = copy_bandwidth(&m, 0, 0, 1, 8);
        assert!((bw - 5.0).abs() < 1e-9);
    }

    #[test]
    fn default_backoff_sequence_is_pinned() {
        // The default policy's charged sequence: 20 µs, 40 µs, 80 µs …
        // capped at 500 µs. Committed goldens depend on these exact
        // values, so pin them.
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_step_ns(1), 20_000);
        assert_eq!(p.backoff_step_ns(2), 40_000);
        assert_eq!(p.backoff_step_ns(3), 80_000);
        assert_eq!(p.backoff_step_ns(6), 500_000, "capped at max_backoff_ns");
        assert_eq!(p.backoff_step_ns(u32::MAX), 500_000, "doubling saturates, never wraps");
        assert_eq!(p.max_total_backoff_ns(), 140_000.0);
    }

    #[test]
    fn migrate_error_display_and_error_trait() {
        let busy = MigrateError::PageBusy;
        let alloc = MigrateError::TransientAllocFail;
        let mapped = MigrateError::NothingMapped;
        assert_eq!(busy.to_string(), "migration failed: page transiently busy/pinned");
        assert_eq!(
            alloc.to_string(),
            "migration failed: transient destination allocation failure"
        );
        assert_eq!(mapped.to_string(), "migration failed: no mapped pages in range");
        assert!(busy.is_transient() && alloc.is_transient());
        assert!(!mapped.is_transient());
        // The enum is a real std error: it coerces to `dyn Error` and the
        // trait's Display passthrough matches.
        let boxed: Box<dyn std::error::Error> = Box::new(busy);
        assert_eq!(boxed.to_string(), busy.to_string());
    }

    /// A seed whose first `page_busy` roll fires and whose second does
    /// not, so a retry test has exactly one deterministic failure.
    fn seed_with_one_busy_then_clear(plan: &faultsim::FaultPlan) -> u64 {
        (0..10_000u64)
            .find(|&s| {
                let mut probe = faultsim::FaultState::new(plan.clone(), s);
                probe.page_busy() && !probe.page_busy()
            })
            .expect("some seed fails once then clears")
    }

    #[test]
    fn injected_fault_is_transactional_and_retry_recovers() {
        let plan = faultsim::FaultPlan::parse("busy=0.5").unwrap();
        let seed = seed_with_one_busy_then_clear(&plan);
        let mut m = machine();
        let range = VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M);
        m.prefault_range(range, &[0]).unwrap();
        m.install_faults(plan, seed);
        let policy = RetryPolicy::default();
        let (res, report) = relocate_with_retry(&mut m, range, 1, 0, 1, false, policy);
        let out = res.expect("second attempt succeeds");
        assert_eq!(out.pages, 512);
        assert_eq!(report.attempts, 2);
        assert_eq!(report.retries, 1);
        assert_eq!(report.backoff_ns, policy.backoff_ns(1));
        // The failed attempt was transactional: no leaked destination
        // frames, exactly one region's worth ends up resident.
        assert_eq!(m.allocator(1).used(), PAGE_SIZE_2M);
        assert_eq!(m.allocator(0).used(), 0);
        assert_eq!(m.recorder.reg.counter(obs::names::MIGRATION_RETRIES), 1);
        assert_eq!(m.recorder.reg.counter(obs::names::FAULT_PAGE_BUSY), 1);
    }

    #[test]
    fn retry_exhaustion_respects_attempt_bound() {
        let plan = faultsim::FaultPlan::parse("busy=1").unwrap();
        let mut m = machine();
        let range = VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M);
        m.prefault_range(range, &[0]).unwrap();
        m.install_faults(plan, 7);
        let policy = RetryPolicy::default();
        let (res, report) = relocate_with_retry(&mut m, range, 1, 0, 1, false, policy);
        assert!(matches!(res, Err(MigrateError::PageBusy)));
        assert_eq!(report.attempts, policy.max_attempts);
        assert_eq!(report.retries, policy.max_attempts - 1);
        assert_eq!(report.backoff_ns, policy.max_total_backoff_ns());
        // All attempts aborted before touching the machine.
        assert_eq!(m.allocator(1).used(), 0);
        assert_eq!(m.stats().pages_migrated, 0);
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let topo = tiny_two_tier(8 * PAGE_SIZE_2M, 2 * PAGE_SIZE_2M);
        let mut m = Machine::new(MachineConfig::new(topo, 1));
        m.mmap("a", VaRange::from_len(VirtAddr(0), 8 * PAGE_SIZE_2M), false);
        m.prefault_range(VaRange::from_len(VirtAddr(0), 4 * PAGE_SIZE_2M), &[0]).unwrap();
        let (res, report) = relocate_with_retry(
            &mut m,
            VaRange::from_len(VirtAddr(0), 4 * PAGE_SIZE_2M),
            1,
            0,
            1,
            false,
            RetryPolicy::default(),
        );
        assert!(matches!(res, Err(MigrateError::NoSpace(_))));
        assert_eq!(report.attempts, 1, "NoSpace is permanent: no retry");
        assert_eq!(report.retries, 0);
        assert_eq!(report.backoff_ns, 0.0);
    }

    #[test]
    fn thp_split_fallback_survives_a_transient_failure() {
        // The fragmented-destination THP scenario, now with one injected
        // transient failure in front: the retry must still find the
        // split-and-move fallback.
        let plan = faultsim::FaultPlan::parse("busy=0.5").unwrap();
        let seed = seed_with_one_busy_then_clear(&plan);
        let topo = tiny_two_tier(8 * PAGE_SIZE_2M, 2 * PAGE_SIZE_2M);
        let mut m = Machine::new(MachineConfig::new(topo, 1));
        m.mmap("thp", VaRange::from_len(VirtAddr(0), 2 * PAGE_SIZE_2M), true);
        m.prefault_range(VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M), &[0]).unwrap();
        let a = m.allocators_mut_for_test(1).alloc(FrameSize::Base4K).unwrap();
        let _b = m.allocators_mut_for_test(1).alloc(FrameSize::Huge2M).unwrap();
        m.allocators_mut_for_test(1).free_frame(a, FrameSize::Base4K);
        m.install_faults(plan, seed);
        let (res, report) = relocate_with_retry(
            &mut m,
            VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M),
            1,
            0,
            1,
            false,
            RetryPolicy::default(),
        );
        let out = res.expect("retry then split-and-move");
        assert_eq!(report.retries, 1);
        assert_eq!(out.pages, 512, "moved as base pages after the split");
        let t = m.page_table().translate(VirtAddr(0)).unwrap();
        assert_eq!(t.size, FrameSize::Base4K);
        assert_eq!(t.pte.frame().component(), 1);
    }

    #[test]
    fn shadow_demotion_retains_and_clean_rehit_copies_nothing() {
        let mut m = machine();
        m.set_checking(true);
        m.set_shadow_mode(true);
        let range = VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M);
        m.prefault_range(range, &[0]).unwrap();
        // Demote: the source frames stay allocated as a shadow copy.
        let out = relocate_range(&mut m, range, 1, 0, 1, false).unwrap();
        assert_eq!(out.bytes, PAGE_SIZE_2M);
        assert_eq!(out.shadow_hit_bytes, 0);
        assert_eq!(m.component_of(VirtAddr(0)), Some(1));
        assert_eq!(m.shadow_bytes(0), PAGE_SIZE_2M, "demoted frames retained on fast tier");
        assert_eq!(m.allocator(0).used(), PAGE_SIZE_2M);
        assert_eq!(m.shadow_entries(), 1);
        // Repromote without any intervening write: the clean shadow copy
        // is remapped with zero allocation and zero copy traffic.
        let back = relocate_range(&mut m, range, 0, 0, 1, false).unwrap();
        assert_eq!(back.bytes, PAGE_SIZE_2M);
        assert_eq!(back.shadow_hit_bytes, PAGE_SIZE_2M);
        assert_eq!(back.breakdown.copy_ns, 0.0, "no bytes crossed the interconnect");
        assert_eq!(back.breakdown.alloc_ns, 0.0, "no frame was allocated");
        assert!(back.breakdown.remap_ns > 0.0, "remapping is still charged");
        assert_eq!(m.component_of(VirtAddr(0)), Some(0));
        assert_eq!(m.shadow_total_bytes(), 0, "consumed entry is gone");
        assert_eq!(m.allocator(1).used(), 0, "slow-tier copy was freed");
        assert_eq!(m.recorder.reg.counter(obs::names::SHADOW_HITS), 1);
        assert_eq!(m.recorder.reg.counter(obs::names::SHADOW_HIT_BYTES), PAGE_SIZE_2M);
    }

    #[test]
    fn shadow_write_after_demotion_invalidates_the_copy() {
        let mut m = machine();
        m.set_checking(true);
        m.set_shadow_mode(true);
        let range = VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M);
        m.prefault_range(range, &[0]).unwrap();
        relocate_range(&mut m, range, 1, 0, 1, false).unwrap();
        // A write to the demoted page makes the retained copy stale.
        m.access(0, VirtAddr(0x1000), AccessKind::Write);
        let back = relocate_range(&mut m, range, 0, 0, 1, false).unwrap();
        assert_eq!(back.shadow_hit_bytes, 0, "stale copy must not be reused");
        assert!(back.breakdown.copy_ns > 0.0, "a real copy was paid for");
        assert_eq!(m.shadow_total_bytes(), 0, "stale entry was dropped");
        assert_eq!(m.component_of(VirtAddr(0x1000)), Some(0));
        // The write that landed while demoted travelled with the page.
        let t = m.page_table().translate(VirtAddr(0x1000)).unwrap();
        assert_eq!(m.versions.get(t.pte.frame()), 1);
        assert_eq!(m.recorder.reg.counter(obs::names::SHADOW_INVALIDATIONS), 1);
        assert_eq!(m.allocator(1).used(), 0);
        assert_eq!(m.allocator(0).used(), PAGE_SIZE_2M);
    }

    #[test]
    fn shadow_space_is_reclaimed_under_allocation_pressure() {
        let topo = tiny_two_tier(2 * PAGE_SIZE_2M, 8 * PAGE_SIZE_2M);
        let mut m = Machine::new(MachineConfig::new(topo, 1));
        m.set_checking(true);
        m.set_shadow_mode(true);
        m.mmap("a", VaRange::from_len(VirtAddr(0), 8 * PAGE_SIZE_2M), false);
        let a = VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M);
        let b = VaRange::from_len(VirtAddr(PAGE_SIZE_2M), PAGE_SIZE_2M);
        let c = VaRange::from_len(VirtAddr(2 * PAGE_SIZE_2M), PAGE_SIZE_2M);
        m.prefault_range(a, &[0]).unwrap();
        m.prefault_range(b, &[1]).unwrap();
        m.prefault_range(c, &[1]).unwrap();
        // Demote `a`: its fast-tier frames linger as a shadow copy.
        relocate_range(&mut m, a, 1, 0, 1, false).unwrap();
        assert_eq!(m.shadow_bytes(0), PAGE_SIZE_2M);
        // Promote `b`: fits in the remaining free space, shadow survives.
        relocate_range(&mut m, b, 0, 0, 1, false).unwrap();
        assert_eq!(m.shadow_bytes(0), PAGE_SIZE_2M);
        assert_eq!(m.allocator(0).free(), 0);
        // Promote `c`: the fast tier is exhausted, so shadow space is
        // reclaimed to make room instead of failing with NoSpace.
        relocate_range(&mut m, c, 0, 0, 1, false).unwrap();
        assert_eq!(m.shadow_total_bytes(), 0, "shadow yielded to live data");
        assert_eq!(m.component_of(VirtAddr(2 * PAGE_SIZE_2M)), Some(0));
        assert_eq!(m.allocator(0).used(), 2 * PAGE_SIZE_2M);
    }

    #[test]
    fn shadow_huge_page_roundtrip_reuses_the_retained_frame() {
        let topo = tiny_two_tier(8 * PAGE_SIZE_2M, 8 * PAGE_SIZE_2M);
        let mut m = Machine::new(MachineConfig::new(topo, 1));
        m.set_checking(true);
        m.set_shadow_mode(true);
        m.mmap("thp", VaRange::from_len(VirtAddr(0), 2 * PAGE_SIZE_2M), true);
        let range = VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M);
        m.prefault_range(range, &[0]).unwrap();
        relocate_range(&mut m, range, 1, 0, 1, false).unwrap();
        assert_eq!(m.shadow_bytes(0), PAGE_SIZE_2M);
        let back = relocate_range(&mut m, range, 0, 0, 1, false).unwrap();
        assert_eq!(back.pages, 1, "huge page rehit as one unit");
        assert_eq!(back.shadow_hit_bytes, PAGE_SIZE_2M);
        let t = m.page_table().translate(VirtAddr(0)).unwrap();
        assert!(t.pte.huge());
        assert_eq!(t.pte.frame().component(), 0);
    }
}
