//! Multi-tenant resource shares and the exact capacity ledger.
//!
//! A tiered box serving many co-scheduled address spaces is arbitrated
//! globally (the HM-Keeper direction): some layer above the per-tenant
//! managers decides how much fast-tier capacity, migration bandwidth and
//! profiling budget each tenant gets this interval. This module holds
//! the *mechanism* half of that split — the [`Share`] a tenant receives
//! and the deterministic integer apportionment that turns arbitrary
//! floating-point weights into quotas that sum **exactly** to the
//! resource being divided (no byte is ever created or lost by rounding).
//! The *policy* half (how weights are chosen) lives in `mtm::arbiter`.

use crate::addr::PAGE_SIZE_2M;

/// Identifies one tenant of a shared machine. Tenant 0 is the legacy
/// single-tenant default.
pub type TenantId = u16;

/// The per-tenant resource grant one arbitration round produces.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Share {
    /// Fast-tier (DRAM) capacity granted, in bytes.
    pub fast_bytes: u64,
    /// Migration (promotion) budget per interval, in bytes — the
    /// tenant's slice of the machine-wide copy bandwidth.
    pub promote_bytes: u64,
    /// Fraction of the machine-wide Eq. 1 profiling budget, in `[0, 1]`.
    /// `1.0` is the whole budget — the single-tenant value, bit-exact
    /// with the pre-tenant pipeline (`x * 1.0 == x` in IEEE 754).
    pub profile_share: f64,
}

impl Share {
    /// The share a tenant running alone holds: everything.
    pub fn solo(fast_bytes: u64, promote_bytes: u64) -> Share {
        Share { fast_bytes, promote_bytes, profile_share: 1.0 }
    }
}

/// Sanitizes one weight: negative, NaN or infinite weights count as zero.
fn clean(w: f64) -> f64 {
    if w.is_finite() && w > 0.0 {
        w
    } else {
        0.0
    }
}

/// Splits `total` indivisible units across `weights` proportionally,
/// returning per-index unit counts that sum to exactly `total`.
///
/// Largest-remainder apportionment with a deterministic tie-break
/// (larger fractional remainder first, lower index on equal remainders),
/// so the result is a pure function of the inputs — byte-identical on
/// every worker count and platform. Degenerate weights (all zero,
/// negative, NaN) fall back to an equal split.
pub fn apportion(total: u64, weights: &[f64]) -> Vec<u64> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let cleaned: Vec<f64> = weights.iter().map(|&w| clean(w)).collect();
    let sum: f64 = cleaned.iter().sum();
    let cleaned: Vec<f64> =
        if sum > 0.0 { cleaned } else { vec![1.0; n] };
    let sum: f64 = cleaned.iter().sum();
    let mut base = Vec::with_capacity(n);
    let mut rem: Vec<(f64, usize)> = Vec::with_capacity(n);
    let mut assigned = 0u64;
    for (i, &w) in cleaned.iter().enumerate() {
        let ideal = total as f64 * (w / sum);
        let b = (ideal.floor() as u64).min(total);
        base.push(b);
        assigned += b;
        rem.push((ideal - b as f64, i));
    }
    // Hand the leftover units to the largest remainders, lowest index
    // first on ties. `total - assigned <= n` by construction.
    rem.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("remainders are finite").then(a.1.cmp(&b.1)));
    let mut leftover = total - assigned;
    for &(_, i) in &rem {
        if leftover == 0 {
            break;
        }
        base[i] += 1;
        leftover -= 1;
    }
    base
}

/// Splits one component's `capacity` bytes into per-tenant quotas in
/// 2 MB units, clamped at per-tenant `floors` (bytes each tenant already
/// holds on the component — a quota may deny future allocations but
/// never strand live frames).
///
/// The returned quotas sum to exactly `capacity & !(2 MB - 1)`. Floors
/// are rounded up to whole blocks; the clamp's deficit is taken from the
/// tenants with the largest surplus above their own floor (lowest index
/// on ties), one block at a time, which keeps the redistribution
/// deterministic. Callers must guarantee `sum(ceil(floors)) <= capacity`
/// — true whenever the floors are the `used()` bytes of allocators whose
/// capacities previously summed to `capacity`.
pub fn split_capacity(capacity: u64, weights: &[f64], floors: &[u64]) -> Vec<u64> {
    assert_eq!(weights.len(), floors.len(), "one floor per weight");
    let blocks = capacity / PAGE_SIZE_2M;
    let floor_blocks: Vec<u64> =
        floors.iter().map(|&f| f.div_ceil(PAGE_SIZE_2M)).collect();
    let floor_sum: u64 = floor_blocks.iter().sum();
    assert!(
        floor_sum <= blocks,
        "floors ({floor_sum} blocks) exceed capacity ({blocks} blocks)"
    );
    let mut q = apportion(blocks, weights);
    // Raise every under-floor quota to its floor, taking the deficit
    // from the largest surplus holders.
    loop {
        let mut need = 0u64;
        for i in 0..q.len() {
            if q[i] < floor_blocks[i] {
                need += floor_blocks[i] - q[i];
                q[i] = floor_blocks[i];
            }
        }
        if need == 0 {
            break;
        }
        while need > 0 {
            let donor = (0..q.len())
                .filter(|&i| q[i] > floor_blocks[i])
                .max_by(|&a, &b| {
                    (q[a] - floor_blocks[a]).cmp(&(q[b] - floor_blocks[b])).then(b.cmp(&a))
                })
                .expect("floor sum <= capacity leaves a donor");
            let surplus = q[donor] - floor_blocks[donor];
            let take = surplus.min(need);
            q[donor] -= take;
            need -= take;
        }
    }
    q.into_iter().map(|b| b * PAGE_SIZE_2M).collect()
}

/// The Jain fairness index of a set of per-tenant allocations or
/// normalized throughputs: `(Σx)² / (n · Σx²)`, in `(0, 1]`, where `1`
/// is a perfectly even split and `1/n` is one tenant holding everything.
/// Returns `1.0` for an empty or all-zero input (nothing to be unfair
/// about).
pub fn jain_index(xs: &[f64]) -> f64 {
    let xs: Vec<f64> = xs.iter().map(|&x| clean(x)).collect();
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|&x| x * x).sum();
    if sum <= 0.0 || sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apportion_is_exact_for_any_weights() {
        for (total, weights) in [
            (100u64, vec![1.0, 1.0, 1.0]),
            (7, vec![0.3, 0.3, 0.4]),
            (5, vec![1e-9, 1.0, 1e9]),
            (13, vec![f64::NAN, -2.0, 1.0, 0.0]),
            (0, vec![1.0, 2.0]),
        ] {
            let q = apportion(total, &weights);
            assert_eq!(q.iter().sum::<u64>(), total, "{weights:?}");
        }
    }

    #[test]
    fn apportion_equal_weights_splits_evenly() {
        assert_eq!(apportion(9, &[1.0, 1.0, 1.0]), vec![3, 3, 3]);
        // Remainder goes to the lowest indexes on equal remainders.
        assert_eq!(apportion(10, &[1.0, 1.0, 1.0]), vec![4, 3, 3]);
    }

    #[test]
    fn apportion_degenerate_weights_fall_back_to_equal() {
        assert_eq!(apportion(6, &[0.0, 0.0, 0.0]), vec![2, 2, 2]);
        assert_eq!(apportion(6, &[f64::NAN, -1.0, f64::INFINITY]), vec![2, 2, 2]);
    }

    #[test]
    fn single_tenant_takes_everything() {
        assert_eq!(apportion(123, &[0.7]), vec![123]);
        let cap = 64 * PAGE_SIZE_2M;
        assert_eq!(split_capacity(cap, &[0.3], &[5 * PAGE_SIZE_2M]), vec![cap]);
    }

    #[test]
    fn split_capacity_sums_exactly_and_respects_floors() {
        let cap = 64 * PAGE_SIZE_2M;
        let floors = [10 * PAGE_SIZE_2M, 0, 40 * PAGE_SIZE_2M];
        let q = split_capacity(cap, &[1.0, 1.0, 1.0], &floors);
        assert_eq!(q.iter().sum::<u64>(), cap);
        for (i, &quota) in q.iter().enumerate() {
            assert!(quota >= floors[i], "tenant {i}: quota {quota} < floor {}", floors[i]);
            assert_eq!(quota % PAGE_SIZE_2M, 0, "block-aligned");
        }
        // Tenant 2's floor (40 of 64 blocks) forces the others below
        // their weight-fair 1/3 share.
        assert_eq!(q[2], 40 * PAGE_SIZE_2M);
    }

    #[test]
    fn split_capacity_rounds_unaligned_floors_up() {
        let cap = 8 * PAGE_SIZE_2M;
        let q = split_capacity(cap, &[1.0, 1.0], &[PAGE_SIZE_2M + 4096, 0]);
        assert_eq!(q.iter().sum::<u64>(), cap);
        assert!(q[0] >= 2 * PAGE_SIZE_2M, "floor rounded up to whole blocks");
    }

    #[test]
    #[should_panic(expected = "floors")]
    fn split_capacity_rejects_overcommitted_floors() {
        let cap = 4 * PAGE_SIZE_2M;
        split_capacity(cap, &[1.0, 1.0], &[3 * PAGE_SIZE_2M, 2 * PAGE_SIZE_2M]);
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_index(&[1.0, 1.0, 1.0, 1.0]), 1.0);
        let skew = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((skew - 0.25).abs() < 1e-12, "one-holds-all is 1/n, got {skew}");
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        let mid = jain_index(&[2.0, 1.0]);
        assert!(mid > 0.5 && mid < 1.0, "{mid}");
    }

    #[test]
    fn share_solo_holds_the_whole_profile_budget() {
        let s = Share::solo(1 << 30, 16 << 20);
        assert_eq!(s.profile_share, 1.0);
        assert_eq!(s.fast_bytes, 1 << 30);
    }
}
