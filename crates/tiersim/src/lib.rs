//! `tiersim` — a simulated multi-tiered large-memory machine.
//!
//! This crate is the hardware/kernel substrate for the MTM reproduction
//! (EuroSys '24): a software model of a two-socket, four-component Optane
//! machine with page tables, PTE accessed/dirty bits, PEBS-style sampling,
//! NUMA hint faults, hardware-managed DRAM caching (Memory Mode), migration
//! primitives, and a virtual-time cost model. Memory-management policies
//! (MTM itself and every baseline) are built on the [`sim::MemoryManager`]
//! trait and observe exactly the signals the paper's systems observe on
//! real hardware.
//!
//! # Examples
//!
//! ```
//! use tiersim::addr::{VaRange, VirtAddr, PAGE_SIZE_2M};
//! use tiersim::machine::{AccessKind, Machine, MachineConfig};
//! use tiersim::tier::tiny_two_tier;
//!
//! let topo = tiny_two_tier(4 * PAGE_SIZE_2M, 16 * PAGE_SIZE_2M);
//! let mut m = Machine::new(MachineConfig::new(topo, 1));
//! m.mmap("heap", VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M), false);
//! m.alloc_and_map(0, VirtAddr(0x1000), &[0, 1]).unwrap();
//! m.access(0, VirtAddr(0x1000), AccessKind::Write);
//! assert_eq!(m.counters().component(0).stores, 1);
//! ```

pub mod addr;
pub mod cache;
pub mod clock;
pub mod counters;
pub mod engine;
pub mod frame;
pub mod hintfault;
pub mod machine;
pub mod migrate;
pub mod page_table;
pub mod pebs;
pub mod pte;
pub mod rng;
pub mod sim;
pub mod tenant;
pub mod tier;

pub use addr::{VaRange, VirtAddr, PAGE_SIZE_2M, PAGE_SIZE_4K};
pub use machine::{AccessKind, AccessResult, Machine, MachineConfig};
pub use sim::{run_scenario, MemEnv, MemoryManager, RunReport, ScenarioProgress, Workload};
pub use tenant::{Share, TenantId};
pub use tier::{optane_four_tier, two_tier, ComponentId, NodeId, Topology};
