//! Hardware-managed DRAM cache (Optane Memory Mode).
//!
//! In Memory Mode the DRAM in front of each socket's PM becomes a
//! direct-mapped, write-back hardware cache and only the PM capacity is
//! visible to software. The model operates at 4 KB block granularity: a
//! miss fetches the whole block from PM, and evicting a dirty block writes
//! it back — the *write amplification* the paper blames for HMC's losses
//! (Sec. 9.1: "HMC incurs write amplification when cache misses occur").

use crate::addr::{PhysAddr, CACHE_LINE};

/// Result of a cache probe, with the PM traffic it generated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheAccess {
    /// True if the block was present.
    pub hit: bool,
    /// Bytes fetched from PM (block fill on miss).
    pub fill_bytes: u64,
    /// Bytes written back to PM (dirty eviction).
    pub writeback_bytes: u64,
}

/// One line, packed into a word to halve the probe footprint: the tag in
/// the high bits, VALID and DIRTY in the two low bits. Block numbers are
/// PM offsets divided by 64, so they always fit 62 bits.
const LINE_VALID: u64 = 1;
const LINE_DIRTY: u64 = 2;
const LINE_TAG_SHIFT: u32 = 2;

/// A direct-mapped write-back cache of one PM component.
#[derive(Debug)]
pub struct HwCache {
    sets: Vec<u64>,
    block: u64,
    /// Precomputed `u64::MAX / sets.len()`, the reciprocal the probe path
    /// uses to strength-reduce `block_no % sets.len()` (one `u128`
    /// multiply instead of a hardware divide).
    set_magic: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl HwCache {
    /// Creates a cache of `capacity` bytes with cache-line (64 B) blocks,
    /// the granularity of Optane Memory Mode's DRAM cache.
    pub fn new(capacity: u64) -> HwCache {
        let n = (capacity / CACHE_LINE).max(1) as usize;
        HwCache {
            sets: vec![0; n],
            block: CACHE_LINE,
            set_magic: u64::MAX / n as u64 + 1,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// `block_no % sets.len()` without a hardware divide: multiply by the
    /// precomputed ceiling reciprocal, then take the high half of the
    /// product with the set count (Lemire's fastmod). Exact whenever
    /// `reciprocal_error * block_no < 2^64`; both factors are bounded by
    /// `sets.len()` here (offsets are capacity-bounded), so requiring the
    /// set count to fit `u32` makes the product safe. Debug builds assert
    /// agreement with the plain remainder on every probe.
    #[inline]
    fn set_of(&self, block_no: u64) -> usize {
        let n = self.sets.len() as u64;
        let set = if n <= u32::MAX as u64 {
            let frac = self.set_magic.wrapping_mul(block_no);
            ((frac as u128 * n as u128) >> 64) as u64
        } else {
            block_no % n
        };
        debug_assert_eq!(set, block_no % n);
        set as usize
    }

    /// Probes the cache for an access to PM address `pa`.
    pub fn access(&mut self, pa: PhysAddr, is_write: bool) -> CacheAccess {
        let block_no = pa.offset() / self.block;
        let set = self.set_of(block_no);
        let line = &mut self.sets[set];
        let tagged = (block_no << LINE_TAG_SHIFT) | LINE_VALID;
        if *line | LINE_DIRTY == tagged | LINE_DIRTY {
            self.hits += 1;
            if is_write {
                *line |= LINE_DIRTY;
            }
            return CacheAccess { hit: true, fill_bytes: 0, writeback_bytes: 0 };
        }
        // Miss: possibly write back the victim, then fill.
        self.misses += 1;
        let writeback_bytes = if *line & (LINE_VALID | LINE_DIRTY) == LINE_VALID | LINE_DIRTY {
            self.writebacks += 1;
            self.block
        } else {
            0
        };
        *line = tagged | if is_write { LINE_DIRTY } else { 0 };
        CacheAccess { hit: false, fill_bytes: self.block, writeback_bytes }
    }

    /// Cumulative hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Cumulative dirty evictions.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Hit ratio over the cache's lifetime, in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = HwCache::new(16 * CACHE_LINE);
        let pa = PhysAddr::new(2, 3 * CACHE_LINE);
        let first = c.access(pa, false);
        assert!(!first.hit);
        assert_eq!(first.fill_bytes, CACHE_LINE);
        let second = c.access(pa, false);
        assert!(second.hit);
        assert_eq!(c.hit_ratio(), 0.5);
    }

    #[test]
    fn conflict_eviction_writes_back_dirty() {
        let mut c = HwCache::new(2 * CACHE_LINE);
        let a = PhysAddr::new(2, 0);
        // Same set as `a` in a 2-set cache (block 2 maps to set 0).
        let b = PhysAddr::new(2, 2 * CACHE_LINE);
        c.access(a, true);
        let evict = c.access(b, false);
        assert!(!evict.hit);
        assert_eq!(evict.writeback_bytes, CACHE_LINE, "dirty victim written back");
        assert_eq!(c.writebacks(), 1);
        // Clean eviction has no writeback.
        let back = c.access(a, false);
        assert_eq!(back.writeback_bytes, 0);
    }

    #[test]
    fn writes_mark_dirty_on_hit() {
        let mut c = HwCache::new(2 * CACHE_LINE);
        let a = PhysAddr::new(2, 0);
        let b = PhysAddr::new(2, 2 * CACHE_LINE);
        c.access(a, false);
        c.access(a, true); // Hit that dirties the line.
        let evict = c.access(b, false);
        assert_eq!(evict.writeback_bytes, CACHE_LINE);
    }
}
