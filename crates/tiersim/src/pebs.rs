//! Simulated processor event-based sampling (PEBS).
//!
//! Models Intel PEBS as the paper uses it (Sec. 8): the hardware takes one
//! sample out of every `period` (default 200) memory accesses that hit a
//! monitored component class, and deposits `(virtual address, thread,
//! component, interval-relative time)` records into a bounded buffer. MTM's
//! counter-assisted scan uses only the samples from the first 10 % of an
//! interval (`MEM_LOAD_RETIRED.LOCAL_PMM` / `REMOTE_PMM`, i.e. PM
//! components); HeMem consumes the full stream including DRAM events.

use crate::addr::VirtAddr;
use crate::tier::ComponentId;

/// One PEBS record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PebsSample {
    /// Virtual address of the sampled access.
    pub va: VirtAddr,
    /// Thread that issued the access.
    pub tid: u32,
    /// Memory component the access was served from.
    pub component: ComponentId,
    /// True if the sampled access was a store.
    pub is_write: bool,
    /// The issuing thread's latency-clock value within the open interval,
    /// in nanoseconds; lets consumers window samples (e.g. "first 10 %").
    pub t_ns: f64,
}

/// Which accesses the counter hardware is programmed to sample.
#[derive(Clone, Debug)]
pub struct PebsConfig {
    /// Take one sample out of every `period` qualifying accesses.
    pub period: u64,
    /// Components whose accesses qualify (e.g. the PM components).
    pub monitored: Vec<ComponentId>,
    /// Maximum buffered samples before overflow drops records.
    pub buffer_cap: usize,
}

impl PebsConfig {
    /// The paper's production configuration: period 200 over the given
    /// components, 64 Ki-record buffer.
    pub fn with_components(monitored: Vec<ComponentId>) -> PebsConfig {
        PebsConfig { period: 200, monitored, buffer_cap: 64 * 1024 }
    }
}

/// The sampling unit.
#[derive(Debug)]
pub struct Pebs {
    period: u64,
    monitored_mask: u64,
    buffer_cap: usize,
    countdown: u64,
    buffer: Vec<PebsSample>,
    dropped: u64,
    taken: u64,
    /// Samples taken per component id (telemetry; component ids fit the
    /// monitored mask, i.e. < 64).
    by_component: [u64; 64],
}

impl Pebs {
    /// Creates a sampler from a configuration.
    pub fn new(cfg: &PebsConfig) -> Pebs {
        assert!(cfg.period >= 1);
        let mut mask = 0u64;
        for &c in &cfg.monitored {
            assert!((c as usize) < 64, "component id fits the mask");
            mask |= 1 << c;
        }
        Pebs {
            period: cfg.period,
            monitored_mask: mask,
            buffer_cap: cfg.buffer_cap,
            countdown: cfg.period,
            buffer: Vec::new(),
            dropped: 0,
            taken: 0,
            by_component: [0; 64],
        }
    }

    /// Offers one access to the sampler; records it if the countdown fires.
    #[inline]
    pub fn observe(&mut self, va: VirtAddr, tid: u32, component: ComponentId, is_write: bool, t_ns: f64) {
        if self.monitored_mask & (1 << component) == 0 {
            return;
        }
        self.countdown -= 1;
        if self.countdown > 0 {
            return;
        }
        self.countdown = self.period;
        self.taken += 1;
        self.by_component[component as usize] += 1;
        if self.buffer.len() >= self.buffer_cap {
            self.dropped += 1;
            return;
        }
        self.buffer.push(PebsSample { va, tid, component, is_write, t_ns });
    }

    /// Drains the buffered samples.
    pub fn drain(&mut self) -> Vec<PebsSample> {
        std::mem::take(&mut self.buffer)
    }

    /// Number of buffered samples awaiting a drain.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Samples dropped to buffer overflow since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total samples taken (buffered or dropped).
    pub fn taken(&self) -> u64 {
        self.taken
    }

    /// Serializes the sampler's dynamic state (programming — period, mask,
    /// cap — comes from config at rebuild and is not saved).
    pub fn save(&self, w: &mut obs::wire::Writer) {
        w.u64(self.countdown);
        w.varint(self.buffer.len() as u64);
        for s in &self.buffer {
            w.u64(s.va.0);
            w.u32(s.tid);
            w.u16(s.component);
            w.bool(s.is_write);
            w.f64(s.t_ns);
        }
        w.varint(self.dropped);
        w.varint(self.taken);
        for &n in &self.by_component {
            w.varint(n);
        }
    }

    /// Restores state saved with [`Pebs::save`] into a freshly configured
    /// sampler.
    pub fn load(&mut self, r: &mut obs::wire::Reader) -> Result<(), String> {
        self.countdown = r.u64()?;
        let n = r.varint()? as usize;
        self.buffer = Vec::with_capacity(n.min(self.buffer_cap));
        for _ in 0..n {
            self.buffer.push(PebsSample {
                va: VirtAddr(r.u64()?),
                tid: r.u32()?,
                component: r.u16()?,
                is_write: r.bool()?,
                t_ns: r.f64()?,
            });
        }
        self.dropped = r.varint()?;
        self.taken = r.varint()?;
        for slot in self.by_component.iter_mut() {
            *slot = r.varint()?;
        }
        Ok(())
    }

    /// Samples taken per component, as `(component, count)` pairs for
    /// every component that produced at least one sample, ascending.
    pub fn component_counts(&self) -> Vec<(ComponentId, u64)> {
        self.by_component
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(c, &n)| (c as ComponentId, n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler(period: u64) -> Pebs {
        Pebs::new(&PebsConfig { period, monitored: vec![1], buffer_cap: 8 })
    }

    #[test]
    fn samples_one_in_period() {
        let mut p = sampler(4);
        for i in 0..16u64 {
            p.observe(VirtAddr(i * 64), 0, 1, false, i as f64);
        }
        let s = p.drain();
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].va, VirtAddr(3 * 64));
    }

    #[test]
    fn unmonitored_components_ignored() {
        let mut p = sampler(1);
        p.observe(VirtAddr(0), 0, 0, false, 0.0);
        assert_eq!(p.pending(), 0);
        p.observe(VirtAddr(0), 0, 1, true, 0.0);
        assert_eq!(p.pending(), 1);
        assert!(p.drain()[0].is_write);
    }

    #[test]
    fn buffer_overflow_drops() {
        let mut p = sampler(1);
        for i in 0..20u64 {
            p.observe(VirtAddr(i), 0, 1, false, 0.0);
        }
        assert_eq!(p.pending(), 8);
        assert_eq!(p.dropped(), 12);
        assert_eq!(p.taken(), 20);
    }

    #[test]
    fn drain_empties_buffer() {
        let mut p = sampler(1);
        p.observe(VirtAddr(1), 2, 1, false, 5.0);
        let s = p.drain();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].tid, 2);
        assert_eq!(p.pending(), 0);
    }
}
