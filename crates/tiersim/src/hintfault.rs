//! NUMA hint-fault machinery.
//!
//! Linux AutoNUMA periodically *poisons* PTEs (clears their present
//! protection) so the next access traps into the kernel, revealing which
//! CPU touched the page. Tiered-AutoNUMA's "hot page selection" patch uses
//! the *hint-fault latency* — the time between poisoning a PTE and the
//! fault — as a hotness signal (a short latency means the page was touched
//! soon after the scan). MTM itself turns the mechanism on once every 12
//! PTE scans to learn which node accesses a page (Sec. 6.2), amortizing the
//! 12x cost of a fault relative to a plain scan.

use std::collections::BTreeMap;

use crate::addr::VirtAddr;
use crate::tier::NodeId;

/// One captured hint fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HintFault {
    /// Base address of the faulting page.
    pub page: VirtAddr,
    /// Thread that faulted.
    pub tid: u32,
    /// CPU node the faulting thread runs on.
    pub node: NodeId,
    /// Nanoseconds between poisoning and the fault (the patch's hotness
    /// signal; smaller is hotter).
    pub latency_ns: f64,
}

/// Tracks poisoned pages and collects faults.
#[derive(Debug, Default)]
pub struct HintFaultUnit {
    /// Poison timestamps keyed by page base address (virtual ns).
    poisoned_at: BTreeMap<u64, f64>,
    faults: Vec<HintFault>,
    total_faults: u64,
    /// Largest number of simultaneously poisoned PTEs ever observed
    /// (telemetry: bounds the fault-storm a scan window can cause).
    poisoned_peak: usize,
}

impl HintFaultUnit {
    /// Creates an idle unit.
    pub fn new() -> HintFaultUnit {
        HintFaultUnit::default()
    }

    /// Records that `page` was poisoned at virtual time `now_ns`.
    pub fn poison(&mut self, page: VirtAddr, now_ns: f64) {
        self.poisoned_at.insert(page.0, now_ns);
        self.poisoned_peak = self.poisoned_peak.max(self.poisoned_at.len());
    }

    /// Number of pages currently poisoned.
    pub fn poisoned_count(&self) -> usize {
        self.poisoned_at.len()
    }

    /// Handles a fault on `page`, recording the access origin.
    pub fn fault(&mut self, page: VirtAddr, tid: u32, node: NodeId, now_ns: f64) {
        let at = self.poisoned_at.remove(&page.0).unwrap_or(now_ns);
        self.total_faults += 1;
        self.faults.push(HintFault { page, tid, node, latency_ns: (now_ns - at).max(0.0) });
    }

    /// Drains collected faults.
    pub fn drain(&mut self) -> Vec<HintFault> {
        std::mem::take(&mut self.faults)
    }

    /// Faults collected and not yet drained.
    pub fn pending(&self) -> usize {
        self.faults.len()
    }

    /// Total faults ever captured.
    pub fn total_faults(&self) -> u64 {
        self.total_faults
    }

    /// Largest number of simultaneously poisoned PTEs ever observed.
    pub fn poisoned_peak(&self) -> usize {
        self.poisoned_peak
    }

    /// Zeroes the lifetime statistics (fault total, poison peak) without
    /// disturbing currently poisoned PTEs — used when measurement resets
    /// after workload setup.
    pub fn reset_stats(&mut self) {
        self.total_faults = 0;
        self.poisoned_peak = self.poisoned_at.len();
    }

    /// Forgets a poisoned page without a fault (e.g. the page was unmapped).
    pub fn forget(&mut self, page: VirtAddr) {
        self.poisoned_at.remove(&page.0);
    }

    /// Serializes the unit's full state (poison map, undrained faults and
    /// lifetime statistics).
    pub fn save(&self, w: &mut obs::wire::Writer) {
        w.varint(self.poisoned_at.len() as u64);
        for (&page, &at) in &self.poisoned_at {
            w.u64(page);
            w.f64(at);
        }
        w.varint(self.faults.len() as u64);
        for f in &self.faults {
            w.u64(f.page.0);
            w.u32(f.tid);
            w.u16(f.node);
            w.f64(f.latency_ns);
        }
        w.varint(self.total_faults);
        w.varint(self.poisoned_peak as u64);
    }

    /// Restores a unit saved with [`HintFaultUnit::save`].
    pub fn load(r: &mut obs::wire::Reader) -> Result<HintFaultUnit, String> {
        let mut u = HintFaultUnit::new();
        for _ in 0..r.varint()? {
            let page = r.u64()?;
            let at = r.f64()?;
            u.poisoned_at.insert(page, at);
        }
        for _ in 0..r.varint()? {
            u.faults.push(HintFault {
                page: VirtAddr(r.u64()?),
                tid: r.u32()?,
                node: r.u16()?,
                latency_ns: r.f64()?,
            });
        }
        u.total_faults = r.varint()?;
        u.poisoned_peak = r.varint()? as usize;
        Ok(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_reports_latency() {
        let mut u = HintFaultUnit::new();
        u.poison(VirtAddr(0x1000), 100.0);
        assert_eq!(u.poisoned_count(), 1);
        u.fault(VirtAddr(0x1000), 3, 1, 250.0);
        let f = u.drain();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].latency_ns, 150.0);
        assert_eq!(f[0].node, 1);
        assert_eq!(u.poisoned_count(), 0);
    }

    #[test]
    fn unpoisoned_fault_has_zero_latency() {
        let mut u = HintFaultUnit::new();
        u.fault(VirtAddr(0x2000), 0, 0, 500.0);
        assert_eq!(u.drain()[0].latency_ns, 0.0);
    }

    #[test]
    fn forget_clears_poison() {
        let mut u = HintFaultUnit::new();
        u.poison(VirtAddr(0x1000), 0.0);
        u.forget(VirtAddr(0x1000));
        assert_eq!(u.poisoned_count(), 0);
    }
}
