//! Virtual-time accounting.
//!
//! The simulator advances a virtual clock instead of measuring wall time.
//! Application accesses are charged with a roofline-style model evaluated
//! per profiling interval: every thread accumulates latency cost for the
//! accesses it issued, every (node, component) link accumulates the bytes
//! it transferred, and the interval's wall time is
//!
//! ```text
//! max( max_thread(latency_sum), max_link(bytes / bandwidth) )
//! ```
//!
//! which captures both latency-bound and bandwidth-bound execution (e.g. 24
//! threads hammering the 1 GB/s remote-PM link become bandwidth-bound, the
//! effect behind the paper's Fig. 12). Profiling work and the critical-path
//! part of migration are charged to separate buckets, which the harness
//! reports as the paper's Fig. 5 breakdown.

use crate::tier::Topology;

/// Time spent in each activity class, in virtual nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimeBreakdown {
    /// Application execution (access latency + bandwidth stalls).
    pub app_ns: f64,
    /// Memory profiling (PTE scans, PEBS drain, hint faults).
    pub profiling_ns: f64,
    /// Page migration exposed on the critical path.
    pub migration_ns: f64,
}

impl TimeBreakdown {
    /// Total virtual time across all buckets.
    pub fn total_ns(&self) -> f64 {
        self.app_ns + self.profiling_ns + self.migration_ns
    }
}

/// The machine clock: per-interval accumulators plus committed totals.
#[derive(Debug)]
pub struct Clock {
    threads: usize,
    nodes: usize,
    components: usize,
    /// Latency cost accumulated by each thread in the open interval.
    thread_ns: Vec<f64>,
    /// Bytes moved per (node, component) link in the open interval.
    link_bytes: Vec<f64>,
    /// Committed virtual time.
    breakdown: TimeBreakdown,
    intervals_committed: u64,
}

impl Clock {
    /// Creates a clock for `threads` application threads on a topology.
    pub fn new(threads: usize, topo: &Topology) -> Clock {
        let nodes = topo.nodes as usize;
        let components = topo.num_components();
        Clock {
            threads,
            nodes,
            components,
            thread_ns: vec![0.0; threads],
            link_bytes: vec![0.0; nodes * components],
            breakdown: TimeBreakdown::default(),
            intervals_committed: 0,
        }
    }

    /// Charges one access: `lat_ns` of latency to `tid`, `bytes` across the
    /// `(node, component)` link.
    #[inline]
    pub fn charge_access(&mut self, tid: usize, lat_ns: f64, node: u16, component: u16, bytes: f64) {
        self.thread_ns[tid] += lat_ns;
        self.link_bytes[node as usize * self.components + component as usize] += bytes;
    }

    /// Wall time of the open interval so far, under the roofline model.
    pub fn open_interval_ns(&self, topo: &Topology) -> f64 {
        let lat = self.thread_ns.iter().copied().fold(0.0_f64, f64::max);
        let mut bw = 0.0_f64;
        for node in 0..self.nodes {
            for comp in 0..self.components {
                let bytes = self.link_bytes[node * self.components + comp];
                if bytes > 0.0 {
                    let spec = topo.link(node as u16, comp as u16);
                    bw = bw.max(bytes / spec.bytes_per_ns());
                }
            }
        }
        lat.max(bw)
    }

    /// Closes the open interval, adding its wall time to the application
    /// bucket, and returns that wall time.
    pub fn commit_interval(&mut self, topo: &Topology) -> f64 {
        let elapsed = self.open_interval_ns(topo);
        self.breakdown.app_ns += elapsed;
        self.thread_ns.iter_mut().for_each(|t| *t = 0.0);
        self.link_bytes.iter_mut().for_each(|b| *b = 0.0);
        self.intervals_committed += 1;
        elapsed
    }

    /// Charges profiling work (serialized onto the timeline).
    #[inline]
    pub fn charge_profiling(&mut self, ns: f64) {
        self.breakdown.profiling_ns += ns;
    }

    /// Charges migration work exposed on the critical path.
    #[inline]
    pub fn charge_migration(&mut self, ns: f64) {
        self.breakdown.migration_ns += ns;
    }

    /// Committed virtual time plus the open interval estimate.
    pub fn now_ns(&self, topo: &Topology) -> f64 {
        self.breakdown.total_ns() + self.open_interval_ns(topo)
    }

    /// Committed time breakdown (open interval excluded).
    pub fn breakdown(&self) -> TimeBreakdown {
        self.breakdown
    }

    /// Number of intervals committed so far.
    pub fn intervals(&self) -> u64 {
        self.intervals_committed
    }

    /// Number of application threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Latency clock of one thread within the open interval.
    #[inline]
    pub fn thread_ns(&self, tid: usize) -> f64 {
        self.thread_ns[tid]
    }

    /// Serializes the clock's dynamic state (accumulators as exact f64
    /// bit patterns).
    pub fn save(&self, w: &mut obs::wire::Writer) {
        w.varint(self.thread_ns.len() as u64);
        for &t in &self.thread_ns {
            w.f64(t);
        }
        w.varint(self.link_bytes.len() as u64);
        for &b in &self.link_bytes {
            w.f64(b);
        }
        w.f64(self.breakdown.app_ns);
        w.f64(self.breakdown.profiling_ns);
        w.f64(self.breakdown.migration_ns);
        w.u64(self.intervals_committed);
    }

    /// Restores state saved with [`Clock::save`] into this clock. The
    /// accumulator shapes (thread and link counts) must match.
    pub fn load(&mut self, r: &mut obs::wire::Reader) -> Result<(), String> {
        let threads = r.varint()? as usize;
        if threads != self.thread_ns.len() {
            return Err(format!(
                "clock: thread count mismatch (saved {threads}, have {})",
                self.thread_ns.len()
            ));
        }
        for t in self.thread_ns.iter_mut() {
            *t = r.f64()?;
        }
        let links = r.varint()? as usize;
        if links != self.link_bytes.len() {
            return Err(format!(
                "clock: link count mismatch (saved {links}, have {})",
                self.link_bytes.len()
            ));
        }
        for b in self.link_bytes.iter_mut() {
            *b = r.f64()?;
        }
        self.breakdown.app_ns = r.f64()?;
        self.breakdown.profiling_ns = r.f64()?;
        self.breakdown.migration_ns = r.f64()?;
        self.intervals_committed = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::tiny_two_tier;

    #[test]
    fn latency_bound_interval() {
        let topo = tiny_two_tier(1 << 21, 1 << 21);
        let mut clock = Clock::new(2, &topo);
        clock.charge_access(0, 100.0, 0, 0, 64.0);
        clock.charge_access(0, 100.0, 0, 0, 64.0);
        clock.charge_access(1, 50.0, 0, 0, 64.0);
        // Thread 0 accumulated 200 ns; bandwidth cost is 192/50 ≈ 3.8 ns.
        let t = clock.open_interval_ns(&topo);
        assert!((t - 200.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_bound_interval() {
        let topo = tiny_two_tier(1 << 21, 1 << 21);
        let mut clock = Clock::new(4, &topo);
        // Slow tier: 5 GB/s => 5 bytes/ns. 1 MB across it = 209715.2 ns.
        for tid in 0..4 {
            clock.charge_access(tid, 10.0, 0, 1, 262144.0);
        }
        let t = clock.open_interval_ns(&topo);
        assert!((t - 1048576.0 / 5.0).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn commit_resets_accumulators() {
        let topo = tiny_two_tier(1 << 21, 1 << 21);
        let mut clock = Clock::new(1, &topo);
        clock.charge_access(0, 500.0, 0, 0, 64.0);
        let e = clock.commit_interval(&topo);
        assert_eq!(e, 500.0);
        assert_eq!(clock.open_interval_ns(&topo), 0.0);
        assert_eq!(clock.breakdown().app_ns, 500.0);
        assert_eq!(clock.intervals(), 1);
    }

    #[test]
    fn buckets_accumulate_independently() {
        let topo = tiny_two_tier(1 << 21, 1 << 21);
        let mut clock = Clock::new(1, &topo);
        clock.charge_profiling(10.0);
        clock.charge_migration(20.0);
        clock.charge_access(0, 30.0, 0, 0, 64.0);
        clock.commit_interval(&topo);
        let b = clock.breakdown();
        assert_eq!(b.profiling_ns, 10.0);
        assert_eq!(b.migration_ns, 20.0);
        assert_eq!(b.app_ns, 30.0);
        assert_eq!(b.total_ns(), 60.0);
    }
}
