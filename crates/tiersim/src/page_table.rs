//! Software radix page table with VMAs, 4 KB PTEs and 2 MB huge mappings.
//!
//! The table stores one entry per valid last-level page-directory slot
//! (2 MB of virtual space): either a single huge-page PTE or a leaf table of
//! 512 base PTEs. Profilers form their initial memory regions from the set
//! of valid last-level PDEs, exactly as MTM does (Sec. 5.1).

// lint:allow(unordered-map): hot-path PD index with a fixed deterministic hasher
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::addr::{VaRange, VirtAddr, PAGE_SIZE_2M, PAGE_SIZE_4K, PTES_PER_PD};
use crate::frame::FrameSize;
use crate::pte::Pte;

/// Fast, deterministic hasher for `u64` keys (SplitMix64 finalizer).
///
/// The page-table lookup sits on the per-access hot path; the default SipHash
/// is measurably slower and we need no HashDoS resistance in a simulator.
#[derive(Default)]
pub struct U64Hasher {
    state: u64,
}

impl Hasher for U64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 keys; not on the hot path.
        for &b in bytes {
            self.state = self.state.wrapping_mul(0x100000001b3).wrapping_add(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, mut x: u64) {
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        self.state = x ^ (x >> 31);
    }
}

/// `BuildHasher` for [`U64Hasher`].
pub type BuildU64Hasher = BuildHasherDefault<U64Hasher>;

/// One valid last-level page-directory entry.
#[derive(Debug)]
pub enum PdEntry {
    /// The 2 MB span is mapped by a single huge-page PTE.
    Huge(Pte),
    /// The span is mapped by a leaf table of 512 base PTEs.
    Table(Box<[Pte; 512]>),
}

/// A virtual memory area registered by a workload.
#[derive(Clone, Debug)]
pub struct Vma {
    /// Name used in reports and heatmaps (e.g. `"hotset"`).
    pub name: String,
    /// Address range covered by the VMA.
    pub range: VaRange,
    /// Whether transparent huge pages are enabled (`madvise(MADV_HUGEPAGE)`).
    pub thp: bool,
}

/// The per-process page table plus the VMA list.
#[derive(Default)]
pub struct PageTable {
    // lint:allow(unordered-map): seeded BuildU64Hasher; every escaping walk sorts its keys
    pds: HashMap<u64, PdEntry, BuildU64Hasher>,
    vmas: Vec<Vma>,
    mapped_bytes: u64,
}

/// Result of translating a virtual address.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Translation {
    /// The covering PTE (copied out).
    pub pte: Pte,
    /// Granularity of the mapping.
    pub size: FrameSize,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> PageTable {
        PageTable::default()
    }

    /// Registers a VMA. Ranges must be 4 KB aligned and non-overlapping.
    pub fn mmap(&mut self, name: &str, range: VaRange, thp: bool) {
        assert!(range.start.is_4k_aligned() && range.end.is_4k_aligned(), "VMA must be page-aligned");
        assert!(
            !self.vmas.iter().any(|v| v.range.overlaps(range)),
            "VMA {range:?} overlaps an existing mapping"
        );
        self.vmas.push(Vma { name: name.to_string(), range, thp });
        self.vmas.sort_by_key(|v| v.range.start);
    }

    /// The registered VMAs in address order.
    pub fn vmas(&self) -> &[Vma] {
        &self.vmas
    }

    /// Finds the VMA containing `va`.
    pub fn vma_of(&self, va: VirtAddr) -> Option<&Vma> {
        let idx = self.vmas.partition_point(|v| v.range.end.0 <= va.0);
        self.vmas.get(idx).filter(|v| v.range.contains(va))
    }

    /// Total bytes currently mapped.
    #[inline]
    pub fn mapped_bytes(&self) -> u64 {
        self.mapped_bytes
    }

    /// Number of valid last-level PDEs.
    pub fn valid_pde_count(&self) -> usize {
        self.pds.len()
    }

    /// Looks up the mapping covering `va` without touching flag bits.
    #[inline]
    pub fn translate(&self, va: VirtAddr) -> Option<Translation> {
        match self.pds.get(&va.pde_index())? {
            PdEntry::Huge(pte) if pte.present() => {
                Some(Translation { pte: *pte, size: FrameSize::Huge2M })
            }
            PdEntry::Table(t) => {
                let pte = t[va.pte_index()];
                pte.present().then_some(Translation { pte, size: FrameSize::Base4K })
            }
            _ => None,
        }
    }

    /// Mutable access to the PTE covering `va`, with its mapping size.
    #[inline]
    pub fn pte_mut(&mut self, va: VirtAddr) -> Option<(&mut Pte, FrameSize)> {
        match self.pds.get_mut(&va.pde_index())? {
            PdEntry::Huge(pte) if pte.present() => Some((pte, FrameSize::Huge2M)),
            PdEntry::Table(t) => {
                let pte = &mut t[va.pte_index()];
                pte.present().then_some((pte, FrameSize::Base4K))
            }
            _ => None,
        }
    }

    /// Installs a 4 KB mapping at `va` (must not already be mapped).
    pub fn map_4k(&mut self, va: VirtAddr, pte: Pte) {
        debug_assert!(pte.present() && !pte.huge());
        let slot = self.pds.entry(va.pde_index()).or_insert_with(|| PdEntry::Table(Box::new([Pte::EMPTY; 512])));
        match slot {
            PdEntry::Table(t) => {
                assert!(!t[va.pte_index()].present(), "double map at {va:?}");
                t[va.pte_index()] = pte;
            }
            PdEntry::Huge(_) => panic!("4K map inside huge mapping at {va:?}"),
        }
        self.mapped_bytes += PAGE_SIZE_4K;
    }

    /// Installs a 2 MB huge mapping at `va` (must be 2 MB aligned and empty).
    pub fn map_2m(&mut self, va: VirtAddr, pte: Pte) {
        debug_assert!(pte.present() && pte.huge());
        assert!(va.is_2m_aligned(), "huge mapping must be 2 MB aligned");
        let prev = self.pds.insert(va.pde_index(), PdEntry::Huge(pte));
        assert!(prev.is_none(), "double map at {va:?}");
        self.mapped_bytes += PAGE_SIZE_2M;
    }

    /// Removes the mapping covering `va`, returning the old PTE and size.
    pub fn unmap(&mut self, va: VirtAddr) -> Option<(Pte, FrameSize)> {
        let pde = va.pde_index();
        match self.pds.get_mut(&pde)? {
            PdEntry::Huge(pte) => {
                let old = *pte;
                self.pds.remove(&pde);
                self.mapped_bytes -= PAGE_SIZE_2M;
                Some((old, FrameSize::Huge2M))
            }
            PdEntry::Table(t) => {
                let slot = &mut t[va.pte_index()];
                if !slot.present() {
                    return None;
                }
                let old = *slot;
                *slot = Pte::EMPTY;
                self.mapped_bytes -= PAGE_SIZE_4K;
                if t.iter().all(|p| !p.present()) {
                    self.pds.remove(&pde);
                }
                Some((old, FrameSize::Base4K))
            }
        }
    }

    /// Visits every mapped page whose base address lies in `range`.
    ///
    /// The callback receives the page base address, a mutable PTE reference
    /// and the mapping size. Huge pages are visited once (at their 2 MB
    /// base) if that base is inside the range.
    pub fn for_each_mapped(
        &mut self,
        range: VaRange,
        mut f: impl FnMut(VirtAddr, &mut Pte, FrameSize),
    ) {
        let first_pde = range.start.pde_index();
        let last_pde = if range.is_empty() { return } else { (range.end.0 - 1) >> 21 };
        for pde in first_pde..=last_pde {
            let Some(entry) = self.pds.get_mut(&pde) else { continue };
            let base = VirtAddr(pde << 21);
            match entry {
                PdEntry::Huge(pte) => {
                    if pte.present() && range.contains(base) {
                        f(base, pte, FrameSize::Huge2M);
                    }
                }
                PdEntry::Table(t) => {
                    for (i, pte) in t.iter_mut().enumerate() {
                        if pte.present() {
                            let va = base + (i as u64) * PAGE_SIZE_4K;
                            if range.contains(va) {
                                f(va, pte, FrameSize::Base4K);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Read-only variant of [`PageTable::for_each_mapped`]: visits every
    /// mapped page in `range` without touching PTE flag bits. Used by the
    /// `MTM_CHECK` sanitizer, which must observe without perturbing.
    pub fn for_each_mapped_in(
        &self,
        range: VaRange,
        mut f: impl FnMut(VirtAddr, Pte, FrameSize),
    ) {
        if range.is_empty() {
            return;
        }
        let first_pde = range.start.pde_index();
        let last_pde = (range.end.0 - 1) >> 21;
        for pde in first_pde..=last_pde {
            let Some(entry) = self.pds.get(&pde) else { continue };
            let base = VirtAddr(pde << 21);
            match entry {
                PdEntry::Huge(pte) => {
                    if pte.present() && range.contains(base) {
                        f(base, *pte, FrameSize::Huge2M);
                    }
                }
                PdEntry::Table(t) => {
                    for (i, pte) in t.iter().enumerate() {
                        if pte.present() {
                            let va = base + (i as u64) * PAGE_SIZE_4K;
                            if range.contains(va) {
                                f(va, *pte, FrameSize::Base4K);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Visits every mapped page in the whole table in ascending address
    /// order, read-only. Iterates the PD index's *sorted* keys — never
    /// the hasher's bucket order, and never the full 2^43-slot PDE space
    /// (which `for_each_mapped` would scan linearly for an unbounded
    /// range).
    pub fn for_each_mapped_all(&self, mut f: impl FnMut(VirtAddr, Pte, FrameSize)) {
        let mut pdes: Vec<u64> = self.pds.keys().copied().collect();
        pdes.sort_unstable();
        for pde in pdes {
            let Some(entry) = self.pds.get(&pde) else { continue };
            let base = VirtAddr(pde << 21);
            match entry {
                PdEntry::Huge(pte) => {
                    if pte.present() {
                        f(base, *pte, FrameSize::Huge2M);
                    }
                }
                PdEntry::Table(t) => {
                    for (i, pte) in t.iter().enumerate() {
                        if pte.present() {
                            f(base + (i as u64) * PAGE_SIZE_4K, *pte, FrameSize::Base4K);
                        }
                    }
                }
            }
        }
    }

    /// Collects the base addresses of mapped pages in `range`.
    pub fn mapped_pages(&mut self, range: VaRange) -> Vec<(VirtAddr, FrameSize)> {
        let mut out = Vec::new();
        self.for_each_mapped(range, |va, _, size| out.push((va, size)));
        out
    }

    /// Base virtual addresses of all valid last-level PDEs, sorted.
    ///
    /// These are the default memory regions profilers start from.
    pub fn valid_pde_bases(&self) -> Vec<VirtAddr> {
        let mut v: Vec<VirtAddr> = self.pds.keys().map(|&p| VirtAddr(p << 21)).collect();
        v.sort();
        v
    }

    /// Number of mapped pages (of either size) in `range`.
    pub fn mapped_page_count(&mut self, range: VaRange) -> usize {
        let mut n = 0;
        self.for_each_mapped(range, |_, _, _| n += 1);
        n
    }

    /// Splits the huge mapping covering `va` into 512 base mappings that all
    /// point into the same (now logically fragmented) huge frame.
    ///
    /// Mirrors THP splitting in Linux: the physical frame stays where it is;
    /// the mapping granularity drops to 4 KB so individual subpages can be
    /// migrated. Returns `false` if `va` is not covered by a huge mapping.
    pub fn split_huge(&mut self, va: VirtAddr) -> bool {
        let pde = va.pde_index();
        let Some(PdEntry::Huge(pte)) = self.pds.get(&pde) else { return false };
        let huge = *pte;
        let base_frame = huge.frame();
        let mut table = Box::new([Pte::EMPTY; 512]);
        for (i, slot) in table.iter_mut().enumerate() {
            let frame = crate::addr::PhysAddr::new(
                base_frame.component(),
                base_frame.offset() + (i as u64) * PAGE_SIZE_4K,
            );
            let mut p = Pte::map(frame, false);
            // Carry over A/D state so profiling history is not lost.
            p.0 |= huge.0 & (crate::pte::PTE_ACCESSED | crate::pte::PTE_DIRTY);
            *slot = p;
        }
        self.pds.insert(pde, PdEntry::Table(table));
        // 2 MB was mapped before and after; `mapped_bytes` is unchanged
        // (512 * 4 KB == 2 MB).
        debug_assert_eq!(PTES_PER_PD * PAGE_SIZE_4K, PAGE_SIZE_2M);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;

    fn pte4k(c: u16, off: u64) -> Pte {
        Pte::map(PhysAddr::new(c, off), false)
    }

    #[test]
    fn map_translate_unmap_4k() {
        let mut pt = PageTable::new();
        let va = VirtAddr(0x40_0000);
        pt.map_4k(va, pte4k(1, 0x1000));
        let t = pt.translate(va).unwrap();
        assert_eq!(t.size, FrameSize::Base4K);
        assert_eq!(t.pte.frame(), PhysAddr::new(1, 0x1000));
        assert_eq!(pt.mapped_bytes(), PAGE_SIZE_4K);
        let (old, size) = pt.unmap(va).unwrap();
        assert_eq!(size, FrameSize::Base4K);
        assert_eq!(old.frame(), PhysAddr::new(1, 0x1000));
        assert!(pt.translate(va).is_none());
        assert_eq!(pt.valid_pde_count(), 0, "empty leaf tables are pruned");
    }

    #[test]
    fn huge_mapping_covers_span() {
        let mut pt = PageTable::new();
        let base = VirtAddr(4 * PAGE_SIZE_2M);
        pt.map_2m(base, Pte::map(PhysAddr::new(2, 0), true));
        for off in [0u64, 4096, PAGE_SIZE_2M - 1] {
            let t = pt.translate(VirtAddr(base.0 + off)).unwrap();
            assert_eq!(t.size, FrameSize::Huge2M);
        }
        assert!(pt.translate(VirtAddr(base.0 + PAGE_SIZE_2M)).is_none());
    }

    #[test]
    fn for_each_mapped_respects_range() {
        let mut pt = PageTable::new();
        for i in 0..4u64 {
            pt.map_4k(VirtAddr(i * PAGE_SIZE_4K), pte4k(0, i * PAGE_SIZE_4K));
        }
        let r = VaRange::from_len(VirtAddr(PAGE_SIZE_4K), 2 * PAGE_SIZE_4K);
        let mut seen = Vec::new();
        pt.for_each_mapped(r, |va, _, _| seen.push(va.0 / PAGE_SIZE_4K));
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn vma_lookup() {
        let mut pt = PageTable::new();
        pt.mmap("a", VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M), true);
        pt.mmap("b", VaRange::from_len(VirtAddr(16 * PAGE_SIZE_2M), PAGE_SIZE_2M), false);
        assert_eq!(pt.vma_of(VirtAddr(100)).unwrap().name, "a");
        assert_eq!(pt.vma_of(VirtAddr(16 * PAGE_SIZE_2M + 5)).unwrap().name, "b");
        assert!(pt.vma_of(VirtAddr(8 * PAGE_SIZE_2M)).is_none());
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn vma_overlap_rejected() {
        let mut pt = PageTable::new();
        pt.mmap("a", VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M), true);
        pt.mmap("b", VaRange::from_len(VirtAddr(PAGE_SIZE_4K), PAGE_SIZE_2M), true);
    }

    #[test]
    fn split_huge_preserves_frames_and_flags() {
        let mut pt = PageTable::new();
        let base = VirtAddr(0);
        let mut huge = Pte::map(PhysAddr::new(3, 0x20_0000), true);
        huge.set(crate::pte::PTE_ACCESSED);
        pt.map_2m(base, huge);
        assert!(pt.split_huge(VirtAddr(12345)));
        let t = pt.translate(VirtAddr(5 * PAGE_SIZE_4K)).unwrap();
        assert_eq!(t.size, FrameSize::Base4K);
        assert_eq!(t.pte.frame(), PhysAddr::new(3, 0x20_0000 + 5 * PAGE_SIZE_4K));
        assert!(t.pte.accessed(), "A bit carried to subpages");
        assert_eq!(pt.mapped_bytes(), PAGE_SIZE_2M);
    }

    #[test]
    fn valid_pde_bases_sorted() {
        let mut pt = PageTable::new();
        pt.map_2m(VirtAddr(6 * PAGE_SIZE_2M), Pte::map(PhysAddr::new(0, 0), true));
        pt.map_4k(VirtAddr(PAGE_SIZE_2M), pte4k(0, 0x1000));
        let bases = pt.valid_pde_bases();
        assert_eq!(bases, vec![VirtAddr(PAGE_SIZE_2M), VirtAddr(6 * PAGE_SIZE_2M)]);
    }
}
