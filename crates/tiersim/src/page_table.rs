//! Software radix page table with VMAs, 4 KB PTEs, 2 MB huge mappings and
//! packed side metadata.
//!
//! The table stores one entry per valid last-level page-directory slot
//! (2 MB of virtual space): either a single huge-page PTE or a leaf table of
//! 512 base PTEs. Profilers form their initial memory regions from the set
//! of valid last-level PDEs, exactly as MTM does (Sec. 5.1).
//!
//! # Layout
//!
//! One dense level replaces the old hashed PD index: a flat vector of PDE
//! slots indexed by `va >> 21` directly, paired with a global occupancy
//! bitmap (one bit per slot). Flat indexing makes the per-access lookup a
//! *single* dependent load for a huge page (one more for a leaf table), and
//! — because walks iterate indexes in ascending order — every walker yields
//! strictly ascending virtual addresses *by construction*, where a hashed
//! map would rely on the "every escaping walk sorts its keys" convention.
//! The vector grows to the highest mapped PDE, so its footprint is
//! proportional to the workload's address-space extent (16 bytes per 2 MB
//! of virtual span), not to the 47-bit address space.
//!
//! A 1 GB *directory group* of 512 consecutive slots remains the unit of
//! packetized whole-table walks: packet workers fan out over
//! `0..dir_count()` groups and reduce in index order.
//!
//! # Packed side metadata
//!
//! Each leaf table carries three 512-bit bitmaps (`[u64; 8]`) mirroring its
//! PTEs' PRESENT, ACCESSED and DIRTY bits, and the table keeps the global
//! occupancy bitmap over its slots. Scans and walks sweep these words with
//! `trailing_zeros` instead of probing 512 PTEs; profiling reads the
//! accessed bit from the bitmap without touching the PTE array. The **PTE
//! bits remain the source of truth**: the `MTM_CHECK` sanitizer re-derives
//! every bitmap word from the PTEs ([`PageTable::check_side_metadata`]) and
//! panics on drift. Huge-page entries keep their A/D state in the PTE alone
//! (one page per slot needs no bitmap). To keep PTE and bitmap in sync,
//! ACCESSED/DIRTY must only be mutated through [`PageTable::touch`],
//! [`PageTable::scan_page_at`], [`PageTable::clear_accessed_at`] and the
//! map/unmap/split operations — never through [`PageTable::pte_mut`] or a
//! [`PageTable::for_each_mapped`] callback (those remain for the
//! POISON/PROT_NONE/WRITE_TRACK software bits).

use crate::addr::{VaRange, VirtAddr, PAGE_SIZE_2M, PAGE_SIZE_4K, PTES_PER_PD};
use crate::frame::FrameSize;
use crate::pte::{Pte, PTE_ACCESSED, PTE_DIRTY};

/// PDE slots per directory group (1 GB of virtual space per group).
const DIR_SLOTS: usize = 512;
/// 64-bit words per 512-bit leaf bitmap.
const WORDS: usize = DIR_SLOTS / 64;

/// Virtual addresses must fit x86-64 canonical user space.
const VA_LIMIT: u64 = 1 << 47;

/// Calls `f` for every set bit index in `words` within `[lo, hi]`
/// (inclusive), ascending — the word-at-a-time sweep behind every walker.
/// `hi` may point past the last word; the sweep clamps to the slice.
#[inline]
fn for_set_bits(words: &[u64], lo: usize, hi: usize, mut f: impl FnMut(usize)) {
    if words.is_empty() {
        return;
    }
    let lo_w = lo >> 6;
    let hi_w = (hi >> 6).min(words.len() - 1);
    if lo_w > hi_w {
        return;
    }
    for w in lo_w..=hi_w {
        let mut word = words[w];
        if w == lo_w {
            word &= !0u64 << (lo & 63);
        }
        if w == hi >> 6 {
            let r = hi & 63;
            if r < 63 {
                word &= (1u64 << (r + 1)) - 1;
            }
        }
        while word != 0 {
            f((w << 6) | word.trailing_zeros() as usize);
            word &= word - 1;
        }
    }
}

#[inline]
fn set_bit(words: &mut [u64], i: usize) {
    words[i >> 6] |= 1 << (i & 63);
}

#[inline]
fn clear_bit(words: &mut [u64], i: usize) {
    words[i >> 6] &= !(1 << (i & 63));
}

#[inline]
fn test_bit(words: &[u64], i: usize) -> bool {
    words[i >> 6] >> (i & 63) & 1 == 1
}

/// A leaf table of 512 base PTEs plus its packed side metadata.
struct Leaf {
    ptes: [Pte; DIR_SLOTS],
    /// Bit `i` mirrors `ptes[i].present()`.
    present: [u64; WORDS],
    /// Bit `i` mirrors `ptes[i].accessed()`.
    accessed: [u64; WORDS],
    /// Bit `i` mirrors `ptes[i].dirty()`.
    dirty: [u64; WORDS],
}

impl Leaf {
    fn empty() -> Box<Leaf> {
        Box::new(Leaf {
            ptes: [Pte::EMPTY; DIR_SLOTS],
            present: [0; WORDS],
            accessed: [0; WORDS],
            dirty: [0; WORDS],
        })
    }

    /// True when no PTE is present (prune check; 8 word ORs, not 512 probes).
    #[inline]
    fn is_empty(&self) -> bool {
        self.present.iter().all(|&w| w == 0)
    }

    /// Installs `pte` at `i`, syncing the metadata bits from its flags
    /// (a remapped migration PTE carries its A/D history).
    #[inline]
    fn install(&mut self, i: usize, pte: Pte) {
        self.ptes[i] = pte;
        set_bit(&mut self.present, i);
        if pte.accessed() {
            set_bit(&mut self.accessed, i);
        }
        if pte.dirty() {
            set_bit(&mut self.dirty, i);
        }
    }

    /// Removes the PTE at `i`, clearing its metadata bits.
    #[inline]
    fn remove(&mut self, i: usize) {
        self.ptes[i] = Pte::EMPTY;
        clear_bit(&mut self.present, i);
        clear_bit(&mut self.accessed, i);
        clear_bit(&mut self.dirty, i);
    }
}

/// One valid last-level page-directory entry.
enum PdEntry {
    /// The 2 MB span is mapped by a single huge-page PTE.
    Huge(Pte),
    /// The span is mapped by a leaf table of 512 base PTEs.
    Table(Box<Leaf>),
}

/// A virtual memory area registered by a workload.
#[derive(Clone, Debug)]
pub struct Vma {
    /// Name used in reports and heatmaps (e.g. `"hotset"`).
    pub name: String,
    /// Address range covered by the VMA.
    pub range: VaRange,
    /// Whether transparent huge pages are enabled (`madvise(MADV_HUGEPAGE)`).
    pub thp: bool,
}

/// The per-process page table plus the VMA list.
#[derive(Default)]
pub struct PageTable {
    /// Flat last-level directory: slot `pde` covers `[pde << 21, (pde+1) << 21)`.
    slots: Vec<Option<PdEntry>>,
    /// Bit `pde` set iff `slots[pde]` is `Some`.
    occupied: Vec<u64>,
    vmas: Vec<Vma>,
    mapped_bytes: u64,
    valid_pdes: usize,
}

/// Result of translating a virtual address.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Translation {
    /// The covering PTE (copied out).
    pub pte: Pte,
    /// Granularity of the mapping.
    pub size: FrameSize,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> PageTable {
        PageTable::default()
    }

    /// Registers a VMA. Ranges must be 4 KB aligned and non-overlapping.
    pub fn mmap(&mut self, name: &str, range: VaRange, thp: bool) {
        assert!(range.start.is_4k_aligned() && range.end.is_4k_aligned(), "VMA must be page-aligned");
        assert!(range.end.0 <= VA_LIMIT, "VMA beyond 47-bit user address space");
        assert!(
            !self.vmas.iter().any(|v| v.range.overlaps(range)),
            "VMA {range:?} overlaps an existing mapping"
        );
        self.vmas.push(Vma { name: name.to_string(), range, thp });
        self.vmas.sort_by_key(|v| v.range.start);
    }

    /// The registered VMAs in address order.
    pub fn vmas(&self) -> &[Vma] {
        &self.vmas
    }

    /// Finds the VMA containing `va`.
    pub fn vma_of(&self, va: VirtAddr) -> Option<&Vma> {
        let idx = self.vmas.partition_point(|v| v.range.end.0 <= va.0);
        self.vmas.get(idx).filter(|v| v.range.contains(va))
    }

    /// Total bytes currently mapped.
    #[inline]
    pub fn mapped_bytes(&self) -> u64 {
        self.mapped_bytes
    }

    /// Number of valid last-level PDEs.
    pub fn valid_pde_count(&self) -> usize {
        self.valid_pdes
    }

    /// Number of 1 GB directory groups the table spans. Packetized walks
    /// (sanitizer census, move-set collection) fan out over `0..dir_count()`
    /// via [`crate::engine::map_chunks`] and reduce in index order.
    #[inline]
    pub fn dir_count(&self) -> usize {
        self.slots.len().div_ceil(DIR_SLOTS)
    }

    #[inline]
    fn entry(&self, pde: u64) -> Option<&PdEntry> {
        self.slots.get(pde as usize)?.as_ref()
    }

    #[inline]
    fn entry_mut(&mut self, pde: u64) -> Option<&mut PdEntry> {
        self.slots.get_mut(pde as usize)?.as_mut()
    }

    /// Inserts `entry` at `pde`'s slot, which must be vacant. Grows the
    /// slot vector (and its occupancy bitmap) up to the new high PDE.
    fn insert_entry(&mut self, pde: u64, entry: PdEntry) {
        debug_assert!(pde < (VA_LIMIT >> 21), "address beyond 47-bit user space");
        let i = pde as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
            self.occupied.resize(self.slots.len().div_ceil(64), 0);
        }
        debug_assert!(self.slots[i].is_none(), "slot must be vacant");
        self.slots[i] = Some(entry);
        set_bit(&mut self.occupied, i);
        self.valid_pdes += 1;
    }

    /// Removes `pde`'s slot (which must be occupied).
    fn remove_entry(&mut self, pde: u64) {
        let i = pde as usize;
        debug_assert!(self.slots[i].is_some(), "slot occupied");
        self.slots[i] = None;
        clear_bit(&mut self.occupied, i);
        self.valid_pdes -= 1;
    }

    /// Looks up the mapping covering `va` without touching flag bits.
    #[inline]
    pub fn translate(&self, va: VirtAddr) -> Option<Translation> {
        match self.entry(va.pde_index())? {
            PdEntry::Huge(pte) if pte.present() => {
                Some(Translation { pte: *pte, size: FrameSize::Huge2M })
            }
            PdEntry::Table(leaf) => {
                let i = va.pte_index();
                test_bit(&leaf.present, i)
                    .then(|| Translation { pte: leaf.ptes[i], size: FrameSize::Base4K })
            }
            _ => None,
        }
    }

    /// Records an access to the page covering `va`: sets ACCESSED (and
    /// DIRTY on a write) in the PTE and the packed side metadata, and
    /// returns the **pre-access** PTE (whose POISON/PROT/TRACK flags the
    /// machine's rare-path fault handling gates on) with the mapping size.
    #[inline]
    pub fn touch(&mut self, va: VirtAddr, is_write: bool) -> Option<(Pte, FrameSize)> {
        match self.slots.get_mut(va.pde_index() as usize)?.as_mut()? {
            PdEntry::Huge(pte) if pte.present() => {
                let pre = *pte;
                let want = PTE_ACCESSED | if is_write { PTE_DIRTY } else { 0 };
                // Skip the read-modify-write when the bits already stick
                // (the common case for a hot page between scan passes).
                if pre.0 & want != want {
                    pte.set(want);
                }
                Some((pre, FrameSize::Huge2M))
            }
            PdEntry::Table(leaf) => {
                let i = va.pte_index();
                if !test_bit(&leaf.present, i) {
                    return None;
                }
                let pre = leaf.ptes[i];
                if pre.0 & PTE_ACCESSED == 0 {
                    leaf.ptes[i].set(PTE_ACCESSED);
                    set_bit(&mut leaf.accessed, i);
                }
                if is_write && pre.0 & PTE_DIRTY == 0 {
                    leaf.ptes[i].set(PTE_DIRTY);
                    set_bit(&mut leaf.dirty, i);
                }
                Some((pre, FrameSize::Base4K))
            }
            _ => None,
        }
    }

    /// Reads the ACCESSED bit of the page covering `va` from the packed
    /// side metadata, without clearing anything — the pure read phase of
    /// a packetized scan pass. Returns the bit and the mapping size.
    #[inline]
    pub fn accessed_at(&self, va: VirtAddr) -> Option<(bool, FrameSize)> {
        match self.entry(va.pde_index())? {
            PdEntry::Huge(pte) if pte.present() => Some((pte.accessed(), FrameSize::Huge2M)),
            PdEntry::Table(leaf) => {
                let i = va.pte_index();
                if !test_bit(&leaf.present, i) {
                    return None;
                }
                let bit = test_bit(&leaf.accessed, i);
                debug_assert_eq!(bit, leaf.ptes[i].accessed(), "side metadata drift at {va:?}");
                Some((bit, FrameSize::Base4K))
            }
            _ => None,
        }
    }

    /// Reads **and clears** the ACCESSED bit of the page covering `va`
    /// (PTE and side metadata together). Returns the old bit and the
    /// mapping size.
    #[inline]
    pub fn scan_page_at(&mut self, va: VirtAddr) -> Option<(bool, FrameSize)> {
        match self.slots.get_mut(va.pde_index() as usize)?.as_mut()? {
            PdEntry::Huge(pte) if pte.present() => Some((pte.take_accessed(), FrameSize::Huge2M)),
            PdEntry::Table(leaf) => {
                let i = va.pte_index();
                if !test_bit(&leaf.present, i) {
                    return None;
                }
                let was = leaf.ptes[i].take_accessed();
                clear_bit(&mut leaf.accessed, i);
                Some((was, FrameSize::Base4K))
            }
            _ => None,
        }
    }

    /// Clears the ACCESSED bit of the page covering `va` without reading
    /// it — the apply half of a packetized scan whose read half already
    /// captured the bit via [`PageTable::accessed_at`]. Returns the
    /// mapping size, or `None` if unmapped.
    #[inline]
    pub fn clear_accessed_at(&mut self, va: VirtAddr) -> Option<FrameSize> {
        self.scan_page_at(va).map(|(_, size)| size)
    }

    /// Clears software flag bits (POISON / PROT_NONE / WRITE_TRACK) on the
    /// PTE covering `va`. Must not be used for ACCESSED/DIRTY — those are
    /// mirrored in the side metadata.
    #[inline]
    pub fn clear_flags(&mut self, va: VirtAddr, bits: u64) {
        debug_assert_eq!(bits & (PTE_ACCESSED | PTE_DIRTY), 0, "A/D bits go through touch/scan");
        if let Some((pte, _)) = self.pte_mut(va) {
            pte.clear(bits);
        }
    }

    /// Mutable access to the PTE covering `va`, with its mapping size.
    ///
    /// For the software bits (POISON / PROT_NONE / WRITE_TRACK) only:
    /// mutating ACCESSED/DIRTY here would desync the packed side metadata
    /// (the sanitizer cross-check catches exactly that).
    #[inline]
    pub fn pte_mut(&mut self, va: VirtAddr) -> Option<(&mut Pte, FrameSize)> {
        match self.slots.get_mut(va.pde_index() as usize)?.as_mut()? {
            PdEntry::Huge(pte) if pte.present() => Some((pte, FrameSize::Huge2M)),
            PdEntry::Table(leaf) => {
                let i = va.pte_index();
                test_bit(&leaf.present, i).then(move || (&mut leaf.ptes[i], FrameSize::Base4K))
            }
            _ => None,
        }
    }

    /// Installs a 4 KB mapping at `va` (must not already be mapped).
    pub fn map_4k(&mut self, va: VirtAddr, pte: Pte) {
        debug_assert!(pte.present() && !pte.huge());
        assert!(va.0 < VA_LIMIT, "address beyond 47-bit user space");
        let pde = va.pde_index();
        if self.entry(pde).is_none() {
            self.insert_entry(pde, PdEntry::Table(Leaf::empty()));
        }
        // lint:allow(panic-path): the slot was inserted two lines up; a miss here is table corruption
        match self.entry_mut(pde).expect("slot just ensured") {
            PdEntry::Table(leaf) => {
                let i = va.pte_index();
                assert!(!test_bit(&leaf.present, i), "double map at {va:?}");
                leaf.install(i, pte);
            }
            // lint:allow(panic-path): mapping over a live huge page is a double-map; aborting beats silent PTE clobbering
            PdEntry::Huge(_) => panic!("4K map inside huge mapping at {va:?}"),
        }
        self.mapped_bytes += PAGE_SIZE_4K;
    }

    /// Installs a 2 MB huge mapping at `va` (must be 2 MB aligned and empty).
    pub fn map_2m(&mut self, va: VirtAddr, pte: Pte) {
        debug_assert!(pte.present() && pte.huge());
        assert!(va.is_2m_aligned(), "huge mapping must be 2 MB aligned");
        assert!(va.0 < VA_LIMIT, "address beyond 47-bit user space");
        let pde = va.pde_index();
        assert!(self.entry(pde).is_none(), "double map at {va:?}");
        self.insert_entry(pde, PdEntry::Huge(pte));
        self.mapped_bytes += PAGE_SIZE_2M;
    }

    /// Removes the mapping covering `va`, returning the old PTE and size.
    pub fn unmap(&mut self, va: VirtAddr) -> Option<(Pte, FrameSize)> {
        let pde = va.pde_index();
        match self.entry_mut(pde)? {
            PdEntry::Huge(pte) => {
                let old = *pte;
                self.remove_entry(pde);
                self.mapped_bytes -= PAGE_SIZE_2M;
                Some((old, FrameSize::Huge2M))
            }
            PdEntry::Table(leaf) => {
                let i = va.pte_index();
                if !test_bit(&leaf.present, i) {
                    return None;
                }
                let old = leaf.ptes[i];
                leaf.remove(i);
                let prune = leaf.is_empty();
                self.mapped_bytes -= PAGE_SIZE_4K;
                if prune {
                    self.remove_entry(pde);
                }
                Some((old, FrameSize::Base4K))
            }
        }
    }

    /// Visits every mapped page whose base address lies in `range`.
    ///
    /// The callback receives the page base address, a mutable PTE reference
    /// and the mapping size. Huge pages are visited once (at their 2 MB
    /// base) if that base is inside the range. Pages are visited in
    /// ascending address order. The callback must not toggle
    /// ACCESSED/DIRTY (see the module docs on side metadata).
    pub fn for_each_mapped(
        &mut self,
        range: VaRange,
        mut f: impl FnMut(VirtAddr, &mut Pte, FrameSize),
    ) {
        if range.is_empty() || self.slots.is_empty() {
            return;
        }
        let first_pde = range.start.pde_index() as usize;
        let last_pde = ((range.end.0 - 1) >> 21) as usize;
        let PageTable { slots, occupied, .. } = self;
        for_set_bits(occupied, first_pde, last_pde, |pde| {
            let base = VirtAddr((pde as u64) << 21);
            // lint:allow(panic-path): occupied-bitmap/slot coherence is a structural invariant of every mutation path
            match slots[pde].as_mut().expect("occupied bit implies slot") {
                PdEntry::Huge(pte) => {
                    if pte.present() && range.contains(base) {
                        f(base, pte, FrameSize::Huge2M);
                    }
                }
                PdEntry::Table(leaf) => {
                    for_set_bits(&leaf.present, 0, DIR_SLOTS - 1, |i| {
                        let va = base + (i as u64) * PAGE_SIZE_4K;
                        if range.contains(va) {
                            f(va, &mut leaf.ptes[i], FrameSize::Base4K);
                        }
                    });
                }
            }
        });
    }

    /// Read-only variant of [`PageTable::for_each_mapped`]: visits every
    /// mapped page in `range` without touching PTE flag bits, in ascending
    /// address order. Used by the `MTM_CHECK` sanitizer and by packetized
    /// read phases, which must observe without perturbing.
    pub fn for_each_mapped_in(
        &self,
        range: VaRange,
        mut f: impl FnMut(VirtAddr, Pte, FrameSize),
    ) {
        if range.is_empty() || self.slots.is_empty() {
            return;
        }
        let first_pde = range.start.pde_index() as usize;
        let last_pde = ((range.end.0 - 1) >> 21) as usize;
        for_set_bits(&self.occupied, first_pde, last_pde, |pde| {
            let base = VirtAddr((pde as u64) << 21);
            // lint:allow(panic-path): occupied-bitmap/slot coherence is a structural invariant of every mutation path
            match self.slots[pde].as_ref().expect("occupied bit implies slot") {
                PdEntry::Huge(pte) => {
                    if pte.present() && range.contains(base) {
                        f(base, *pte, FrameSize::Huge2M);
                    }
                }
                PdEntry::Table(leaf) => {
                    for_set_bits(&leaf.present, 0, DIR_SLOTS - 1, |i| {
                        let va = base + (i as u64) * PAGE_SIZE_4K;
                        if range.contains(va) {
                            f(va, leaf.ptes[i], FrameSize::Base4K);
                        }
                    });
                }
            }
        });
    }

    /// Read-only visit of every mapped page in directory group `di`
    /// (1 GB of virtual space), in ascending address order. The unit of
    /// packetized whole-table walks: visiting groups `0..dir_count()` in
    /// order reproduces [`PageTable::for_each_mapped_all`] exactly.
    pub fn for_each_mapped_in_dir(&self, di: usize, mut f: impl FnMut(VirtAddr, Pte, FrameSize)) {
        let lo = di * DIR_SLOTS;
        if lo >= self.slots.len() {
            return;
        }
        #[cfg(debug_assertions)]
        let mut last: Option<u64> = None;
        for_set_bits(&self.occupied, lo, lo + DIR_SLOTS - 1, |pde| {
            let base = VirtAddr((pde as u64) << 21);
            let mut visit = |va: VirtAddr, pte: Pte, size: FrameSize| {
                #[cfg(debug_assertions)]
                {
                    debug_assert!(
                        last.map_or(true, |l| l < va.0),
                        "scan walk must yield strictly ascending VAs"
                    );
                    last = Some(va.0);
                }
                f(va, pte, size);
            };
            // lint:allow(panic-path): occupied-bitmap/slot coherence is a structural invariant of every mutation path
            match self.slots[pde].as_ref().expect("occupied bit implies slot") {
                PdEntry::Huge(pte) => {
                    if pte.present() {
                        visit(base, *pte, FrameSize::Huge2M);
                    }
                }
                PdEntry::Table(leaf) => {
                    for_set_bits(&leaf.present, 0, DIR_SLOTS - 1, |i| {
                        visit(base + (i as u64) * PAGE_SIZE_4K, leaf.ptes[i], FrameSize::Base4K);
                    });
                }
            }
        });
    }

    /// Visits every mapped page in the whole table in ascending address
    /// order, read-only. Ascending order falls out of dense index
    /// iteration (no sorting, no hasher bucket order).
    pub fn for_each_mapped_all(&self, mut f: impl FnMut(VirtAddr, Pte, FrameSize)) {
        for di in 0..self.dir_count() {
            self.for_each_mapped_in_dir(di, &mut f);
        }
    }

    /// Collects the base addresses of mapped pages in `range`, ascending.
    pub fn mapped_pages(&self, range: VaRange) -> Vec<(VirtAddr, FrameSize)> {
        let mut out = Vec::new();
        self.for_each_mapped_in(range, |va, _, size| out.push((va, size)));
        out
    }

    /// Base virtual addresses of all valid last-level PDEs, sorted.
    ///
    /// These are the default memory regions profilers start from.
    pub fn valid_pde_bases(&self) -> Vec<VirtAddr> {
        let mut v = Vec::with_capacity(self.valid_pdes);
        if !self.slots.is_empty() {
            for_set_bits(&self.occupied, 0, self.slots.len() - 1, |pde| {
                v.push(VirtAddr((pde as u64) << 21));
            });
        }
        debug_assert!(v.windows(2).all(|w| w[0] < w[1]), "PDE bases ascend by construction");
        v
    }

    /// Number of mapped pages (of either size) in `range`.
    pub fn mapped_page_count(&self, range: VaRange) -> usize {
        let mut n = 0;
        self.for_each_mapped_in(range, |_, _, _| n += 1);
        n
    }

    /// Splits the huge mapping covering `va` into 512 base mappings that all
    /// point into the same (now logically fragmented) huge frame.
    ///
    /// Mirrors THP splitting in Linux: the physical frame stays where it is;
    /// the mapping granularity drops to 4 KB so individual subpages can be
    /// migrated. Returns `false` if `va` is not covered by a huge mapping.
    pub fn split_huge(&mut self, va: VirtAddr) -> bool {
        let pde = va.pde_index();
        let Some(entry) = self.entry_mut(pde) else { return false };
        let PdEntry::Huge(huge) = entry else { return false };
        let huge = *huge;
        let base_frame = huge.frame();
        let mut leaf = Leaf::empty();
        for i in 0..DIR_SLOTS {
            let frame = crate::addr::PhysAddr::new(
                base_frame.component(),
                base_frame.offset() + (i as u64) * PAGE_SIZE_4K,
            );
            let mut p = Pte::map(frame, false);
            // Carry over A/D state so profiling history is not lost.
            p.0 |= huge.0 & (PTE_ACCESSED | PTE_DIRTY);
            leaf.ptes[i] = p;
        }
        leaf.present = [!0u64; WORDS];
        if huge.accessed() {
            leaf.accessed = [!0u64; WORDS];
        }
        if huge.dirty() {
            leaf.dirty = [!0u64; WORDS];
        }
        // lint:allow(panic-path): the same pde matched Huge above; a miss here is table corruption
        *self.entry_mut(pde).expect("entry just matched") = PdEntry::Table(leaf);
        // 2 MB was mapped before and after; `mapped_bytes` is unchanged
        // (512 * 4 KB == 2 MB).
        debug_assert_eq!(PTES_PER_PD * PAGE_SIZE_4K, PAGE_SIZE_2M);
        true
    }

    /// Serializes the table: VMAs plus every mapped page as
    /// `(delta-encoded page number, size, raw PTE word)`. Walk order is
    /// ascending by construction, so the encoding is canonical — two equal
    /// tables serialize to identical bytes.
    pub fn save(&self, w: &mut obs::wire::Writer) {
        w.varint(self.vmas.len() as u64);
        for vma in &self.vmas {
            w.str(&vma.name);
            w.u64(vma.range.start.0);
            w.u64(vma.range.end.0);
            w.bool(vma.thp);
        }
        let mut pages = 0u64;
        self.for_each_mapped_all(|_, _, _| pages += 1);
        w.varint(pages);
        let mut prev = 0u64;
        self.for_each_mapped_all(|va, pte, size| {
            let pn = va.0 >> 12;
            w.varint(pn - prev);
            prev = pn;
            w.bool(size == FrameSize::Huge2M);
            w.u64(pte.0);
        });
    }

    /// Restores a table saved with [`PageTable::save`]. Mapped bytes,
    /// PDE occupancy and the packed side metadata are re-derived from the
    /// installed PTEs (the source of truth), so the result passes
    /// [`PageTable::check_side_metadata`] by construction.
    pub fn load(r: &mut obs::wire::Reader) -> Result<PageTable, String> {
        let mut pt = PageTable::new();
        for _ in 0..r.varint()? {
            let name = r.str()?;
            let start = r.u64()?;
            let end = r.u64()?;
            let thp = r.bool()?;
            if start > end || end > VA_LIMIT || start & (PAGE_SIZE_4K - 1) != 0 {
                return Err(format!("page table: invalid VMA range {start:#x}..{end:#x}"));
            }
            pt.mmap(&name, VaRange::new(VirtAddr(start), VirtAddr(end)), thp);
        }
        let pages = r.varint()?;
        let mut prev = 0u64;
        for _ in 0..pages {
            let pn = prev + r.varint()?;
            prev = pn;
            let huge = r.bool()?;
            let pte = Pte(r.u64()?);
            let va = VirtAddr(pn << 12);
            if huge {
                if !pte.present() || !pte.huge() {
                    return Err(format!("page table: bad huge PTE {:#x} at {va:?}", pte.0));
                }
                pt.map_2m(va, pte);
            } else {
                if !pte.present() || pte.huge() {
                    return Err(format!("page table: bad base PTE {:#x} at {va:?}", pte.0));
                }
                pt.map_4k(va, pte);
            }
        }
        Ok(pt)
    }

    /// Re-derives every packed-metadata word from the PTEs (the source of
    /// truth) and reports mismatches — the `MTM_CHECK` sanitizer's
    /// side-metadata cross-check. Returns human-readable violations;
    /// empty means every bitmap word, occupancy bit and the valid-PDE
    /// counter are consistent.
    pub fn check_side_metadata(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.occupied.len() != self.slots.len().div_ceil(64) {
            v.push(format!(
                "occupancy bitmap has {} words but {} slots need {}",
                self.occupied.len(),
                self.slots.len(),
                self.slots.len().div_ceil(64)
            ));
        }
        let mut pdes = 0usize;
        for (pde, slot) in self.slots.iter().enumerate() {
            let occupied = test_bit(&self.occupied, pde);
            if occupied != slot.is_some() {
                v.push(format!(
                    "pde {pde}: occupancy bit {occupied} but slot present {}",
                    slot.is_some()
                ));
            }
            pdes += slot.is_some() as usize;
            let base = (pde as u64) << 21;
            let Some(PdEntry::Table(leaf)) = slot.as_ref() else { continue };
            let (mut present, mut accessed, mut dirty) =
                ([0u64; WORDS], [0u64; WORDS], [0u64; WORDS]);
            for (i, pte) in leaf.ptes.iter().enumerate() {
                if pte.present() {
                    set_bit(&mut present, i);
                    if pte.accessed() {
                        set_bit(&mut accessed, i);
                    }
                    if pte.dirty() {
                        set_bit(&mut dirty, i);
                    }
                }
            }
            for w in 0..WORDS {
                for (name, got, want) in [
                    ("present", leaf.present[w], present[w]),
                    ("accessed", leaf.accessed[w], accessed[w]),
                    ("dirty", leaf.dirty[w], dirty[w]),
                ] {
                    if got != want {
                        v.push(format!(
                            "pde base {base:#x} {name} word {w}: metadata {got:#018x} but PTEs say {want:#018x}"
                        ));
                    }
                }
            }
        }
        let pop: usize = self.occupied.iter().map(|w| w.count_ones() as usize).sum();
        if pop != pdes {
            v.push(format!(
                "occupancy bitmap has {pop} set bits but {pdes} occupied slots (stray bits past the slot vector)"
            ));
        }
        if pdes != self.valid_pdes {
            v.push(format!(
                "valid PDE counter {} but {pdes} occupied slots across the table",
                self.valid_pdes
            ));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;

    fn pte4k(c: u16, off: u64) -> Pte {
        Pte::map(PhysAddr::new(c, off), false)
    }

    #[test]
    fn map_translate_unmap_4k() {
        let mut pt = PageTable::new();
        let va = VirtAddr(0x40_0000);
        pt.map_4k(va, pte4k(1, 0x1000));
        let t = pt.translate(va).unwrap();
        assert_eq!(t.size, FrameSize::Base4K);
        assert_eq!(t.pte.frame(), PhysAddr::new(1, 0x1000));
        assert_eq!(pt.mapped_bytes(), PAGE_SIZE_4K);
        let (old, size) = pt.unmap(va).unwrap();
        assert_eq!(size, FrameSize::Base4K);
        assert_eq!(old.frame(), PhysAddr::new(1, 0x1000));
        assert!(pt.translate(va).is_none());
        assert_eq!(pt.valid_pde_count(), 0, "empty leaf tables are pruned");
        assert!(pt.check_side_metadata().is_empty());
    }

    #[test]
    fn huge_mapping_covers_span() {
        let mut pt = PageTable::new();
        let base = VirtAddr(4 * PAGE_SIZE_2M);
        pt.map_2m(base, Pte::map(PhysAddr::new(2, 0), true));
        for off in [0u64, 4096, PAGE_SIZE_2M - 1] {
            let t = pt.translate(VirtAddr(base.0 + off)).unwrap();
            assert_eq!(t.size, FrameSize::Huge2M);
        }
        assert!(pt.translate(VirtAddr(base.0 + PAGE_SIZE_2M)).is_none());
    }

    #[test]
    fn for_each_mapped_respects_range() {
        let mut pt = PageTable::new();
        for i in 0..4u64 {
            pt.map_4k(VirtAddr(i * PAGE_SIZE_4K), pte4k(0, i * PAGE_SIZE_4K));
        }
        let r = VaRange::from_len(VirtAddr(PAGE_SIZE_4K), 2 * PAGE_SIZE_4K);
        let mut seen = Vec::new();
        pt.for_each_mapped(r, |va, _, _| seen.push(va.0 / PAGE_SIZE_4K));
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn vma_lookup() {
        let mut pt = PageTable::new();
        pt.mmap("a", VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M), true);
        pt.mmap("b", VaRange::from_len(VirtAddr(16 * PAGE_SIZE_2M), PAGE_SIZE_2M), false);
        assert_eq!(pt.vma_of(VirtAddr(100)).unwrap().name, "a");
        assert_eq!(pt.vma_of(VirtAddr(16 * PAGE_SIZE_2M + 5)).unwrap().name, "b");
        assert!(pt.vma_of(VirtAddr(8 * PAGE_SIZE_2M)).is_none());
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn vma_overlap_rejected() {
        let mut pt = PageTable::new();
        pt.mmap("a", VaRange::from_len(VirtAddr(0), PAGE_SIZE_2M), true);
        pt.mmap("b", VaRange::from_len(VirtAddr(PAGE_SIZE_4K), PAGE_SIZE_2M), true);
    }

    #[test]
    fn split_huge_preserves_frames_and_flags() {
        let mut pt = PageTable::new();
        let base = VirtAddr(0);
        let mut huge = Pte::map(PhysAddr::new(3, 0x20_0000), true);
        huge.set(crate::pte::PTE_ACCESSED);
        pt.map_2m(base, huge);
        assert!(pt.split_huge(VirtAddr(12345)));
        let t = pt.translate(VirtAddr(5 * PAGE_SIZE_4K)).unwrap();
        assert_eq!(t.size, FrameSize::Base4K);
        assert_eq!(t.pte.frame(), PhysAddr::new(3, 0x20_0000 + 5 * PAGE_SIZE_4K));
        assert!(t.pte.accessed(), "A bit carried to subpages");
        assert_eq!(pt.mapped_bytes(), PAGE_SIZE_2M);
        assert!(pt.check_side_metadata().is_empty(), "split syncs the bitmaps");
    }

    #[test]
    fn valid_pde_bases_sorted() {
        let mut pt = PageTable::new();
        pt.map_2m(VirtAddr(6 * PAGE_SIZE_2M), Pte::map(PhysAddr::new(0, 0), true));
        pt.map_4k(VirtAddr(PAGE_SIZE_2M), pte4k(0, 0x1000));
        let bases = pt.valid_pde_bases();
        assert_eq!(bases, vec![VirtAddr(PAGE_SIZE_2M), VirtAddr(6 * PAGE_SIZE_2M)]);
    }

    #[test]
    fn touch_and_scan_keep_side_metadata_in_sync() {
        let mut pt = PageTable::new();
        let va = VirtAddr(3 * PAGE_SIZE_4K);
        pt.map_4k(va, pte4k(0, 0x4000));
        assert_eq!(pt.accessed_at(va), Some((false, FrameSize::Base4K)));
        let (pre, size) = pt.touch(va, true).unwrap();
        assert!(!pre.accessed(), "touch returns the pre-access PTE");
        assert_eq!(size, FrameSize::Base4K);
        assert_eq!(pt.accessed_at(va), Some((true, FrameSize::Base4K)));
        assert!(pt.translate(va).unwrap().pte.dirty());
        assert!(pt.check_side_metadata().is_empty());
        let (was, _) = pt.scan_page_at(va).unwrap();
        assert!(was);
        assert_eq!(pt.accessed_at(va), Some((false, FrameSize::Base4K)));
        assert!(!pt.translate(va).unwrap().pte.accessed(), "scan clears the PTE bit too");
        assert!(pt.check_side_metadata().is_empty());
    }

    #[test]
    fn remap_with_history_syncs_bitmaps() {
        // A migration remap installs a PTE that already carries A/D.
        let mut pt = PageTable::new();
        let va = VirtAddr(0);
        let mut pte = pte4k(0, 0);
        pte.set(PTE_ACCESSED | PTE_DIRTY);
        pt.map_4k(va, pte);
        assert_eq!(pt.accessed_at(va), Some((true, FrameSize::Base4K)));
        assert!(pt.check_side_metadata().is_empty());
        pt.unmap(va).unwrap();
        assert!(pt.check_side_metadata().is_empty());
    }

    #[test]
    fn walks_cross_directory_boundaries_in_order() {
        let mut pt = PageTable::new();
        // One page in directory group 0, one in group 1 (offset 1 GB), one
        // in group 3.
        let gb = 1u64 << 30;
        for (i, base) in [0u64, gb, 3 * gb].iter().enumerate() {
            pt.map_4k(VirtAddr(base + PAGE_SIZE_4K), pte4k(0, (i as u64) * PAGE_SIZE_4K));
        }
        assert_eq!(pt.dir_count(), 4);
        let mut seen = Vec::new();
        pt.for_each_mapped_all(|va, _, _| seen.push(va.0));
        assert_eq!(seen, vec![PAGE_SIZE_4K, gb + PAGE_SIZE_4K, 3 * gb + PAGE_SIZE_4K]);
        let whole = VaRange::new(VirtAddr(0), VirtAddr(4 * gb));
        assert_eq!(pt.mapped_page_count(whole), 3);
        assert_eq!(pt.valid_pde_count(), 3);
    }

    #[test]
    fn save_load_round_trips_canonically() {
        let mut pt = PageTable::new();
        pt.mmap("heap", VaRange::from_len(VirtAddr(0), 8 * PAGE_SIZE_2M), true);
        pt.map_2m(VirtAddr(0), Pte::map(PhysAddr::new(2, 0x20_0000), true));
        let mut dirty = pte4k(0, 0x3000);
        dirty.set(PTE_ACCESSED | PTE_DIRTY);
        pt.map_4k(VirtAddr(3 * PAGE_SIZE_2M), dirty);
        pt.map_4k(VirtAddr(3 * PAGE_SIZE_2M + PAGE_SIZE_4K), pte4k(1, 0x5000));
        pt.touch(VirtAddr(4096), true);

        let mut w = obs::wire::Writer::new();
        pt.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = obs::wire::Reader::new(&bytes);
        let back = PageTable::load(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(back.mapped_bytes(), pt.mapped_bytes());
        assert_eq!(back.valid_pde_count(), pt.valid_pde_count());
        assert_eq!(back.vmas().len(), 1);
        assert!(back.check_side_metadata().is_empty());
        let mut orig = Vec::new();
        pt.for_each_mapped_all(|va, pte, size| orig.push((va, pte, size)));
        let mut loaded = Vec::new();
        back.for_each_mapped_all(|va, pte, size| loaded.push((va, pte, size)));
        assert_eq!(orig, loaded);
        // Canonical: re-saving reproduces identical bytes.
        let mut w2 = obs::wire::Writer::new();
        back.save(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn side_metadata_check_catches_drift() {
        let mut pt = PageTable::new();
        let va = VirtAddr(0);
        pt.map_4k(va, pte4k(0, 0));
        // Violate the contract: set ACCESSED behind the metadata's back.
        pt.pte_mut(va).unwrap().0.set(PTE_ACCESSED);
        let v = pt.check_side_metadata();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("accessed"), "{v:?}");
    }
}
