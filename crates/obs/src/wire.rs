//! Hermetic binary codec for traces and checkpoints.
//!
//! The scenario engine serializes two kinds of artifacts — recorded
//! access traces and simulation-state checkpoints — and both must be
//! deterministic down to the byte and readable years later without any
//! external crate. This module is the single shared encoding layer:
//! fixed-width little-endian scalars, `f64` via IEEE-754 bit patterns
//! (never decimal round-trips), LEB128 varints with zigzag for signed
//! deltas, and length-prefixed strings/blobs. Decoding is total: every
//! read returns `Result` and a truncated or corrupt buffer surfaces a
//! descriptive error instead of a panic.

/// Append-only byte sink for the wire encoding.
#[derive(Clone, Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a fixed-width little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a fixed-width little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a fixed-width little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes an unsigned LEB128 varint.
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Writes a signed value as a zigzag-encoded varint.
    pub fn zigzag(&mut self, v: i64) {
        self.varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Writes a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.varint(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Sequential decoder over an encoded buffer.
#[derive(Clone, Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless the whole buffer was consumed.
    pub fn finish(&self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!("wire: {} trailing bytes", self.buf.len() - self.pos))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "wire: truncated ({} bytes needed at offset {}, {} left)",
                n,
                self.pos,
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one raw byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads exactly `N` bytes into a fixed-size array. `take` already
    /// bounds-checks, so the conversion is checked rather than panicking:
    /// restore paths must surface corruption as `Err`, never abort.
    fn fixed_bytes<const N: usize>(&mut self) -> Result<[u8; N], String> {
        self.take(N)?
            .try_into()
            .map_err(|_| format!("wire: internal length error on {N}-byte field"))
    }

    /// Reads a fixed-width little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.fixed_bytes()?))
    }

    /// Reads a fixed-width little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.fixed_bytes()?))
    }

    /// Reads a fixed-width little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.fixed_bytes()?))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool (rejecting anything but 0 or 1).
    pub fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("wire: invalid bool byte {other}")),
        }
    }

    /// Reads an unsigned LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, String> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err("wire: varint overflows u64".into());
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err("wire: varint too long".into());
            }
        }
    }

    /// Reads a zigzag-encoded signed varint.
    pub fn zigzag(&mut self) -> Result<i64, String> {
        let v = self.varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], String> {
        let n = self.varint()?;
        if n > self.remaining() as u64 {
            return Err(format!("wire: blob length {n} exceeds {} remaining", self.remaining()));
        }
        self.take(n as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|e| format!("wire: invalid utf-8 string: {e}"))
    }
}

/// Interns a string, returning a `&'static str` with the same content.
///
/// Metric and event-reason names are `&'static str` throughout the
/// workspace; deserialized state must produce the same static lifetime.
/// Interning dedupes through a process-wide table so repeated loads never
/// grow memory beyond the set of distinct names, and every consumer that
/// orders by name (`BTreeMap<&'static str, _>`) is unaffected because
/// `str` ordering compares content, not pointer identity.
pub fn intern(s: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock};
    static TABLE: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    // Poison recovery is sound here: the table only ever accumulates
    // leaked strings, so a panicked inserter cannot leave it in a state
    // where dedup against the surviving entries is wrong.
    let mut table = TABLE
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    if let Some(&existing) = table.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    table.insert(leaked);
    leaked
}

/// FNV-1a over a byte string — the workspace's standard cheap stable hash,
/// used for config digests guarding checkpoint/trace compatibility.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(u64::MAX - 3);
        w.f64(-0.1);
        w.bool(true);
        w.bool(false);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        r.finish().unwrap();
    }

    #[test]
    fn varints_round_trip_across_magnitudes() {
        let mut w = Writer::new();
        let values = [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX];
        for &v in &values {
            w.varint(v);
        }
        let signed = [0i64, -1, 1, -64, 64, i64::MIN, i64::MAX];
        for &v in &signed {
            w.zigzag(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for &v in &values {
            assert_eq!(r.varint().unwrap(), v);
        }
        for &v in &signed {
            assert_eq!(r.zigzag().unwrap(), v);
        }
        r.finish().unwrap();
    }

    #[test]
    fn strings_and_blobs_round_trip() {
        let mut w = Writer::new();
        w.str("tpcc.orderlog");
        w.bytes(&[1, 2, 3]);
        w.str("");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.str().unwrap(), "tpcc.orderlog");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.str().unwrap(), "");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.u64(42);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        assert!(r.u64().is_err());
        // Blob length beyond the buffer is rejected up front.
        let mut w = Writer::new();
        w.varint(1_000_000);
        let bytes = w.into_bytes();
        assert!(Reader::new(&bytes).bytes().is_err());
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let mut w = Writer::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        r.u8().unwrap();
        assert!(r.finish().is_err());
        r.u8().unwrap();
        assert!(r.finish().is_ok());
    }

    #[test]
    fn intern_dedupes_and_preserves_content() {
        let a = intern("scenario_test_name_a");
        let b = intern(&String::from("scenario_test_name_a"));
        assert!(std::ptr::eq(a, b));
        assert_eq!(a, "scenario_test_name_a");
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), fnv1a(b"a"));
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
