//! Per-run telemetry snapshots and their JSON export.
//!
//! A [`RunTelemetry`] is assembled once per simulated run from the
//! machine's [`crate::Recorder`] plus the per-interval series the driver
//! collects, travels inside the run report through the harness's
//! single-flight cache, and serializes to one deterministic JSON document
//! under `results/telemetry/` when `MTM_TELEMETRY=1`.

use crate::json;
use crate::metrics::Registry;
use crate::ring::Event;

/// Top-level keys every serialized telemetry document carries, in order.
/// `scripts/verify.sh` (via the harness `telemetry_check` bin) validates
/// emitted files against this list.
pub const REQUIRED_KEYS: [&str; 8] = [
    "manager",
    "workload",
    "counters",
    "gauges",
    "histograms",
    "events",
    "events_dropped",
    "series",
];

/// Per-interval time series sampled by the scenario driver.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IntervalSeries {
    /// Wall-clock (virtual) length of each interval, application time.
    pub wall_ns: Vec<f64>,
    /// Profiling overhead as a percentage of each interval's total
    /// virtual time (app + profiling + migration).
    pub overhead_pct: Vec<f64>,
    /// Bytes migrated during each interval.
    pub migrated_bytes: Vec<u64>,
    /// Used bytes per memory component at the end of each interval.
    pub occupancy: Vec<Vec<u64>>,
}

impl IntervalSeries {
    /// Number of recorded intervals.
    pub fn len(&self) -> usize {
        self.wall_ns.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.wall_ns.is_empty()
    }

    /// Serializes the series (checkpoint support).
    pub fn save(&self, w: &mut crate::wire::Writer) {
        w.varint(self.wall_ns.len() as u64);
        for &v in &self.wall_ns {
            w.f64(v);
        }
        w.varint(self.overhead_pct.len() as u64);
        for &v in &self.overhead_pct {
            w.f64(v);
        }
        w.varint(self.migrated_bytes.len() as u64);
        for &v in &self.migrated_bytes {
            w.varint(v);
        }
        w.varint(self.occupancy.len() as u64);
        for snap in &self.occupancy {
            w.varint(snap.len() as u64);
            for &v in snap {
                w.varint(v);
            }
        }
    }

    /// Restores a series saved with [`IntervalSeries::save`].
    pub fn load(r: &mut crate::wire::Reader) -> Result<IntervalSeries, String> {
        let mut s = IntervalSeries::default();
        for _ in 0..r.varint()? {
            s.wall_ns.push(r.f64()?);
        }
        for _ in 0..r.varint()? {
            s.overhead_pct.push(r.f64()?);
        }
        for _ in 0..r.varint()? {
            s.migrated_bytes.push(r.varint()?);
        }
        for _ in 0..r.varint()? {
            let n = r.varint()? as usize;
            let mut snap = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                snap.push(r.varint()?);
            }
            s.occupancy.push(snap);
        }
        Ok(s)
    }
}

/// Everything observable about one simulated run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunTelemetry {
    /// Manager name (as reported by the manager itself).
    pub manager: String,
    /// Workload name.
    pub workload: String,
    /// Final counter/gauge/histogram values.
    pub registry: Registry,
    /// Retained decision events, oldest first.
    pub events: Vec<Event>,
    /// Events shed by the bounded ring.
    pub events_dropped: u64,
    /// Per-interval series.
    pub series: IntervalSeries,
}

impl RunTelemetry {
    /// Serializes the snapshot as one deterministic JSON document
    /// (trailing newline included, ready to write to disk).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"manager\": ");
        json::write_str(&self.manager, &mut out);
        out.push_str(",\n  \"workload\": ");
        json::write_str(&self.workload, &mut out);

        out.push_str(",\n  \"counters\": {");
        for (i, (name, v)) in self.registry.counters().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json::write_str(name, &mut out);
            out.push_str(": ");
            out.push_str(&v.to_string());
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.registry.gauges().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json::write_str(name, &mut out);
            out.push_str(": ");
            json::write_f64(v, &mut out);
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.registry.hists().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json::write_str(name, &mut out);
            out.push_str(&format!(
                ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                h.count(),
                h.sum(),
                h.min(),
                h.max()
            ));
            for (j, (bucket, count)) in h.nonzero_buckets().into_iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{bucket}, {count}]"));
            }
            out.push_str("]}");
        }

        out.push_str("\n  },\n  \"events\": [");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            ev.write_json(&mut out);
        }
        out.push_str("\n  ],\n  \"events_dropped\": ");
        out.push_str(&self.events_dropped.to_string());

        out.push_str(",\n  \"series\": {\n    \"wall_ns\": ");
        write_f64_array(&self.series.wall_ns, &mut out);
        out.push_str(",\n    \"overhead_pct\": ");
        write_f64_array(&self.series.overhead_pct, &mut out);
        out.push_str(",\n    \"migrated_bytes\": ");
        write_u64_array(&self.series.migrated_bytes, &mut out);
        out.push_str(",\n    \"occupancy\": [");
        for (i, snap) in self.series.occupancy.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_u64_array(snap, &mut out);
        }
        out.push_str("]\n  }\n}\n");
        out
    }
}

fn write_f64_array(vals: &[f64], out: &mut String) {
    out.push('[');
    for (i, &v) in vals.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        json::write_f64(v, out);
    }
    out.push(']');
}

fn write_u64_array(vals: &[u64], out: &mut String) {
    out.push('[');
    for (i, &v) in vals.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::names;
    use crate::ring::EventKind;

    fn sample() -> RunTelemetry {
        let mut reg = Registry::new();
        reg.counter_add(names::PROMOTIONS, 2);
        reg.gauge_set(names::TAU_M_NOW, 1.25);
        reg.observe(names::MIGRATION_BYTES, 1 << 21);
        RunTelemetry {
            manager: "MTM".into(),
            workload: "GUPS".into(),
            registry: reg,
            events: vec![Event {
                interval: 1,
                t_ns: 2.5e6,
                kind: EventKind::AsyncClean { bytes: 1 << 21, dst: 0 },
            }],
            events_dropped: 0,
            series: IntervalSeries {
                wall_ns: vec![1.0e6, 1.1e6],
                overhead_pct: vec![4.2, 3.9],
                migrated_bytes: vec![0, 1 << 21],
                occupancy: vec![vec![100, 200], vec![300, 0]],
            },
        }
    }

    #[test]
    fn json_has_all_required_keys_and_parses() {
        let doc = sample().to_json();
        let v = json::parse(&doc).expect("valid JSON");
        for key in REQUIRED_KEYS {
            assert!(v.get(key).is_some(), "missing top-level key {key:?}");
        }
        assert_eq!(v.get("manager").unwrap().as_str(), Some("MTM"));
        assert_eq!(
            v.get("counters").unwrap().get(names::PROMOTIONS).unwrap().as_num(),
            Some(2.0)
        );
        assert_eq!(v.get("events").unwrap().as_arr().unwrap().len(), 1);
        let occ = v.get("series").unwrap().get("occupancy").unwrap().as_arr().unwrap();
        assert_eq!(occ.len(), 2);
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn empty_telemetry_still_serializes_validly() {
        let doc = RunTelemetry::default().to_json();
        let v = json::parse(&doc).expect("valid JSON");
        for key in REQUIRED_KEYS {
            assert!(v.get(key).is_some(), "missing top-level key {key:?}");
        }
    }
}
