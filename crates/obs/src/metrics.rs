//! Static-registry metrics: counters, gauges, log-scaled histograms and
//! virtual-time span timers.
//!
//! Metric names are `&'static str` constants declared once in [`names`],
//! so the set of metrics is closed at compile time and every emitter and
//! consumer agrees on spelling. Values live in a per-run [`Registry`]
//! (deterministic, keyed by a `BTreeMap` so snapshots serialize in a
//! stable order); the only process-wide state is the tiny [`shared`]
//! registry used for harness run-cache accounting.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Every metric name used across the workspace, in one place.
pub mod names {
    // -- process-wide (shared registry): harness run cache --------------
    /// Runs actually executed by the single-flight cache.
    pub const RUN_CACHE_MISSES: &str = "run_cache_misses";
    /// Runs answered from a completed cache entry.
    pub const RUN_CACHE_HITS: &str = "run_cache_hits";
    /// Callers that waited on an in-flight run instead of re-executing.
    pub const RUN_CACHE_COALESCED: &str = "run_cache_coalesced";

    // -- per-run counters: simulated machine ----------------------------
    /// First-touch allocation faults.
    pub const ALLOC_FAULTS: &str = "alloc_faults";
    /// NUMA hint faults taken.
    pub const HINT_FAULTS: &str = "hint_faults";
    /// Protection faults (HMC front-buffer style managers).
    pub const PROT_FAULTS: &str = "prot_faults";
    /// Write-protection faults (async-migration dirty tracking).
    pub const WP_FAULTS: &str = "wp_faults";
    /// PTE accessed-bit scans performed.
    pub const PTE_SCANS: &str = "pte_scans";
    /// TLB shootdowns issued.
    pub const TLB_FLUSHES: &str = "tlb_flushes";
    /// Pages moved between components (huge pages count once).
    pub const PAGES_MIGRATED: &str = "pages_migrated";
    /// Bytes moved between components.
    pub const BYTES_MIGRATED: &str = "bytes_migrated";
    /// Successful `relocate_range` calls.
    pub const MIGRATIONS: &str = "migrations";
    /// PEBS samples taken by the sampling unit (buffered or dropped).
    pub const PEBS_SAMPLES_TAKEN: &str = "pebs_samples_taken";
    /// PEBS samples lost to buffer overflow.
    pub const PEBS_SAMPLES_DROPPED: &str = "pebs_samples_dropped";
    /// PEBS samples delivered to a consumer via drain.
    pub const PEBS_SAMPLES_DRAINED: &str = "pebs_samples_drained";
    /// Hint-fault records delivered to a consumer via drain.
    pub const HINT_FAULTS_DRAINED: &str = "hint_faults_drained";

    // -- per-run counters: profiler / policy / migration decisions ------
    /// Regions merged away by the merge pass.
    pub const REGIONS_MERGED: &str = "regions_merged";
    /// Regions created by the split pass.
    pub const REGIONS_SPLIT: &str = "regions_split";
    /// Intervals in which τm was escalated above its configured base.
    pub const TAU_M_ESCALATIONS: &str = "tau_m_escalations";
    /// Quota redistributions after merges freed sampling budget.
    pub const QUOTA_REDISTRIBUTIONS: &str = "quota_redistributions";
    /// Region splits forced by counter-assisted (PEBS) zooming.
    pub const PEBS_ZOOM_SPLITS: &str = "pebs_zoom_splits";
    /// Promotion migrations issued by a policy.
    pub const PROMOTIONS: &str = "promotions";
    /// Bytes promoted toward faster tiers.
    pub const PROMOTED_BYTES: &str = "promoted_bytes";
    /// Demotion migrations issued by a policy.
    pub const DEMOTIONS: &str = "demotions";
    /// Bytes demoted toward slower tiers.
    pub const DEMOTED_BYTES: &str = "demoted_bytes";
    /// Async migrations that completed without a dirtying write.
    pub const ASYNC_CLEAN: &str = "migrations_async_clean";
    /// Async migrations switched to a synchronous re-copy by a write.
    pub const SWITCHED_SYNC: &str = "migrations_switched_sync";
    /// Migrations executed synchronously from the start.
    pub const SYNC_DIRECT: &str = "migrations_sync_direct";
    /// Migrations dropped (no space, empty range, lost watch).
    pub const MIGRATIONS_DROPPED: &str = "migrations_dropped";

    // -- per-run counters: fault injection & resilience ------------------
    /// Migration attempts failed with an injected transient page-busy.
    pub const FAULT_PAGE_BUSY: &str = "fault_page_busy_injected";
    /// Migration attempts failed with an injected transient alloc failure.
    pub const FAULT_ALLOC_FAIL: &str = "fault_alloc_fail_injected";
    /// PEBS samples lost to injected drain drops.
    pub const FAULT_PEBS_LOST: &str = "fault_pebs_samples_lost";
    /// Hint-fault records lost to injected drain drops.
    pub const FAULT_HINTS_LOST: &str = "fault_hint_faults_lost";
    /// Migration attempts re-issued after a transient failure.
    pub const MIGRATION_RETRIES: &str = "migration_retries";
    /// Async migrations aborted transactionally and re-enqueued.
    pub const MIGRATION_ABORTS: &str = "migrations_aborted";
    /// Sync migrations downgraded to async after retry exhaustion.
    pub const MIGRATION_DEFERRALS: &str = "migrations_deferred";
    /// Migrations dropped after exhausting every resilience mechanism.
    pub const MIGRATIONS_DROPPED_TRANSIENT: &str = "migrations_dropped_transient";

    // -- per-run counters: admission control & shadow copies --------------
    /// Candidate batches rejected by the admission policy.
    pub const ADMIT_REJECTED: &str = "admit_rejected";
    /// Bytes in candidate batches rejected by the admission policy.
    pub const ADMIT_REJECTED_BYTES: &str = "admit_rejected_bytes";
    /// Repromotions satisfied from a clean fast-tier shadow copy.
    pub const SHADOW_HITS: &str = "shadow_hits";
    /// Bytes repromoted with zero copy traffic via shadow hits.
    pub const SHADOW_HIT_BYTES: &str = "shadow_hit_bytes";
    /// Shadow copies invalidated (dirtied, reclaimed or discarded).
    pub const SHADOW_INVALIDATIONS: &str = "shadow_invalidations";
    /// Bytes copied for pages that had bounced between tiers recently.
    pub const WASTED_MIGRATION_BYTES: &str = "wasted_migration_bytes";

    // -- per-run gauges --------------------------------------------------
    /// τm at the end of the run (after any escalation/reset).
    pub const TAU_M_NOW: &str = "tau_m_now";
    /// Region count at the end of the run.
    pub const REGION_COUNT: &str = "region_count";
    /// Planned samples (num_ps, Eq. 1) for the last interval.
    pub const LAST_NUM_PS: &str = "last_num_ps";
    /// Peak number of simultaneously poisoned hint-fault PTEs.
    pub const HINT_POISONED_PEAK: &str = "hint_poisoned_peak";

    // -- per-run histograms ----------------------------------------------
    /// Bytes per successful range relocation.
    pub const MIGRATION_BYTES: &str = "migration_bytes";
    /// Samples per PEBS drain.
    pub const PEBS_DRAIN_BATCH: &str = "pebs_drain_batch";
    /// Records per hint-fault drain.
    pub const HINT_DRAIN_BATCH: &str = "hint_drain_batch";
    /// Virtual ns of backoff charged per retried migration.
    pub const RETRY_BACKOFF_NS: &str = "retry_backoff_ns";
    /// Virtual ns of profiling work per manager interval hook.
    pub const SPAN_PROFILE_NS: &str = "span_profile_ns";
    /// Virtual ns of migration work per manager interval hook.
    pub const SPAN_MIGRATE_NS: &str = "span_migrate_ns";
}

/// A log-scaled histogram over `u64` observations.
///
/// Bucket 0 holds the value 0; bucket `b > 0` holds values in
/// `[2^(b-1), 2^b)` — the same power-of-two bucketing style as the bench
/// harness's latency statistics, but accumulated online.
#[derive(Clone, Debug, PartialEq)]
pub struct LogHistogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram { buckets: [0; 65], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// The bucket index a value falls into.
    pub fn bucket_index(v: u64) -> usize {
        match v {
            0 => 0,
            _ => v.ilog2() as usize + 1,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Occupied buckets as `(bucket_index, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Serializes the raw accumulator state (buckets verbatim, including
    /// the `u64::MAX` empty-min sentinel) into `w`.
    pub fn save(&self, w: &mut crate::wire::Writer) {
        for &b in &self.buckets {
            w.varint(b);
        }
        w.varint(self.count);
        w.varint(self.sum);
        w.u64(self.min);
        w.u64(self.max);
    }

    /// Restores a histogram saved with [`LogHistogram::save`].
    pub fn load(r: &mut crate::wire::Reader) -> Result<LogHistogram, String> {
        let mut h = LogHistogram::default();
        for b in h.buckets.iter_mut() {
            *b = r.varint()?;
        }
        h.count = r.varint()?;
        h.sum = r.varint()?;
        h.min = r.u64()?;
        h.max = r.u64()?;
        Ok(h)
    }

    /// Accumulates another histogram into this one.
    pub fn merge_from(&mut self, other: &LogHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A deterministic per-run metrics registry.
///
/// All maps are `BTreeMap<&'static str, _>`: iteration (and therefore
/// JSON serialization) order is the lexicographic name order, independent
/// of insertion order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, LogHistogram>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `v` to the monotonic counter `name`.
    pub fn counter_add(&mut self, name: &'static str, v: u64) {
        *self.counters.entry(name).or_insert(0) += v;
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `v` (last write wins).
    pub fn gauge_set(&mut self, name: &'static str, v: f64) {
        self.gauges.insert(name, v);
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records `v` into histogram `name`.
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.hists.entry(name).or_default().observe(v);
    }

    /// Histogram `name`, if any observation was recorded.
    pub fn hist(&self, name: &str) -> Option<&LogHistogram> {
        self.hists.get(name)
    }

    /// Counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// Histograms in name order.
    pub fn hists(&self) -> impl Iterator<Item = (&'static str, &LogHistogram)> + '_ {
        self.hists.iter().map(|(&k, v)| (k, v))
    }

    /// Accumulates another registry: counters and histograms sum, gauges
    /// keep the maximum (the only cross-run reduction that is
    /// order-insensitive for a last-value metric).
    pub fn merge_from(&mut self, other: &Registry) {
        for (&k, &v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.gauges {
            let e = self.gauges.entry(k).or_insert(f64::NEG_INFINITY);
            *e = e.max(v);
        }
        for (&k, h) in &other.hists {
            self.hists.entry(k).or_default().merge_from(h);
        }
    }

    /// True if nothing has ever been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Serializes the registry (names included) into `w`.
    pub fn save(&self, w: &mut crate::wire::Writer) {
        w.varint(self.counters.len() as u64);
        for (&k, &v) in &self.counters {
            w.str(k);
            w.varint(v);
        }
        w.varint(self.gauges.len() as u64);
        for (&k, &v) in &self.gauges {
            w.str(k);
            w.f64(v);
        }
        w.varint(self.hists.len() as u64);
        for (&k, h) in &self.hists {
            w.str(k);
            h.save(w);
        }
    }

    /// Restores a registry saved with [`Registry::save`]. Metric names are
    /// interned back to `&'static str`; map order is content order, so the
    /// result is equal to the saved registry regardless of load history.
    pub fn load(r: &mut crate::wire::Reader) -> Result<Registry, String> {
        let mut reg = Registry::new();
        for _ in 0..r.varint()? {
            let name = crate::wire::intern(&r.str()?);
            let v = r.varint()?;
            reg.counters.insert(name, v);
        }
        for _ in 0..r.varint()? {
            let name = crate::wire::intern(&r.str()?);
            let v = r.f64()?;
            reg.gauges.insert(name, v);
        }
        for _ in 0..r.varint()? {
            let name = crate::wire::intern(&r.str()?);
            let h = LogHistogram::load(r)?;
            reg.hists.insert(name, h);
        }
        Ok(reg)
    }
}

/// Measures a span of *virtual* time.
///
/// The caller supplies the clock reading at start and stop (typically
/// `Machine::elapsed_ns()`, i.e. `tiersim::clock` virtual nanoseconds);
/// the timer itself never reads a wall clock, so spans are deterministic
/// and instrumentation cannot perturb simulated results.
#[derive(Clone, Copy, Debug)]
pub struct SpanTimer {
    start_ns: f64,
}

impl SpanTimer {
    /// Opens a span at virtual time `now_ns`.
    pub fn start(now_ns: f64) -> SpanTimer {
        SpanTimer { start_ns: now_ns }
    }

    /// Closes the span at virtual time `now_ns`, recording the elapsed
    /// virtual nanoseconds into histogram `hist`. Returns the elapsed ns.
    pub fn stop(self, reg: &mut Registry, hist: &'static str, now_ns: f64) -> f64 {
        let elapsed = (now_ns - self.start_ns).max(0.0);
        reg.observe(hist, elapsed as u64);
        elapsed
    }
}

/// The process-wide shared registry: thread-safe monotonic counters.
///
/// Deliberately tiny — only cross-run bookkeeping (the harness's
/// single-flight run cache) belongs here. Everything tied to a simulated
/// run must go in the per-run [`Registry`] instead, or telemetry would
/// depend on what else ran in the process.
#[derive(Debug)]
pub struct SharedRegistry {
    counters: Mutex<BTreeMap<&'static str, u64>>,
}

static SHARED: SharedRegistry = SharedRegistry { counters: Mutex::new(BTreeMap::new()) };

/// The process-wide shared registry.
pub fn shared() -> &'static SharedRegistry {
    &SHARED
}

impl SharedRegistry {
    /// Adds `v` to the shared counter `name`.
    pub fn add(&self, name: &'static str, v: u64) {
        let mut c = self.counters.lock().expect("shared registry lock");
        *c.entry(name).or_insert(0) += v;
    }

    /// Current value of shared counter `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.lock().expect("shared registry lock").get(name).copied().unwrap_or(0)
    }

    /// All shared counters in name order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        self.counters
            .lock()
            .expect("shared registry lock")
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_buckets_are_powers_of_two() {
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 1);
        assert_eq!(LogHistogram::bucket_index(2), 2);
        assert_eq!(LogHistogram::bucket_index(3), 2);
        assert_eq!(LogHistogram::bucket_index(4), 3);
        assert_eq!(LogHistogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let mut h = LogHistogram::new();
        assert_eq!(h.min(), 0);
        for v in [5u64, 0, 700, 5] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 710);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 700);
        // 0 -> bucket 0; 5,5 -> bucket 3; 700 -> bucket 10.
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (3, 2), (10, 1)]);
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = LogHistogram::new();
        a.observe(8);
        let mut b = LogHistogram::new();
        b.observe(1);
        b.observe(9);
        a.merge_from(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 9);
        assert_eq!(a.sum(), 18);
    }

    #[test]
    fn registry_is_insertion_order_independent() {
        let mut a = Registry::new();
        a.counter_add(names::MIGRATIONS, 1);
        a.counter_add(names::ALLOC_FAULTS, 2);
        let mut b = Registry::new();
        b.counter_add(names::ALLOC_FAULTS, 2);
        b.counter_add(names::MIGRATIONS, 1);
        assert_eq!(a, b);
        let keys: Vec<_> = a.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![names::ALLOC_FAULTS, names::MIGRATIONS]);
    }

    #[test]
    fn registry_merge_sums_counters_and_maxes_gauges() {
        let mut a = Registry::new();
        a.counter_add(names::PROMOTIONS, 3);
        a.gauge_set(names::TAU_M_NOW, 1.0);
        a.observe(names::MIGRATION_BYTES, 4096);
        let mut b = Registry::new();
        b.counter_add(names::PROMOTIONS, 4);
        b.gauge_set(names::TAU_M_NOW, 2.5);
        b.observe(names::MIGRATION_BYTES, 8192);
        a.merge_from(&b);
        assert_eq!(a.counter(names::PROMOTIONS), 7);
        assert_eq!(a.gauge(names::TAU_M_NOW), Some(2.5));
        assert_eq!(a.hist(names::MIGRATION_BYTES).unwrap().count(), 2);
    }

    #[test]
    fn span_timer_charges_virtual_time() {
        let mut reg = Registry::new();
        let t = SpanTimer::start(1000.0);
        let elapsed = t.stop(&mut reg, names::SPAN_PROFILE_NS, 1600.0);
        assert_eq!(elapsed, 600.0);
        let h = reg.hist(names::SPAN_PROFILE_NS).unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 600);
        // A span can never go backwards even if the clock reading does.
        let t = SpanTimer::start(1000.0);
        assert_eq!(t.stop(&mut reg, names::SPAN_PROFILE_NS, 900.0), 0.0);
    }

    #[test]
    fn shared_registry_counts_across_threads() {
        // Use a name no other test touches to stay order-independent.
        const NAME: &str = "test_shared_counter";
        let before = shared().get(NAME);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| shared().add(NAME, 5));
            }
        });
        assert_eq!(shared().get(NAME) - before, 20);
        assert!(shared().snapshot().iter().any(|&(k, _)| k == NAME));
    }
}
