//! Bounded ring buffer of typed decision events.
//!
//! Every entry records *what a manager decided* in one interval — not raw
//! samples — so a full run's decision history fits in a fixed budget. On
//! overflow the oldest events are overwritten and counted, never silently
//! lost: a snapshot always reports how much history was shed.

use std::collections::VecDeque;

use crate::json;

/// Component identifier as recorded in events (mirrors
/// `tiersim::tier::ComponentId` without depending on it).
pub type ComponentId = u16;

/// A typed decision event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// The merge pass collapsed `merged` regions, freeing `freed_quota`
    /// sampling quota.
    RegionMerge { merged: u64, freed_quota: u64 },
    /// The split pass created `split` new regions.
    RegionSplit { split: u64 },
    /// τm escalated because the region count exceeded the Eq. 1 sampling
    /// budget.
    TauMEscalated { tau_m: f64, regions: u64, budget: u64 },
    /// Sampling quota freed by merges was redistributed to high-variance
    /// regions.
    QuotaRedistributed { freed: u64 },
    /// Counter-assisted (PEBS) zooming isolated hot chunks out of larger
    /// regions.
    PebsZoomSplit { splits: u64 },
    /// A policy promoted `bytes` from component `src` to `dst`.
    Promotion { bytes: u64, src: ComponentId, dst: ComponentId },
    /// A policy demoted `bytes` from component `src` to `dst`.
    Demotion { bytes: u64, src: ComponentId, dst: ComponentId },
    /// An async migration resolved cleanly off the critical path.
    AsyncClean { bytes: u64, dst: ComponentId },
    /// An async migration was dirtied in flight and re-copied
    /// synchronously on the critical path.
    SwitchedSync { bytes: u64, dst: ComponentId },
    /// A migration executed synchronously from the start.
    SyncDirect { bytes: u64, dst: ComponentId },
    /// A requested migration was dropped (`reason`: "nospace", "empty" or
    /// "lost-watch").
    MigrationDropped { reason: &'static str },
    /// A migration succeeded only after `retries` transient failures,
    /// spending `backoff_ns` of virtual time backing off.
    MigrationRetried { retries: u64, backoff_ns: u64 },
    /// An in-flight async migration hit a transient fault, aborted
    /// transactionally (nothing moved) and was re-enqueued.
    MigrationAborted { bytes: u64, dst: ComponentId },
    /// A synchronous migration exhausted its retry budget and was
    /// downgraded to an asynchronous attempt (graceful degradation).
    MigrationDeferred { bytes: u64, dst: ComponentId },
    /// The admission policy rejected a candidate batch before it reached
    /// the migration engine (`reason` names the policy that vetoed it).
    AdmissionRejected { bytes: u64, dst: ComponentId, reason: &'static str },
    /// A repromotion was satisfied from a clean shadow copy retained in
    /// the fast tier — zero bytes crossed the interconnect.
    ShadowHit { bytes: u64, dst: ComponentId },
}

impl EventKind {
    /// Stable machine-readable name of this event type.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::RegionMerge { .. } => "region_merge",
            EventKind::RegionSplit { .. } => "region_split",
            EventKind::TauMEscalated { .. } => "tau_m_escalated",
            EventKind::QuotaRedistributed { .. } => "quota_redistributed",
            EventKind::PebsZoomSplit { .. } => "pebs_zoom_split",
            EventKind::Promotion { .. } => "promotion",
            EventKind::Demotion { .. } => "demotion",
            EventKind::AsyncClean { .. } => "async_clean",
            EventKind::SwitchedSync { .. } => "switched_sync",
            EventKind::SyncDirect { .. } => "sync_direct",
            EventKind::MigrationDropped { .. } => "migration_dropped",
            EventKind::MigrationRetried { .. } => "migration_retried",
            EventKind::MigrationAborted { .. } => "migration_aborted",
            EventKind::MigrationDeferred { .. } => "migration_deferred",
            EventKind::AdmissionRejected { .. } => "admission_rejected",
            EventKind::ShadowHit { .. } => "shadow_hit",
        }
    }

    /// Serializes this kind as a stable tag byte plus its payload.
    pub fn save(&self, w: &mut crate::wire::Writer) {
        match *self {
            EventKind::RegionMerge { merged, freed_quota } => {
                w.u8(0);
                w.varint(merged);
                w.varint(freed_quota);
            }
            EventKind::RegionSplit { split } => {
                w.u8(1);
                w.varint(split);
            }
            EventKind::TauMEscalated { tau_m, regions, budget } => {
                w.u8(2);
                w.f64(tau_m);
                w.varint(regions);
                w.varint(budget);
            }
            EventKind::QuotaRedistributed { freed } => {
                w.u8(3);
                w.varint(freed);
            }
            EventKind::PebsZoomSplit { splits } => {
                w.u8(4);
                w.varint(splits);
            }
            EventKind::Promotion { bytes, src, dst } => {
                w.u8(5);
                w.varint(bytes);
                w.u16(src);
                w.u16(dst);
            }
            EventKind::Demotion { bytes, src, dst } => {
                w.u8(6);
                w.varint(bytes);
                w.u16(src);
                w.u16(dst);
            }
            EventKind::AsyncClean { bytes, dst } => {
                w.u8(7);
                w.varint(bytes);
                w.u16(dst);
            }
            EventKind::SwitchedSync { bytes, dst } => {
                w.u8(8);
                w.varint(bytes);
                w.u16(dst);
            }
            EventKind::SyncDirect { bytes, dst } => {
                w.u8(9);
                w.varint(bytes);
                w.u16(dst);
            }
            EventKind::MigrationDropped { reason } => {
                w.u8(10);
                w.str(reason);
            }
            EventKind::MigrationRetried { retries, backoff_ns } => {
                w.u8(11);
                w.varint(retries);
                w.varint(backoff_ns);
            }
            EventKind::MigrationAborted { bytes, dst } => {
                w.u8(12);
                w.varint(bytes);
                w.u16(dst);
            }
            EventKind::MigrationDeferred { bytes, dst } => {
                w.u8(13);
                w.varint(bytes);
                w.u16(dst);
            }
            EventKind::AdmissionRejected { bytes, dst, reason } => {
                w.u8(14);
                w.varint(bytes);
                w.u16(dst);
                w.str(reason);
            }
            EventKind::ShadowHit { bytes, dst } => {
                w.u8(15);
                w.varint(bytes);
                w.u16(dst);
            }
        }
    }

    /// Restores a kind saved with [`EventKind::save`]. Reason strings are
    /// interned back to `&'static str`.
    pub fn load(r: &mut crate::wire::Reader) -> Result<EventKind, String> {
        Ok(match r.u8()? {
            0 => EventKind::RegionMerge { merged: r.varint()?, freed_quota: r.varint()? },
            1 => EventKind::RegionSplit { split: r.varint()? },
            2 => EventKind::TauMEscalated {
                tau_m: r.f64()?,
                regions: r.varint()?,
                budget: r.varint()?,
            },
            3 => EventKind::QuotaRedistributed { freed: r.varint()? },
            4 => EventKind::PebsZoomSplit { splits: r.varint()? },
            5 => EventKind::Promotion { bytes: r.varint()?, src: r.u16()?, dst: r.u16()? },
            6 => EventKind::Demotion { bytes: r.varint()?, src: r.u16()?, dst: r.u16()? },
            7 => EventKind::AsyncClean { bytes: r.varint()?, dst: r.u16()? },
            8 => EventKind::SwitchedSync { bytes: r.varint()?, dst: r.u16()? },
            9 => EventKind::SyncDirect { bytes: r.varint()?, dst: r.u16()? },
            10 => EventKind::MigrationDropped { reason: crate::wire::intern(&r.str()?) },
            11 => EventKind::MigrationRetried { retries: r.varint()?, backoff_ns: r.varint()? },
            12 => EventKind::MigrationAborted { bytes: r.varint()?, dst: r.u16()? },
            13 => EventKind::MigrationDeferred { bytes: r.varint()?, dst: r.u16()? },
            14 => EventKind::AdmissionRejected {
                bytes: r.varint()?,
                dst: r.u16()?,
                reason: crate::wire::intern(&r.str()?),
            },
            15 => EventKind::ShadowHit { bytes: r.varint()?, dst: r.u16()? },
            other => return Err(format!("event: unknown kind tag {other}")),
        })
    }

    /// Appends this kind's payload fields as JSON object members
    /// (`,"k":v` ...) to `out`.
    fn write_json_fields(&self, out: &mut String) {
        let mut u = |k: &str, v: u64| {
            out.push_str(",\"");
            out.push_str(k);
            out.push_str("\":");
            out.push_str(&v.to_string());
        };
        match *self {
            EventKind::RegionMerge { merged, freed_quota } => {
                u("merged", merged);
                u("freed_quota", freed_quota);
            }
            EventKind::RegionSplit { split } => u("split", split),
            EventKind::TauMEscalated { tau_m, regions, budget } => {
                u("regions", regions);
                u("budget", budget);
                out.push_str(",\"tau_m\":");
                json::write_f64(tau_m, out);
            }
            EventKind::QuotaRedistributed { freed } => u("freed", freed),
            EventKind::PebsZoomSplit { splits } => u("splits", splits),
            EventKind::Promotion { bytes, src, dst } | EventKind::Demotion { bytes, src, dst } => {
                u("bytes", bytes);
                u("src", src as u64);
                u("dst", dst as u64);
            }
            EventKind::AsyncClean { bytes, dst }
            | EventKind::SwitchedSync { bytes, dst }
            | EventKind::SyncDirect { bytes, dst } => {
                u("bytes", bytes);
                u("dst", dst as u64);
            }
            EventKind::MigrationDropped { reason } => {
                out.push_str(",\"reason\":");
                json::write_str(reason, out);
            }
            EventKind::MigrationRetried { retries, backoff_ns } => {
                u("retries", retries);
                u("backoff_ns", backoff_ns);
            }
            EventKind::MigrationAborted { bytes, dst }
            | EventKind::MigrationDeferred { bytes, dst }
            | EventKind::ShadowHit { bytes, dst } => {
                u("bytes", bytes);
                u("dst", dst as u64);
            }
            EventKind::AdmissionRejected { bytes, dst, reason } => {
                u("bytes", bytes);
                u("dst", dst as u64);
                out.push_str(",\"reason\":");
                json::write_str(reason, out);
            }
        }
    }
}

/// One recorded event, stamped with the profiling interval it happened in
/// (intervals committed so far) and the virtual time on the machine clock.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// Profiling intervals committed when the event was recorded.
    pub interval: u64,
    /// Virtual nanoseconds on the machine clock.
    pub t_ns: f64,
    /// What was decided.
    pub kind: EventKind,
}

impl Event {
    /// Serializes this event as one JSON object.
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"interval\":");
        out.push_str(&self.interval.to_string());
        out.push_str(",\"t_ns\":");
        json::write_f64(self.t_ns, out);
        out.push_str(",\"kind\":");
        json::write_str(self.kind.label(), out);
        self.kind.write_json_fields(out);
        out.push('}');
    }
}

/// Default event capacity: enough for every decision of a quick run and
/// the recent history of a full one.
pub const DEFAULT_CAPACITY: usize = 4096;

/// The bounded event log. Oldest events are overwritten on overflow.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRing {
    cap: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

impl Default for EventRing {
    fn default() -> EventRing {
        EventRing::with_capacity(DEFAULT_CAPACITY)
    }
}

impl EventRing {
    /// Creates a ring holding at most `cap` events.
    pub fn with_capacity(cap: usize) -> EventRing {
        assert!(cap >= 1);
        EventRing { cap, events: VecDeque::new(), dropped: 0 }
    }

    /// Appends an event, shedding the oldest one when full.
    pub fn push(&mut self, ev: Event) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no event was ever pushed (and none dropped).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the retained events into a `Vec`, oldest first.
    pub fn take(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events).into()
    }

    /// Serializes the ring (capacity, drop count and retained events).
    pub fn save(&self, w: &mut crate::wire::Writer) {
        w.varint(self.cap as u64);
        w.varint(self.dropped);
        w.varint(self.events.len() as u64);
        for ev in &self.events {
            w.varint(ev.interval);
            w.f64(ev.t_ns);
            ev.kind.save(w);
        }
    }

    /// Restores a ring saved with [`EventRing::save`].
    pub fn load(r: &mut crate::wire::Reader) -> Result<EventRing, String> {
        let cap = r.varint()? as usize;
        if cap == 0 {
            return Err("event ring: zero capacity".into());
        }
        let dropped = r.varint()?;
        let n = r.varint()? as usize;
        if n > cap {
            return Err(format!("event ring: {n} events exceed capacity {cap}"));
        }
        let mut ring = EventRing::with_capacity(cap);
        ring.dropped = dropped;
        for _ in 0..n {
            let interval = r.varint()?;
            let t_ns = r.f64()?;
            let kind = EventKind::load(r)?;
            ring.events.push_back(Event { interval, t_ns, kind });
        }
        Ok(ring)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> Event {
        Event { interval: i, t_ns: i as f64 * 10.0, kind: EventKind::RegionSplit { split: i } }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut r = EventRing::with_capacity(3);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let kept: Vec<u64> = r.iter().map(|e| e.interval).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn event_serializes_with_label_and_fields() {
        let mut out = String::new();
        Event {
            interval: 7,
            t_ns: 1234.5,
            kind: EventKind::Promotion { bytes: 4096, src: 2, dst: 0 },
        }
        .write_json(&mut out);
        assert_eq!(
            out,
            "{\"interval\":7,\"t_ns\":1234.5,\"kind\":\"promotion\",\
             \"bytes\":4096,\"src\":2,\"dst\":0}"
        );
    }

    #[test]
    fn every_kind_has_a_distinct_label() {
        let kinds = [
            EventKind::RegionMerge { merged: 1, freed_quota: 1 },
            EventKind::RegionSplit { split: 1 },
            EventKind::TauMEscalated { tau_m: 1.5, regions: 9, budget: 4 },
            EventKind::QuotaRedistributed { freed: 2 },
            EventKind::PebsZoomSplit { splits: 1 },
            EventKind::Promotion { bytes: 1, src: 1, dst: 0 },
            EventKind::Demotion { bytes: 1, src: 0, dst: 1 },
            EventKind::AsyncClean { bytes: 1, dst: 0 },
            EventKind::SwitchedSync { bytes: 1, dst: 0 },
            EventKind::SyncDirect { bytes: 1, dst: 0 },
            EventKind::MigrationDropped { reason: "nospace" },
            EventKind::MigrationRetried { retries: 2, backoff_ns: 40_000 },
            EventKind::MigrationAborted { bytes: 1, dst: 0 },
            EventKind::MigrationDeferred { bytes: 1, dst: 1 },
            EventKind::AdmissionRejected { bytes: 1, dst: 0, reason: "pingpong" },
            EventKind::ShadowHit { bytes: 1, dst: 0 },
        ];
        let mut labels: Vec<_> = kinds.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len());
    }
}
