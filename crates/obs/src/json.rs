//! Hand-rolled deterministic JSON: a writer and a minimal parser.
//!
//! The workspace is hermetic (no registry dependencies), so telemetry
//! serialization and its validation in `scripts/verify.sh` both live
//! here. The writer is deterministic by construction: object members are
//! emitted in a fixed order by the callers, and floats use Rust's
//! shortest-round-trip `Display`, which is identical on every platform.

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number to `out`; non-finite values become `null`.
pub fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // Shortest round-trip formatting; deterministic across platforms.
        out.push_str(&format!("{v}"));
        // `Display` prints integral floats without a fractional part or
        // exponent ("3"), which is still a valid JSON number.
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(s: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|b| b as char), self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number {text:?}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_escapes_strings() {
        let mut out = String::new();
        write_str("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn writes_floats_deterministically() {
        for (v, want) in [(1.5, "1.5"), (3.0, "3"), (0.1, "0.1"), (f64::NAN, "null")] {
            let mut out = String::new();
            write_f64(v, &mut out);
            assert_eq!(out, want);
        }
    }

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": null}, "e": true}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Json::Num(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d").unwrap(), &Json::Null);
        assert_eq!(v.get("e").unwrap(), &Json::Bool(true));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\\q\""] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn round_trips_written_strings() {
        let mut out = String::new();
        write_str("τm → 2.5 \"quoted\"", &mut out);
        assert_eq!(parse(&out).unwrap().as_str(), Some("τm → 2.5 \"quoted\""));
    }
}
