//! Observability core for the MTM workspace.
//!
//! The paper's claims are statements about *where time and bandwidth go* —
//! profiling overhead vs. the 5 % target (Eq. 1), migration critical path
//! vs. async copy, per-tier traffic — so the simulator and every manager
//! need a machine-readable account of what they decided each interval.
//! This crate provides that substrate with zero dependencies:
//!
//! * [`metrics`] — a static-name registry of monotonic counters, gauges
//!   and log-scaled histograms, plus [`SpanTimer`]s that charge *virtual*
//!   time read from `tiersim::clock`, so instrumentation never perturbs
//!   simulated results;
//! * [`ring`] — a bounded ring buffer of typed decision events (region
//!   split/merge, τm escalation, promotion/demotion batches, sync-vs-async
//!   migration fallbacks, ...), each stamped with the interval number and
//!   virtual time;
//! * [`snapshot`] — [`RunTelemetry`], the per-run export (final counters +
//!   event ring + per-interval series) serialized to deterministic JSON;
//! * [`json`] — the hand-rolled writer/parser keeping serialization and
//!   validation hermetic.
//!
//! Recording is deliberately *per run*: a [`Recorder`] lives inside each
//! simulated machine, so telemetry flows through the harness's
//! single-flight run cache unchanged and is byte-identical for any
//! `MTM_JOBS` value. Only the handful of process-wide harness counters
//! (run-cache hits/misses) live in the [`metrics::shared`] registry.

pub mod json;
pub mod metrics;
pub mod ring;
pub mod snapshot;

pub use metrics::{names, shared, LogHistogram, Registry, SharedRegistry, SpanTimer};
pub use ring::{Event, EventKind, EventRing};
pub use snapshot::{IntervalSeries, RunTelemetry};

/// Per-run recording state: one metrics registry plus one event ring.
///
/// Owned by the simulated machine; reset together with its measurement
/// state so warm-up never leaks into a run's telemetry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Recorder {
    /// Counters, gauges and histograms for this run.
    pub reg: Registry,
    /// Typed decision events for this run.
    pub ring: EventRing,
}

impl Recorder {
    /// Creates an empty recorder with the default ring capacity.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Records one decision event stamped with `interval` and virtual
    /// time `t_ns`. Never touches any clock or RNG.
    pub fn record(&mut self, interval: u64, t_ns: f64, kind: EventKind) {
        self.ring.push(Event { interval, t_ns, kind });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_collects_events_and_metrics() {
        let mut r = Recorder::new();
        r.record(3, 1500.0, EventKind::RegionSplit { split: 2 });
        r.reg.counter_add(names::MIGRATIONS, 1);
        assert_eq!(r.ring.len(), 1);
        assert_eq!(r.reg.counter(names::MIGRATIONS), 1);
        let ev = r.ring.iter().next().unwrap();
        assert_eq!(ev.interval, 3);
        assert_eq!(ev.kind, EventKind::RegionSplit { split: 2 });
    }
}
