//! Observability core for the MTM workspace.
//!
//! The paper's claims are statements about *where time and bandwidth go* —
//! profiling overhead vs. the 5 % target (Eq. 1), migration critical path
//! vs. async copy, per-tier traffic — so the simulator and every manager
//! need a machine-readable account of what they decided each interval.
//! This crate provides that substrate with zero dependencies:
//!
//! * [`metrics`] — a static-name registry of monotonic counters, gauges
//!   and log-scaled histograms, plus [`SpanTimer`]s that charge *virtual*
//!   time read from `tiersim::clock`, so instrumentation never perturbs
//!   simulated results;
//! * [`ring`] — a bounded ring buffer of typed decision events (region
//!   split/merge, τm escalation, promotion/demotion batches, sync-vs-async
//!   migration fallbacks, ...), each stamped with the interval number and
//!   virtual time;
//! * [`snapshot`] — [`RunTelemetry`], the per-run export (final counters +
//!   event ring + per-interval series) serialized to deterministic JSON;
//! * [`json`] — the hand-rolled writer/parser keeping serialization and
//!   validation hermetic.
//!
//! Recording is deliberately *per run*: a [`Recorder`] lives inside each
//! simulated machine, so telemetry flows through the harness's
//! single-flight run cache unchanged and is byte-identical for any
//! `MTM_JOBS` value. Only the handful of process-wide harness counters
//! (run-cache hits/misses) live in the [`metrics::shared`] registry.

pub mod json;
pub mod metrics;
pub mod ring;
pub mod snapshot;
pub mod wire;

pub use metrics::{names, shared, LogHistogram, Registry, SharedRegistry, SpanTimer};
pub use ring::{Event, EventKind, EventRing};
pub use snapshot::{IntervalSeries, RunTelemetry};

/// Per-run recording state: one metrics registry plus one event ring.
///
/// Owned by the simulated machine; reset together with its measurement
/// state so warm-up never leaks into a run's telemetry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Recorder {
    /// Counters, gauges and histograms for this run.
    pub reg: Registry,
    /// Typed decision events for this run.
    pub ring: EventRing,
}

impl Recorder {
    /// Creates an empty recorder with the default ring capacity.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Records one decision event stamped with `interval` and virtual
    /// time `t_ns`. Never touches any clock or RNG.
    pub fn record(&mut self, interval: u64, t_ns: f64, kind: EventKind) {
        self.ring.push(Event { interval, t_ns, kind });
    }

    /// Serializes the recorder (registry plus event ring) into `w`.
    pub fn save(&self, w: &mut wire::Writer) {
        self.reg.save(w);
        self.ring.save(w);
    }

    /// Restores a recorder saved with [`Recorder::save`].
    pub fn load(r: &mut wire::Reader) -> Result<Recorder, String> {
        Ok(Recorder { reg: Registry::load(r)?, ring: EventRing::load(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_collects_events_and_metrics() {
        let mut r = Recorder::new();
        r.record(3, 1500.0, EventKind::RegionSplit { split: 2 });
        r.reg.counter_add(names::MIGRATIONS, 1);
        assert_eq!(r.ring.len(), 1);
        assert_eq!(r.reg.counter(names::MIGRATIONS), 1);
        let ev = r.ring.iter().next().unwrap();
        assert_eq!(ev.interval, 3);
        assert_eq!(ev.kind, EventKind::RegionSplit { split: 2 });
    }

    #[test]
    fn recorder_round_trips_through_wire() {
        let mut r = Recorder::new();
        r.record(1, 10.0, EventKind::RegionMerge { merged: 4, freed_quota: 8 });
        r.record(2, 20.5, EventKind::MigrationDropped { reason: "nospace" });
        r.record(
            3,
            40.25,
            EventKind::AdmissionRejected { bytes: 1 << 21, dst: 2, reason: "pingpong" },
        );
        r.reg.counter_add(names::MIGRATIONS, 5);
        r.reg.gauge_set(names::TAU_M_NOW, 1.5);
        r.reg.observe(names::MIGRATION_BYTES, 4096);
        r.reg.observe(names::MIGRATION_BYTES, 0);

        let mut w = wire::Writer::new();
        r.save(&mut w);
        let bytes = w.into_bytes();
        let mut reader = wire::Reader::new(&bytes);
        let back = Recorder::load(&mut reader).unwrap();
        reader.finish().unwrap();
        assert_eq!(back, r);

        // Saving the restored recorder reproduces identical bytes.
        let mut w2 = wire::Writer::new();
        back.save(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }
}
