//! Traffic-trace scenario engine (DESIGN.md §5h).
//!
//! Three pieces sharing the [`tiersim::sim::Workload`] trait:
//!
//! - [`trace`]: record any workload's access stream to a compact,
//!   versioned binary trace and replay it bit-identically — the recorded
//!   run and the replayed run produce byte-identical reports.
//! - [`serving`]: synthetic serving-style traffic generators (zipfian KV
//!   with hot-set drift, diurnal load curves, flash crowds) exercising
//!   phase transitions no Table 2 batch workload produces.
//! - [`checkpoint`]: whole-simulation checkpoints (machine + manager +
//!   workload + driver progress) so long-horizon runs stop and resume
//!   with bit-identical continuation.
//!
//! [`churn`] adds tenant arrive/grow/shrink/depart schedules the
//! multi-tenant cell driver executes between intervals.

pub mod checkpoint;
pub mod churn;
pub mod serving;
pub mod trace;

pub use checkpoint::{restore_checkpoint, save_checkpoint};
pub use churn::{ChurnEvent, ChurnSchedule};
pub use serving::{Serving, ServingConfig};
pub use trace::{record_run, TraceRecorder, TraceReplayer};
