//! Synthetic serving-style traffic generators.
//!
//! Batch workloads (Table 2) hold one working set for the whole run;
//! serving systems do not. These generators model the three traffic
//! shapes a tiering policy struggles with: a zipfian KV store whose hot
//! set *drifts* on a schedule, a *diurnal* load curve (think time swings
//! through a day cycle), and a *flash crowd* (a sharp transient request
//! spike). All modulation is piecewise-linear — no transcendentals — so
//! the stream is bit-reproducible everywhere.

use mtm_workloads::layout::{Layout, LAYOUT_BASE};
use mtm_workloads::rng::{scatter, SplitMix64, Zipfian};
use obs::wire::{Reader, Writer};
use tiersim::addr::{VaRange, VirtAddr, PAGE_SIZE_2M};
use tiersim::sim::{MemEnv, Workload};

/// Bytes per stored value (one cache-line-ish record per key, padded).
const VAL_BYTES: u64 = 256;

/// Serving-generator configuration.
#[derive(Clone, Debug)]
pub struct ServingConfig {
    /// Report/display name (doubles as the sweep row label).
    pub label: String,
    /// Number of keys in the store.
    pub keys: u64,
    /// Zipfian skew (YCSB default 0.99).
    pub theta: f64,
    /// Fraction of operations that are reads.
    pub read_frac: f64,
    /// Number of application threads.
    pub threads: usize,
    /// Base think time per request, ns.
    pub cpu_ns_per_op: f64,
    /// Rotate the hot set every this many intervals (0 = static).
    pub drift_every: u64,
    /// Ranks the popularity permutation rotates by per drift step.
    pub drift_step: u64,
    /// Diurnal period in intervals (0 = flat load).
    pub diurnal_period: u64,
    /// Diurnal amplitude in (0, 1): think time swings by this factor
    /// around the base (peak load = shortest think time).
    pub diurnal_amp: f64,
    /// First interval of the flash crowd (0 = never).
    pub flash_at: u64,
    /// Flash-crowd length in intervals.
    pub flash_len: u64,
    /// Think-time divisor during the flash crowd (request-rate boost).
    pub flash_boost: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ServingConfig {
    fn base(label: &str, scale: u64, threads: usize) -> ServingConfig {
        ServingConfig {
            label: label.to_string(),
            // ~256 GB of values at scale 1 (4/3x the four-tier machine's
            // 192 GB of DRAM), proportional below: the store always
            // spills past the fast tier, so the hot set's placement is
            // the manager's problem, not a foregone conclusion.
            keys: ((256u64 << 30) / scale / VAL_BYTES).max(4096),
            theta: 0.99,
            read_frac: 0.95,
            threads,
            cpu_ns_per_op: 2_000.0,
            drift_every: 0,
            drift_step: 0,
            diurnal_period: 0,
            diurnal_amp: 0.0,
            flash_at: 0,
            flash_len: 0,
            flash_boost: 1.0,
            seed: 0x5E21,
        }
    }

    /// Zipfian KV traffic whose hot set rotates every `drift_every`
    /// intervals — the phase-transition probe.
    pub fn kv_drift(scale: u64, threads: usize, drift_every: u64) -> ServingConfig {
        let mut cfg = ServingConfig::base("KVDrift", scale, threads);
        cfg.drift_every = drift_every.max(1);
        cfg.drift_step = (cfg.keys / 8).max(1);
        cfg
    }

    /// Steady hot set under a diurnal load curve (one day = `period`
    /// intervals, load swinging +-50%).
    pub fn diurnal(scale: u64, threads: usize, period: u64) -> ServingConfig {
        let mut cfg = ServingConfig::base("Diurnal", scale, threads);
        cfg.diurnal_period = period.max(2);
        cfg.diurnal_amp = 0.5;
        cfg
    }

    /// Steady traffic with one sharp flash crowd (4x request rate) in
    /// the middle third of a `total_intervals`-long run.
    pub fn flash_crowd(scale: u64, threads: usize, total_intervals: u64) -> ServingConfig {
        let mut cfg = ServingConfig::base("FlashCrowd", scale, threads);
        cfg.flash_at = (total_intervals / 3).max(1);
        cfg.flash_len = (total_intervals / 6).max(1);
        cfg.flash_boost = 4.0;
        cfg
    }
}

/// The serving-store workload over one KV VMA.
pub struct Serving {
    cfg: ServingConfig,
    zipf: Zipfian,
    rngs: Vec<SplitMix64>,
    /// Current popularity-permutation rotation (hot-set drift state).
    rotation: u64,
    /// Intervals completed.
    interval: u64,
    /// Current think-time multiplier (diurnal/flash modulation).
    think_mul: f64,
    ops: u64,
}

impl Serving {
    /// Creates a generator (the VMA is laid out in [`Workload::setup`]).
    pub fn new(cfg: ServingConfig) -> Serving {
        assert!(cfg.keys >= 4096, "too few keys");
        let zipf = Zipfian::new(cfg.keys, cfg.theta);
        let rngs = (0..cfg.threads.max(1))
            .map(|t| SplitMix64::new(cfg.seed ^ ((t as u64) << 17)))
            .collect();
        let think_mul = think_multiplier(&cfg, 0);
        Serving { cfg, zipf, rngs, rotation: 0, interval: 0, think_mul, ops: 0 }
    }

    /// The KV VMA, derivable without the machine: the store is the
    /// layout's single, first mapping. Checkpoint restore rebuilds the
    /// mapping through the machine snapshot, never through `setup`, so
    /// the address math must not depend on having run it.
    fn vma(&self) -> VaRange {
        let len = (self.cfg.keys * VAL_BYTES).next_multiple_of(PAGE_SIZE_2M);
        VaRange::from_len(VirtAddr(LAYOUT_BASE), len)
    }
}

/// Piecewise-linear think-time multiplier at `interval`: a triangle
/// diurnal wave (load peaks mid-period, so think time bottoms there)
/// divided by the flash boost inside the flash window.
fn think_multiplier(cfg: &ServingConfig, interval: u64) -> f64 {
    let mut m = 1.0;
    if cfg.diurnal_period > 1 {
        let period = cfg.diurnal_period;
        let phase = interval % period;
        let half = period / 2;
        let tri = if phase <= half {
            phase as f64 / half.max(1) as f64
        } else {
            (period - phase) as f64 / (period - half).max(1) as f64
        };
        m *= 1.0 + cfg.diurnal_amp * (1.0 - 2.0 * tri);
    }
    if cfg.flash_boost > 1.0
        && cfg.flash_at > 0
        && interval >= cfg.flash_at
        && interval < cfg.flash_at + cfg.flash_len
    {
        m /= cfg.flash_boost;
    }
    m.max(0.01)
}

impl Workload for Serving {
    fn name(&self) -> String {
        self.cfg.label.clone()
    }

    fn setup(&mut self, env: &mut dyn MemEnv) {
        let mut layout = Layout::new();
        let vma = layout.add(env, "serving.kv", self.cfg.keys * VAL_BYTES, true);
        assert_eq!(vma, self.vma(), "layout drifted from the derived VMA");
        mtm_workloads::layout::populate_interleaved(env, &[vma], self.cfg.threads.max(1));
    }

    fn tick(&mut self, env: &mut dyn MemEnv, tid: usize) {
        let base = self.vma().start.0;
        let rng = &mut self.rngs[tid];
        let rank = self.zipf.sample(rng);
        // The rotation shifts which stored key each popularity rank maps
        // to: after a drift step the hottest ranks land on fresh, cold
        // pages — exactly the phase transition the sweep measures.
        let key = scatter(rank.wrapping_add(self.rotation), self.cfg.keys, self.cfg.seed);
        let va = VirtAddr(base + key * VAL_BYTES);
        if rng.unit_f64() < self.cfg.read_frac {
            env.read(tid, va);
        } else {
            env.write(tid, va);
        }
        if self.cfg.cpu_ns_per_op > 0.0 {
            env.compute(tid, self.cfg.cpu_ns_per_op * self.think_mul);
        }
        self.ops += 1;
    }

    fn footprint(&self) -> u64 {
        self.cfg.keys * VAL_BYTES
    }

    fn end_of_interval(&mut self, interval: u64) {
        self.interval = interval + 1;
        if self.cfg.drift_every > 0 && self.interval % self.cfg.drift_every == 0 {
            self.rotation = self.rotation.wrapping_add(self.cfg.drift_step);
        }
        self.think_mul = think_multiplier(&self.cfg, self.interval);
    }

    fn ops_completed(&self) -> u64 {
        self.ops
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut w = Writer::new();
        w.varint(self.rotation);
        w.varint(self.interval);
        w.f64(self.think_mul);
        w.varint(self.ops);
        w.varint(self.rngs.len() as u64);
        for rng in &self.rngs {
            w.u64(rng.state());
        }
        Some(w.into_bytes())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = Reader::new(bytes);
        self.rotation = r.varint()?;
        self.interval = r.varint()?;
        self.think_mul = r.f64()?;
        self.ops = r.varint()?;
        let n = r.varint()? as usize;
        if n != self.rngs.len() {
            return Err(format!(
                "checkpoint has {n} RNG streams, this generator has {}",
                self.rngs.len()
            ));
        }
        for rng in &mut self.rngs {
            *rng = SplitMix64::from_state(r.u64()?);
        }
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingEnv {
        machine: tiersim::machine::Machine,
        reads: u64,
        writes: u64,
        compute_ns: f64,
    }

    impl MemEnv for CountingEnv {
        fn read(&mut self, _tid: usize, _va: VirtAddr) {
            self.reads += 1;
        }
        fn write(&mut self, _tid: usize, _va: VirtAddr) {
            self.writes += 1;
        }
        fn compute(&mut self, _tid: usize, ns: f64) {
            self.compute_ns += ns;
        }
        fn machine(&mut self) -> &mut tiersim::machine::Machine {
            &mut self.machine
        }
    }

    fn env() -> CountingEnv {
        let topo = tiersim::tier::tiny_two_tier(32 * PAGE_SIZE_2M, 128 * PAGE_SIZE_2M);
        CountingEnv {
            machine: tiersim::machine::Machine::new(tiersim::machine::MachineConfig::new(topo, 2)),
            reads: 0,
            writes: 0,
            compute_ns: 0.0,
        }
    }

    #[test]
    fn drift_rotates_on_schedule_only() {
        let mut s = Serving::new(ServingConfig::kv_drift(1 << 14, 2, 4));
        let step = s.cfg.drift_step;
        for ivl in 0..3 {
            s.end_of_interval(ivl);
        }
        assert_eq!(s.rotation, 0, "no drift before the schedule");
        s.end_of_interval(3);
        assert_eq!(s.rotation, step, "drift at the boundary");
        for ivl in 4..8 {
            s.end_of_interval(ivl);
        }
        assert_eq!(s.rotation, 2 * step);
    }

    #[test]
    fn diurnal_multiplier_is_triangle_shaped() {
        let cfg = ServingConfig::diurnal(1 << 14, 2, 8);
        let at = |i| think_multiplier(&cfg, i);
        assert_eq!(at(0), 1.5, "night: slowest request rate");
        assert_eq!(at(4), 0.5, "peak: fastest");
        assert_eq!(at(8), 1.5, "periodic");
        assert!(at(2) > at(3), "monotone down toward the peak");
    }

    #[test]
    fn flash_window_boosts_rate_transiently() {
        let cfg = ServingConfig::flash_crowd(1 << 14, 2, 30);
        assert_eq!(think_multiplier(&cfg, cfg.flash_at - 1), 1.0);
        assert_eq!(think_multiplier(&cfg, cfg.flash_at), 0.25);
        assert_eq!(think_multiplier(&cfg, cfg.flash_at + cfg.flash_len), 1.0);
    }

    #[test]
    fn checkpoint_round_trip_resumes_stream_exactly() {
        let mut a = Serving::new(ServingConfig::kv_drift(1 << 14, 2, 4));
        let mut e = env();
        for ivl in 0..4 {
            for _ in 0..200 {
                a.tick(&mut e, 0);
                a.tick(&mut e, 1);
            }
            a.end_of_interval(ivl);
        }
        let blob = a.save_state().unwrap();
        let mut b = Serving::new(ServingConfig::kv_drift(1 << 14, 2, 4));
        b.load_state(&blob).unwrap();
        assert_eq!(b.save_state().unwrap(), blob, "re-save is byte-identical");
        let (mut ea, mut eb) = (env(), env());
        for _ in 0..500 {
            a.tick(&mut ea, 0);
            b.tick(&mut eb, 0);
        }
        assert_eq!(a.ops, b.ops);
        assert_eq!(ea.reads, eb.reads);
        assert_eq!(ea.writes, eb.writes);
        assert_eq!(ea.compute_ns.to_bits(), eb.compute_ns.to_bits());
        assert_eq!(a.save_state().unwrap(), b.save_state().unwrap());
    }

    #[test]
    fn rng_stream_count_mismatch_is_rejected() {
        let a = Serving::new(ServingConfig::kv_drift(1 << 14, 2, 4));
        let blob = a.save_state().unwrap();
        let mut b = Serving::new(ServingConfig::kv_drift(1 << 14, 4, 4));
        assert!(b.load_state(&blob).is_err());
    }
}
