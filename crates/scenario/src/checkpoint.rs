//! Whole-simulation checkpoints: stop a run at an interval boundary,
//! serialize everything, resume later with bit-identical continuation.
//!
//! A checkpoint composes four blobs — machine, manager, workload, and
//! the driver's [`ScenarioProgress`] — plus the index of the next
//! interval to run. Restore rebuilds each object from its *configuration*
//! (the caller constructs them exactly as for a fresh run, but skips
//! `setup`/`init`) and then loads the dynamic state on top; the machine
//! blob carries a config digest, so restoring onto a differently-shaped
//! machine fails loudly instead of diverging. The invariant — proved by
//! the differential tests — is that `resume(save(run_to(k)), k..n)`
//! equals `run_to(n)` byte-for-byte in reports and telemetry.

use obs::wire::{Reader, Writer};
use tiersim::machine::Machine;
use tiersim::sim::{MemoryManager, ScenarioProgress, Workload};

/// Magic bytes opening every checkpoint (also the version marker).
pub const CKPT_MAGIC: &[u8; 8] = b"MTMCKPT1";

/// Serializes a paused run. `next_interval` is the first interval the
/// resumed run will execute. Fails when any layer refuses: machine in
/// Memory Mode or with an active fault plan, manager or workload without
/// checkpoint support.
pub fn save_checkpoint(
    machine: &Machine,
    manager: &dyn MemoryManager,
    workload: &dyn Workload,
    progress: &ScenarioProgress,
    next_interval: u64,
) -> Result<Vec<u8>, String> {
    let manager_blob = manager
        .save_state()
        .ok_or_else(|| format!("manager {:?} does not support checkpointing", manager.name()))?;
    let workload_blob = workload
        .save_state()
        .ok_or_else(|| format!("workload {:?} does not support checkpointing", workload.name()))?;
    let mut w = Writer::new();
    w.u64(u64::from_le_bytes(*CKPT_MAGIC));
    w.str(&manager.name());
    w.str(&workload.name());
    w.varint(next_interval);
    w.bytes(&machine.save_state()?);
    w.bytes(&manager_blob);
    w.bytes(&workload_blob);
    progress.save(&mut w);
    Ok(w.into_bytes())
}

/// Restores a checkpoint into freshly built (not set up, not
/// initialized) machine / manager / workload objects of the same
/// configuration. Returns the restored driver progress and the next
/// interval to run; the caller continues with
/// [`ScenarioProgress::step_interval`] from there and finishes normally.
pub fn restore_checkpoint(
    bytes: &[u8],
    machine: &mut Machine,
    manager: &mut dyn MemoryManager,
    workload: &mut dyn Workload,
) -> Result<(ScenarioProgress, u64), String> {
    let mut r = Reader::new(bytes);
    if r.u64()? != u64::from_le_bytes(*CKPT_MAGIC) {
        return Err("not an MTMCKPT1 checkpoint (bad magic)".to_string());
    }
    let manager_name = r.str()?;
    if manager_name != manager.name() {
        return Err(format!(
            "checkpoint was taken under manager {:?}, not {:?}",
            manager_name,
            manager.name()
        ));
    }
    let workload_name = r.str()?;
    if workload_name != workload.name() {
        return Err(format!(
            "checkpoint was taken under workload {:?}, not {:?}",
            workload_name,
            workload.name()
        ));
    }
    let next_interval = r.varint()?;
    machine.load_state(r.bytes()?)?;
    manager.load_state(r.bytes()?)?;
    workload.load_state(r.bytes()?)?;
    let progress = ScenarioProgress::load(&mut r)?;
    r.finish()?;
    Ok((progress, next_interval))
}
