//! Tenant churn schedules for the multi-tenant cell driver.
//!
//! A [`ChurnSchedule`] is a deterministic list of arrive / depart /
//! resize events keyed by interval index. The harness's churn driver
//! applies the events at interval boundaries, before global arbitration,
//! so a tenant's first interval already runs under an arbitrated grant
//! and a departed tenant's capacity returns to the pool immediately.

/// One churn event. Tenants are addressed by their stable name.
#[derive(Clone, Debug, PartialEq)]
pub enum ChurnEvent {
    /// A tenant arrives: its machine, manager and workload are built and
    /// set up at this boundary. `weight` scales the arbiter's grant
    /// (1.0 = neutral).
    Arrive { name: String, workload: String, weight: f64 },
    /// The tenant finishes: its report is collected and its quota
    /// returns to the pool.
    Depart { name: String },
    /// The tenant grows or shrinks: its arbitration weight is rescaled.
    Resize { name: String, weight: f64 },
}

impl ChurnEvent {
    /// The tenant the event addresses.
    pub fn tenant(&self) -> &str {
        match self {
            ChurnEvent::Arrive { name, .. }
            | ChurnEvent::Depart { name }
            | ChurnEvent::Resize { name, .. } => name,
        }
    }
}

/// An interval-keyed event schedule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChurnSchedule {
    events: Vec<(u64, ChurnEvent)>,
}

impl ChurnSchedule {
    /// Builds a schedule; events are stably sorted by interval so
    /// same-interval events apply in insertion order.
    pub fn new(mut events: Vec<(u64, ChurnEvent)>) -> ChurnSchedule {
        events.sort_by_key(|&(at, _)| at);
        ChurnSchedule { events }
    }

    /// All events, ordered.
    pub fn events(&self) -> &[(u64, ChurnEvent)] {
        &self.events
    }

    /// The events scheduled exactly at `interval`.
    pub fn at(&self, interval: u64) -> impl Iterator<Item = &ChurnEvent> {
        self.events.iter().filter(move |&&(at, _)| at == interval).map(|(_, e)| e)
    }

    /// The canonical serving-churn schedule over a run of
    /// `intervals`: two resident tenants, a third arriving at 1/4,
    /// growing at 1/2, shrinking at 5/8, and departing at 3/4.
    pub fn serving_default(intervals: u64) -> ChurnSchedule {
        let q = (intervals / 4).max(1);
        ChurnSchedule::new(vec![
            (
                0,
                ChurnEvent::Arrive {
                    name: "t00".to_string(),
                    workload: "KVDrift".to_string(),
                    weight: 1.0,
                },
            ),
            (
                0,
                ChurnEvent::Arrive {
                    name: "t01".to_string(),
                    workload: "Diurnal".to_string(),
                    weight: 1.0,
                },
            ),
            (
                q,
                ChurnEvent::Arrive {
                    name: "t02".to_string(),
                    workload: "FlashCrowd".to_string(),
                    weight: 0.5,
                },
            ),
            (2 * q, ChurnEvent::Resize { name: "t02".to_string(), weight: 2.0 }),
            (
                2 * q + q / 2,
                ChurnEvent::Resize { name: "t02".to_string(), weight: 0.5 },
            ),
            (3 * q, ChurnEvent::Depart { name: "t02".to_string() }),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_sorts_stably_and_filters_by_interval() {
        let s = ChurnSchedule::new(vec![
            (4, ChurnEvent::Depart { name: "b".into() }),
            (2, ChurnEvent::Resize { name: "a".into(), weight: 2.0 }),
            (4, ChurnEvent::Depart { name: "a".into() }),
        ]);
        assert_eq!(s.events()[0].0, 2);
        let at4: Vec<&str> = s.at(4).map(|e| e.tenant()).collect();
        assert_eq!(at4, vec!["b", "a"], "same-interval order is insertion order");
        assert_eq!(s.at(3).count(), 0);
    }

    #[test]
    fn default_schedule_is_well_formed() {
        let s = ChurnSchedule::serving_default(40);
        assert_eq!(s.at(0).count(), 2, "two resident tenants");
        let arrivals =
            s.events().iter().filter(|(_, e)| matches!(e, ChurnEvent::Arrive { .. })).count();
        let departs =
            s.events().iter().filter(|(_, e)| matches!(e, ChurnEvent::Depart { .. })).count();
        assert_eq!(arrivals, 3);
        assert_eq!(departs, 1);
        // Every depart/resize names a previously arrived tenant.
        let mut live: Vec<&str> = Vec::new();
        for (_, e) in s.events() {
            match e {
                ChurnEvent::Arrive { name, .. } => live.push(name),
                ChurnEvent::Depart { name } | ChurnEvent::Resize { name, .. } => {
                    assert!(live.contains(&name.as_str()), "unknown tenant {name}");
                }
            }
        }
    }
}
