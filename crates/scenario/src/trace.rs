//! Deterministic page-access trace record and replay.
//!
//! [`TraceRecorder`] wraps any [`Workload`] and records every access its
//! ticks issue; [`TraceReplayer`] is itself a [`Workload`] that replays
//! the stream. Because the driver's tick order is deterministic (fixed
//! round-robin inside [`tiersim::sim::drive_interval`]) the trace stores
//! one flat record per tick — no thread ids, no timestamps — and the
//! replayed run is bit-identical to the recorded one: same machine
//! config, same manager, byte-identical reports.
//!
//! ## Format (`MTMTRACE`, version 1)
//!
//! Header: magic, version, recorded workload name, footprint, and an
//! embedded machine snapshot captured at the end of the recorded
//! workload's `setup` (before the manager ran `init`). Replay restores
//! the snapshot instead of re-running setup, so populate-time placement
//! is carried over exactly.
//!
//! Body: per tick, a varint record count, the records, then a varint
//! ops-completed delta. Records delta-encode virtual addresses from the
//! previous access (zigzag varint) and run-length-collapse constant-
//! stride runs (sequential scans shrink to a few bytes per page run).

use obs::wire::{Reader, Writer};
use tiersim::addr::VirtAddr;
use tiersim::machine::Machine;
use tiersim::sim::{run_scenario, MemEnv, MemoryManager, RunReport, Workload};

/// Magic bytes opening every trace file.
pub const TRACE_MAGIC: &[u8; 8] = b"MTMTRACE";
/// Current trace format version.
pub const TRACE_VERSION: u32 = 1;

/// Per-tick record tags (stable wire values).
const TAG_READ: u8 = 0;
const TAG_WRITE: u8 = 1;
const TAG_COMPUTE: u8 = 2;
const TAG_RUN: u8 = 3;

/// One recorded memory operation.
#[derive(Clone, Copy, Debug, PartialEq)]
enum TraceOp {
    Read(u64),
    Write(u64),
    Compute(f64),
}

/// A [`MemEnv`] shim that forwards to the real environment while
/// appending every operation to the tick buffer.
struct RecordingEnv<'a> {
    env: &'a mut dyn MemEnv,
    ops: &'a mut Vec<TraceOp>,
}

impl<'a> MemEnv for RecordingEnv<'a> {
    fn read(&mut self, tid: usize, va: VirtAddr) {
        self.ops.push(TraceOp::Read(va.0));
        self.env.read(tid, va);
    }

    fn write(&mut self, tid: usize, va: VirtAddr) {
        self.ops.push(TraceOp::Write(va.0));
        self.env.write(tid, va);
    }

    fn compute(&mut self, tid: usize, ns: f64) {
        self.ops.push(TraceOp::Compute(ns));
        self.env.compute(tid, ns);
    }

    fn machine(&mut self) -> &mut Machine {
        // Direct machine access during a tick is not replayable (its
        // effects are not in the op stream); Table 2 workloads only use
        // it in `setup`, which the snapshot covers.
        self.env.machine()
    }
}

/// Records a workload's access stream while running it unchanged.
///
/// The wrapper is transparent: a run through the recorder is
/// bit-identical to a run of the bare workload (same name, same
/// accesses, same reports). Call [`TraceRecorder::into_trace`] after the
/// run to serialize the trace.
pub struct TraceRecorder<W: Workload> {
    inner: W,
    snapshot: Option<Result<Vec<u8>, String>>,
    body: Writer,
    ticks: u64,
    last_va: u64,
    last_ops: u64,
    buf: Vec<TraceOp>,
}

impl<W: Workload> TraceRecorder<W> {
    /// Wraps `inner` for recording.
    pub fn new(inner: W) -> TraceRecorder<W> {
        TraceRecorder {
            inner,
            snapshot: None,
            body: Writer::new(),
            ticks: 0,
            last_va: 0,
            last_ops: 0,
            buf: Vec::new(),
        }
    }

    /// Serializes the recorded trace. Fails when the machine was not
    /// snapshottable at setup (Memory Mode, active fault plan) or setup
    /// never ran.
    pub fn into_trace(self) -> Result<Vec<u8>, String> {
        let snapshot = self.snapshot.ok_or("nothing recorded: setup never ran")??;
        let mut w = Writer::new();
        w.u64(u64::from_le_bytes(*TRACE_MAGIC));
        w.u32(TRACE_VERSION);
        w.str(&self.inner.name());
        w.varint(self.inner.footprint());
        w.bytes(&snapshot);
        w.varint(self.ticks);
        w.bytes(&self.body.into_bytes());
        Ok(w.into_bytes())
    }

    /// Encodes one tick's operations with delta + run-length compression.
    fn encode_tick(&mut self) {
        // Count wire records first (runs of >= 3 same-kind, same-delta
        // accesses collapse into one record).
        let mut deltas = Vec::with_capacity(self.buf.len());
        let mut va_cursor = self.last_va;
        for op in &self.buf {
            match *op {
                TraceOp::Read(va) | TraceOp::Write(va) => {
                    deltas.push(va.wrapping_sub(va_cursor) as i64);
                    va_cursor = va;
                }
                TraceOp::Compute(_) => deltas.push(0),
            }
        }
        let same = |a: &TraceOp, b: &TraceOp| {
            matches!(
                (a, b),
                (TraceOp::Read(_), TraceOp::Read(_)) | (TraceOp::Write(_), TraceOp::Write(_))
            )
        };
        let mut records: Vec<(usize, usize)> = Vec::new(); // (start, len)
        let mut i = 0;
        while i < self.buf.len() {
            let mut j = i + 1;
            if !matches!(self.buf[i], TraceOp::Compute(_)) {
                while j < self.buf.len()
                    && same(&self.buf[i], &self.buf[j])
                    && deltas[j] == deltas[i]
                {
                    j += 1;
                }
            }
            if j - i < 3 {
                j = i + 1;
            }
            records.push((i, j - i));
            i = j;
        }
        self.body.varint(records.len() as u64);
        for &(start, len) in &records {
            match self.buf[start] {
                TraceOp::Compute(ns) => {
                    self.body.u8(TAG_COMPUTE);
                    self.body.f64(ns);
                }
                TraceOp::Read(_) | TraceOp::Write(_) if len >= 3 => {
                    let kind =
                        if matches!(self.buf[start], TraceOp::Read(_)) { TAG_READ } else { TAG_WRITE };
                    self.body.u8(TAG_RUN);
                    self.body.u8(kind);
                    self.body.zigzag(deltas[start]);
                    self.body.varint(len as u64);
                }
                TraceOp::Read(_) => {
                    self.body.u8(TAG_READ);
                    self.body.zigzag(deltas[start]);
                }
                TraceOp::Write(_) => {
                    self.body.u8(TAG_WRITE);
                    self.body.zigzag(deltas[start]);
                }
            }
        }
        self.last_va = va_cursor;
        let ops = self.inner.ops_completed();
        self.body.varint(ops - self.last_ops);
        self.last_ops = ops;
        self.ticks += 1;
    }
}

impl<W: Workload> Workload for TraceRecorder<W> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn setup(&mut self, env: &mut dyn MemEnv) {
        self.inner.setup(env);
        self.snapshot = Some(env.machine().save_state());
    }

    fn tick(&mut self, env: &mut dyn MemEnv, tid: usize) {
        self.buf.clear();
        let mut renv = RecordingEnv { env, ops: &mut self.buf };
        self.inner.tick(&mut renv, tid);
        self.encode_tick();
    }

    fn footprint(&self) -> u64 {
        self.inner.footprint()
    }

    fn true_hot_ranges(&self) -> Vec<tiersim::addr::VaRange> {
        self.inner.true_hot_ranges()
    }

    fn end_of_interval(&mut self, interval: u64) {
        self.inner.end_of_interval(interval);
    }

    fn ops_completed(&self) -> u64 {
        self.inner.ops_completed()
    }
}

/// A decoded trace, replayable as a [`Workload`].
///
/// `setup` restores the embedded machine snapshot instead of re-running
/// the recorded workload's population phase; `tick` re-issues the
/// recorded operations in order. Ground-truth hot ranges are not carried
/// in the trace ([`Workload::true_hot_ranges`] returns empty — only the
/// fig1 accuracy experiment consumes them, never run reports).
pub struct TraceReplayer {
    name: String,
    footprint: u64,
    snapshot: Vec<u8>,
    ticks: Vec<(Vec<TraceOp>, u64)>,
    cursor: usize,
    ops: u64,
}

impl TraceReplayer {
    /// Decodes a trace serialized by [`TraceRecorder::into_trace`].
    pub fn from_bytes(bytes: &[u8]) -> Result<TraceReplayer, String> {
        let mut r = Reader::new(bytes);
        if r.u64()? != u64::from_le_bytes(*TRACE_MAGIC) {
            return Err("not an MTMTRACE file (bad magic)".to_string());
        }
        let version = r.u32()?;
        if version != TRACE_VERSION {
            return Err(format!(
                "unsupported trace version {version} (this build reads {TRACE_VERSION})"
            ));
        }
        let name = r.str()?;
        let footprint = r.varint()?;
        let snapshot = r.bytes()?.to_vec();
        let tick_count = r.varint()? as usize;
        let body = r.bytes()?.to_vec();
        r.finish()?;

        let mut b = Reader::new(&body);
        let mut ticks = Vec::with_capacity(tick_count.min(1 << 20));
        let mut va_cursor = 0u64;
        for _ in 0..tick_count {
            let records = b.varint()? as usize;
            let mut ops = Vec::with_capacity(records.min(1 << 16));
            for _ in 0..records {
                match b.u8()? {
                    TAG_READ => {
                        va_cursor = va_cursor.wrapping_add(b.zigzag()? as u64);
                        ops.push(TraceOp::Read(va_cursor));
                    }
                    TAG_WRITE => {
                        va_cursor = va_cursor.wrapping_add(b.zigzag()? as u64);
                        ops.push(TraceOp::Write(va_cursor));
                    }
                    TAG_COMPUTE => ops.push(TraceOp::Compute(b.f64()?)),
                    TAG_RUN => {
                        let kind = b.u8()?;
                        let delta = b.zigzag()? as u64;
                        let count = b.varint()?;
                        for _ in 0..count {
                            va_cursor = va_cursor.wrapping_add(delta);
                            ops.push(match kind {
                                TAG_READ => TraceOp::Read(va_cursor),
                                TAG_WRITE => TraceOp::Write(va_cursor),
                                other => {
                                    return Err(format!("bad run kind {other} in trace"))
                                }
                            });
                        }
                    }
                    other => return Err(format!("bad record tag {other} in trace")),
                }
            }
            let ops_delta = b.varint()?;
            ticks.push((ops, ops_delta));
        }
        b.finish()?;
        Ok(TraceReplayer { name, footprint, snapshot, ticks, cursor: 0, ops: 0 })
    }

    /// Number of recorded ticks.
    pub fn tick_count(&self) -> usize {
        self.ticks.len()
    }
}

impl Workload for TraceReplayer {
    fn name(&self) -> String {
        // The recorded name, verbatim: a replayed run's report must be
        // byte-identical to the live run's.
        self.name.clone()
    }

    fn setup(&mut self, env: &mut dyn MemEnv) {
        env.machine()
            .load_state(&self.snapshot)
            .unwrap_or_else(|e| panic!("trace snapshot does not fit this machine: {e}"));
    }

    fn tick(&mut self, env: &mut dyn MemEnv, tid: usize) {
        let Some((ops, delta)) = self.ticks.get(self.cursor) else {
            panic!(
                "trace exhausted after {} ticks: replay ran longer than the recorded run",
                self.ticks.len()
            );
        };
        for op in ops {
            match *op {
                TraceOp::Read(va) => env.read(tid, VirtAddr(va)),
                TraceOp::Write(va) => env.write(tid, VirtAddr(va)),
                TraceOp::Compute(ns) => env.compute(tid, ns),
            }
        }
        self.ops += delta;
        self.cursor += 1;
    }

    fn footprint(&self) -> u64 {
        self.footprint
    }

    fn ops_completed(&self) -> u64 {
        self.ops
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut w = Writer::new();
        w.varint(self.cursor as u64);
        w.varint(self.ops);
        Some(w.into_bytes())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = Reader::new(bytes);
        let cursor = r.varint()? as usize;
        if cursor > self.ticks.len() {
            return Err(format!(
                "checkpoint cursor {cursor} exceeds trace length {}",
                self.ticks.len()
            ));
        }
        self.cursor = cursor;
        self.ops = r.varint()?;
        r.finish()
    }
}

/// Runs `workload` under `manager` for `intervals`, recording its access
/// stream. Returns the (unchanged) run report and the serialized trace.
pub fn record_run<W: Workload>(
    machine: &mut Machine,
    manager: &mut dyn MemoryManager,
    workload: W,
    intervals: u64,
) -> Result<(RunReport, Vec<u8>), String> {
    let mut recorder = TraceRecorder::new(workload);
    let report = run_scenario(machine, manager, &mut recorder, intervals);
    Ok((report, recorder.into_trace()?))
}
