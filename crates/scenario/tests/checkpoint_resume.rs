//! Checkpoint/resume differential tests: stopping a run at an interval
//! boundary, serializing everything, and resuming in fresh objects
//! yields the straight-through run's report and telemetry byte-for-byte.

use mtm::{MtmConfig, MtmManager};
use mtm_scenario::{restore_checkpoint, save_checkpoint, Serving, ServingConfig};
use tiersim::machine::{Machine, MachineConfig};
use tiersim::sim::{run_scenario, RunReport, ScenarioProgress};
use tiersim::tier::tiny_two_tier;
use tiersim::PAGE_SIZE_2M;

const INTERVALS: u64 = 10;

fn machine() -> Machine {
    let topo = tiny_two_tier(16 * PAGE_SIZE_2M, 96 * PAGE_SIZE_2M);
    let mut cfg = MachineConfig::new(topo, 2);
    cfg.interval_ns = 0.5e6;
    Machine::new(cfg)
}

fn manager() -> MtmManager {
    MtmManager::new(MtmConfig::default(), 1)
}

fn workload() -> Serving {
    Serving::new(ServingConfig::kv_drift(1 << 14, 2, 3))
}

fn fingerprint(r: &RunReport) -> String {
    format!("{r:?}\n{}", r.telemetry.to_json())
}

/// Runs to `stop_at`, checkpoints, resumes in fresh objects, and runs to
/// the end; returns the resumed run's report.
fn resumed_report(stop_at: u64) -> RunReport {
    let mut m = machine();
    let mut mgr = manager();
    let mut wl = workload();
    let mut progress = ScenarioProgress::start(&mut m, &mut mgr, &mut wl);
    for ivl in 0..stop_at {
        progress.step_interval(&mut m, &mut mgr, &mut wl, ivl);
    }
    let blob =
        save_checkpoint(&m, &mgr, &wl, &progress, stop_at).expect("checkpointable stack");
    drop((m, mgr, wl, progress));

    let mut m = machine();
    let mut mgr = manager();
    let mut wl = workload();
    let (mut progress, next) =
        restore_checkpoint(&blob, &mut m, &mut mgr, &mut wl).expect("checkpoint restores");
    assert_eq!(next, stop_at);
    for ivl in next..INTERVALS {
        progress.step_interval(&mut m, &mut mgr, &mut wl, ivl);
    }
    progress.finish(&mut m, &mut mgr, &mut wl)
}

#[test]
fn resume_matches_straight_through_byte_for_byte() {
    let mut m = machine();
    let mut mgr = manager();
    let mut wl = workload();
    let straight = run_scenario(&mut m, &mut mgr, &mut wl, INTERVALS);
    let want = fingerprint(&straight);
    // Resume at an early, a mid-drift, and a late boundary: the report
    // and its telemetry JSON must be byte-identical each time.
    for stop_at in [2, 5, 9] {
        let resumed = resumed_report(stop_at);
        assert_eq!(fingerprint(&resumed), want, "resume at interval {stop_at} diverged");
    }
}

#[test]
fn double_checkpoint_chain_still_matches() {
    // save -> resume -> save again -> resume again: checkpoints compose.
    let mut m = machine();
    let mut mgr = manager();
    let mut wl = workload();
    let want = fingerprint(&run_scenario(&mut m, &mut mgr, &mut wl, INTERVALS));

    let mut m = machine();
    let mut mgr = manager();
    let mut wl = workload();
    let mut progress = ScenarioProgress::start(&mut m, &mut mgr, &mut wl);
    for ivl in 0..3 {
        progress.step_interval(&mut m, &mut mgr, &mut wl, ivl);
    }
    let first = save_checkpoint(&m, &mgr, &wl, &progress, 3).expect("first checkpoint");

    let mut m = machine();
    let mut mgr = manager();
    let mut wl = workload();
    let (mut progress, next) =
        restore_checkpoint(&first, &mut m, &mut mgr, &mut wl).expect("first restore");
    for ivl in next..7 {
        progress.step_interval(&mut m, &mut mgr, &mut wl, ivl);
    }
    let second = save_checkpoint(&m, &mgr, &wl, &progress, 7).expect("second checkpoint");

    let mut m = machine();
    let mut mgr = manager();
    let mut wl = workload();
    let (mut progress, next) =
        restore_checkpoint(&second, &mut m, &mut mgr, &mut wl).expect("second restore");
    for ivl in next..INTERVALS {
        progress.step_interval(&mut m, &mut mgr, &mut wl, ivl);
    }
    let out = progress.finish(&mut m, &mut mgr, &mut wl);
    assert_eq!(fingerprint(&out), want);
}

#[test]
fn unsupported_workload_fails_with_clear_error() {
    let mut m = machine();
    let mut mgr = manager();
    let mut wl = mtm_workloads::build_paper_workload("GUPS", 1 << 13, 2).expect("GUPS exists");
    let mut progress = ScenarioProgress::start(&mut m, &mut mgr, wl.as_mut());
    progress.step_interval(&mut m, &mut mgr, wl.as_mut(), 0);
    let err = save_checkpoint(&m, &mgr, wl.as_ref(), &progress, 1).unwrap_err();
    assert!(err.contains("workload"), "unexpected error: {err}");
}

#[test]
fn restore_rejects_mismatched_workload_and_manager() {
    let mut m = machine();
    let mut mgr = manager();
    let mut wl = workload();
    let mut progress = ScenarioProgress::start(&mut m, &mut mgr, &mut wl);
    progress.step_interval(&mut m, &mut mgr, &mut wl, 0);
    let blob = save_checkpoint(&m, &mgr, &wl, &progress, 1).expect("checkpointable");

    let mut m2 = machine();
    let mut mgr2 = manager();
    let mut other_wl = Serving::new(ServingConfig::diurnal(1 << 14, 2, 8));
    let Err(err) = restore_checkpoint(&blob, &mut m2, &mut mgr2, &mut other_wl) else {
        panic!("mismatched workload accepted")
    };
    assert!(err.contains("workload"), "unexpected error: {err}");

    let mut cfg = MtmConfig::default();
    cfg.pebs_assist = false;
    let mut other_mgr = MtmManager::new(cfg, 1);
    let mut wl2 = workload();
    let Err(err) = restore_checkpoint(&blob, &mut m2, &mut other_mgr, &mut wl2) else {
        panic!("mismatched manager accepted")
    };
    assert!(err.contains("manager"), "unexpected error: {err}");
}
